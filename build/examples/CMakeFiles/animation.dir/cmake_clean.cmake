file(REMOVE_RECURSE
  "CMakeFiles/animation.dir/animation.cpp.o"
  "CMakeFiles/animation.dir/animation.cpp.o.d"
  "animation"
  "animation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
