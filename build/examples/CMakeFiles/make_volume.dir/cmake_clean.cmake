file(REMOVE_RECURSE
  "CMakeFiles/make_volume.dir/make_volume.cpp.o"
  "CMakeFiles/make_volume.dir/make_volume.cpp.o.d"
  "make_volume"
  "make_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
