# Empty compiler generated dependencies file for make_volume.
# This may be replaced when dependencies are built.
