file(REMOVE_RECURSE
  "CMakeFiles/test_svmsim.dir/test_svmsim.cpp.o"
  "CMakeFiles/test_svmsim.dir/test_svmsim.cpp.o.d"
  "test_svmsim"
  "test_svmsim.pdb"
  "test_svmsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
