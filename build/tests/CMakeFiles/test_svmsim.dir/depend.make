# Empty dependencies file for test_svmsim.
# This may be replaced when dependencies are built.
