file(REMOVE_RECURSE
  "CMakeFiles/test_renderer.dir/test_renderer.cpp.o"
  "CMakeFiles/test_renderer.dir/test_renderer.cpp.o.d"
  "test_renderer"
  "test_renderer.pdb"
  "test_renderer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_renderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
