file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_renderers.dir/test_parallel_renderers.cpp.o"
  "CMakeFiles/test_parallel_renderers.dir/test_parallel_renderers.cpp.o.d"
  "test_parallel_renderers"
  "test_parallel_renderers.pdb"
  "test_parallel_renderers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_renderers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
