# Empty compiler generated dependencies file for test_parallel_renderers.
# This may be replaced when dependencies are built.
