# Empty dependencies file for test_image_formats.
# This may be replaced when dependencies are built.
