file(REMOVE_RECURSE
  "CMakeFiles/test_image_formats.dir/test_image_formats.cpp.o"
  "CMakeFiles/test_image_formats.dir/test_image_formats.cpp.o.d"
  "test_image_formats"
  "test_image_formats.pdb"
  "test_image_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
