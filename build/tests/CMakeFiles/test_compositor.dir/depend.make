# Empty dependencies file for test_compositor.
# This may be replaced when dependencies are built.
