file(REMOVE_RECURSE
  "CMakeFiles/test_compositor.dir/test_compositor.cpp.o"
  "CMakeFiles/test_compositor.dir/test_compositor.cpp.o.d"
  "test_compositor"
  "test_compositor.pdb"
  "test_compositor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compositor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
