file(REMOVE_RECURSE
  "CMakeFiles/test_factorization.dir/test_factorization.cpp.o"
  "CMakeFiles/test_factorization.dir/test_factorization.cpp.o.d"
  "test_factorization"
  "test_factorization.pdb"
  "test_factorization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
