# Empty dependencies file for test_phantom.
# This may be replaced when dependencies are built.
