file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_schedule.dir/test_virtual_schedule.cpp.o"
  "CMakeFiles/test_virtual_schedule.dir/test_virtual_schedule.cpp.o.d"
  "test_virtual_schedule"
  "test_virtual_schedule.pdb"
  "test_virtual_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
