# Empty compiler generated dependencies file for test_virtual_schedule.
# This may be replaced when dependencies are built.
