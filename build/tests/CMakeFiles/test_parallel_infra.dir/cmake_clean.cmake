file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_infra.dir/test_parallel_infra.cpp.o"
  "CMakeFiles/test_parallel_infra.dir/test_parallel_infra.cpp.o.d"
  "test_parallel_infra"
  "test_parallel_infra.pdb"
  "test_parallel_infra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
