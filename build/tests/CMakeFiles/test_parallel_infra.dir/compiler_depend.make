# Empty compiler generated dependencies file for test_parallel_infra.
# This may be replaced when dependencies are built.
