# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_phantom[1]_include.cmake")
include("/root/repo/build/tests/test_rle[1]_include.cmake")
include("/root/repo/build/tests/test_factorization[1]_include.cmake")
include("/root/repo/build/tests/test_compositor[1]_include.cmake")
include("/root/repo/build/tests/test_renderer[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_infra[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_renderers[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_svmsim[1]_include.cmake")
include("/root/repo/build/tests/test_image_formats[1]_include.cmake")
include("/root/repo/build/tests/test_virtual_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_warp[1]_include.cmake")
include("/root/repo/build/tests/test_classify[1]_include.cmake")
