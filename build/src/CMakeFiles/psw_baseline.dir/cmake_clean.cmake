file(REMOVE_RECURSE
  "CMakeFiles/psw_baseline.dir/baseline/octree.cpp.o"
  "CMakeFiles/psw_baseline.dir/baseline/octree.cpp.o.d"
  "CMakeFiles/psw_baseline.dir/baseline/raycaster.cpp.o"
  "CMakeFiles/psw_baseline.dir/baseline/raycaster.cpp.o.d"
  "libpsw_baseline.a"
  "libpsw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
