# Empty compiler generated dependencies file for psw_baseline.
# This may be replaced when dependencies are built.
