file(REMOVE_RECURSE
  "libpsw_baseline.a"
)
