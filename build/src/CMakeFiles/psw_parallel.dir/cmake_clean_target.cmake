file(REMOVE_RECURSE
  "libpsw_parallel.a"
)
