
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/animation.cpp" "src/CMakeFiles/psw_parallel.dir/parallel/animation.cpp.o" "gcc" "src/CMakeFiles/psw_parallel.dir/parallel/animation.cpp.o.d"
  "/root/repo/src/parallel/executor.cpp" "src/CMakeFiles/psw_parallel.dir/parallel/executor.cpp.o" "gcc" "src/CMakeFiles/psw_parallel.dir/parallel/executor.cpp.o.d"
  "/root/repo/src/parallel/new_renderer.cpp" "src/CMakeFiles/psw_parallel.dir/parallel/new_renderer.cpp.o" "gcc" "src/CMakeFiles/psw_parallel.dir/parallel/new_renderer.cpp.o.d"
  "/root/repo/src/parallel/old_renderer.cpp" "src/CMakeFiles/psw_parallel.dir/parallel/old_renderer.cpp.o" "gcc" "src/CMakeFiles/psw_parallel.dir/parallel/old_renderer.cpp.o.d"
  "/root/repo/src/parallel/partition.cpp" "src/CMakeFiles/psw_parallel.dir/parallel/partition.cpp.o" "gcc" "src/CMakeFiles/psw_parallel.dir/parallel/partition.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/psw_parallel.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/psw_parallel.dir/parallel/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
