# Empty dependencies file for psw_parallel.
# This may be replaced when dependencies are built.
