file(REMOVE_RECURSE
  "CMakeFiles/psw_parallel.dir/parallel/animation.cpp.o"
  "CMakeFiles/psw_parallel.dir/parallel/animation.cpp.o.d"
  "CMakeFiles/psw_parallel.dir/parallel/executor.cpp.o"
  "CMakeFiles/psw_parallel.dir/parallel/executor.cpp.o.d"
  "CMakeFiles/psw_parallel.dir/parallel/new_renderer.cpp.o"
  "CMakeFiles/psw_parallel.dir/parallel/new_renderer.cpp.o.d"
  "CMakeFiles/psw_parallel.dir/parallel/old_renderer.cpp.o"
  "CMakeFiles/psw_parallel.dir/parallel/old_renderer.cpp.o.d"
  "CMakeFiles/psw_parallel.dir/parallel/partition.cpp.o"
  "CMakeFiles/psw_parallel.dir/parallel/partition.cpp.o.d"
  "CMakeFiles/psw_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/psw_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libpsw_parallel.a"
  "libpsw_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
