file(REMOVE_RECURSE
  "libpsw_phantom.a"
)
