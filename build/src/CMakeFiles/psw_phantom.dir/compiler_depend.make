# Empty compiler generated dependencies file for psw_phantom.
# This may be replaced when dependencies are built.
