file(REMOVE_RECURSE
  "CMakeFiles/psw_phantom.dir/phantom/phantom.cpp.o"
  "CMakeFiles/psw_phantom.dir/phantom/phantom.cpp.o.d"
  "CMakeFiles/psw_phantom.dir/phantom/resample.cpp.o"
  "CMakeFiles/psw_phantom.dir/phantom/resample.cpp.o.d"
  "libpsw_phantom.a"
  "libpsw_phantom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_phantom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
