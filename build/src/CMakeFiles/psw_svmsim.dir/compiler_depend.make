# Empty compiler generated dependencies file for psw_svmsim.
# This may be replaced when dependencies are built.
