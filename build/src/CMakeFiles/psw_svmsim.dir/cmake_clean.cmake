file(REMOVE_RECURSE
  "CMakeFiles/psw_svmsim.dir/svmsim/svm.cpp.o"
  "CMakeFiles/psw_svmsim.dir/svmsim/svm.cpp.o.d"
  "libpsw_svmsim.a"
  "libpsw_svmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_svmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
