file(REMOVE_RECURSE
  "libpsw_svmsim.a"
)
