file(REMOVE_RECURSE
  "libpsw_trace.a"
)
