file(REMOVE_RECURSE
  "CMakeFiles/psw_trace.dir/trace/sink.cpp.o"
  "CMakeFiles/psw_trace.dir/trace/sink.cpp.o.d"
  "libpsw_trace.a"
  "libpsw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
