# Empty dependencies file for psw_trace.
# This may be replaced when dependencies are built.
