file(REMOVE_RECURSE
  "CMakeFiles/psw_core.dir/core/classify.cpp.o"
  "CMakeFiles/psw_core.dir/core/classify.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/compositor.cpp.o"
  "CMakeFiles/psw_core.dir/core/compositor.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/factorization.cpp.o"
  "CMakeFiles/psw_core.dir/core/factorization.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/gradient.cpp.o"
  "CMakeFiles/psw_core.dir/core/gradient.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/intermediate_image.cpp.o"
  "CMakeFiles/psw_core.dir/core/intermediate_image.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/reference.cpp.o"
  "CMakeFiles/psw_core.dir/core/reference.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/renderer.cpp.o"
  "CMakeFiles/psw_core.dir/core/renderer.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/rle_volume.cpp.o"
  "CMakeFiles/psw_core.dir/core/rle_volume.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/transfer.cpp.o"
  "CMakeFiles/psw_core.dir/core/transfer.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/volume_io.cpp.o"
  "CMakeFiles/psw_core.dir/core/volume_io.cpp.o.d"
  "CMakeFiles/psw_core.dir/core/warp.cpp.o"
  "CMakeFiles/psw_core.dir/core/warp.cpp.o.d"
  "libpsw_core.a"
  "libpsw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
