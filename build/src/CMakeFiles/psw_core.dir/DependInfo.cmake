
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/CMakeFiles/psw_core.dir/core/classify.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/classify.cpp.o.d"
  "/root/repo/src/core/compositor.cpp" "src/CMakeFiles/psw_core.dir/core/compositor.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/compositor.cpp.o.d"
  "/root/repo/src/core/factorization.cpp" "src/CMakeFiles/psw_core.dir/core/factorization.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/factorization.cpp.o.d"
  "/root/repo/src/core/gradient.cpp" "src/CMakeFiles/psw_core.dir/core/gradient.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/gradient.cpp.o.d"
  "/root/repo/src/core/intermediate_image.cpp" "src/CMakeFiles/psw_core.dir/core/intermediate_image.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/intermediate_image.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/CMakeFiles/psw_core.dir/core/reference.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/reference.cpp.o.d"
  "/root/repo/src/core/renderer.cpp" "src/CMakeFiles/psw_core.dir/core/renderer.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/renderer.cpp.o.d"
  "/root/repo/src/core/rle_volume.cpp" "src/CMakeFiles/psw_core.dir/core/rle_volume.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/rle_volume.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/CMakeFiles/psw_core.dir/core/transfer.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/transfer.cpp.o.d"
  "/root/repo/src/core/volume_io.cpp" "src/CMakeFiles/psw_core.dir/core/volume_io.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/volume_io.cpp.o.d"
  "/root/repo/src/core/warp.cpp" "src/CMakeFiles/psw_core.dir/core/warp.cpp.o" "gcc" "src/CMakeFiles/psw_core.dir/core/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
