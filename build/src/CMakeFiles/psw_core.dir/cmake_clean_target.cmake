file(REMOVE_RECURSE
  "libpsw_core.a"
)
