# Empty compiler generated dependencies file for psw_core.
# This may be replaced when dependencies are built.
