file(REMOVE_RECURSE
  "CMakeFiles/psw_memsim.dir/memsim/cache.cpp.o"
  "CMakeFiles/psw_memsim.dir/memsim/cache.cpp.o.d"
  "CMakeFiles/psw_memsim.dir/memsim/experiment.cpp.o"
  "CMakeFiles/psw_memsim.dir/memsim/experiment.cpp.o.d"
  "CMakeFiles/psw_memsim.dir/memsim/machine.cpp.o"
  "CMakeFiles/psw_memsim.dir/memsim/machine.cpp.o.d"
  "CMakeFiles/psw_memsim.dir/memsim/mpsim.cpp.o"
  "CMakeFiles/psw_memsim.dir/memsim/mpsim.cpp.o.d"
  "libpsw_memsim.a"
  "libpsw_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
