# Empty compiler generated dependencies file for psw_memsim.
# This may be replaced when dependencies are built.
