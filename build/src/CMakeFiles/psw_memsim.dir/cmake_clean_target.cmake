file(REMOVE_RECURSE
  "libpsw_memsim.a"
)
