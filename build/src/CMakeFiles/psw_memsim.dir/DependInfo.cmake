
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cpp" "src/CMakeFiles/psw_memsim.dir/memsim/cache.cpp.o" "gcc" "src/CMakeFiles/psw_memsim.dir/memsim/cache.cpp.o.d"
  "/root/repo/src/memsim/experiment.cpp" "src/CMakeFiles/psw_memsim.dir/memsim/experiment.cpp.o" "gcc" "src/CMakeFiles/psw_memsim.dir/memsim/experiment.cpp.o.d"
  "/root/repo/src/memsim/machine.cpp" "src/CMakeFiles/psw_memsim.dir/memsim/machine.cpp.o" "gcc" "src/CMakeFiles/psw_memsim.dir/memsim/machine.cpp.o.d"
  "/root/repo/src/memsim/mpsim.cpp" "src/CMakeFiles/psw_memsim.dir/memsim/mpsim.cpp.o" "gcc" "src/CMakeFiles/psw_memsim.dir/memsim/mpsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psw_phantom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psw_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
