# Empty dependencies file for psw_util.
# This may be replaced when dependencies are built.
