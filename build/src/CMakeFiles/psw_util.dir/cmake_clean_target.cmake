file(REMOVE_RECURSE
  "libpsw_util.a"
)
