file(REMOVE_RECURSE
  "CMakeFiles/psw_util.dir/util/cli.cpp.o"
  "CMakeFiles/psw_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/psw_util.dir/util/image.cpp.o"
  "CMakeFiles/psw_util.dir/util/image.cpp.o.d"
  "CMakeFiles/psw_util.dir/util/mat4.cpp.o"
  "CMakeFiles/psw_util.dir/util/mat4.cpp.o.d"
  "CMakeFiles/psw_util.dir/util/table.cpp.o"
  "CMakeFiles/psw_util.dir/util/table.cpp.o.d"
  "libpsw_util.a"
  "libpsw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
