# Empty dependencies file for fig15_speedup_ct.
# This may be replaced when dependencies are built.
