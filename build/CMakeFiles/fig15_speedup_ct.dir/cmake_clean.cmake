file(REMOVE_RECURSE
  "CMakeFiles/fig15_speedup_ct.dir/bench/fig15_speedup_ct.cpp.o"
  "CMakeFiles/fig15_speedup_ct.dir/bench/fig15_speedup_ct.cpp.o.d"
  "bench/fig15_speedup_ct"
  "bench/fig15_speedup_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_speedup_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
