file(REMOVE_RECURSE
  "CMakeFiles/fig04_speedup_old_platforms.dir/bench/fig04_speedup_old_platforms.cpp.o"
  "CMakeFiles/fig04_speedup_old_platforms.dir/bench/fig04_speedup_old_platforms.cpp.o.d"
  "bench/fig04_speedup_old_platforms"
  "bench/fig04_speedup_old_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_speedup_old_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
