# Empty compiler generated dependencies file for fig04_speedup_old_platforms.
# This may be replaced when dependencies are built.
