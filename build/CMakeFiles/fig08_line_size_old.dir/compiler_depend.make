# Empty compiler generated dependencies file for fig08_line_size_old.
# This may be replaced when dependencies are built.
