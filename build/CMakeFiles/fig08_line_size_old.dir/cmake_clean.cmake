file(REMOVE_RECURSE
  "CMakeFiles/fig08_line_size_old.dir/bench/fig08_line_size_old.cpp.o"
  "CMakeFiles/fig08_line_size_old.dir/bench/fig08_line_size_old.cpp.o.d"
  "bench/fig08_line_size_old"
  "bench/fig08_line_size_old.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_line_size_old.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
