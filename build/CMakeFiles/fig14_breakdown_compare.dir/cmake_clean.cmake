file(REMOVE_RECURSE
  "CMakeFiles/fig14_breakdown_compare.dir/bench/fig14_breakdown_compare.cpp.o"
  "CMakeFiles/fig14_breakdown_compare.dir/bench/fig14_breakdown_compare.cpp.o.d"
  "bench/fig14_breakdown_compare"
  "bench/fig14_breakdown_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_breakdown_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
