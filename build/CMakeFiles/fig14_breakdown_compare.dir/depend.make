# Empty dependencies file for fig14_breakdown_compare.
# This may be replaced when dependencies are built.
