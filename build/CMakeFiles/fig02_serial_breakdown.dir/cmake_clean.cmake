file(REMOVE_RECURSE
  "CMakeFiles/fig02_serial_breakdown.dir/bench/fig02_serial_breakdown.cpp.o"
  "CMakeFiles/fig02_serial_breakdown.dir/bench/fig02_serial_breakdown.cpp.o.d"
  "bench/fig02_serial_breakdown"
  "bench/fig02_serial_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_serial_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
