# Empty dependencies file for fig21_svm_breakdown_old.
# This may be replaced when dependencies are built.
