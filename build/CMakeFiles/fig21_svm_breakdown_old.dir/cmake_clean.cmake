file(REMOVE_RECURSE
  "CMakeFiles/fig21_svm_breakdown_old.dir/bench/fig21_svm_breakdown_old.cpp.o"
  "CMakeFiles/fig21_svm_breakdown_old.dir/bench/fig21_svm_breakdown_old.cpp.o.d"
  "bench/fig21_svm_breakdown_old"
  "bench/fig21_svm_breakdown_old.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_svm_breakdown_old.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
