file(REMOVE_RECURSE
  "CMakeFiles/fig16_miss_compare.dir/bench/fig16_miss_compare.cpp.o"
  "CMakeFiles/fig16_miss_compare.dir/bench/fig16_miss_compare.cpp.o.d"
  "bench/fig16_miss_compare"
  "bench/fig16_miss_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_miss_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
