# Empty dependencies file for fig16_miss_compare.
# This may be replaced when dependencies are built.
