file(REMOVE_RECURSE
  "CMakeFiles/ablation_partitioning.dir/bench/ablation_partitioning.cpp.o"
  "CMakeFiles/ablation_partitioning.dir/bench/ablation_partitioning.cpp.o.d"
  "bench/ablation_partitioning"
  "bench/ablation_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
