file(REMOVE_RECURSE
  "CMakeFiles/fig10_profile.dir/bench/fig10_profile.cpp.o"
  "CMakeFiles/fig10_profile.dir/bench/fig10_profile.cpp.o.d"
  "bench/fig10_profile"
  "bench/fig10_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
