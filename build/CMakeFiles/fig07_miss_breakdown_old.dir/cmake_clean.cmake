file(REMOVE_RECURSE
  "CMakeFiles/fig07_miss_breakdown_old.dir/bench/fig07_miss_breakdown_old.cpp.o"
  "CMakeFiles/fig07_miss_breakdown_old.dir/bench/fig07_miss_breakdown_old.cpp.o.d"
  "bench/fig07_miss_breakdown_old"
  "bench/fig07_miss_breakdown_old.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_miss_breakdown_old.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
