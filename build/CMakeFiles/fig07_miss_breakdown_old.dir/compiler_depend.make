# Empty compiler generated dependencies file for fig07_miss_breakdown_old.
# This may be replaced when dependencies are built.
