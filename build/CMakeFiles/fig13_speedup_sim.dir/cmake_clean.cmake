file(REMOVE_RECURSE
  "CMakeFiles/fig13_speedup_sim.dir/bench/fig13_speedup_sim.cpp.o"
  "CMakeFiles/fig13_speedup_sim.dir/bench/fig13_speedup_sim.cpp.o.d"
  "bench/fig13_speedup_sim"
  "bench/fig13_speedup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_speedup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
