# Empty compiler generated dependencies file for fig19_origin.
# This may be replaced when dependencies are built.
