file(REMOVE_RECURSE
  "CMakeFiles/fig19_origin.dir/bench/fig19_origin.cpp.o"
  "CMakeFiles/fig19_origin.dir/bench/fig19_origin.cpp.o.d"
  "bench/fig19_origin"
  "bench/fig19_origin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_origin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
