# Empty compiler generated dependencies file for fig22_svm_breakdown_new.
# This may be replaced when dependencies are built.
