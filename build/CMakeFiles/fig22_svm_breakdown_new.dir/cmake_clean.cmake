file(REMOVE_RECURSE
  "CMakeFiles/fig22_svm_breakdown_new.dir/bench/fig22_svm_breakdown_new.cpp.o"
  "CMakeFiles/fig22_svm_breakdown_new.dir/bench/fig22_svm_breakdown_new.cpp.o.d"
  "bench/fig22_svm_breakdown_new"
  "bench/fig22_svm_breakdown_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_svm_breakdown_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
