file(REMOVE_RECURSE
  "CMakeFiles/fig12_speedup_dash.dir/bench/fig12_speedup_dash.cpp.o"
  "CMakeFiles/fig12_speedup_dash.dir/bench/fig12_speedup_dash.cpp.o.d"
  "bench/fig12_speedup_dash"
  "bench/fig12_speedup_dash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_speedup_dash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
