# Empty compiler generated dependencies file for fig12_speedup_dash.
# This may be replaced when dependencies are built.
