file(REMOVE_RECURSE
  "CMakeFiles/fig09_working_set_old.dir/bench/fig09_working_set_old.cpp.o"
  "CMakeFiles/fig09_working_set_old.dir/bench/fig09_working_set_old.cpp.o.d"
  "bench/fig09_working_set_old"
  "bench/fig09_working_set_old.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_working_set_old.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
