# Empty compiler generated dependencies file for fig09_working_set_old.
# This may be replaced when dependencies are built.
