# Empty dependencies file for fig18_working_set_new.
# This may be replaced when dependencies are built.
