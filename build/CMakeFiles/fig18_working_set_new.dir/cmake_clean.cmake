file(REMOVE_RECURSE
  "CMakeFiles/fig18_working_set_new.dir/bench/fig18_working_set_new.cpp.o"
  "CMakeFiles/fig18_working_set_new.dir/bench/fig18_working_set_new.cpp.o.d"
  "bench/fig18_working_set_new"
  "bench/fig18_working_set_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_working_set_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
