file(REMOVE_RECURSE
  "CMakeFiles/fig17_line_size_compare.dir/bench/fig17_line_size_compare.cpp.o"
  "CMakeFiles/fig17_line_size_compare.dir/bench/fig17_line_size_compare.cpp.o.d"
  "bench/fig17_line_size_compare"
  "bench/fig17_line_size_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_line_size_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
