# Empty dependencies file for fig17_line_size_compare.
# This may be replaced when dependencies are built.
