file(REMOVE_RECURSE
  "CMakeFiles/kernels.dir/bench/kernels.cpp.o"
  "CMakeFiles/kernels.dir/bench/kernels.cpp.o.d"
  "bench/kernels"
  "bench/kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
