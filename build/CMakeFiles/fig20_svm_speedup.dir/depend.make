# Empty dependencies file for fig20_svm_speedup.
# This may be replaced when dependencies are built.
