file(REMOVE_RECURSE
  "CMakeFiles/fig20_svm_speedup.dir/bench/fig20_svm_speedup.cpp.o"
  "CMakeFiles/fig20_svm_speedup.dir/bench/fig20_svm_speedup.cpp.o.d"
  "bench/fig20_svm_speedup"
  "bench/fig20_svm_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_svm_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
