file(REMOVE_RECURSE
  "CMakeFiles/fig06_speedup_old_datasets.dir/bench/fig06_speedup_old_datasets.cpp.o"
  "CMakeFiles/fig06_speedup_old_datasets.dir/bench/fig06_speedup_old_datasets.cpp.o.d"
  "bench/fig06_speedup_old_datasets"
  "bench/fig06_speedup_old_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_speedup_old_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
