# Empty dependencies file for fig06_speedup_old_datasets.
# This may be replaced when dependencies are built.
