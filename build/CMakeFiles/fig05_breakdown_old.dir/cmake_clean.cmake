file(REMOVE_RECURSE
  "CMakeFiles/fig05_breakdown_old.dir/bench/fig05_breakdown_old.cpp.o"
  "CMakeFiles/fig05_breakdown_old.dir/bench/fig05_breakdown_old.cpp.o.d"
  "bench/fig05_breakdown_old"
  "bench/fig05_breakdown_old.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_breakdown_old.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
