# Empty compiler generated dependencies file for fig05_breakdown_old.
# This may be replaced when dependencies are built.
