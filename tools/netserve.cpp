// Network render server: one RenderService behind a poll-driven NetServer.
// Runs until SIGINT/SIGTERM, then shuts down in order — stop accepting and
// close connections, drain the render queue, flush the combined
// service+net metrics document — so a Ctrl-C never loses the report.
//
//   ./tools/netserve --port=7420 [--bind=127.0.0.1] [--threads=4]
//                    [--queue-capacity=64] [--batch=4] [--cache-mb=256]
//                    [--cache-kb=0] [--max-connections=64] [--window=4]
//                    [--pending=4] [--idle-timeout-ms=30000]
//                    [--pool-buffers=8] [--pool-mb=64] [--pool-poison=0]
//                    [--frame-pool=32] [--drain-timeout-ms=0]
//                    [--json=netserve_metrics.json]
//                    [--trace-sample=0] [--trace-slow-ms=0]
//                    [--trace-dump=FILE] [--trace-node=netserve]
//
// Tracing: --trace-sample=N head-samples every Nth request at this server
// (client-sampled requests are always traced); --trace-slow-ms=T retains
// whole traces of requests slower than T ms in the flight recorder;
// --trace-dump writes the span-dump JSON (the kMetricsSelectorTrace
// document) at shutdown. Sampling off keeps the render and delivery hot
// paths allocation-free.
//
// --drain-timeout-ms bounds the SIGTERM drain: 0 waits indefinitely (the
// historical behavior); a positive value gives queued work that long to
// finish, then stops anyway and exits with code 3 so supervisors can tell
// a timed-out drain from a clean one. --cache-kb (when nonzero) overrides
// --cache-mb with a finer-grained volume-cache budget.
//
// --pool-buffers / --pool-mb bound the wire-payload buffer pool (buffers
// retained per size class and the total retained-byte budget);
// --pool-poison=1 fills released buffers with 0xDD to catch use-after-
// release; --frame-pool bounds the service's rendered-frame pool.
#include <cstdio>
#include <string>

#include "net/server.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "shutdown.hpp"
#include "util/cli.hpp"

using namespace psw;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"port", "bind", "threads", "queue-capacity", "batch",
                       "cache-mb", "cache-kb", "max-connections", "window",
                       "pending", "idle-timeout-ms", "prepare-threads",
                       "pool-buffers", "pool-mb", "pool-poison", "frame-pool",
                       "drain-timeout-ms", "json", "trace-sample",
                       "trace-slow-ms", "trace-dump", "trace-node"});

  serve::ServiceOptions sopt;
  sopt.worker_threads = flags.get_int("threads", 4);
  sopt.prepare_threads = flags.get_int("prepare-threads", 0);
  sopt.queue_capacity = flags.get_int("queue-capacity", 64);
  sopt.batch_max = flags.get_int("batch", 4);
  sopt.cache_bytes = static_cast<uint64_t>(flags.get_int("cache-mb", 256)) << 20;
  if (flags.get_int("cache-kb", 0) > 0) {
    sopt.cache_bytes = static_cast<uint64_t>(flags.get_int("cache-kb", 0)) << 10;
  }
  sopt.frame_pool_frames = flags.get_int("frame-pool", 32);

  net::NetServerOptions nopt;
  nopt.pool_buffers_per_class =
      static_cast<size_t>(flags.get_int("pool-buffers", 8));
  nopt.pool_retained_bytes =
      static_cast<size_t>(flags.get_int("pool-mb", 64)) << 20;
  nopt.pool_poison = flags.get_int("pool-poison", 0) != 0;
  nopt.bind_address = flags.get("bind", "127.0.0.1");
  nopt.port = static_cast<uint16_t>(flags.get_int("port", 7420));
  nopt.max_connections = flags.get_int("max-connections", 64);
  nopt.stream_window = flags.get_int("window", 4);
  nopt.max_pending_frames = static_cast<size_t>(flags.get_int("pending", 4));
  nopt.idle_timeout_ms = flags.get_double("idle-timeout-ms", 30'000.0);
  const int drain_timeout_ms = flags.get_int("drain-timeout-ms", 0);
  const std::string json_path = flags.get("json", "netserve_metrics.json");
  const std::string trace_dump_path = flags.get("trace-dump", "");

  obs::SpanRecorder::Options ropt;
  ropt.slow_ms = flags.get_double("trace-slow-ms", 0.0);
  obs::SpanRecorder recorder(ropt);
  sopt.recorder = &recorder;
  nopt.recorder = &recorder;
  nopt.trace_sample =
      static_cast<uint32_t>(flags.get_int("trace-sample", 0));
  nopt.trace_node = flags.get("trace-node", "netserve");

  tools::install_shutdown_handler();

  serve::RenderService service(sopt);
  net::NetServer server(service, nopt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "netserve: cannot start: %s\n", error.c_str());
    return 1;
  }
  std::printf("netserve: listening on %s:%u (%d render threads, queue %d)\n",
              nopt.bind_address.c_str(), server.port(), sopt.worker_threads,
              sopt.queue_capacity);
  std::printf("netserve: Ctrl-C to drain and exit\n");
  std::fflush(stdout);

  tools::wait_for_shutdown();
  std::printf("netserve: shutdown requested, draining\n");

  // Order matters: close the front end first (no new work, completion
  // callbacks land in a closed queue), then let queued renders finish so
  // the latency histograms are complete, then capture the document.
  server.stop();
  bool drained = true;
  if (drain_timeout_ms > 0) {
    drained = service.drain_for(drain_timeout_ms);
    if (!drained) {
      std::printf("netserve: drain timed out after %d ms, stopping anyway\n",
                  drain_timeout_ms);
      service.stop();  // sheds what's left with typed kShutdown
    }
  } else {
    service.drain();
  }
  const std::string doc = server.metrics_json();

  const net::NetMetrics& m = server.metrics();
  std::printf("netserve: %llu conns, %llu frames sent, %llu dropped, "
              "%llu protocol errors, wire/raw %.2f\n",
              static_cast<unsigned long long>(m.connections_accepted.load()),
              static_cast<unsigned long long>(m.frames_sent.load()),
              static_cast<unsigned long long>(m.frames_dropped.load()),
              static_cast<unsigned long long>(m.protocol_errors.load()),
              m.wire_ratio());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "netserve: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("netserve: wrote %s\n", json_path.c_str());
  }
  if (!trace_dump_path.empty()) {
    const std::string dump = server.trace_dump_json();
    std::FILE* f = std::fopen(trace_dump_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "netserve: cannot write %s\n",
                   trace_dump_path.c_str());
      return 1;
    }
    std::fwrite(dump.data(), 1, dump.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("netserve: wrote %s (%llu spans recorded)\n",
                trace_dump_path.c_str(),
                static_cast<unsigned long long>(recorder.recorded()));
  }
  // Distinct exit code for a timed-out drain: the metrics document is
  // still flushed above, but a supervisor can tell the difference.
  return drained ? 0 : 3;
}
