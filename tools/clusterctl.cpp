// Cluster supervisor: spawns N local netserve shard processes, fronts them
// with an in-process cluster::Router speaking the PSWN wire protocol, and
// supervises both until SIGINT/SIGTERM. A shard that exits unexpectedly is
// restarted with backoff (the router's health probes eject it meanwhile and
// rejoin it once the replacement answers); shutdown SIGTERMs every shard,
// escalating to SIGKILL when a drain outlives --drain-timeout-ms plus a
// grace period, and flushes the aggregated cluster metrics document last so
// a Ctrl-C never loses the report.
//
//   ./tools/clusterctl [--shards=2] [--port=7421] [--bind=127.0.0.1]
//                      [--shard-port-base=7510] [--netserve=<path>]
//                      [--threads=2] [--cache-mb=128] [--batch=4]
//                      [--vnodes=64] [--replicate=1]
//                      [--probe-interval-ms=250] [--restart=1]
//                      [--drain-timeout-ms=5000]
//                      [--json=clusterctl_metrics.json]
//                      [--trace-sample=0] [--trace-slow-ms=0] [--trace-dir=]
//
// --netserve defaults to a `netserve` binary next to this one, so running
// from the build tree needs no flags.
//
// Tracing: --trace-sample / --trace-slow-ms are forwarded to every shard
// (head-sampling happens at the shard; client-sampled requests are always
// traced). --trace-dir=DIR collects the span dumps at shutdown — the
// in-process router's own dump plus a kMetricsSelectorTrace fetch from
// each live shard — as DIR/router_trace.json and DIR/<shard>_trace.json,
// ready for tools/traceview.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "net/client.hpp"
#include "obs/trace.hpp"
#include "shutdown.hpp"
#include "util/cli.hpp"

using namespace psw;

namespace {

using SteadyClock = std::chrono::steady_clock;

struct ShardProc {
  std::string id;
  uint16_t port = 0;
  pid_t pid = -1;
  int restarts = 0;
  double backoff_ms = 500.0;
  SteadyClock::time_point next_restart{};  // epoch = restart immediately
  int last_exit = 0;
};

pid_t spawn(const std::string& exe, const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(exe.c_str(), argv.data());
    std::fprintf(stderr, "clusterctl: exec %s: %s\n", exe.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

pid_t spawn_shard(const std::string& exe, const ShardProc& shard,
                  const std::string& bind, int threads, int cache_mb, int batch,
                  int drain_timeout_ms, int trace_sample, double trace_slow_ms) {
  return spawn(exe, {"--port=" + std::to_string(shard.port),
                     "--bind=" + bind,
                     "--threads=" + std::to_string(threads),
                     "--cache-mb=" + std::to_string(cache_mb),
                     "--batch=" + std::to_string(batch),
                     "--drain-timeout-ms=" + std::to_string(drain_timeout_ms),
                     "--trace-sample=" + std::to_string(trace_sample),
                     "--trace-slow-ms=" + std::to_string(trace_slow_ms),
                     "--trace-node=" + shard.id,
                     "--json="});  // shards skip their own report; the
                                   // router aggregates live metrics instead
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

// Pulls the kMetricsSelectorTrace document straight from a shard (the
// router is bypassed on purpose: each process dumps its own spans).
bool fetch_shard_trace(const std::string& bind, uint16_t port, std::string* out) {
  net::NetClientOptions copt;
  copt.recv_timeout_ms = 5'000.0;
  copt.connect_retries = 0;
  net::NetClient client(copt);
  std::string error;
  if (!client.connect(bind, port, &error)) return false;
  const bool ok =
      client.fetch_metrics(out, &error, net::kMetricsSelectorTrace);
  client.send_bye(nullptr);
  return ok;
}

// One WNOHANG sweep; true if `shard` was reaped.
bool reap(ShardProc* shard) {
  if (shard->pid < 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(shard->pid, &status, WNOHANG);
  if (r != shard->pid) return false;
  shard->pid = -1;
  shard->last_exit = WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  return true;
}

std::string dirname_of(const char* argv0) {
  const std::string s(argv0);
  const size_t slash = s.rfind('/');
  return slash == std::string::npos ? std::string(".") : s.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"shards", "port", "bind", "shard-port-base", "netserve",
                       "threads", "cache-mb", "batch", "vnodes", "replicate",
                       "probe-interval-ms", "restart", "drain-timeout-ms",
                       "json", "trace-sample", "trace-slow-ms", "trace-dir"});
  const int nshards = flags.get_int("shards", 2);
  const std::string bind = flags.get("bind", "127.0.0.1");
  const uint16_t router_port = static_cast<uint16_t>(flags.get_int("port", 7421));
  const int port_base = flags.get_int("shard-port-base", 7510);
  const std::string netserve =
      flags.get("netserve", dirname_of(argv[0]) + "/netserve");
  const int threads = flags.get_int("threads", 2);
  const int cache_mb = flags.get_int("cache-mb", 128);
  const int batch = flags.get_int("batch", 4);
  const bool restart = flags.get_bool("restart", true);
  const int drain_timeout_ms = flags.get_int("drain-timeout-ms", 5'000);
  const std::string json_path = flags.get("json", "clusterctl_metrics.json");
  const int trace_sample = flags.get_int("trace-sample", 0);
  const double trace_slow_ms = flags.get_double("trace-slow-ms", 0.0);
  const std::string trace_dir = flags.get("trace-dir", "");
  if (nshards < 1 || nshards > 64) {
    std::fprintf(stderr, "clusterctl: --shards must be in [1, 64]\n");
    return 2;
  }

  tools::install_shutdown_handler();

  std::vector<ShardProc> procs(static_cast<size_t>(nshards));
  std::vector<cluster::ShardSpec> specs;
  for (int i = 0; i < nshards; ++i) {
    ShardProc& p = procs[static_cast<size_t>(i)];
    p.id = "shard-" + std::to_string(i);
    p.port = static_cast<uint16_t>(port_base + i);
    p.pid = spawn_shard(netserve, p, bind, threads, cache_mb, batch,
                        drain_timeout_ms, trace_sample, trace_slow_ms);
    if (p.pid < 0) {
      std::fprintf(stderr, "clusterctl: fork: %s\n", std::strerror(errno));
      return 1;
    }
    specs.push_back({p.id, bind, p.port, 1});
  }

  obs::SpanRecorder::Options recopt;
  recopt.slow_ms = trace_slow_ms;
  obs::SpanRecorder recorder(recopt);

  cluster::RouterOptions ropt;
  ropt.bind_address = bind;
  ropt.port = router_port;
  ropt.vnodes = flags.get_int("vnodes", 64);
  ropt.replicate = flags.get_int("replicate", 1);
  ropt.probe_interval_ms = flags.get_double("probe-interval-ms", 250.0);
  ropt.recorder = &recorder;
  ropt.trace_node = "router";
  cluster::Router router(specs, ropt);
  std::string error;
  if (!router.start(&error)) {
    std::fprintf(stderr, "clusterctl: cannot start router: %s\n", error.c_str());
    for (ShardProc& p : procs) {
      if (p.pid > 0) ::kill(p.pid, SIGTERM);
    }
    return 1;
  }

  std::printf("clusterctl: router on %s:%u -> %d shard(s):\n", bind.c_str(),
              router.port(), nshards);
  for (const ShardProc& p : procs) {
    std::printf("clusterctl:   %s %s:%u (pid %d)\n", p.id.c_str(), bind.c_str(),
                p.port, static_cast<int>(p.pid));
  }
  if (router.wait_healthy(static_cast<size_t>(nshards), 10'000.0)) {
    std::printf("clusterctl: all %d shard(s) healthy\n", nshards);
  } else {
    std::printf("clusterctl: warning: not all shards healthy after 10 s "
                "(probes keep retrying)\n");
  }
  std::printf("clusterctl: Ctrl-C to drain and exit\n");
  std::fflush(stdout);

  // Supervision loop: reap exited shards and (optionally) restart them with
  // doubling backoff. The router's probes handle the routing side — eject
  // on loss, rejoin when the replacement answers — so all this loop owes
  // the cluster is a fresh process.
  while (!tools::shutdown_requested()) {
    const SteadyClock::time_point now = SteadyClock::now();
    for (ShardProc& p : procs) {
      if (p.pid > 0 && reap(&p)) {
        std::printf("clusterctl: %s (port %u) exited with status %d\n",
                    p.id.c_str(), p.port, p.last_exit);
        p.next_restart = now + std::chrono::milliseconds(
                                   static_cast<int64_t>(p.backoff_ms));
        p.backoff_ms = std::min(p.backoff_ms * 2.0, 5'000.0);
        std::fflush(stdout);
      }
      if (p.pid < 0 && restart && now >= p.next_restart) {
        p.pid = spawn_shard(netserve, p, bind, threads, cache_mb, batch,
                            drain_timeout_ms, trace_sample, trace_slow_ms);
        ++p.restarts;
        std::printf("clusterctl: restarted %s (pid %d, restart #%d)\n",
                    p.id.c_str(), static_cast<int>(p.pid), p.restarts);
        std::fflush(stdout);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::printf("clusterctl: shutdown requested\n");
  // Capture the aggregate document while every face is still live, then
  // tear down front-to-back: router first (no new work reaches a shard),
  // then SIGTERM the shards and give each drain-timeout + 2 s of grace
  // before escalating to SIGKILL.
  const std::string doc = router.metrics_json();
  // Span dumps must be pulled while the shards still answer; the router's
  // own dump comes from the in-process recorder.
  if (!trace_dir.empty()) {
    ::mkdir(trace_dir.c_str(), 0755);  // fine if it already exists
    if (write_text_file(trace_dir + "/router_trace.json",
                        router.trace_dump_json())) {
      std::printf("clusterctl: wrote %s/router_trace.json\n", trace_dir.c_str());
    } else {
      std::fprintf(stderr, "clusterctl: cannot write %s/router_trace.json\n",
                   trace_dir.c_str());
    }
    for (const ShardProc& p : procs) {
      std::string dump;
      if (p.pid > 0 && fetch_shard_trace(bind, p.port, &dump) &&
          write_text_file(trace_dir + "/" + p.id + "_trace.json", dump)) {
        std::printf("clusterctl: wrote %s/%s_trace.json\n", trace_dir.c_str(),
                    p.id.c_str());
      } else {
        std::fprintf(stderr, "clusterctl: no trace dump from %s\n", p.id.c_str());
      }
    }
  }
  router.stop();
  for (ShardProc& p : procs) {
    if (p.pid > 0) ::kill(p.pid, SIGTERM);
  }
  const SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::milliseconds(drain_timeout_ms + 2'000);
  bool any_alive = true;
  while (any_alive && SteadyClock::now() < deadline) {
    any_alive = false;
    for (ShardProc& p : procs) {
      if (p.pid > 0 && !reap(&p)) any_alive = true;
    }
    if (any_alive) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (ShardProc& p : procs) {
    if (p.pid > 0) {
      std::fprintf(stderr, "clusterctl: %s ignored SIGTERM, killing\n",
                   p.id.c_str());
      ::kill(p.pid, SIGKILL);
      ::waitpid(p.pid, nullptr, 0);
      p.pid = -1;
      p.last_exit = 137;
    }
    if (p.last_exit == 3) {
      std::printf("clusterctl: note: %s drain timed out (exit 3)\n", p.id.c_str());
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "clusterctl: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("clusterctl: wrote %s\n", json_path.c_str());
  }
  return 0;
}
