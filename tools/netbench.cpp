// Loopback benchmark for the network frame-delivery path: an in-process
// NetServer over a RenderService on an ephemeral 127.0.0.1 port, with one
// NetClient per session driving it through real sockets. Reports latency
// quantiles (client round-trip in request mode, service end-to-end in
// stream mode), bytes-on-the-wire vs raw RGBA, and drop counts, as text
// and as BENCH_net.json. Exits non-zero on any protocol error or failed
// frame, so CI can use it as a smoke gate.
//
//   ./tools/netbench [--mode=stream|request] [--sessions=4] [--frames=30]
//                    [--size=48] [--threads=4] [--kind=mri] [--step=2.0]
//                    [--window=4] [--pending=4] [--json=BENCH_net.json]
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "alloc_probe.hpp"
#include "core/factorization.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace psw;

namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

struct SessionResult {
  LatencyHistogram latency;
  uint64_t frames = 0;
  uint64_t dropped = 0;
  uint64_t failures = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::string error;
};

net::RenderRequestMsg one_shot(uint64_t session, int frame, const std::string& kind,
                               int size, double step_deg) {
  net::RenderRequestMsg req;
  req.request_id = static_cast<uint64_t>(frame) + 1;
  req.session_id = session;
  req.volume.kind = kind;
  req.volume.tf_preset = kind == "ct" ? 1 : 0;
  req.volume.nx = req.volume.ny = req.volume.nz = size;
  req.camera = Camera::orbit({size, size, size},
                             0.13 * static_cast<double>(session) +
                                 frame * step_deg * kDeg,
                             0.35);
  return req;
}

void run_request_session(uint16_t port, uint64_t session, int frames,
                         const std::string& kind, int size, double step,
                         SessionResult* out) {
  net::NetClient client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    out->failures += static_cast<uint64_t>(frames);
    out->error = error;
    return;
  }
  for (int f = 0; f < frames; ++f) {
    ImageU8 image;
    net::FrameMsg meta;
    WallTimer rtt;
    if (!client.render(one_shot(session, f, kind, size, step), &image, &meta,
                       &error)) {
      ++out->failures;
      out->error = error;
      continue;
    }
    out->latency.record_ms(rtt.millis());
    ++out->frames;
  }
  out->bytes_sent = client.bytes_sent();
  out->bytes_received = client.bytes_received();
  client.send_bye(nullptr);
}

void run_stream_session(uint16_t port, uint64_t session, int frames,
                        const std::string& kind, int size, double step,
                        SessionResult* out) {
  net::NetClient client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    out->failures += static_cast<uint64_t>(frames);
    out->error = error;
    return;
  }
  net::StreamRequestMsg req;
  req.stream_id = session;
  req.session_id = session;
  req.volume.kind = kind;
  req.volume.tf_preset = kind == "ct" ? 1 : 0;
  req.volume.nx = req.volume.ny = req.volume.nz = size;
  req.start_yaw = 0.13 * static_cast<double>(session);
  req.step_deg = step;
  req.frames = static_cast<uint32_t>(frames);
  if (!client.open_stream(req, &error)) {
    out->failures += static_cast<uint64_t>(frames);
    out->error = error;
    return;
  }
  for (;;) {
    net::NetClient::Event event;
    if (!client.next_event(&event, &error)) {
      ++out->failures;
      out->error = error;
      break;
    }
    if (event.kind == net::NetClient::Event::Kind::kError) {
      ++out->failures;
      out->error = event.error.message;
      break;
    }
    if (event.kind == net::NetClient::Event::Kind::kStreamEnd) {
      out->dropped = event.end.frames_dropped;
      break;
    }
    // Client-side RTT is meaningless for server-paced frames; use the
    // service's end-to-end latency carried in the frame header.
    out->latency.record_ms(event.frame.total_ms);
    ++out->frames;
  }
  out->bytes_sent = client.bytes_sent();
  out->bytes_received = client.bytes_received();
  client.send_bye(nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"mode", "sessions", "frames", "size", "threads", "kind",
                       "step", "window", "pending", "prepare-threads", "json"});
  const std::string mode = flags.get("mode", "stream");
  const int sessions = flags.get_int("sessions", 4);
  const int frames = flags.get_int("frames", 30);
  const int size = flags.get_int("size", 48);
  const std::string kind = flags.get("kind", "mri");
  const double step = flags.get_double("step", 2.0);
  const std::string json_path = flags.get("json", "BENCH_net.json");

  if (mode != "stream" && mode != "request") {
    std::fprintf(stderr, "--mode must be stream or request (got '%s')\n",
                 mode.c_str());
    return 2;
  }

  serve::ServiceOptions sopt;
  sopt.worker_threads = flags.get_int("threads", 4);
  sopt.prepare_threads = flags.get_int("prepare-threads", 0);
  net::NetServerOptions nopt;
  nopt.port = 0;  // ephemeral: the bench never collides with a real server
  nopt.stream_window = flags.get_int("window", 4);
  nopt.max_pending_frames = static_cast<size_t>(flags.get_int("pending", 4));

  serve::RenderService service(sopt);
  net::NetServer server(service, nopt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "netbench: cannot start server: %s\n", error.c_str());
    return 1;
  }

  std::printf("netbench: %d %s sessions x %d frames, %d-voxel %s volume, "
              "%d render threads, loopback port %u\n",
              sessions, mode.c_str(), frames, size, kind.c_str(),
              sopt.worker_threads, server.port());

  std::vector<SessionResult> results(static_cast<size_t>(sessions));
  WallTimer wall;
  {
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      SessionResult* out = &results[static_cast<size_t>(s)];
      const uint64_t session = static_cast<uint64_t>(s) + 1;
      drivers.emplace_back([=, &server] {
        if (mode == "request") {
          run_request_session(server.port(), session, frames, kind, size, step, out);
        } else {
          run_stream_session(server.port(), session, frames, kind, size, step, out);
        }
      });
    }
    for (auto& d : drivers) d.join();
  }
  const double wall_ms = wall.millis();

  LatencyHistogram latency;
  uint64_t frames_ok = 0, dropped = 0, failures = 0;
  uint64_t bytes_sent = 0, bytes_received = 0;
  for (const SessionResult& r : results) {
    latency.merge(r.latency);
    frames_ok += r.frames;
    dropped += r.dropped;
    failures += r.failures;
    bytes_sent += r.bytes_sent;
    bytes_received += r.bytes_received;
    if (!r.error.empty()) {
      std::fprintf(stderr, "netbench: session error: %s\n", r.error.c_str());
    }
  }

  // Steady-state allocation probe: one more session against the now-warm
  // cache and pools, counting process-wide heap allocations per delivered
  // frame (render scratch + encode + wire + client-side decode). The
  // delivery-path-only figure, gated at <= 2, comes from bench/memserve.
  double allocs_per_frame = 0.0;
  if (failures == 0) {
    constexpr int kProbeFrames = 16;
    SessionResult probe;
    const tools::AllocSnapshot before = tools::alloc_snapshot();
    if (mode == "request") {
      run_request_session(server.port(), 1, kProbeFrames, kind, size, step, &probe);
    } else {
      run_stream_session(server.port(), 1, kProbeFrames, kind, size, step, &probe);
    }
    const tools::AllocSnapshot d = tools::alloc_delta(before);
    if (probe.frames > 0) {
      allocs_per_frame = static_cast<double>(d.allocations) /
                         static_cast<double>(probe.frames);
    }
  }

  server.stop();
  service.drain();
  const net::NetMetrics& m = server.metrics();
  const uint64_t protocol_errors = m.protocol_errors.load();
  const double fps = wall_ms > 0 ? 1e3 * static_cast<double>(frames_ok) / wall_ms : 0.0;

  std::printf("\n%llu frames delivered in %.0f ms -> %.1f frames/sec aggregate "
              "(%llu dropped, %llu failed)\n",
              static_cast<unsigned long long>(frames_ok), wall_ms, fps,
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(failures));
  std::printf("latency (%s): p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, max %.1f ms\n",
              mode == "request" ? "client round-trip" : "service end-to-end",
              latency.quantile_ms(0.50), latency.quantile_ms(0.95),
              latency.quantile_ms(0.99), latency.max_ms());
  std::printf("codec: %llu raw RGBA bytes -> %llu on the wire (ratio %.3f)\n",
              static_cast<unsigned long long>(m.frame_raw_bytes.load()),
              static_cast<unsigned long long>(m.frame_wire_bytes.load()),
              m.wire_ratio());
  std::printf("socket traffic: %llu B client->server, %llu B server->client, "
              "%llu protocol errors\n",
              static_cast<unsigned long long>(bytes_sent),
              static_cast<unsigned long long>(bytes_received),
              static_cast<unsigned long long>(protocol_errors));
  std::printf("memory: %.1f allocs/frame steady-state (both endpoints), "
              "%.1f B copied/frame server-side\n",
              allocs_per_frame, m.bytes_copied_per_frame());

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("config").begin_object()
        .field("mode", mode)
        .field("sessions", sessions)
        .field("frames_per_session", frames)
        .field("volume_size", size)
        .field("kind", kind)
        .field("step_deg", step)
        .field("threads", sopt.worker_threads)
        .field("stream_window", nopt.stream_window)
        .field("max_pending_frames", static_cast<uint64_t>(nopt.max_pending_frames))
        .end_object();
    w.key("results").begin_object()
        .field("wall_ms", wall_ms)
        .field("frames_delivered", frames_ok)
        .field("frames_per_second", fps)
        .field("frames_dropped", dropped)
        .field("failures", failures)
        .field("protocol_errors", protocol_errors)
        .field("client_bytes_sent", bytes_sent)
        .field("client_bytes_received", bytes_received)
        .field("frame_raw_bytes", m.frame_raw_bytes.load())
        .field("frame_wire_bytes", m.frame_wire_bytes.load())
        .field("wire_ratio", m.wire_ratio())
        .field("allocs_per_frame", allocs_per_frame)
        .field("bytes_copied_per_frame", m.bytes_copied_per_frame());
    w.key("latency");
    latency.write_json(w);
    w.end_object();
    w.key("net");
    m.write_json(w);
    w.end_object();
    std::string body = w.str();
    body += '\n';
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "netbench: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  return (failures != 0 || protocol_errors != 0) ? 1 : 0;
}
