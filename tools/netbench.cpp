// Loopback benchmark for the network frame-delivery path: an in-process
// NetServer over a RenderService on an ephemeral 127.0.0.1 port, with one
// NetClient per session driving it through real sockets. Reports latency
// quantiles (client round-trip in request mode, service end-to-end in
// stream mode), bytes-on-the-wire vs raw RGBA, and drop counts, as text
// and as BENCH_net.json. Exits non-zero on any protocol error or failed
// frame, so CI can use it as a smoke gate.
//
//   ./tools/netbench [--mode=stream|request] [--sessions=4] [--frames=30]
//                    [--size=48] [--threads=4] [--kind=mri] [--step=2.0]
//                    [--window=4] [--pending=4] [--json=BENCH_net.json]
//
// Cluster mode (--cluster) benchmarks the sharded path instead: it boots N
// in-process netserve shards behind a cluster::Router on loopback and
// drives a fixed working set of 8 volumes (one session each) through the
// router, sweeping the shard counts in --shards:
//
//   ./tools/netbench --cluster [--shards=1,2,4] [--frames=24] [--image=64]
//                    [--json=BENCH_cluster.json] [--trace-out=DIR]
//
// --trace-out=DIR (cluster mode) sends one sampled request through the
// router after the largest sweep configuration and writes DIR/
// router_trace.json, DIR/shard-N_trace.json and DIR/router_prom.txt —
// the inputs tools/traceview reassembles into a cross-process trace tree
// (CI's trace smoke stage drives exactly this path).
//
// The working set is constructed so that aggregate VolumeCache capacity is
// the scaling resource (the point of consistent-hash placement): per-shard
// budgets are sized so one shard thrashes on the full set, two shards keep
// exactly the warm half hot, and four shards hold everything. Volume seeds
// are searched against the same HashRing the router builds, so placement
// is deterministic and verified, not assumed.
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_probe.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/router.hpp"
#include "core/factorization.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "serve/volume_cache.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace psw;

namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

struct SessionResult {
  LatencyHistogram latency;
  uint64_t frames = 0;
  uint64_t dropped = 0;
  uint64_t failures = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::string error;
};

net::RenderRequestMsg one_shot(uint64_t session, int frame, const std::string& kind,
                               int size, double step_deg) {
  net::RenderRequestMsg req;
  req.request_id = static_cast<uint64_t>(frame) + 1;
  req.session_id = session;
  req.volume.kind = kind;
  req.volume.tf_preset = kind == "ct" ? 1 : 0;
  req.volume.nx = req.volume.ny = req.volume.nz = size;
  req.camera = Camera::orbit({size, size, size},
                             0.13 * static_cast<double>(session) +
                                 frame * step_deg * kDeg,
                             0.35);
  return req;
}

void run_request_session(uint16_t port, uint64_t session, int frames,
                         const std::string& kind, int size, double step,
                         SessionResult* out) {
  net::NetClient client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    out->failures += static_cast<uint64_t>(frames);
    out->error = error;
    return;
  }
  for (int f = 0; f < frames; ++f) {
    ImageU8 image;
    net::FrameMsg meta;
    WallTimer rtt;
    if (!client.render(one_shot(session, f, kind, size, step), &image, &meta,
                       &error)) {
      ++out->failures;
      out->error = error;
      continue;
    }
    out->latency.record_ms(rtt.millis());
    ++out->frames;
  }
  out->bytes_sent = client.bytes_sent();
  out->bytes_received = client.bytes_received();
  client.send_bye(nullptr);
}

void run_stream_session(uint16_t port, uint64_t session, int frames,
                        const std::string& kind, int size, double step,
                        SessionResult* out) {
  net::NetClient client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    out->failures += static_cast<uint64_t>(frames);
    out->error = error;
    return;
  }
  net::StreamRequestMsg req;
  req.stream_id = session;
  req.session_id = session;
  req.volume.kind = kind;
  req.volume.tf_preset = kind == "ct" ? 1 : 0;
  req.volume.nx = req.volume.ny = req.volume.nz = size;
  req.start_yaw = 0.13 * static_cast<double>(session);
  req.step_deg = step;
  req.frames = static_cast<uint32_t>(frames);
  if (!client.open_stream(req, &error)) {
    out->failures += static_cast<uint64_t>(frames);
    out->error = error;
    return;
  }
  for (;;) {
    net::NetClient::Event event;
    if (!client.next_event(&event, &error)) {
      ++out->failures;
      out->error = error;
      break;
    }
    if (event.kind == net::NetClient::Event::Kind::kError) {
      ++out->failures;
      out->error = event.error.message;
      break;
    }
    if (event.kind == net::NetClient::Event::Kind::kStreamEnd) {
      out->dropped = event.end.frames_dropped;
      break;
    }
    // Client-side RTT is meaningless for server-paced frames; use the
    // service's end-to-end latency carried in the frame header.
    out->latency.record_ms(event.frame.total_ms);
    ++out->frames;
  }
  out->bytes_sent = client.bytes_sent();
  out->bytes_received = client.bytes_received();
  client.send_bye(nullptr);
}

// ---------------------------------------------------------------------------
// Cluster mode.
// ---------------------------------------------------------------------------

// One volume of the cluster working set, with its placement targets on the
// 2-shard and 4-shard rings and its measured encoded size.
struct ClusterVolume {
  serve::VolumeKey key;
  bool warm = false;   // belongs to the half that stays cached at 2 shards
  size_t owner2 = 0;   // required ring owner at 2 shards
  size_t owner4 = 0;   // required ring owner at 4 shards
  uint64_t bytes = 0;
  double build_ms = 0.0;
};

// Searches seeds until the volume's canonical key lands on its target shard
// in BOTH the 2-shard and 4-shard rings. Consistent hashing makes the pair
// feasible (a key owned by shard 0 of 2 is owned by shard 0, 2 or 3 of 4),
// so a few dozen tries suffice; the cap only guards against a logic bug.
bool place_volume(const cluster::HashRing& ring2, const cluster::HashRing& ring4,
                  ClusterVolume* v, uint64_t* next_seed) {
  for (uint64_t seed = *next_seed; seed < *next_seed + 1'000'000; ++seed) {
    v->key.seed = seed;
    const uint64_t h = cluster::HashRing::hash_key(v->key.canonical());
    if (ring2.owner(h) == v->owner2 && ring4.owner(h) == v->owner4) {
      *next_seed = seed + 1;
      return true;
    }
  }
  return false;
}

void run_cluster_session(uint16_t port, uint64_t session, int frames,
                         const serve::VolumeKey& key, int image,
                         SessionResult* out) {
  net::NetClient client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    out->failures += static_cast<uint64_t>(frames);
    out->error = error;
    return;
  }
  for (int f = 0; f < frames; ++f) {
    net::RenderRequestMsg req;
    req.request_id = static_cast<uint64_t>(f) + 1;
    req.session_id = session;
    req.volume = key;
    req.camera = Camera::orbit({key.nx, key.ny, key.nz},
                               0.13 * static_cast<double>(session) + f * 2.0 * kDeg,
                               0.35);
    req.camera.image_width = req.camera.image_height = image;
    ImageU8 frame_image;
    net::FrameMsg meta;
    WallTimer rtt;
    if (!client.render(req, &frame_image, &meta, &error)) {
      ++out->failures;
      out->error = error;
      continue;
    }
    out->latency.record_ms(rtt.millis());
    ++out->frames;
  }
  client.send_bye(nullptr);
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

struct ClusterShardReport {
  uint64_t routed_requests = 0;
  uint64_t forwarded_frames = 0;
  serve::CacheStats cache;
};

struct ClusterConfigResult {
  int shards = 0;
  double wall_ms = 0.0;
  uint64_t frames_ok = 0;
  uint64_t failures = 0;
  uint64_t protocol_errors = 0;
  double fps = 0.0;
  LatencyHistogram latency;
  std::vector<ClusterShardReport> per_shard;
  std::string error;
};

ClusterConfigResult run_cluster_config(int nshards, uint64_t budget, int frames,
                                       int image,
                                       const std::vector<ClusterVolume>& vols,
                                       const std::string& trace_dir) {
  ClusterConfigResult result;
  result.shards = nshards;

  // Recorders outlive the servers that write into them (declared first =>
  // destroyed last). Only instantiated when --trace-out asks for dumps.
  std::vector<std::unique_ptr<obs::SpanRecorder>> recorders;
  std::vector<std::unique_ptr<serve::RenderService>> services;
  std::vector<std::unique_ptr<net::NetServer>> servers;
  std::vector<cluster::ShardSpec> specs;
  const bool tracing = !trace_dir.empty();
  for (int i = 0; i < nshards; ++i) {
    serve::ServiceOptions sopt;
    // One worker and one un-sharded cache per shard: the bench runs on any
    // core count, so throughput scaling must come from cache capacity (each
    // added shard adds budget), not from parallelism the host may not have.
    sopt.worker_threads = 1;
    sopt.prepare_threads = 1;
    sopt.batch_max = 1;
    sopt.cache_bytes = budget;
    sopt.cache_shards = 1;
    net::NetServerOptions nopt;
    nopt.port = 0;
    if (tracing) {
      recorders.push_back(std::make_unique<obs::SpanRecorder>());
      sopt.recorder = recorders.back().get();
      nopt.recorder = recorders.back().get();
      nopt.trace_node = "shard-" + std::to_string(i);
    }
    services.push_back(std::make_unique<serve::RenderService>(sopt));
    servers.push_back(std::make_unique<net::NetServer>(*services.back(), nopt));
    std::string error;
    if (!servers.back()->start(&error)) {
      result.error = "shard start: " + error;
      return result;
    }
    specs.push_back({"shard-" + std::to_string(i), "127.0.0.1",
                     servers.back()->port(), 1});
  }

  obs::SpanRecorder router_recorder;
  cluster::RouterOptions ropt;
  ropt.port = 0;
  ropt.probe_interval_ms = 100.0;
  if (tracing) {
    ropt.recorder = &router_recorder;
    ropt.trace_node = "router";
  }
  cluster::Router router(specs, ropt);
  std::string error;
  if (!router.start(&error)) {
    result.error = "router start: " + error;
  } else if (!router.wait_healthy(static_cast<size_t>(nshards), 10'000.0)) {
    result.error = "shards did not become healthy";
  } else {
    std::vector<SessionResult> sessions(vols.size());
    WallTimer wall;
    {
      std::vector<std::thread> drivers;
      drivers.reserve(vols.size());
      for (size_t s = 0; s < vols.size(); ++s) {
        SessionResult* out = &sessions[s];
        const serve::VolumeKey* key = &vols[s].key;
        const uint64_t session = static_cast<uint64_t>(s) + 1;
        drivers.emplace_back([&router, session, frames, key, image, out] {
          run_cluster_session(router.port(), session, frames, *key, image, out);
        });
      }
      for (auto& d : drivers) d.join();
    }
    result.wall_ms = wall.millis();
    for (SessionResult& s : sessions) {
      result.latency.merge(s.latency);
      result.frames_ok += s.frames;
      result.failures += s.failures;
      if (!s.error.empty() && result.error.empty()) result.error = s.error;
    }
    result.fps = result.wall_ms > 0
                     ? 1e3 * static_cast<double>(result.frames_ok) / result.wall_ms
                     : 0.0;
  }

  // Traced probe: one explicitly sampled request through the router against
  // the warm cluster, then collect the span dumps from every process-level
  // recorder plus the router's Prometheus exposition.
  if (tracing && result.error.empty()) {
    ::mkdir(trace_dir.c_str(), 0755);  // fine if it already exists
    net::NetClient probe;
    std::string perr;
    if (!probe.connect("127.0.0.1", router.port(), &perr)) {
      std::fprintf(stderr, "netbench: trace probe connect failed: %s\n",
                   perr.c_str());
    } else {
      net::RenderRequestMsg req;
      req.request_id = 1;
      req.session_id = 9'001;  // fresh session: exercises the pin path too
      req.volume = vols[0].key;
      req.camera = Camera::orbit({vols[0].key.nx, vols[0].key.ny, vols[0].key.nz},
                                 0.4, 0.35);
      req.camera.image_width = req.camera.image_height = image;
      req.trace = obs::make_sampled_trace();
      ImageU8 img;
      net::FrameMsg meta;
      if (!probe.render(req, &img, &meta, &perr)) {
        std::fprintf(stderr, "netbench: trace probe render failed: %s\n",
                     perr.c_str());
      } else {
        std::printf("  traced probe: trace %s, %zu server spans on the frame\n",
                    obs::trace_id_hex(req.trace).c_str(), meta.spans.size());
      }
      std::string prom;
      if (probe.fetch_metrics(&prom, &perr, net::kMetricsSelectorPrometheus)) {
        write_file(trace_dir + "/router_prom.txt", prom);
      }
      probe.send_bye(nullptr);
    }
    // The shard-side kSend span lands on the shard's poll thread as the
    // frame drains; give it a beat before snapshotting in-process.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    bool dumps_ok =
        write_file(trace_dir + "/router_trace.json", router.trace_dump_json());
    for (int i = 0; i < nshards; ++i) {
      dumps_ok &=
          write_file(trace_dir + "/shard-" + std::to_string(i) + "_trace.json",
                     servers[static_cast<size_t>(i)]->trace_dump_json());
    }
    if (dumps_ok) {
      std::printf("  wrote trace dumps to %s/\n", trace_dir.c_str());
    } else {
      std::fprintf(stderr, "netbench: could not write trace dumps to %s/\n",
                   trace_dir.c_str());
      result.error = "trace dump write failed";
    }
  }

  result.protocol_errors = router.metrics().protocol_errors.load();
  for (int i = 0; i < nshards; ++i) {
    ClusterShardReport report;
    report.routed_requests =
        router.metrics().shards[static_cast<size_t>(i)]->routed_requests.load();
    report.forwarded_frames =
        router.metrics().shards[static_cast<size_t>(i)]->forwarded_frames.load();
    report.cache = services[static_cast<size_t>(i)]->cache_stats();
    result.protocol_errors += servers[static_cast<size_t>(i)]->metrics().protocol_errors.load();
    result.per_shard.push_back(report);
  }

  router.stop();
  for (int i = 0; i < nshards; ++i) {
    servers[static_cast<size_t>(i)]->stop();
    services[static_cast<size_t>(i)]->drain();
  }
  return result;
}

int run_cluster(const CliFlags& flags) {
  const int frames = flags.get_int("frames", 24);
  const int image = flags.get_int("image", 64);
  const std::string shard_list = flags.get("shards", "1,2,4");
  const std::string json_path = flags.get("json", "BENCH_cluster.json");
  const std::string trace_out = flags.get("trace-out", "");

  std::vector<int> counts;
  for (size_t pos = 0; pos < shard_list.size();) {
    const size_t comma = shard_list.find(',', pos);
    const std::string tok = shard_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    counts.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 1 && counts[i] != 2 && counts[i] != 4) {
      std::fprintf(stderr, "netbench: --shards entries must be 1, 2 or 4\n");
      return 2;
    }
    if (i > 0 && counts[i] <= counts[i - 1]) {
      std::fprintf(stderr, "netbench: --shards must be ascending\n");
      return 2;
    }
  }
  if (counts.empty()) {
    std::fprintf(stderr, "netbench: --shards is empty\n");
    return 2;
  }

  // The rings the placement search runs against — built exactly like the
  // router builds its own (same ids, same weights, same vnodes), so the
  // searched owners are the owners the router will actually pick.
  const cluster::RouterOptions defaults;
  cluster::HashRing ring2(defaults.vnodes), ring4(defaults.vnodes);
  ring2.rebuild({{"shard-0", 1}, {"shard-1", 1}});
  ring4.rebuild({{"shard-0", 1}, {"shard-1", 1}, {"shard-2", 1}, {"shard-3", 1}});

  // 8 volumes, one session each. The warm half (sparse high-threshold MRI:
  // expensive to build, few encoded bytes) lands on shard 0 of 2; the
  // thrash half (dense CT: cheap to build per byte, many bytes) lands on
  // shard 1 of 2 and overflows it. At 4 shards every pair fits its shard.
  // A key owned by shard 0 of 2 can only move to shard 2 or 3 when the ring
  // doubles, which fixes the feasible owner4 targets below.
  std::vector<ClusterVolume> vols(8);
  for (size_t i = 0; i < 4; ++i) {
    vols[i].key.kind = "mri";
    vols[i].key.tf_preset = 0;
    vols[i].key.nx = vols[i].key.ny = vols[i].key.nz = 72;
    vols[i].key.classify.alpha_threshold = 120;
    vols[i].warm = true;
    vols[i].owner2 = 0;
    vols[i].owner4 = i < 2 ? 0 : 2;
  }
  for (size_t i = 4; i < 8; ++i) {
    vols[i].key.kind = "ct";
    vols[i].key.tf_preset = 1;
    vols[i].key.nx = vols[i].key.ny = vols[i].key.nz = 64;
    vols[i].warm = false;
    vols[i].owner2 = 1;
    vols[i].owner4 = i < 6 ? 1 : 3;
  }
  uint64_t next_seed = 1;
  for (ClusterVolume& v : vols) {
    if (!place_volume(ring2, ring4, &v, &next_seed)) {
      std::fprintf(stderr, "netbench: placement search failed\n");
      return 1;
    }
  }

  // Measure each volume's encoded size (seed-dependent: the phantom content
  // changes with the seed) and derive the per-shard budget: every fitting
  // load gets 10% headroom, and the overflowing loads must clear the budget
  // by 25% so LRU cycling cannot accidentally fit.
  auto builder = serve::VolumeCache::phantom_builder();
  for (ClusterVolume& v : vols) {
    WallTimer t;
    v.bytes = builder(v.key, nullptr)->storage_bytes();
    v.build_ms = t.millis();
  }
  uint64_t load2[2] = {0, 0}, load4[4] = {0, 0, 0, 0}, total = 0;
  for (const ClusterVolume& v : vols) {
    load2[v.owner2] += v.bytes;
    load4[v.owner4] += v.bytes;
    total += v.bytes;
  }
  uint64_t fit = load2[0];
  for (const uint64_t l : load4) fit = std::max(fit, l);
  const uint64_t budget = fit + fit / 10;
  if (load2[1] < budget + budget / 4 || total < budget + budget / 4) {
    std::fprintf(stderr,
                 "netbench: working set no longer overflows the budget "
                 "(budget %llu, 2-shard overflow load %llu, total %llu) — "
                 "retune the volume dims\n",
                 static_cast<unsigned long long>(budget),
                 static_cast<unsigned long long>(load2[1]),
                 static_cast<unsigned long long>(total));
    return 1;
  }

  std::printf("netbench --cluster: 8 sessions x %d frames, image %dx%d, "
              "per-shard cache budget %.2f MiB\n",
              frames, image, image, static_cast<double>(budget) / (1u << 20));
  std::printf("  working set: 4 warm mri-72 (%.2f MiB, %.0f ms build each) + "
              "4 overflow ct-64 (%.2f MiB, %.0f ms build each)\n",
              static_cast<double>(vols[0].bytes) / (1u << 20), vols[0].build_ms,
              static_cast<double>(vols[4].bytes) / (1u << 20), vols[4].build_ms);

  std::vector<ClusterConfigResult> sweep;
  for (const int n : counts) {
    // Trace dumps come from the largest configuration only: one directory,
    // one reassembled tree, and the multi-shard path is the one worth seeing.
    const bool last = n == counts.back();
    ClusterConfigResult r = run_cluster_config(n, budget, frames, image, vols,
                                               last ? trace_out : std::string());
    std::printf("  %d shard(s): %llu frames in %.0f ms -> %.1f frames/sec "
                "(%llu failed, %llu protocol errors)\n",
                n, static_cast<unsigned long long>(r.frames_ok), r.wall_ms,
                r.fps, static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.protocol_errors));
    for (size_t i = 0; i < r.per_shard.size(); ++i) {
      const ClusterShardReport& s = r.per_shard[i];
      std::printf("    shard-%zu: %llu requests routed, cache %llu/%llu hits "
                  "(%.1f%%), %llu evictions\n",
                  i, static_cast<unsigned long long>(s.routed_requests),
                  static_cast<unsigned long long>(s.cache.hits),
                  static_cast<unsigned long long>(s.cache.hits + s.cache.misses),
                  100.0 * s.cache.hit_rate(),
                  static_cast<unsigned long long>(s.cache.evictions));
    }
    if (!r.error.empty()) {
      std::fprintf(stderr, "netbench: %d-shard run error: %s\n", n,
                   r.error.c_str());
    }
    sweep.push_back(std::move(r));
  }

  // --- acceptance checks ---
  bool ok = true;
  const double fps1 = sweep.front().shards == 1 ? sweep.front().fps : 0.0;
  double speedup2 = 0.0, speedup4 = 0.0;
  double prev_fps = 0.0;
  for (const ClusterConfigResult& r : sweep) {
    const uint64_t expected =
        static_cast<uint64_t>(vols.size()) * static_cast<uint64_t>(frames);
    if (r.failures != 0 || r.frames_ok != expected || r.protocol_errors != 0) {
      std::fprintf(stderr,
                   "netbench: FAIL %d-shard: %llu/%llu frames, %llu failures, "
                   "%llu protocol errors\n",
                   r.shards, static_cast<unsigned long long>(r.frames_ok),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(r.failures),
                   static_cast<unsigned long long>(r.protocol_errors));
      ok = false;
    }
    if (r.fps <= prev_fps) {
      std::fprintf(stderr,
                   "netbench: FAIL throughput not monotonic at %d shards "
                   "(%.1f <= %.1f fps)\n",
                   r.shards, r.fps, prev_fps);
      ok = false;
    }
    prev_fps = r.fps;
    // Placement + warmth: every shard must have served work, and every
    // shard whose assigned load fits the budget must run >= 90% warm.
    for (size_t i = 0; i < r.per_shard.size(); ++i) {
      const ClusterShardReport& s = r.per_shard[i];
      if (r.shards > 1 && s.routed_requests == 0) {
        std::fprintf(stderr, "netbench: FAIL shard-%zu served nothing at %d shards\n",
                     i, r.shards);
        ok = false;
      }
      const bool should_be_warm =
          (r.shards == 4) || (r.shards == 2 && i == 0);
      if (should_be_warm && s.cache.hit_rate() < 0.90) {
        std::fprintf(stderr,
                     "netbench: FAIL shard-%zu at %d shards: %.1f%% hit rate "
                     "(want >= 90%% warm)\n",
                     i, r.shards, 100.0 * s.cache.hit_rate());
        ok = false;
      }
    }
    if (fps1 > 0.0 && r.shards == 2) speedup2 = r.fps / fps1;
    if (fps1 > 0.0 && r.shards == 4) speedup4 = r.fps / fps1;
  }
  if (fps1 > 0.0 && speedup2 > 0.0 && speedup2 < 1.6) {
    std::fprintf(stderr, "netbench: FAIL 2-shard speedup %.2fx < 1.6x\n", speedup2);
    ok = false;
  }
  if (fps1 > 0.0 && speedup4 > 0.0 && speedup4 < 2.5) {
    std::fprintf(stderr, "netbench: FAIL 4-shard speedup %.2fx < 2.5x\n", speedup4);
    ok = false;
  }
  if (speedup2 > 0.0 || speedup4 > 0.0) {
    std::printf("  speedup vs 1 shard: %.2fx at 2, %.2fx at 4\n", speedup2,
                speedup4);
  }

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("config").begin_object()
        .field("sessions", static_cast<uint64_t>(vols.size()))
        .field("frames_per_session", frames)
        .field("image", image)
        .field("vnodes", defaults.vnodes)
        .field("cache_budget_bytes", budget);
    w.key("volumes").begin_array();
    for (const ClusterVolume& v : vols) {
      w.begin_object()
          .field("key", v.key.canonical())
          .field("warm", v.warm)
          .field("owner_at_2", static_cast<uint64_t>(v.owner2))
          .field("owner_at_4", static_cast<uint64_t>(v.owner4))
          .field("bytes", v.bytes)
          .field("build_ms", v.build_ms)
          .end_object();
    }
    w.end_array();
    w.end_object();
    w.key("sweep").begin_array();
    for (const ClusterConfigResult& r : sweep) {
      w.begin_object()
          .field("shards", r.shards)
          .field("wall_ms", r.wall_ms)
          .field("frames_delivered", r.frames_ok)
          .field("frames_per_second", r.fps)
          .field("failures", r.failures)
          .field("protocol_errors", r.protocol_errors)
          .field("speedup_vs_1", fps1 > 0.0 ? r.fps / fps1 : 0.0);
      w.key("latency");
      r.latency.write_json(w);
      w.key("per_shard").begin_array();
      for (const ClusterShardReport& s : r.per_shard) {
        w.begin_object()
            .field("requests_routed", s.routed_requests)
            .field("frames_forwarded", s.forwarded_frames)
            .field("cache_hits", s.cache.hits)
            .field("cache_misses", s.cache.misses)
            .field("cache_hit_rate", s.cache.hit_rate())
            .field("cache_evictions", s.cache.evictions)
            .field("cache_bytes", s.cache.bytes)
            .end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("results").begin_object()
        .field("speedup_2x", speedup2)
        .field("speedup_4x", speedup4)
        .field("passed", ok)
        .end_object();
    w.end_object();
    std::string body = w.str();
    body += '\n';
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "netbench: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"mode", "sessions", "frames", "size", "threads", "kind",
                       "step", "window", "pending", "prepare-threads", "json",
                       "cluster", "shards", "image", "trace-out"});
  if (flags.get_bool("cluster", false)) return run_cluster(flags);
  const std::string mode = flags.get("mode", "stream");
  const int sessions = flags.get_int("sessions", 4);
  const int frames = flags.get_int("frames", 30);
  const int size = flags.get_int("size", 48);
  const std::string kind = flags.get("kind", "mri");
  const double step = flags.get_double("step", 2.0);
  const std::string json_path = flags.get("json", "BENCH_net.json");

  if (mode != "stream" && mode != "request") {
    std::fprintf(stderr, "--mode must be stream or request (got '%s')\n",
                 mode.c_str());
    return 2;
  }

  serve::ServiceOptions sopt;
  sopt.worker_threads = flags.get_int("threads", 4);
  sopt.prepare_threads = flags.get_int("prepare-threads", 0);
  net::NetServerOptions nopt;
  nopt.port = 0;  // ephemeral: the bench never collides with a real server
  nopt.stream_window = flags.get_int("window", 4);
  nopt.max_pending_frames = static_cast<size_t>(flags.get_int("pending", 4));

  serve::RenderService service(sopt);
  net::NetServer server(service, nopt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "netbench: cannot start server: %s\n", error.c_str());
    return 1;
  }

  std::printf("netbench: %d %s sessions x %d frames, %d-voxel %s volume, "
              "%d render threads, loopback port %u\n",
              sessions, mode.c_str(), frames, size, kind.c_str(),
              sopt.worker_threads, server.port());

  std::vector<SessionResult> results(static_cast<size_t>(sessions));
  WallTimer wall;
  {
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      SessionResult* out = &results[static_cast<size_t>(s)];
      const uint64_t session = static_cast<uint64_t>(s) + 1;
      drivers.emplace_back([=, &server] {
        if (mode == "request") {
          run_request_session(server.port(), session, frames, kind, size, step, out);
        } else {
          run_stream_session(server.port(), session, frames, kind, size, step, out);
        }
      });
    }
    for (auto& d : drivers) d.join();
  }
  const double wall_ms = wall.millis();

  LatencyHistogram latency;
  uint64_t frames_ok = 0, dropped = 0, failures = 0;
  uint64_t bytes_sent = 0, bytes_received = 0;
  for (const SessionResult& r : results) {
    latency.merge(r.latency);
    frames_ok += r.frames;
    dropped += r.dropped;
    failures += r.failures;
    bytes_sent += r.bytes_sent;
    bytes_received += r.bytes_received;
    if (!r.error.empty()) {
      std::fprintf(stderr, "netbench: session error: %s\n", r.error.c_str());
    }
  }

  // Steady-state allocation probe: one more session against the now-warm
  // cache and pools, counting process-wide heap allocations per delivered
  // frame (render scratch + encode + wire + client-side decode). The
  // delivery-path-only figure, gated at <= 2, comes from bench/memserve.
  double allocs_per_frame = 0.0;
  if (failures == 0) {
    constexpr int kProbeFrames = 16;
    SessionResult probe;
    const tools::AllocSnapshot before = tools::alloc_snapshot();
    if (mode == "request") {
      run_request_session(server.port(), 1, kProbeFrames, kind, size, step, &probe);
    } else {
      run_stream_session(server.port(), 1, kProbeFrames, kind, size, step, &probe);
    }
    const tools::AllocSnapshot d = tools::alloc_delta(before);
    if (probe.frames > 0) {
      allocs_per_frame = static_cast<double>(d.allocations) /
                         static_cast<double>(probe.frames);
    }
  }

  server.stop();
  service.drain();
  const net::NetMetrics& m = server.metrics();
  const uint64_t protocol_errors = m.protocol_errors.load();
  const double fps = wall_ms > 0 ? 1e3 * static_cast<double>(frames_ok) / wall_ms : 0.0;

  std::printf("\n%llu frames delivered in %.0f ms -> %.1f frames/sec aggregate "
              "(%llu dropped, %llu failed)\n",
              static_cast<unsigned long long>(frames_ok), wall_ms, fps,
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(failures));
  std::printf("latency (%s): p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, max %.1f ms\n",
              mode == "request" ? "client round-trip" : "service end-to-end",
              latency.quantile_ms(0.50), latency.quantile_ms(0.95),
              latency.quantile_ms(0.99), latency.max_ms());
  std::printf("codec: %llu raw RGBA bytes -> %llu on the wire (ratio %.3f)\n",
              static_cast<unsigned long long>(m.frame_raw_bytes.load()),
              static_cast<unsigned long long>(m.frame_wire_bytes.load()),
              m.wire_ratio());
  std::printf("socket traffic: %llu B client->server, %llu B server->client, "
              "%llu protocol errors\n",
              static_cast<unsigned long long>(bytes_sent),
              static_cast<unsigned long long>(bytes_received),
              static_cast<unsigned long long>(protocol_errors));
  std::printf("memory: %.1f allocs/frame steady-state (both endpoints), "
              "%.1f B copied/frame server-side\n",
              allocs_per_frame, m.bytes_copied_per_frame());

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("config").begin_object()
        .field("mode", mode)
        .field("sessions", sessions)
        .field("frames_per_session", frames)
        .field("volume_size", size)
        .field("kind", kind)
        .field("step_deg", step)
        .field("threads", sopt.worker_threads)
        .field("stream_window", nopt.stream_window)
        .field("max_pending_frames", static_cast<uint64_t>(nopt.max_pending_frames))
        .end_object();
    w.key("results").begin_object()
        .field("wall_ms", wall_ms)
        .field("frames_delivered", frames_ok)
        .field("frames_per_second", fps)
        .field("frames_dropped", dropped)
        .field("failures", failures)
        .field("protocol_errors", protocol_errors)
        .field("client_bytes_sent", bytes_sent)
        .field("client_bytes_received", bytes_received)
        .field("frame_raw_bytes", m.frame_raw_bytes.load())
        .field("frame_wire_bytes", m.frame_wire_bytes.load())
        .field("wire_ratio", m.wire_ratio())
        .field("allocs_per_frame", allocs_per_frame)
        .field("bytes_copied_per_frame", m.bytes_copied_per_frame());
    w.key("latency");
    latency.write_json(w);
    w.end_object();
    w.key("net");
    m.write_json(w);
    w.end_object();
    std::string body = w.str();
    body += '\n';
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "netbench: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  return (failures != 0 || protocol_errors != 0) ? 1 : 0;
}
