// racecheck: trace-driven data-race detector for the parallel renderers.
//
// Renders steady-state frames of the selected algorithm(s) through the
// tracing executor, rebuilds the happens-before relation from the recorded
// synchronization events (barriers + the new renderer's point-to-point
// completion edges), and reports every conflicting access pair not ordered
// by it. Exit status 1 when any combination races.
//
// Usage:
//   racecheck [--algo=both|old|new] [--data=both|mri|ct] [--procs=1,4,16]
//             [--size=32] [--granularity=4] [--max-findings=16]
//             [--fused=0|1] [--stealing=0|1]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "memsim/experiment.hpp"
#include "util/cli.hpp"

namespace {

std::vector<int> parse_procs(const std::string& list) {
  std::vector<int> procs;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const int p = std::atoi(list.substr(pos, comma - pos).c_str());
    if (p > 0) procs.push_back(p);
    pos = comma + 1;
  }
  return procs;
}

}  // namespace

int main(int argc, char** argv) {
  const psw::CliFlags flags(argc, argv);
  flags.require_known({"algo", "data", "procs", "size", "fused", "stealing",
                       "granularity", "max-findings"});
  const std::string algo_sel = flags.get("algo", "both");
  const std::string data_sel = flags.get("data", "both");
  const std::vector<int> procs = parse_procs(flags.get("procs", "1,4,16"));
  const int size = flags.get_int("size", 32);

  psw::WorkloadOptions wopt;
  wopt.verify_race_free = false;  // this tool *is* the verification pass
  wopt.parallel.fused_phases = flags.get_bool("fused", wopt.parallel.fused_phases);
  wopt.parallel.stealing = flags.get_bool("stealing", wopt.parallel.stealing);

  psw::RaceCheckOptions ropt;
  ropt.granularity = static_cast<uint32_t>(flags.get_int("granularity", 4));
  ropt.max_findings = static_cast<size_t>(flags.get_int("max-findings", 16));

  std::vector<psw::Algo> algos;
  if (algo_sel == "both" || algo_sel == "old") algos.push_back(psw::Algo::kOld);
  if (algo_sel == "both" || algo_sel == "new") algos.push_back(psw::Algo::kNew);
  std::vector<std::string> kinds;
  if (data_sel == "both" || data_sel == "mri") kinds.emplace_back("mri");
  if (data_sel == "both" || data_sel == "ct") kinds.emplace_back("ct");
  if (algos.empty() || kinds.empty() || procs.empty()) {
    std::fprintf(stderr, "racecheck: nothing to do (check --algo/--data/--procs)\n");
    return 2;
  }

  std::printf("racecheck: %d^3 phantoms, shadow granularity %u bytes\n\n", size,
              ropt.granularity);
  std::printf("%-5s %-6s %6s %12s %12s %8s\n", "algo", "data", "procs", "records",
              "cells", "races");

  bool any_races = false;
  for (const std::string& kind : kinds) {
    const psw::Dataset data =
        psw::make_dataset(kind, kind + std::to_string(size), size, size, size);
    for (const psw::Algo algo : algos) {
      for (const int p : procs) {
        const psw::RaceReport report = psw::check_frame_races(algo, data, p, wopt, ropt);
        std::printf("%-5s %-6s %6d %12llu %12zu %8llu\n", psw::algo_name(algo),
                    kind.c_str(), p,
                    static_cast<unsigned long long>(report.records_checked),
                    report.shadow_cells,
                    static_cast<unsigned long long>(report.races_total));
        if (!report.clean()) {
          any_races = true;
          // Re-trace to recover the interval names for the summary.
          const psw::TraceSet traces = [&] {
            psw::WorkloadOptions w = wopt;
            w.verify_race_free = false;
            return psw::trace_frame(algo, data, p, w);
          }();
          std::printf("%s\n", report.summary(traces).c_str());
        }
      }
    }
  }

  if (any_races) {
    std::printf("\nracecheck: FAILED (conflicting unordered accesses found)\n");
    return 1;
  }
  std::printf("\nracecheck: all combinations race-free\n");
  return 0;
}
