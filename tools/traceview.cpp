// traceview: reassembles span dumps from any number of processes (the
// cluster router plus each shard, or a single netserve) into per-request
// trace trees with a phase-breakdown table.
//
//   ./tools/traceview [--trace=HEX] dump1.json dump2.json ...
//
// Inputs are the kMetricsSelectorTrace documents (also written by
// netserve --trace-dump / netbench --trace-out). Timestamps in the dumps
// are wall-anchored nanoseconds, so spans from different machines line up
// on one axis. --trace filters to a single trace id (full 32-digit hex or
// any suffix accepted by obs::parse_trace_id).
#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/json_parse.hpp"

using namespace psw;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[64 * 1024];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

// One span object from a dump ("trace"/"span"/"parent" hex strings,
// "kind" name, wall-ns timestamps). Returns false on malformed entries so
// a damaged dump degrades to fewer spans instead of aborting the view.
bool parse_span(const JsonValue& v, obs::SpanRecord* out) {
  if (!v.is_object()) return false;
  const JsonValue* trace = v.find("trace");
  const JsonValue* span = v.find("span");
  if (!trace || !span) return false;
  if (!obs::parse_trace_id(trace->as_string(), &out->trace_hi, &out->trace_lo)) {
    return false;
  }
  if (!obs::parse_hex_u64(span->as_string(), &out->span_id)) return false;
  if (const JsonValue* parent = v.find("parent")) {
    obs::parse_hex_u64(parent->as_string(), &out->parent_id);
  }
  if (const JsonValue* kind = v.find("kind")) {
    out->kind = obs::span_kind_from(kind->as_string());
    if (out->kind == obs::SpanKind::kCount) return false;
  }
  if (const JsonValue* t = v.find("start_ns")) {
    out->t_start_ns = static_cast<int64_t>(t->as_u64());
  }
  if (const JsonValue* t = v.find("end_ns")) {
    out->t_end_ns = static_cast<int64_t>(t->as_u64());
  }
  if (const JsonValue* tag = v.find("tag")) out->tag = tag->as_u64();
  return true;
}

void collect_spans(const JsonValue& arr, std::vector<obs::SpanRecord>* out,
                   size_t* malformed) {
  if (!arr.is_array()) return;
  for (const JsonValue& v : arr.items) {
    obs::SpanRecord s;
    if (parse_span(v, &s)) {
      out->push_back(s);
    } else {
      ++*malformed;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"trace"});
  const std::string filter = flags.get("trace", "");
  uint64_t want_hi = 0, want_lo = 0;
  if (!filter.empty() && !obs::parse_trace_id(filter, &want_hi, &want_lo)) {
    std::fprintf(stderr, "traceview: --trace=%s is not a hex trace id\n",
                 filter.c_str());
    return 2;
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: traceview [--trace=HEX] dump1.json [dump2.json ...]\n");
    return 2;
  }

  std::vector<obs::SpanRecord> spans;
  size_t malformed = 0;
  for (const std::string& path : flags.positional()) {
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "traceview: cannot read %s\n", path.c_str());
      return 1;
    }
    JsonValue doc;
    std::string error;
    if (!json_parse(text, &doc, &error)) {
      std::fprintf(stderr, "traceview: %s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    const size_t before = spans.size();
    if (const JsonValue* ring = doc.find("spans")) {
      collect_spans(*ring, &spans, &malformed);
    }
    if (const JsonValue* slow = doc.find("slow")) {
      if (slow->is_array()) {
        for (const JsonValue& t : slow->items) {
          if (const JsonValue* ts = t.find("spans")) {
            collect_spans(*ts, &spans, &malformed);
          }
        }
      }
    }
    const JsonValue* node = doc.find("node");
    std::printf("%s: %zu spans (node %s)\n", path.c_str(),
                spans.size() - before,
                node ? node->as_string().c_str() : "?");
  }
  if (malformed > 0) {
    std::fprintf(stderr, "traceview: skipped %zu malformed span entries\n",
                 malformed);
  }

  std::vector<obs::TraceTree> trees = obs::assemble_traces(std::move(spans));
  size_t shown = 0;
  for (const obs::TraceTree& t : trees) {
    if (!filter.empty() && (t.trace_hi != want_hi || t.trace_lo != want_lo)) {
      continue;
    }
    ++shown;
    std::printf("\ntrace %s: %zu spans, %.3f ms end to end\n",
                t.id_hex().c_str(), t.spans.size(), t.total_ms());
    std::fputs(obs::format_trace_tree(t).c_str(), stdout);
    std::fputs(obs::format_phase_table(t).c_str(), stdout);
  }
  std::printf("\ntraceview: %zu trace(s)%s from %zu dump(s)\n", shown,
              filter.empty() ? "" : " matching filter",
              flags.positional().size());
  return shown > 0 ? 0 : 1;
}
