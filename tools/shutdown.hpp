// SIGINT/SIGTERM latch shared by the long-running tools (netserve, loadgen).
// The handler is async-signal-safe: it sets a flag and writes one byte to a
// self-pipe. Anything that must react — netserve's main thread, loadgen's
// watcher that sheds blocked submitters via RenderService::stop() — blocks
// in wait_for_shutdown() on the read end, so reports are always flushed on
// Ctrl-C instead of the process dying mid-write.
#pragma once

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

namespace psw::tools {

namespace detail {
inline volatile std::sig_atomic_t g_shutdown = 0;
inline int g_pipe[2] = {-1, -1};

inline void on_signal(int) {
  g_shutdown = 1;
  if (g_pipe[1] >= 0) {
    const unsigned char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}
}  // namespace detail

// Install handlers for SIGINT and SIGTERM. Call once, early in main().
inline void install_shutdown_handler() {
  if (detail::g_pipe[0] < 0) {
    [[maybe_unused]] const int rc = ::pipe(detail::g_pipe);
  }
  struct sigaction sa = {};
  sa.sa_handler = detail::on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

inline bool shutdown_requested() { return detail::g_shutdown != 0; }

// Blocks until a signal arrives or release_waiters() is called. Returns
// shutdown_requested() so a watcher can tell the two apart.
inline bool wait_for_shutdown() {
  unsigned char byte;
  while (::read(detail::g_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  return shutdown_requested();
}

// Unblocks wait_for_shutdown() without signalling shutdown (normal exit of
// the main workload, so the watcher thread can be joined).
inline void release_waiters() {
  if (detail::g_pipe[1] >= 0) {
    const unsigned char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(detail::g_pipe[1], &byte, 1);
  }
}

}  // namespace psw::tools
