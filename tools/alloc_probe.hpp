// Process-wide heap-allocation probe for the serving benchmarks, in the
// spirit of src/memsim's working-set methodology applied one layer up: the
// interesting cost of the serving path is not cycles but allocator traffic
// and copies per frame, so the benches count them directly. Linking
// alloc_probe.cpp into a binary replaces the global operator new/delete
// with counting wrappers (malloc-backed, all variants); alloc_snapshot()
// then reads the counters, and a before/after pair brackets any region of
// interest. Counters are relaxed atomics — cheap enough to leave on for a
// whole benchmark and exact for quiesced regions.
#pragma once

#include <cstdint>

namespace psw::tools {

struct AllocSnapshot {
  uint64_t allocations = 0;  // operator new calls
  uint64_t frees = 0;        // operator delete calls (with a live pointer)
  uint64_t bytes = 0;        // total bytes requested
};

// Current totals since process start.
AllocSnapshot alloc_snapshot();

// Totals accumulated after `since` (fields subtract independently).
AllocSnapshot alloc_delta(const AllocSnapshot& since);

}  // namespace psw::tools
