// Traffic generator for the frame-serving subsystem: N concurrent sessions
// orbit phantom volumes through one RenderService and the tool reports
// latency quantiles, throughput, admission outcomes and cache behaviour,
// optionally as JSON (BENCH_serve.json).
//
// Closed loop (default): each session is a thread that submits its next
// frame when the previous one completes — the steady "animation consumer"
// shape of §4.1. Open loop: frames are submitted on a fixed wall-clock
// schedule regardless of completions, which (with --rate above capacity
// or --deadline-ms) exercises admission control and deadline shedding.
//
//   ./tools/loadgen --sessions=8 --threads=4 [--frames=24] [--size=48]
//                   [--mode=closed|open] [--rate=120] [--deadline-ms=0]
//                   [--queue-capacity=64] [--batch=4] [--cache-mb=256]
//                   [--step=2.0] [--volumes=4] [--prepare-threads=0]
//                   [--json=BENCH_serve.json]
//
// --prepare-threads controls the parallel volume-preparation pipeline used
// on cache misses (0 = match --threads); the report splits end-to-end
// latency into cold-start (cache-miss build) and warm (cache-hit) frames.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "alloc_probe.hpp"
#include "parallel/animation.hpp"
#include "serve/service.hpp"
#include "shutdown.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace psw;
using namespace psw::serve;

struct Outcome {
  uint64_t ok = 0;
  uint64_t rejected_queue_full = 0;  // admission-time: queue at capacity
  uint64_t rejected_deadline = 0;    // admission-time: deadline already past
  uint64_t shed = 0;                 // accepted, then shed (deadline/shutdown)
  uint64_t failed = 0;

  void count_admission(ServeStatus s) {
    switch (s) {
      case ServeStatus::kQueueFull: ++rejected_queue_full; break;
      case ServeStatus::kDeadlineMissed: ++rejected_deadline; break;
      default: ++shed; break;  // kShutdown
    }
  }
  void count_result(const FrameResult& r) {
    switch (r.status) {
      case ServeStatus::kOk:
        ++ok;
        // Cold starts (the frame paid a cache-miss volume preparation) and
        // warm frames have latency distributions an order of magnitude
        // apart; blending them hides both.
        (r.timing.cache_hit ? warm : cold).record_ms(r.timing.total_ms);
        break;
      case ServeStatus::kError: ++failed; break;
      default: ++shed; break;  // kDeadlineMissed / kShutdown after admission
    }
  }
  void merge(const Outcome& o) {
    ok += o.ok;
    rejected_queue_full += o.rejected_queue_full;
    rejected_deadline += o.rejected_deadline;
    shed += o.shed;
    failed += o.failed;
    cold.merge(o.cold);
    warm.merge(o.warm);
  }

  LatencyHistogram cold;  // end-to-end latency of cache-miss (cold-start) frames
  LatencyHistogram warm;  // end-to-end latency of cache-hit frames
};

// Session s orbits one of `volumes` distinct keys (alternating MRI and CT)
// so the cache serves several sessions per volume.
VolumeKey key_for_session(int s, int volumes, int size) {
  VolumeKey key;
  const int v = s % std::max(1, volumes);
  key.kind = v % 2 == 0 ? "mri" : "ct";
  key.tf_preset = v % 2 == 0 ? 0 : 1;
  key.nx = key.ny = key.nz = size + 8 * (v / 2);  // distinct sizes per pair
  return key;
}

RenderRequest request_for_frame(int session, int frame, const VolumeKey& key,
                                double step_deg, double deadline_ms) {
  AnimationPath path;
  path.dims = {key.nx, key.ny, key.nz};
  path.start_yaw = 0.13 * session;  // decorrelate the orbits
  path.degrees_per_frame = step_deg;
  RenderRequest req;
  req.session_id = static_cast<uint64_t>(session) + 1;
  req.volume = key;
  req.camera = path.camera(frame);
  if (deadline_ms > 0) {
    req.deadline = Clock::now() + std::chrono::microseconds(
                                      static_cast<int64_t>(deadline_ms * 1e3));
  }
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"sessions", "threads", "frames", "size", "mode", "rate",
                       "deadline-ms", "queue-capacity", "batch", "cache-mb", "step",
                       "volumes", "prepare-threads", "json"});
  const int sessions = flags.get_int("sessions", 8);
  const int frames = flags.get_int("frames", 24);
  const int size = flags.get_int("size", 48);
  const std::string mode = flags.get("mode", "closed");
  const double rate = flags.get_double("rate", 120.0);
  const double deadline_ms = flags.get_double("deadline-ms", 0.0);
  const double step = flags.get_double("step", 2.0);
  const int volumes = flags.get_int("volumes", 4);
  const std::string json_path = flags.get("json", "BENCH_serve.json");

  if (mode != "closed" && mode != "open") {
    std::fprintf(stderr, "--mode must be 'closed' or 'open' (got '%s')\n", mode.c_str());
    return 2;
  }

  ServiceOptions opt;
  opt.worker_threads = flags.get_int("threads", 4);
  opt.queue_capacity = flags.get_int("queue-capacity", 64);
  opt.batch_max = flags.get_int("batch", 4);
  opt.cache_bytes = static_cast<uint64_t>(flags.get_int("cache-mb", 256)) << 20;
  // Cache-miss preparation threads; 0 (the default) matches --threads.
  opt.prepare_threads = flags.get_int("prepare-threads", 0);
  // Re-profile on the same ~15-degree cadence the animation driver uses.
  AnimationPath cadence;
  cadence.degrees_per_frame = step;
  opt.parallel.profile_every = cadence.profile_interval();
  RenderService service(opt);

  // Ctrl-C drains instead of killing the run: the watcher stops the service
  // (shedding queued frames with kShutdown, which unblocks submitters
  // waiting on futures), the loops below notice the flag and stop
  // submitting, and the normal reporting path still writes the JSON.
  tools::install_shutdown_handler();
  std::thread shutdown_watcher([&service] {
    if (tools::wait_for_shutdown()) {
      std::fprintf(stderr, "\nloadgen: interrupted, draining for the report\n");
      service.stop();
    }
  });

  std::printf("loadgen: %d sessions x %d frames, %s loop, %d render threads, "
              "%d-voxel volumes (%d distinct), queue=%d, batch=%d\n",
              sessions, frames, mode.c_str(), opt.worker_threads, size, volumes,
              opt.queue_capacity, opt.batch_max);

  Outcome outcome;
  WallTimer wall;
  if (mode == "closed") {
    // One submitter thread per session; each waits for its frame before
    // submitting the next.
    std::vector<Outcome> per_session(static_cast<size_t>(sessions));
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      drivers.emplace_back([&, s] {
        const VolumeKey key = key_for_session(s, volumes, size);
        for (int f = 0; f < frames && !tools::shutdown_requested(); ++f) {
          Ticket t = service.submit(request_for_frame(s, f, key, step, deadline_ms));
          if (!t.accepted()) {
            per_session[s].count_admission(t.admission);
            continue;
          }
          FrameResult r = t.result.get();
          per_session[s].count_result(r);
          // Hand the pixel storage back so the next frame renders into it.
          if (r.status == ServeStatus::kOk)
            service.recycle_frame(std::move(r.image));
        }
      });
    }
    for (auto& d : drivers) d.join();
    for (const auto& o : per_session) outcome.merge(o);
  } else {
    // Paced submission from one thread; completions are harvested at the
    // end so the schedule never blocks on the service.
    const double interval_ms = rate > 0 ? 1e3 / rate : 0.0;
    std::vector<Ticket> tickets;
    std::vector<VolumeKey> keys;
    for (int s = 0; s < sessions; ++s) keys.push_back(key_for_session(s, volumes, size));
    tickets.reserve(static_cast<size_t>(sessions) * frames);
    WallTimer pace;
    int submitted = 0;
    for (int f = 0; f < frames && !tools::shutdown_requested(); ++f) {
      for (int s = 0; s < sessions && !tools::shutdown_requested(); ++s) {
        const double due_ms = interval_ms * submitted++;
        const double ahead_ms = due_ms - pace.millis();
        if (ahead_ms > 0.05) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(ahead_ms * 1e3)));
        }
        Ticket t = service.submit(request_for_frame(s, f, keys[s], step, deadline_ms));
        if (!t.accepted()) {
          outcome.count_admission(t.admission);
        } else {
          tickets.push_back(std::move(t));
        }
      }
    }
    for (Ticket& t : tickets) {
      FrameResult r = t.result.get();
      outcome.count_result(r);
      if (r.status == ServeStatus::kOk)
        service.recycle_frame(std::move(r.image));
    }
  }
  const double wall_ms = wall.millis();

  // Steady-state allocation probe: with the volume cache and frame pool
  // warm, how many heap allocations does one served frame cost end-to-end?
  // This number includes the renderer's per-frame scratch; the delivery-
  // path-only figure (gated at <= 2) comes from bench/memserve.
  double allocs_per_frame = 0.0;
  double alloc_bytes_per_frame = 0.0;
  if (!tools::shutdown_requested() && outcome.ok > 0) {
    const VolumeKey key = key_for_session(0, volumes, size);
    constexpr int kWarmup = 4, kProbe = 32;
    for (int f = 0; f < kWarmup; ++f) {
      Ticket t = service.submit(request_for_frame(0, frames + f, key, step, 0.0));
      if (!t.accepted()) continue;
      FrameResult r = t.result.get();
      if (r.status == ServeStatus::kOk) service.recycle_frame(std::move(r.image));
    }
    const tools::AllocSnapshot before = tools::alloc_snapshot();
    int probe_ok = 0;
    for (int f = 0; f < kProbe; ++f) {
      Ticket t = service.submit(
          request_for_frame(0, frames + kWarmup + f, key, step, 0.0));
      if (!t.accepted()) continue;
      FrameResult r = t.result.get();
      if (r.status == ServeStatus::kOk) {
        ++probe_ok;
        service.recycle_frame(std::move(r.image));
      }
    }
    const tools::AllocSnapshot d = tools::alloc_delta(before);
    if (probe_ok > 0) {
      allocs_per_frame = static_cast<double>(d.allocations) / probe_ok;
      alloc_bytes_per_frame = static_cast<double>(d.bytes) / probe_ok;
    }
  }
  service.drain();
  tools::release_waiters();
  shutdown_watcher.join();

  const ServiceMetrics& m = service.metrics();
  const CacheStats cache = service.cache_stats();
  const PoolStats fpool = service.frame_pool_stats();
  const PoolStats ppool = service.prepare_pool_stats();
  const double fps = wall_ms > 0 ? 1e3 * static_cast<double>(outcome.ok) / wall_ms : 0.0;

  std::printf("\n%llu frames served in %.0f ms -> %.2f frames/sec aggregate\n",
              static_cast<unsigned long long>(outcome.ok), wall_ms, fps);
  std::printf("admission: rejected %llu queue-full, %llu deadline; shed %llu; "
              "failed %llu\n",
              static_cast<unsigned long long>(outcome.rejected_queue_full),
              static_cast<unsigned long long>(outcome.rejected_deadline),
              static_cast<unsigned long long>(outcome.shed),
              static_cast<unsigned long long>(outcome.failed));
  std::printf("latency (end-to-end): p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, "
              "max %.1f ms\n",
              m.total.quantile_ms(0.50), m.total.quantile_ms(0.95),
              m.total.quantile_ms(0.99), m.total.max_ms());
  std::printf("  queue wait p95 %.1f ms | composite p95 %.1f ms | warp p95 %.1f ms\n",
              m.queue_wait.quantile_ms(0.95), m.composite.quantile_ms(0.95),
              m.warp.quantile_ms(0.95));
  std::printf("cold-start frames (cache-miss build): %llu, p50 %.1f ms, p95 %.1f ms, "
              "max %.1f ms\n",
              static_cast<unsigned long long>(outcome.cold.count()),
              outcome.cold.quantile_ms(0.50), outcome.cold.quantile_ms(0.95),
              outcome.cold.max_ms());
  std::printf("warm frames (cache-hit):              %llu, p50 %.1f ms, p95 %.1f ms, "
              "max %.1f ms\n",
              static_cast<unsigned long long>(outcome.warm.count()),
              outcome.warm.quantile_ms(0.50), outcome.warm.quantile_ms(0.95),
              outcome.warm.max_ms());
  std::printf("cache: %.1f%% hit rate (%llu hits, %llu misses, %llu evictions, "
              "%.1f MB resident)\n",
              100.0 * cache.hit_rate(), static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions),
              cache.bytes / 1048576.0);
  std::printf("frame pool: %.1f%% hit rate (%llu acquires, %llu retained) | "
              "steady-state allocs/frame %.1f (%.0f bytes)\n",
              100.0 * fpool.hit_rate(),
              static_cast<unsigned long long>(fpool.acquires),
              static_cast<unsigned long long>(fpool.retained),
              allocs_per_frame, alloc_bytes_per_frame);
  std::printf("queue depth max %lld | batches %llu (%llu frames rode a batch) | "
              "profiled frames %llu\n",
              static_cast<long long>(m.queue_depth_max.load()),
              static_cast<unsigned long long>(m.batches.load()),
              static_cast<unsigned long long>(m.batched_frames.load()),
              static_cast<unsigned long long>(m.profiled_frames.load()));

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("config").begin_object()
        .field("sessions", sessions)
        .field("frames_per_session", frames)
        .field("mode", mode)
        .field("threads", opt.worker_threads)
        .field("volume_size", size)
        .field("distinct_volumes", volumes)
        .field("queue_capacity", opt.queue_capacity)
        .field("batch_max", opt.batch_max)
        .field("deadline_ms", deadline_ms)
        .field("open_loop_rate_per_sec", mode == "open" ? rate : 0.0)
        .field("prepare_threads", opt.prepare_threads)
        .end_object();
    w.key("results").begin_object()
        .field("wall_ms", wall_ms)
        .field("frames_ok", outcome.ok)
        .field("frames_per_second", fps)
        .field("rejected_queue_full", outcome.rejected_queue_full)
        .field("rejected_deadline", outcome.rejected_deadline)
        .field("shed", outcome.shed)
        .field("failed", outcome.failed)
        .field("cache_hit_rate", cache.hit_rate())
        .field("allocs_per_frame", allocs_per_frame)
        .field("alloc_bytes_per_frame", alloc_bytes_per_frame);
    w.key("cold_start_latency_ms");
    outcome.cold.write_json(w);
    w.key("warm_latency_ms");
    outcome.warm.write_json(w);
    w.end_object();
    w.key("service");
    m.write_json(w, cache, fpool, ppool);
    w.end_object();
    std::string body = w.str();
    body += '\n';
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  const bool hard_failure = outcome.failed != 0;
  return hard_failure ? 1 : 0;
}
