// Command-line client for netserve. Three modes:
//   render  — N one-shot render requests along an orbit (round-trip timed)
//   stream  — one server-paced animation stream, frames counted as they land
//   metrics — fetch and print the server's combined metrics document
//
//   ./tools/netclient --host=127.0.0.1 --port=7420 [--mode=render|stream|metrics]
//                     [--frames=8] [--size=64] [--kind=mri|ct] [--session=1]
//                     [--step=2.0] [--ppm=] [--timeout-ms=30000] [--trace=0]
//                     [--format=json|prometheus|trace]
//
// --trace=1 requests a sampled trace on every frame: the server answers
// with its per-stage spans in the frame's trace tail, printed here as a
// per-frame breakdown table (works through the cluster router too — the
// context forwards verbatim). --format picks the metrics-mode document:
// the combined JSON (default), the Prometheus text exposition, or the
// node's span dump (feed those to tools/traceview).
#include <cstdio>
#include <string>

#include "core/factorization.hpp"
#include "net/client.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/image.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace psw;

namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

net::RenderRequestMsg request_for_frame(uint64_t session, int frame,
                                        const std::string& kind, int size,
                                        double step_deg) {
  net::RenderRequestMsg req;
  req.request_id = static_cast<uint64_t>(frame) + 1;
  req.session_id = session;
  req.volume.kind = kind;
  req.volume.tf_preset = kind == "ct" ? 1 : 0;
  req.volume.nx = req.volume.ny = req.volume.nz = size;
  req.camera = Camera::orbit({size, size, size}, frame * step_deg * kDeg, 0.35);
  return req;
}

// Per-frame server-side stage breakdown from the frame's trace tail.
void print_span_table(const net::FrameMsg& meta) {
  if (!meta.trace.sampled() || meta.spans.empty()) return;
  TextTable table({"stage", "ms", "tag"});
  for (const auto& s : meta.spans) {
    table.add_row({obs::to_string(s.kind), fmt(s.duration_ms(), 3),
                   std::to_string(s.tag)});
  }
  std::printf("  trace %s server-side stages:\n%s",
              obs::trace_id_hex(meta.trace).c_str(), table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"host", "port", "mode", "frames", "size", "kind",
                       "session", "step", "ppm", "timeout-ms", "trace",
                       "format"});
  const std::string host = flags.get("host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(flags.get_int("port", 7420));
  const std::string mode = flags.get("mode", "render");
  const int frames = flags.get_int("frames", 8);
  const int size = flags.get_int("size", 64);
  const std::string kind = flags.get("kind", "mri");
  const uint64_t session = static_cast<uint64_t>(flags.get_int("session", 1));
  const double step = flags.get_double("step", 2.0);
  const std::string ppm_path = flags.get("ppm", "");
  const bool trace = flags.get_int("trace", 0) != 0;
  const std::string format = flags.get("format", "json");

  if (mode != "render" && mode != "stream" && mode != "metrics") {
    std::fprintf(stderr, "--mode must be render, stream or metrics (got '%s')\n",
                 mode.c_str());
    return 2;
  }
  if (format != "json" && format != "prometheus" && format != "trace") {
    std::fprintf(stderr,
                 "--format must be json, prometheus or trace (got '%s')\n",
                 format.c_str());
    return 2;
  }
  if (kind != "mri" && kind != "ct") {
    std::fprintf(stderr, "--kind must be mri or ct (got '%s')\n", kind.c_str());
    return 2;
  }

  net::NetClientOptions copt;
  copt.recv_timeout_ms = flags.get_double("timeout-ms", 30'000.0);
  net::NetClient client(copt);
  std::string error;
  if (!client.connect(host, port, &error)) {
    std::fprintf(stderr, "netclient: connect %s:%u failed: %s\n", host.c_str(),
                 port, error.c_str());
    return 1;
  }
  std::printf("netclient: connected to %s (%s:%u)\n",
              client.server_name().c_str(), host.c_str(), port);

  ImageU8 last;
  int received = 0;
  uint64_t dropped = 0;
  WallTimer wall;

  if (mode == "metrics") {
    const uint8_t selector = format == "prometheus"
                                 ? net::kMetricsSelectorPrometheus
                                 : format == "trace" ? net::kMetricsSelectorTrace
                                                     : net::kMetricsSelectorJson;
    std::string doc;
    if (!client.fetch_metrics(&doc, &error, selector)) {
      std::fprintf(stderr, "netclient: metrics failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", doc.c_str());
    client.send_bye(nullptr);
    return 0;
  }

  if (mode == "render") {
    for (int f = 0; f < frames; ++f) {
      net::RenderRequestMsg req = request_for_frame(session, f, kind, size, step);
      if (trace) req.trace = obs::make_sampled_trace();
      net::FrameMsg meta;
      WallTimer rtt;
      if (!client.render(req, &last, &meta, &error)) {
        std::fprintf(stderr, "netclient: frame %d failed: %s\n", f, error.c_str());
        return 1;
      }
      std::printf("frame %3d: %3dx%-3d rtt %6.1f ms (render %5.1f ms, %s)\n", f,
                  last.width(), last.height(), rtt.millis(), meta.render_ms,
                  meta.cache_hit ? "cache hit" : "cache miss");
      print_span_table(meta);
      ++received;
    }
  } else {
    net::StreamRequestMsg req;
    req.stream_id = 1;
    req.session_id = session;
    req.volume.kind = kind;
    req.volume.tf_preset = kind == "ct" ? 1 : 0;
    req.volume.nx = req.volume.ny = req.volume.nz = size;
    req.step_deg = step;
    req.frames = static_cast<uint32_t>(frames);
    if (trace) req.trace = obs::make_sampled_trace();
    if (!client.open_stream(req, &error)) {
      std::fprintf(stderr, "netclient: open stream failed: %s\n", error.c_str());
      return 1;
    }
    for (;;) {
      net::NetClient::Event event;
      if (!client.next_event(&event, &error)) {
        std::fprintf(stderr, "netclient: stream failed: %s\n", error.c_str());
        return 1;
      }
      if (event.kind == net::NetClient::Event::Kind::kError) {
        std::fprintf(stderr, "netclient: server error (%u): %s\n",
                     event.error.status, event.error.message.c_str());
        return 1;
      }
      if (event.kind == net::NetClient::Event::Kind::kStreamEnd) {
        std::printf("stream end: %u sent, %u dropped by server\n",
                    event.end.frames_sent, event.end.frames_dropped);
        dropped = event.end.frames_dropped;
        break;
      }
      last = std::move(event.image);
      ++received;
      print_span_table(event.frame);
      if (event.frame.dropped_before > 0) {
        std::printf("frame seq %3u: (%u dropped before this one)\n",
                    event.frame.seq, event.frame.dropped_before);
      }
    }
  }

  const double wall_ms = wall.millis();
  std::printf("netclient: %d frames in %.0f ms (%.1f fps), %llu B sent, "
              "%llu B received, %llu dropped\n",
              received, wall_ms,
              wall_ms > 0 ? 1e3 * received / wall_ms : 0.0,
              static_cast<unsigned long long>(client.bytes_sent()),
              static_cast<unsigned long long>(client.bytes_received()),
              static_cast<unsigned long long>(dropped));
  if (!ppm_path.empty() && last.width() > 0) {
    if (write_ppm(ppm_path, last)) {
      std::printf("netclient: wrote %s\n", ppm_path.c_str());
    } else {
      std::fprintf(stderr, "netclient: cannot write %s\n", ppm_path.c_str());
    }
  }
  client.send_bye(nullptr);
  return 0;
}
