#include "alloc_probe.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};

void* counted_alloc(std::size_t n) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (::posix_memalign(&p, align, n ? n : 1) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  if (!p) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace psw::tools {

AllocSnapshot alloc_snapshot() {
  AllocSnapshot s;
  s.allocations = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

AllocSnapshot alloc_delta(const AllocSnapshot& since) {
  const AllocSnapshot now = alloc_snapshot();
  AllocSnapshot d;
  d.allocations = now.allocations - since.allocations;
  d.frees = now.frees - since.frees;
  d.bytes = now.bytes - since.bytes;
  return d;
}

}  // namespace psw::tools

// Global replacements. Every user-visible variant funnels into the counted
// malloc/free wrappers so nothing in the process escapes the tally.

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
