#!/usr/bin/env bash
# clang-tidy over the library, tool, test and benchmark sources, using the
# checks pinned in .clang-tidy. Skips gracefully (exit 0 with a notice)
# when clang-tidy is not installed, so scripts/ci.sh works on minimal
# toolchains; the GitHub workflow installs it and gets the real run.
# Usage: scripts/lint.sh [build-dir]   (default: ./lint-build)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
out=${1:-"$root/lint-build"}
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "lint: $tidy not found, skipping (install clang-tidy to run locally)"
  exit 0
fi

cmake -B "$out" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# tests/compile_fail is excluded: its cases build via try_compile at
# configure time, so they have no compile_commands entries (and the fail_*
# cases are deliberately buggy).
mapfile -t sources < <(find "$root/src" "$root/tools" "$root/tests" "$root/bench" \
  -name '*.cpp' ! -path '*/compile_fail/*' | sort)
echo "lint: checking ${#sources[@]} files with $tidy"
printf '%s\n' "${sources[@]}" | xargs -P "$jobs" -n 4 "$tidy" -p "$out" --quiet

echo "lint OK"
