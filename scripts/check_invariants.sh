#!/usr/bin/env bash
# Repo-invariant lint: mechanical rules that the type system and the test
# suite cannot express, checked over the source tree on every CI run.
#
#   1. Lock discipline — raw std::mutex / std::lock_guard / std::unique_lock
#      / std::condition_variable (and friends) appear ONLY in util/sync.hpp;
#      everything else must go through the annotated psw::Mutex / MutexLock /
#      CondVar so Clang's thread-safety analysis sees every acquisition.
#   2. PSW_NO_THREAD_SAFETY_ANALYSIS is an escape hatch with a whitelist
#      (sync.hpp defines it; steal_queue.hpp may use it for the racy
#      victim-selection read). Anywhere else is an error.
#   3. Every memory_order_relaxed carries a "relaxed:" audit comment on the
#      same line or within the 4 lines above it, stating why relaxed
#      ordering is sufficient at that site.
#   4. Zero-allocation delivery path (clang-query, AST-level) — the warm
#      frame-delivery functions that bench/memserve pins at 0 allocs/frame
#      must contain no new-expressions or make_unique/make_shared calls,
#      and the strictly in-place subset must not even grow a container.
#
# Rules 1-3 are plain grep/awk and always run. Rule 4 needs clang-query
# (clang-tools); like scripts/lint.sh, it skips gracefully with a notice
# when the binary is absent so the script works on minimal toolchains —
# the GitHub workflow installs clang-tools and gets the real run.
# Usage: scripts/check_invariants.sh [build-dir]  (default: ./invariants-build)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
out=${1:-"$root/invariants-build"}
fail=0

# ---------------------------------------------------------------- rule 1
echo "==> invariant: raw std locking primitives only in util/sync.hpp"
lock_pattern='std::(mutex|recursive_mutex|timed_mutex|shared_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b'
while IFS= read -r f; do
  # Strip line comments first: prose ("wraps a std::mutex") is fine, code
  # is not. sed keeps line structure, so reported line numbers are real.
  hits=$(sed 's@//.*@@' "$f" | grep -nE "$lock_pattern" || true)
  if [ -n "$hits" ]; then
    echo "FAIL: raw locking primitive outside util/sync.hpp in $f:"
    echo "$hits" | sed 's/^/  /'
    echo "  (use psw::Mutex / psw::MutexLock / psw::CondVar from util/sync.hpp)"
    fail=1
  fi
done < <(find "$root/src" \( -name '*.hpp' -o -name '*.cpp' \) \
           ! -path '*/util/sync.hpp' | sort)

# ---------------------------------------------------------------- rule 2
echo "==> invariant: NO_THREAD_SAFETY_ANALYSIS only in whitelisted files"
escapes=$(grep -rn 'PSW_NO_THREAD_SAFETY_ANALYSIS' "$root/src" \
  | grep -v 'src/util/sync\.hpp' \
  | grep -v 'src/parallel/steal_queue\.hpp' || true)
if [ -n "$escapes" ]; then
  echo "FAIL: thread-safety analysis escape outside the whitelist:"
  echo "$escapes" | sed 's/^/  /'
  echo "  (annotate the real capability instead, or extend the whitelist"
  echo "   here with a justification)"
  fail=1
fi

# ---------------------------------------------------------------- rule 3
echo "==> invariant: every memory_order_relaxed has a 'relaxed:' audit comment"
while IFS= read -r f; do
  bad=$(awk '
    { line[FNR] = $0; code = $0; sub(/\/\/.*/, "", code) }
    code ~ /memory_order_relaxed/ {
      ok = 0
      for (i = FNR; i >= FNR - 4 && i >= 1; i--)
        if (line[i] ~ /relaxed:/) { ok = 1; break }
      if (!ok) printf "  %d: %s\n", FNR, $0
    }' "$f")
  if [ -n "$bad" ]; then
    echo "FAIL: unaudited memory_order_relaxed in $f:"
    echo "$bad"
    echo "  (add a '// relaxed: <why relaxed ordering is sufficient>' comment"
    echo "   on the same line or within the 4 lines above)"
    fail=1
  fi
done < <(grep -rlE 'memory_order_relaxed' "$root/src" --include='*.hpp' \
           --include='*.cpp' | sort)

# ---------------------------------------------------------------- rule 4
echo "==> invariant: zero-allocation delivery path (clang-query AST rules)"
cq=${CLANG_QUERY:-clang-query}
if ! command -v "$cq" >/dev/null 2>&1; then
  echo "invariants: $cq not found, skipping AST rules (install clang-tools"
  echo "to run locally; rules 1-3 above still ran)"
else
  cmake -B "$out" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

  # Functions on the warm delivery path: a rendered frame travels
  # encode_meta/encode_append -> send_frame -> queue_send (headers via
  # encode_header/put_u32_at) -> write_ready, with recycle_frame/release/
  # discard_outbound returning storage to the pools. bench/memserve pins
  # this path at 0 allocations per warm frame; these AST rules make the
  # "how" a reviewable invariant instead of a benchmark-only observation.
  #
  # The render inner loop is held to the same no-new rule: render() (both
  # parallel renderers, including every worker lambda in their bodies — the
  # parent map reaches through LambdaExpr), the *_into partition helpers
  # and the warp splitter draw all per-frame storage from the renderer's
  # FrameScratch. The scratch's own grow path (FrameScratch::begin_frame,
  # a separate function in frame_scratch.hpp) is intentionally outside the
  # matched set: growth on a P/dims change is the one legal allocation.
  delivery='"send_frame","queue_send","write_ready","encode_append","encode_meta","encode_header","put_u32_at","recycle_frame","release","discard_outbound","render","prefix_sum_into","prefix_sum_parallel_into","balanced_partition_into","uniform_partition_into","warp_x_interval"'
  # The strictly in-place subset: these may not even append to a container
  # (the wider set legitimately push_backs into reserved pooled/member
  # scratch, which reuses capacity on the warm path).
  inplace='"write_ready","put_u32_at","encode_header","discard_outbound"'
  files=(
    "$root/src/net/server.cpp"
    "$root/src/net/frame_codec.cpp"
    "$root/src/net/wire.cpp"
    "$root/src/serve/service.cpp"
    "$root/src/util/buffer_pool.cpp"
    "$root/src/parallel/new_renderer.cpp"
    "$root/src/parallel/old_renderer.cpp"
    "$root/src/parallel/partition.cpp"
  )

  cq_out=$("$cq" -p "$out" \
    -c "match cxxNewExpr(isExpansionInMainFile(), hasAncestor(functionDecl(hasAnyName($delivery))))" \
    -c "match callExpr(isExpansionInMainFile(), callee(functionDecl(hasAnyName(\"make_unique\",\"make_shared\"))), hasAncestor(functionDecl(hasAnyName($delivery))))" \
    -c "match cxxMemberCallExpr(isExpansionInMainFile(), callee(cxxMethodDecl(hasAnyName(\"push_back\",\"emplace_back\",\"emplace\",\"insert\",\"resize\",\"reserve\",\"assign\",\"append\"))), hasAncestor(functionDecl(hasAnyName($inplace))))" \
    "${files[@]}" 2>&1) || {
    echo "FAIL: clang-query did not run cleanly:"
    echo "$cq_out" | tail -40 | sed 's/^/  /'
    fail=1
  }
  matches=$(echo "$cq_out" | grep -c 'binds here' || true)
  if [ "$matches" -ne 0 ]; then
    echo "FAIL: allocation or container growth on the zero-alloc delivery path:"
    echo "$cq_out" | grep -B1 -A3 'binds here' | sed 's/^/  /'
    fail=1
  else
    echo "invariants: delivery-path AST rules clean over ${#files[@]} files"
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "INVARIANTS FAILED"
  exit 1
fi
echo "invariants OK"
