#!/usr/bin/env bash
# Continuous-integration driver: a warnings-as-errors release build with the
# full test suite, the same suite again under ASan+UBSan and under fatal
# UBSan, the threading tests under TSan, clang-tidy and the Clang
# thread-safety analysis (both when clang is available), the repo-invariant
# lint, the trace race-checker over both renderers, and a smoke run of the
# kernel benchmarks (JSON report, to catch bit-rot in the --json path).
# Usage: scripts/ci.sh [build-root]   (default: ./ci-build)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
out=${1:-"$root/ci-build"}
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "==> Release build (-Werror) + tests"
cmake -B "$out/release" -S "$root" -DCMAKE_BUILD_TYPE=Release -DPSW_WERROR=ON
cmake --build "$out/release" -j "$jobs"
ctest --test-dir "$out/release" --output-on-failure -j "$jobs"

echo "==> ASan+UBSan build + tests"
cmake -B "$out/sanitize" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPSW_WERROR=ON -DPSW_SANITIZE=address
cmake --build "$out/sanitize" -j "$jobs"
ctest --test-dir "$out/sanitize" --output-on-failure -j "$jobs"

echo "==> UBSan build (every finding fatal) + tests"
# The ASan tree above already runs UBSan in recoverable mode; this tree sets
# -fno-sanitize-recover=all so any UB aborts the test instead of printing.
cmake -B "$out/ubsan" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPSW_WERROR=ON -DPSW_SANITIZE=undefined
cmake --build "$out/ubsan" -j "$jobs"
ctest --test-dir "$out/ubsan" --output-on-failure -j "$jobs"

echo "==> TSan build + threading tests"
# TSan is incompatible with ASan, hence its own tree. Only the tests that
# exercise real threads matter here; the serial/tracing suites are covered
# above and would only slow this stage down.
cmake -B "$out/tsan" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPSW_WERROR=ON -DPSW_SANITIZE=thread
cmake --build "$out/tsan" -j "$jobs" \
  --target test_parallel_infra test_parallel_renderers test_fastpath test_serve \
  test_prepare test_net test_cluster test_buffer_pool test_sync test_obs \
  loadgen netbench
# The annotated Mutex/CondVar wrappers themselves (adopt/release handoff
# across the condvar sleep) under the race detector.
"$out/tsan/tests/test_sync"
"$out/tsan/tests/test_parallel_infra"
"$out/tsan/tests/test_parallel_renderers"
"$out/tsan/tests/test_fastpath"
# test_prepare under TSan covers the slab-parallel classifier and the
# concurrent per-axis chunked encoders (disjoint writes, seam stitching).
"$out/tsan/tests/test_prepare"
"$out/tsan/tests/test_serve"
# test_net under TSan covers the poll loop, the completion queue handoff and
# the drop-oldest backpressure path with real sockets.
"$out/tsan/tests/test_net"
# test_cluster under TSan covers the router's poll thread against client
# threads, the probe/eject/rejoin lifecycle and the mid-stream shard-loss
# path (real shards, real sockets).
"$out/tsan/tests/test_cluster"
# Buffer/frame pool concurrency: the multi-threaded acquire/release hammers
# run here under TSan (and under ASan in the full suite above).
"$out/tsan/tests/test_buffer_pool"
# The span recorder's striped rings and seqlock slots under the race
# detector: many writer threads against a concurrent snapshot reader.
"$out/tsan/tests/test_obs"

echo "==> clang-tidy"
"$root/scripts/lint.sh" "$out/lint"

echo "==> Clang thread-safety analysis (-Werror=thread-safety)"
# The capability annotations in util/sync.hpp only do work under Clang;
# this stage proves every GUARDED_BY/REQUIRES contract holds (and the
# configure re-runs tests/compile_fail, whose negative cases only bite
# here). Skips gracefully on toolchains without clang, like lint above.
clangxx=${PSW_CLANGXX:-clang++}
if command -v "$clangxx" >/dev/null 2>&1; then
  cmake -B "$out/tsa" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="$clangxx" -DPSW_THREAD_SAFETY=ON
  cmake --build "$out/tsa" -j "$jobs"
else
  echo "thread-safety: $clangxx not found, skipping (install clang to run locally)"
fi

echo "==> Repo invariants (lock discipline, zero-alloc delivery, relaxed audit)"
"$root/scripts/check_invariants.sh" "$out/invariants"

echo "==> Trace-level race check (both renderers, MRI+CT, 1/4/16 procs)"
"$out/release/tools/racecheck" --size=32 --procs=1,4,16

echo "==> Kernel benchmark smoke run (JSON report)"
(cd "$out/release/bench" && ./kernels --json "$out/BENCH_kernels.json" \
  --benchmark_min_time=0.01s >/dev/null)
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/BENCH_kernels.json"

echo "==> Frame-serving smoke run (loadgen, small volume, 2 sessions)"
"$out/release/tools/loadgen" --sessions=2 --threads=2 --frames=6 --size=32 \
  --volumes=2 --prepare-threads=2 --json="$out/BENCH_serve.json"
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['results']['failed'] == 0, d; \
assert d['results']['cold_start_latency_ms']['count'] > 0, d; \
assert 'allocs_per_frame' in d['results'], d; \
assert d['service']['frame_pool']['outstanding'] == 0, d" "$out/BENCH_serve.json"
# Same shape under TSan to exercise the queue/cache/scheduler concurrency,
# including the parallel preparation pipeline behind cache misses.
"$out/tsan/tools/loadgen" --sessions=2 --threads=2 --frames=4 --size=24 \
  --volumes=2 --prepare-threads=2 --json=

echo "==> Volume-preparation benchmark smoke run (bit-identity gate)"
# Exits non-zero if any parallel/serial output hash diverges from the seed
# encoder; the JSON check pins the report shape and the identity flag.
(cd "$out/release/bench" && ./prepare --sizes=128 --threads=1,2 --repeat=1 \
  --json="$out/BENCH_prepare.json" >/dev/null)
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['all_identical'] is True, d" "$out/BENCH_prepare.json"

echo "==> Network frame-delivery smoke run (netbench, loopback)"
# Exits non-zero on any protocol error or failed frame; the JSON check pins
# the codec's headline guarantee (wire bytes well under raw RGBA).
"$out/release/tools/netbench" --sessions=2 --threads=2 --frames=12 --size=40 \
  --json="$out/BENCH_net.json"
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); r=d['results']; \
assert r['protocol_errors'] == 0 and r['failures'] == 0, d; \
assert r['wire_ratio'] <= 0.6, d; \
assert 'allocs_per_frame' in r, d; \
assert r['bytes_copied_per_frame'] == 0, d" "$out/BENCH_net.json"
# Server connection handling + backpressure under TSan through real sockets.
"$out/tsan/tools/netbench" --sessions=2 --threads=2 --frames=6 --size=32 --json=

echo "==> Sharded-cluster smoke run (2 shards + router, real sockets)"
# netbench --cluster boots the shards and the router in-process and exits
# non-zero if throughput fails to scale, a protocol error appears, or the
# consistent-hash placement misses its warm-shard hit rate. The JSON check
# re-asserts the headline contract: zero protocol errors everywhere and
# both shards actually served frames at width 2.
"$out/release/tools/netbench" --cluster --shards=1,2 \
  --json="$out/BENCH_cluster.json"
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['results']['passed'] is True, d; \
assert all(s['protocol_errors'] == 0 for s in d['sweep']), d; \
two = [s for s in d['sweep'] if s['shards'] == 2][0]; \
assert all(p['frames_forwarded'] > 0 for p in two['per_shard']), d" \
  "$out/BENCH_cluster.json"

echo "==> Tracing smoke run (sampled request through 2 shards + traceview)"
# The cluster sweep again, this time with span dumps: the traced probe at
# width 2 must yield a Prometheus exposition from the router and per-node
# trace dumps that traceview reassembles into one tree containing the
# router-proxy span and the shard-side stage spans.
"$out/release/tools/netbench" --cluster --shards=2 --trace-out="$out/traces" \
  --json=
grep -q '# TYPE psw_router_requests_routed_total counter' "$out/traces/router_prom.txt"
grep -q 'psw_trace_spans_recorded_total' "$out/traces/router_prom.txt"
"$out/release/tools/traceview" "$out/traces"/*_trace.json > "$out/traces/tree.txt"
python3 - "$out/traces/tree.txt" <<'EOF'
import sys
text = open(sys.argv[1]).read()
for needle in ("trace ", "router-proxy", "request", "composite", "warp",
               "frame-encode", "send", "queue-wait"):
    assert needle in text, (needle, text)
EOF

echo "==> Serving memory-path smoke run (memserve, allocs-per-frame gates)"
# memserve exits non-zero when the warm delivery path (pooled payload ->
# encode-in-place -> header stamp) costs more than --gate allocations per
# frame, or when the whole warm end-to-end path (admission -> scheduler ->
# pooled render scratch -> delivery) exceeds --gate-e2e; the JSON check
# also pins the zero-copy claim and the before/after contrast against the
# legacy flat-copy shape.
(cd "$out/release/bench" && ./memserve --gate=2 --gate-e2e=2 \
  --json="$out/BENCH_memserve.json" >/dev/null)
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['delivery']['allocs_per_frame'] <= 2, d; \
assert d['delivery']['bytes_copied_per_frame'] == 0, d; \
assert d['end_to_end']['allocs_per_frame'] <= 2, d; \
assert d['end_to_end']['alloc_bytes_per_frame'] <= 256, d; \
assert d['legacy_delivery']['allocs_per_frame'] > d['delivery']['allocs_per_frame'], d; \
assert d['traced_delivery']['wire_bytes_per_frame'] > d['delivery']['wire_bytes_per_frame'], d" \
  "$out/BENCH_memserve.json"

echo "CI OK"
