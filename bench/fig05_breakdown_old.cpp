// Figure 5: breakdown of cumulative rendering time (busy / memory stall /
// synchronization) of the OLD parallel shear warper on the 512-class MRI
// brain, on the distributed-memory machines (DASH and the Simulator).
#include "bench/common.hpp"

namespace psw {
namespace {

void breakdown_on(bench::Context& ctx, const MachineConfig& machine) {
  const Dataset& data = ctx.mri(512);
  std::printf("\n--- %s ---\n", machine.name.c_str());
  TextTable table({"procs", "busy %", "memory %", "sync %"});
  for (int procs : ctx.procs()) {
    const SimResult r = simulate(machine, trace_frame(Algo::kOld, data, procs));
    const auto pct = bench::pct_breakdown(r.busy_sum(), r.mem_sum(), r.sync_sum());
    table.add_row({std::to_string(procs), fmt(pct[0], 1), fmt(pct[1], 1),
                   fmt(pct[2], 1)});
  }
  table.print();
}

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 5", "old-algorithm time breakdown (512-class MRI)",
                "memory-system stall time dominates the decline: ~18% of time "
                "at 1 processor growing to ~50% at 32 on DASH; smaller but "
                "still dominant on the simulated machine");
  breakdown_on(ctx, ctx.machine(MachineConfig::dash()));
  breakdown_on(ctx, ctx.machine(MachineConfig::simulator()));
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
