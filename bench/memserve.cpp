// Memory-behaviour bench for the serving path: counts heap allocations and
// redundantly-copied bytes per frame rather than milliseconds, because the
// zero-copy serving work is invisible to a latency quantile until the
// allocator is contended. Three sections:
//
//   delivery         the tentpole path, compositor output -> wire bytes:
//                    pooled payload acquire, FrameMsg::encode_meta, the
//                    codec's encode_append straight into the payload, blob
//                    length patch, 16-byte header stamp (the writev pair).
//                    Steady state this must cost <= --gate (default 2)
//                    allocations per frame and copy zero already-encoded
//                    bytes; the bench exits 1 otherwise, and scripts/ci.sh
//                    runs it as a smoke gate.
//
//   traced_delivery  the same path with a sampled trace on every frame:
//                    span records into a SpanRecorder plus the wall-
//                    anchored trace tail appended to the payload. This is
//                    the worst case (100% sampling); the delta against
//                    `delivery` is the whole observability overhead, and
//                    it is reported, not gated — sampling off must stay at
//                    the `delivery` figure, which IS gated.
//
//   legacy_delivery  the pre-pool shape for contrast: a fresh blob vector
//                    per frame, FrameMsg::encode into a fresh payload
//                    (copying the blob), encode_message into a fresh flat
//                    send buffer (copying the payload). Same encoder class,
//                    same frames — the delta is the buffering strategy.
//
//   end_to_end       one warm RenderService frame loop through the
//                    callback (submit_async) path NetServer uses, so the
//                    report also shows what a whole served frame costs —
//                    render scratch included. Gated with --gate-e2e=N
//                    (0 disables): render-path alloc regressions then fail
//                    CI just like delivery-path ones.
//
//   ./bench/memserve [--frames=96] [--warmup=16] [--inputs=8] [--size=64]
//                    [--threads=4] [--step=2.0] [--gate=2] [--gate-e2e=0]
//                    [--json=BENCH_memserve.json]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/frame_codec.hpp"
#include "net/wire.hpp"
#include "obs/trace.hpp"
#include "parallel/animation.hpp"
#include "serve/service.hpp"
#include "tools/alloc_probe.hpp"
#include "util/buffer_pool.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace psw;
using namespace psw::serve;

// Codec blob header (u16 w, u16 h, u8 codec, u8 reserved) — sizing term for
// the raw-fallback worst case, mirroring NetServer's payload hint.
constexpr size_t kCodecHeader = 6;

struct SectionResult {
  double allocs_per_frame = 0.0;
  double alloc_bytes_per_frame = 0.0;
  double copied_bytes_per_frame = 0.0;  // already-encoded bytes re-copied
  double wire_bytes_per_frame = 0.0;
  double ms_per_frame = 0.0;
  uint64_t frames = 0;
};

RenderRequest request_for_frame(int frame, int size, double step) {
  VolumeKey key;
  key.kind = "mri";
  key.tf_preset = 0;
  key.nx = key.ny = key.nz = size;
  AnimationPath path;
  path.dims = {key.nx, key.ny, key.nz};
  path.degrees_per_frame = step;
  RenderRequest req;
  req.session_id = 1;
  req.volume = key;
  req.camera = path.camera(frame);
  return req;
}

void write_section(JsonWriter& w, const SectionResult& r) {
  w.begin_object()
      .field("frames", r.frames)
      .field("allocs_per_frame", r.allocs_per_frame)
      .field("alloc_bytes_per_frame", r.alloc_bytes_per_frame)
      .field("bytes_copied_per_frame", r.copied_bytes_per_frame)
      .field("wire_bytes_per_frame", r.wire_bytes_per_frame)
      .field("ms_per_frame", r.ms_per_frame)
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"frames", "warmup", "inputs", "size", "threads", "step",
                       "gate", "gate-e2e", "json"});
  const int frames = flags.get_int("frames", 96);
  const int warmup = flags.get_int("warmup", 16);
  const int inputs = flags.get_int("inputs", 8);
  const int size = flags.get_int("size", 64);
  const double step = flags.get_double("step", 2.0);
  const double gate = flags.get_double("gate", 2.0);
  const double gate_e2e = flags.get_double("gate-e2e", 0.0);
  const std::string json_path = flags.get("json", "BENCH_memserve.json");

  ServiceOptions sopt;
  sopt.worker_threads = flags.get_int("threads", 4);
  RenderService service(sopt);

  // Render the input set once: `inputs` consecutive orbit frames, so the
  // delta codec sees realistic frame-to-frame change when we cycle them.
  std::vector<ImageU8> rendered;
  for (int f = 0; f < inputs; ++f) {
    Ticket t = service.submit(request_for_frame(f, size, step));
    if (!t.accepted()) {
      std::fprintf(stderr, "memserve: frame %d not admitted\n", f);
      return 1;
    }
    FrameResult r = t.result.get();
    if (r.status != ServeStatus::kOk) {
      std::fprintf(stderr, "memserve: frame %d failed\n", f);
      return 1;
    }
    rendered.push_back(std::move(r.image));
  }
  const size_t raw_bytes = rendered[0].pixel_count() * 4;
  std::printf("memserve: %d input frames, %zux%zu px (%zu raw bytes), "
              "%d warmup + %d measured iterations\n",
              inputs, static_cast<size_t>(rendered[0].width()),
              static_cast<size_t>(rendered[0].height()), raw_bytes, warmup,
              frames);

  // --- delivery: the zero-copy path, exactly NetServer::send_frame's moves
  SectionResult delivery;
  {
    net::FrameEncoder encoder;
    BufferPool pool;
    uint64_t wire_bytes = 0;
    uint8_t sink = 0;  // keep the stamped headers observable
    auto deliver_one = [&](const ImageU8& img, uint32_t seq) {
      net::FrameMsg msg;
      msg.stream_id = 1;
      msg.seq = seq;
      msg.render_ms = 1.0;
      msg.total_ms = 2.0;
      msg.cache_hit = 1;
      PooledBuffer payload = pool.acquire(net::FrameMsg::kMetaSize + 4 +
                                          kCodecHeader + img.pixel_count() * 4);
      msg.encode_meta(&payload.vec());
      const size_t blob_len_at = payload.vec().size();
      net::put_u32(&payload.vec(), 0);
      encoder.encode_append(img, &payload.vec());
      net::put_u32_at(&payload.vec(), blob_len_at,
                      static_cast<uint32_t>(payload.vec().size() - blob_len_at - 4));
      uint8_t header[net::kHeaderSize];
      net::encode_header(net::MsgType::kFrame, payload.vec().data(),
                         payload.vec().size(), header);
      sink ^= header[12];
      wire_bytes += net::kHeaderSize + payload.vec().size();
      // payload handle destructs here -> storage returns to the pool (the
      // real server first parks it in the send queue for writev)
    };
    uint32_t seq = 0;
    for (int f = 0; f < warmup; ++f)
      deliver_one(rendered[static_cast<size_t>(f % inputs)], seq++);
    wire_bytes = 0;
    const tools::AllocSnapshot before = tools::alloc_snapshot();
    WallTimer timer;
    for (int f = 0; f < frames; ++f)
      deliver_one(rendered[static_cast<size_t>(f % inputs)], seq++);
    const double ms = timer.millis();
    const tools::AllocSnapshot d = tools::alloc_delta(before);
    delivery.frames = static_cast<uint64_t>(frames);
    delivery.allocs_per_frame = static_cast<double>(d.allocations) / frames;
    delivery.alloc_bytes_per_frame = static_cast<double>(d.bytes) / frames;
    delivery.copied_bytes_per_frame = 0.0;  // nothing encoded is re-copied
    delivery.wire_bytes_per_frame = static_cast<double>(wire_bytes) / frames;
    delivery.ms_per_frame = ms / frames;
    if (sink == 0x7F) std::printf(" ");  // defeat dead-code elimination
  }

  // --- traced_delivery: same path, 100%-sampled — recorder writes + tail
  SectionResult traced;
  {
    net::FrameEncoder encoder;
    BufferPool pool;
    obs::SpanRecorder recorder;
    uint64_t wire_bytes = 0;
    uint8_t sink = 0;
    auto deliver_one = [&](const ImageU8& img, uint32_t seq) {
      net::FrameMsg msg;
      msg.stream_id = 1;
      msg.seq = seq;
      msg.render_ms = 1.0;
      msg.total_ms = 2.0;
      msg.cache_hit = 1;
      uint64_t root = 0;
      msg.trace = obs::make_sampled_trace(&root);
      // The stage spans a warm served frame carries: request + queue wait
      // + composite + warp, parented the way the service emits them.
      const int64_t now = steady_now_ns();
      obs::SpanRecord stage;
      stage.trace_hi = msg.trace.trace_hi;
      stage.trace_lo = msg.trace.trace_lo;
      stage.tag = seq;
      const obs::SpanKind kinds[] = {
          obs::SpanKind::kQueueWait, obs::SpanKind::kComposite,
          obs::SpanKind::kWarp, obs::SpanKind::kRequest};
      uint64_t request_span = 0;
      for (const obs::SpanKind k : kinds) {
        stage.kind = k;
        stage.span_id = obs::next_span_id();
        stage.parent_id = k == obs::SpanKind::kRequest ? root : request_span;
        if (k == obs::SpanKind::kRequest) request_span = stage.span_id;
        stage.t_start_ns = now - 1'000'000;
        stage.t_end_ns = now;
        recorder.record(msg.trace, stage);
        msg.spans.push_back(stage);
      }
      PooledBuffer payload = pool.acquire(
          net::FrameMsg::kMetaSize + 4 + kCodecHeader + img.pixel_count() * 4 +
          net::kTraceTailHeaderSize +
          (msg.spans.size() + 1) * net::kWireSpanSize);
      msg.encode_meta(&payload.vec());
      const size_t blob_len_at = payload.vec().size();
      net::put_u32(&payload.vec(), 0);
      encoder.encode_append(img, &payload.vec());
      net::put_u32_at(&payload.vec(), blob_len_at,
                      static_cast<uint32_t>(payload.vec().size() - blob_len_at - 4));
      obs::SpanRecord enc = stage;
      enc.kind = obs::SpanKind::kFrameEncode;
      enc.span_id = obs::next_span_id();
      enc.parent_id = request_span;
      recorder.record(msg.trace, enc);
      msg.spans.push_back(enc);
      for (obs::SpanRecord& s : msg.spans) {
        s.t_start_ns = steady_to_wall_ns(s.t_start_ns);
        s.t_end_ns = steady_to_wall_ns(s.t_end_ns);
      }
      msg.encode_trace_tail(&payload.vec());
      uint8_t header[net::kHeaderSize];
      net::encode_header(net::MsgType::kFrame, payload.vec().data(),
                         payload.vec().size(), header);
      sink ^= header[12];
      wire_bytes += net::kHeaderSize + payload.vec().size();
    };
    uint32_t seq = 0;
    for (int f = 0; f < warmup; ++f)
      deliver_one(rendered[static_cast<size_t>(f % inputs)], seq++);
    wire_bytes = 0;
    const tools::AllocSnapshot before = tools::alloc_snapshot();
    WallTimer timer;
    for (int f = 0; f < frames; ++f)
      deliver_one(rendered[static_cast<size_t>(f % inputs)], seq++);
    const double ms = timer.millis();
    const tools::AllocSnapshot d = tools::alloc_delta(before);
    traced.frames = static_cast<uint64_t>(frames);
    traced.allocs_per_frame = static_cast<double>(d.allocations) / frames;
    traced.alloc_bytes_per_frame = static_cast<double>(d.bytes) / frames;
    traced.copied_bytes_per_frame = 0.0;
    traced.wire_bytes_per_frame = static_cast<double>(wire_bytes) / frames;
    traced.ms_per_frame = ms / frames;
    if (sink == 0x7F) std::printf(" ");
  }

  // --- legacy_delivery: fresh vectors + flat-copy, the pre-pool shape
  SectionResult legacy;
  {
    net::FrameEncoder encoder;
    uint64_t wire_bytes = 0;
    uint64_t copied = 0;
    auto deliver_one = [&](const ImageU8& img, uint32_t seq) {
      net::FrameMsg msg;
      msg.stream_id = 1;
      msg.seq = seq;
      msg.render_ms = 1.0;
      msg.total_ms = 2.0;
      msg.cache_hit = 1;
      std::vector<uint8_t> blob;
      encoder.encode(img, &blob);
      msg.encoded = std::move(blob);
      std::vector<uint8_t> payload;
      msg.encode(&payload);  // copies the blob into the payload
      std::vector<uint8_t> out;
      net::encode_message(net::MsgType::kFrame, payload, &out);  // copies again
      copied += msg.encoded.size() + payload.size();
      wire_bytes += out.size();
    };
    uint32_t seq = 0;
    for (int f = 0; f < warmup; ++f)
      deliver_one(rendered[static_cast<size_t>(f % inputs)], seq++);
    wire_bytes = copied = 0;
    const tools::AllocSnapshot before = tools::alloc_snapshot();
    WallTimer timer;
    for (int f = 0; f < frames; ++f)
      deliver_one(rendered[static_cast<size_t>(f % inputs)], seq++);
    const double ms = timer.millis();
    const tools::AllocSnapshot d = tools::alloc_delta(before);
    legacy.frames = static_cast<uint64_t>(frames);
    legacy.allocs_per_frame = static_cast<double>(d.allocations) / frames;
    legacy.alloc_bytes_per_frame = static_cast<double>(d.bytes) / frames;
    legacy.copied_bytes_per_frame = static_cast<double>(copied) / frames;
    legacy.wire_bytes_per_frame = static_cast<double>(wire_bytes) / frames;
    legacy.ms_per_frame = ms / frames;
  }

  // --- end_to_end: whole served frames through the warm service, via the
  // callback path NetServer takes (no per-frame promise/future state).
  SectionResult e2e;
  {
    int base = inputs;
    // Completion rendezvous: the callback stores the result and flips the
    // futex-waitable flag. The submit_async lambda captures one pointer, so
    // it fits std::function's small-buffer storage — no allocation.
    struct Sink {
      std::atomic<int> done{0};
      ServeStatus status = ServeStatus::kError;
      ImageU8 image;
    } sink;
    auto serve_one = [&](int f) -> bool {
      sink.status = ServeStatus::kError;
      const ServeStatus admitted = service.submit_async(
          request_for_frame(f, size, step), [sp = &sink](FrameResult r) {
            sp->status = r.status;
            sp->image = std::move(r.image);
            sp->done.store(1, std::memory_order_release);
            sp->done.notify_one();
          });
      if (admitted != ServeStatus::kOk) return false;
      sink.done.wait(0, std::memory_order_acquire);
      // relaxed: the next submit_async's queue handoff orders this reset
      // before the scheduler's completion store.
      sink.done.store(0, std::memory_order_relaxed);
      if (sink.status != ServeStatus::kOk) return false;
      service.recycle_frame(std::move(sink.image));
      return true;
    };
    for (int f = 0; f < warmup; ++f) serve_one(base + f);
    base += warmup;
    const tools::AllocSnapshot before = tools::alloc_snapshot();
    WallTimer timer;
    uint64_t ok = 0;
    for (int f = 0; f < frames; ++f) ok += serve_one(base + f) ? 1 : 0;
    const double ms = timer.millis();
    const tools::AllocSnapshot d = tools::alloc_delta(before);
    e2e.frames = ok;
    if (ok > 0) {
      e2e.allocs_per_frame = static_cast<double>(d.allocations) / ok;
      e2e.alloc_bytes_per_frame = static_cast<double>(d.bytes) / ok;
      e2e.ms_per_frame = ms / ok;
    }
  }
  service.drain();

  std::printf("delivery:        %6.2f allocs/frame, %8.0f B allocated, "
              "%8.0f B copied, %8.0f B wire, %.3f ms\n",
              delivery.allocs_per_frame, delivery.alloc_bytes_per_frame,
              delivery.copied_bytes_per_frame, delivery.wire_bytes_per_frame,
              delivery.ms_per_frame);
  std::printf("traced_delivery: %6.2f allocs/frame, %8.0f B allocated, "
              "%8.0f B copied, %8.0f B wire, %.3f ms (100%% sampled)\n",
              traced.allocs_per_frame, traced.alloc_bytes_per_frame,
              traced.copied_bytes_per_frame, traced.wire_bytes_per_frame,
              traced.ms_per_frame);
  std::printf("legacy_delivery: %6.2f allocs/frame, %8.0f B allocated, "
              "%8.0f B copied, %8.0f B wire, %.3f ms\n",
              legacy.allocs_per_frame, legacy.alloc_bytes_per_frame,
              legacy.copied_bytes_per_frame, legacy.wire_bytes_per_frame,
              legacy.ms_per_frame);
  std::printf("end_to_end:      %6.2f allocs/frame, %8.0f B allocated "
              "(render scratch included), %.3f ms\n",
              e2e.allocs_per_frame, e2e.alloc_bytes_per_frame,
              e2e.ms_per_frame);

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("config").begin_object()
        .field("frames", frames)
        .field("warmup", warmup)
        .field("inputs", inputs)
        .field("volume_size", size)
        .field("threads", sopt.worker_threads)
        .field("raw_bytes_per_frame", raw_bytes)
        .field("gate_allocs_per_frame", gate)
        .field("gate_e2e_allocs_per_frame", gate_e2e)
        .end_object();
    w.key("delivery");
    write_section(w, delivery);
    w.key("traced_delivery");
    write_section(w, traced);
    w.key("legacy_delivery");
    write_section(w, legacy);
    w.key("end_to_end");
    write_section(w, e2e);
    w.end_object();
    std::string body = w.str();
    body += '\n';
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "memserve: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (delivery.allocs_per_frame > gate) {
    std::fprintf(stderr,
                 "memserve: FAIL — delivery path costs %.2f allocs/frame "
                 "(gate %.2f)\n",
                 delivery.allocs_per_frame, gate);
    return 1;
  }
  if (gate_e2e > 0.0 && e2e.allocs_per_frame > gate_e2e) {
    std::fprintf(stderr,
                 "memserve: FAIL — end-to-end render path costs %.2f "
                 "allocs/frame (gate %.2f)\n",
                 e2e.allocs_per_frame, gate_e2e);
    return 1;
  }
  std::printf("memserve: OK — delivery path %.2f allocs/frame (gate %.2f), "
              "end-to-end %.2f allocs/frame (gate %s)\n",
              delivery.allocs_per_frame, gate, e2e.allocs_per_frame,
              gate_e2e > 0.0 ? "on" : "off");
  return 0;
}
