// Figure 22: execution-time breakdown of the NEW parallel shear warper on
// the SVM platform, 512-class MRI brain.
#include "bench/common.hpp"
#include "svmsim/svm.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 22", "new-algorithm SVM execution-time breakdown",
                "data and barrier wait collapse relative to the old program — "
                "coarse-grained private access patterns plus the eliminated "
                "inter-phase barrier — while lock time is slightly higher from "
                "chunk stealing; overall time improves dramatically");

  const Dataset& data = ctx.mri(512);
  TextTable table({"procs", "compute %", "data %", "lock %", "barrier %",
                   "faults", "multi-writer pages"});
  for (int p : ctx.procs()) {
    if (p < 4) continue;
    std::fprintf(stderr, "[bench] P=%d...\n", p);
    const TraceSet traces = trace_frame(Algo::kNew, data, p);
    SvmRunOptions opt;
    opt.warmup_intervals = traces.intervals() / 2;
    opt.p2p_interphase_sync = true;
    opt.lock_ops = frame_stats(Algo::kNew, data, p, WorkloadOptions{}).lock_ops;
    const SvmResult r = svm_simulate(SvmConfig{}, traces, opt);
    const double total =
        r.compute_sum() + r.data_sum() + r.lock_sum() + r.barrier_sum();
    table.add_row({std::to_string(p), fmt(100 * r.compute_sum() / total, 1),
                   fmt(100 * r.data_sum() / total, 1),
                   fmt(100 * r.lock_sum() / total, 1),
                   fmt(100 * r.barrier_sum() / total, 1),
                   std::to_string(r.page_faults), std::to_string(r.multi_writer_pages)});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
