// Figure 18: working sets of the NEW algorithm. Panel (a): miss rate vs
// cache size across processor counts (the working set *shrinks* with more
// processors, unlike the old algorithm's). Panel (b): across data sets at
// 32 processors (even the 512-class set fits in tens of KB).
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 18", "new-algorithm working sets",
                "(a) the knee moves to smaller caches as processors increase — "
                "a processor's contiguous block of scanlines contracts; (b) at "
                "32 processors even the 512-class set's working set is tiny "
                "(~64KB in the paper)");

  const MachineConfig base = MachineConfig::simulator();

  std::printf("\n--- (a) miss rate %% vs cache size, 512-class MRI ---\n");
  {
    const Dataset& data = ctx.mri(512);
    std::vector<int> procs{4, 16, 32};
    std::vector<TraceSet> traces;
    for (int p : procs) {
      std::fprintf(stderr, "[bench] tracing P=%d...\n", p);
      traces.push_back(trace_frame(Algo::kNew, data, p));
    }
    TextTable table({"cache KB", "P=4", "P=16", "P=32"});
    for (int kb = 1; kb <= 1024; kb *= 2) {
      std::vector<std::string> row{std::to_string(kb)};
      for (const auto& t : traces) {
        MachineConfig m = base;
        m.cache_bytes = static_cast<uint64_t>(kb) << 10;
        row.push_back(fmt(100 * simulate(m, t).miss_rate(true), 3));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }

  std::printf("\n--- (b) miss rate %% vs cache size across MRI sets (32 procs) ---\n");
  {
    std::vector<TraceSet> traces;
    for (int size : {128, 256, 512}) {
      std::fprintf(stderr, "[bench] tracing mri-%d...\n", size);
      traces.push_back(trace_frame(Algo::kNew, ctx.mri(size), 32));
    }
    TextTable table({"cache KB", "mri-128", "mri-256", "mri-512"});
    for (int kb = 1; kb <= 1024; kb *= 2) {
      std::vector<std::string> row{std::to_string(kb)};
      for (const auto& t : traces) {
        MachineConfig m = base;
        m.cache_bytes = static_cast<uint64_t>(kb) << 10;
        row.push_back(fmt(100 * simulate(m, t).miss_rate(true), 3));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
