// Figure 16: miss-type breakdown of the OLD vs NEW algorithms on the
// Simulator machine, 512-class MRI brain. Panel (a) equals Figure 7.
#include "bench/common.hpp"

namespace psw {
namespace {

void algo_table(bench::Context& ctx, Algo algo) {
  const Dataset& data = ctx.mri(512);
  const MachineConfig m = ctx.machine(MachineConfig::simulator());
  std::printf("\n--- %s algorithm ---\n", algo_name(algo));
  TextTable table({"procs", "capacity %", "conflict %", "true-share %",
                   "false-share %", "total %"});
  for (int procs : ctx.procs()) {
    std::fprintf(stderr, "[bench] %s P=%d...\n", algo_name(algo), procs);
    const SimResult r = simulate(m, trace_frame(algo, data, procs));
    table.add_row({std::to_string(procs),
                   fmt(100 * r.miss_rate_of(MissClass::kCapacity), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kConflict), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kTrueShare), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kFalseShare), 3),
                   fmt(100 * r.miss_rate(false), 3)});
  }
  table.print();
}

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 16", "old vs new miss breakdown (Simulator, 512-class MRI)",
                "the new algorithm greatly decreases sharing misses — "
                "particularly true sharing at the compositing/warp interface — "
                "and also reduces false sharing (fewer partition borders)");
  algo_table(ctx, Algo::kOld);
  algo_table(ctx, Algo::kNew);
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
