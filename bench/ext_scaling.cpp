// Extension study (the paper's §6 future work: "examine how it scales to
// even larger data sets and systems"): the supplementary 640-class MRI set
// and processor counts up to 64 on the Simulator machine, old vs new.
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Extension", "scaling beyond the paper: 640-class MRI, up to 64 procs",
                "(paper future work) the new algorithm's communication "
                "advantages — true/false sharing several times lower — persist "
                "at 64 processors (see the miss table). Self-relative speedups "
                "at reduced dataset scale favour the old algorithm spuriously: "
                "its worse 1-processor locality inflates its own baseline, and "
                "the aggregate cache crosses the scaled volume size between 32 "
                "and 64 processors; run --scale=full for the fair curve.");

  const Dataset& data = ctx.mri(640);
  const MachineConfig m = ctx.machine(MachineConfig::simulator());
  std::vector<int> procs{1, 8, 16, 32, 64};

  const auto old_curve = speedup_curve(Algo::kOld, data, m, procs);
  const auto new_curve = speedup_curve(Algo::kNew, data, m, procs);
  TextTable table({"procs", "old", "new", "new/old"});
  for (size_t i = 0; i < procs.size(); ++i) {
    table.add_row({std::to_string(procs[i]), fmt(old_curve[i].speedup, 2),
                   fmt(new_curve[i].speedup, 2),
                   fmt(new_curve[i].speedup / std::max(1e-9, old_curve[i].speedup), 2)});
  }
  table.print();

  std::printf("\nmiss breakdown at 64 processors:\n");
  TextTable miss({"algorithm", "capacity %", "true-share %", "false-share %",
                  "remote frac"});
  for (Algo algo : {Algo::kOld, Algo::kNew}) {
    const SimResult r = simulate(m, trace_frame(algo, data, 64));
    miss.add_row({algo_name(algo), fmt(100 * r.miss_rate_of(MissClass::kCapacity), 3),
                  fmt(100 * r.miss_rate_of(MissClass::kTrueShare), 3),
                  fmt(100 * r.miss_rate_of(MissClass::kFalseShare), 3),
                  fmt(r.remote_fraction(), 2)});
  }
  miss.print();
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
