// Volume-preparation benchmark: times the full classify + 3-axis encode
// pipeline three ways on the MRI/CT phantoms —
//   seed      the pre-optimization path (verbatim copy in seed_baseline.hpp):
//             double gradient fetch per voxel, no transparency skip,
//             per-voxel index rebuild in the encoder;
//   serial    today's serial path (fused gradient, per-density transparency
//             skip table, stride-walking chunk encoder);
//   parallel  the slab/chunk-parallel pipeline at each --threads value.
// Every variant's output is content-hashed and compared against the seed
// hashes; the run fails (exit 1) on any mismatch, so the speedups reported
// are for bit-identical outputs by construction.
//
//   ./bench/prepare [--kinds=mri,ct] [--sizes=128,256] [--threads=1,2,4,8]
//                   [--repeat=1] [--json=BENCH_prepare.json]
//
// Sizes name the paper dataset classes (mri-256 is 256x256x167, ct-256 is
// 256^3); a size with no matching spec benches a cube of that edge.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/seed_baseline.hpp"
#include "core/classify.hpp"
#include "parallel/prepare.hpp"
#include "phantom/phantom.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace psw;

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

std::vector<std::string> parse_str_list(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

DatasetSpec spec_for(const std::string& kind, int size_class) {
  const std::string want = kind + "-" + std::to_string(size_class);
  if (kind == "mri") {
    for (const auto& s : kMriSpecs) {
      if (want == s.name) return s;
    }
  } else {
    for (const auto& s : kCtSpecs) {
      if (want == s.name) return s;
    }
  }
  return {"", size_class, size_class, size_class};  // no spec: bench a cube
}

struct SeedResult {
  double classify_ms = 0.0;
  double encode_ms = 0.0;
  double total_ms = 0.0;
  uint64_t classified_hash = 0;
  uint64_t encoded_hash = 0;
};

SeedResult run_seed(const DensityVolume& density, const TransferFunction& tf,
                    const ClassifyOptions& copt) {
  SeedResult r;
  WallTimer t;
  const ClassifiedVolume classified = bench::seed::classify(density, tf, copt);
  r.classify_ms = t.millis();
  std::array<bench::seed::SeedRle, 3> rle;
  for (int c = 0; c < 3; ++c) {
    rle[c] = bench::seed::encode(classified, c, copt.alpha_threshold);
  }
  r.total_ms = t.millis();
  r.encode_ms = r.total_ms - r.classify_ms;
  r.classified_hash = classified_content_hash(classified);
  r.encoded_hash = bench::seed::encoded_content_hash(
      rle, {density.nx(), density.ny(), density.nz()}, copt.alpha_threshold);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  flags.require_known({"kinds", "sizes", "threads", "repeat", "json"});
  const auto kinds = parse_str_list(flags.get("kinds", "mri,ct"));
  const auto sizes = parse_int_list(flags.get("sizes", "128,256"));
  const auto threads = parse_int_list(flags.get("threads", "1,2,4,8"));
  const int repeat = std::max(1, flags.get_int("repeat", 1));
  const std::string json_path = flags.get("json", "BENCH_prepare.json");

  std::printf("Volume preparation: seed vs serial vs parallel pipeline\n");
  std::printf("(all variants hash-checked bit-identical against the seed output)\n\n");

  bool all_identical = true;
  JsonWriter w;
  w.begin_object();
  w.key("datasets").begin_array();

  for (const std::string& kind : kinds) {
    for (int size : sizes) {
      const DatasetSpec spec = spec_for(kind, size);
      const DensityVolume density = kind == "ct"
                                        ? make_ct_head(spec.nx, spec.ny, spec.nz)
                                        : make_mri_brain(spec.nx, spec.ny, spec.nz);
      const TransferFunction tf = kind == "ct" ? TransferFunction::ct_preset()
                                               : TransferFunction::mri_preset();
      const ClassifyOptions copt;
      std::printf("%s-%d (%dx%dx%d)\n", kind.c_str(), size, spec.nx, spec.ny, spec.nz);
      std::printf("  %-14s %12s %12s %12s %9s  %s\n", "variant", "classify ms",
                  "encode ms", "total ms", "speedup", "identical");

      // Best-of-repeat for every variant (phantom generation excluded).
      SeedResult seed = run_seed(density, tf, copt);
      for (int r = 1; r < repeat; ++r) {
        const SeedResult again = run_seed(density, tf, copt);
        if (again.total_ms < seed.total_ms) seed = again;
      }
      std::printf("  %-14s %12.1f %12.1f %12.1f %9s  %s\n", "seed",
                  seed.classify_ms, seed.encode_ms, seed.total_ms, "1.00x", "-");

      w.begin_object()
          .field("kind", kind)
          .field("size_class", size)
          .field("nx", spec.nx)
          .field("ny", spec.ny)
          .field("nz", spec.nz)
          .field("repeat", repeat);
      w.key("seed").begin_object()
          .field("classify_ms", seed.classify_ms)
          .field("encode_ms", seed.encode_ms)
          .field("total_ms", seed.total_ms)
          .end_object();
      w.key("variants").begin_array();

      for (int nthreads : threads) {
        PrepareOptions popt;
        popt.threads = nthreads;
        PrepareTiming best{};
        uint64_t classified_hash = 0, encoded_hash = 0;
        for (int r = 0; r < repeat; ++r) {
          ClassifiedVolume classified;
          PrepareTiming timing;
          const EncodedVolume encoded =
              prepare_volume(density, tf, copt, popt, &classified, &timing);
          if (r == 0 || timing.total_ms < best.total_ms) best = timing;
          classified_hash = classified_content_hash(classified);
          encoded_hash = encoded.content_hash();
        }
        const bool identical = classified_hash == seed.classified_hash &&
                               encoded_hash == seed.encoded_hash;
        all_identical = all_identical && identical;
        const double speedup = best.total_ms > 0 ? seed.total_ms / best.total_ms : 0.0;
        char label[32];
        std::snprintf(label, sizeof(label),
                      nthreads <= 1 ? "serial" : "parallel x%d", nthreads);
        std::printf("  %-14s %12.1f %12.1f %12.1f %8.2fx  %s\n", label,
                    best.classify_ms, best.encode_ms, best.total_ms, speedup,
                    identical ? "yes" : "NO — HASH MISMATCH");
        w.begin_object()
            .field("threads", nthreads)
            .field("classify_ms", best.classify_ms)
            .field("encode_ms", best.encode_ms)
            .field("total_ms", best.total_ms)
            .field("speedup_vs_seed", speedup)
            .field("identical", identical)
            .end_object();
      }
      w.end_array();  // variants
      w.end_object();
      std::printf("\n");
    }
  }
  w.end_array();  // datasets
  w.field("all_identical", all_identical);
  w.end_object();

  if (!json_path.empty()) {
    std::string body = w.str();
    body += '\n';
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAILED: an optimized pipeline produced output that is not "
                         "bit-identical to the seed path\n");
    return 1;
  }
  return 0;
}
