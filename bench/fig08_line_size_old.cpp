// Figure 8: miss breakdown vs cache line size for the OLD algorithm on the
// Simulator with 32 processors, 512-class MRI brain (spatial locality).
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv, {"p"});
  bench::header("Figure 8", "old-algorithm miss breakdown vs line size (32 procs)",
                "miss rates (cold, capacity and true-sharing) drop quickly as "
                "lines grow to 256B — the parallel program keeps the serial "
                "algorithm's good spatial locality — and false sharing never "
                "becomes a major component");

  const Dataset& data = ctx.mri(512);
  const int procs = ctx.flags().get_int("p", 32);
  const TraceSet traces = trace_frame(Algo::kOld, data, procs);

  TextTable table({"line B", "cold %", "capacity %", "conflict %", "true %",
                   "false %", "total %"});
  for (int line : {16, 32, 64, 128, 256}) {
    MachineConfig m = ctx.machine(MachineConfig::simulator());
    m.line_bytes = line;
    const SimResult r = simulate(m, traces);
    table.add_row({std::to_string(line), fmt(100 * r.miss_rate_of(MissClass::kCold), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kCapacity), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kConflict), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kTrueShare), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kFalseShare), 3),
                   fmt(100 * r.miss_rate(true), 3)});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
