// Figure 7: breakdown of memory overhead (miss rate by miss type) vs the
// number of processors for the OLD algorithm on the Simulator machine,
// 512-class MRI brain. Cold misses are omitted as in the paper.
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 7", "old-algorithm miss breakdown vs processors (Simulator)",
                "replacement (capacity) and true-sharing misses dominate; true "
                "sharing grows to dominate as processors increase while "
                "capacity misses shrink (bigger aggregate cache); the overall "
                "rate grows slowly but the remote fraction rises sharply");

  const Dataset& data = ctx.mri(512);
  const MachineConfig m = ctx.machine(MachineConfig::simulator());
  TextTable table({"procs", "capacity %", "conflict %", "true-share %",
                   "false-share %", "total %", "remote frac"});
  for (int procs : ctx.procs()) {
    std::fprintf(stderr, "[bench] P=%d...\n", procs);
    const SimResult r = simulate(m, trace_frame(Algo::kOld, data, procs));
    table.add_row({std::to_string(procs),
                   fmt(100 * r.miss_rate_of(MissClass::kCapacity), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kConflict), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kTrueShare), 3),
                   fmt(100 * r.miss_rate_of(MissClass::kFalseShare), 3),
                   fmt(100 * r.miss_rate(false), 3), fmt(r.remote_fraction(), 2)});
  }
  table.print();
  std::printf("\n(miss rates are misses per data reference, cold misses omitted)\n");
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
