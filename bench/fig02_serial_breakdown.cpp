// Figure 2: breakdown of serial rendering time for the ray caster (r-c)
// and the shear warper (s-w) on the 256-class MRI brain.
#include "baseline/raycaster.hpp"
#include "bench/common.hpp"
#include "core/renderer.hpp"
#include "util/timer.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv, {"frames"});
  bench::header("Figure 2", "serial time breakdown, ray caster vs shear warper",
                "the ray caster's time is dominated by looping/traversal; the "
                "shear warper is ~4-7x faster overall and compositing-dominated");

  const Dataset& data = ctx.mri(256);
  // Rebuild the classified volume for the ray caster (same preset).
  const DatasetSpec spec = scale_spec({"mri-256", 256, 256, 167}, ctx.divisor());
  const DensityVolume density = make_mri_brain(spec.nx, spec.ny, spec.nz);
  const ClassifiedVolume classified = classify(density, TransferFunction::mri_preset());
  const uint8_t thresh = ClassifyOptions{}.alpha_threshold;

  const Camera cam = Camera::orbit(data.dims, 0.55, 0.35);
  const int frames = ctx.flags().get_int("frames", 3);

  // --- Shear warper: normal and traversal-only compositing. ---
  const Factorization f = factorize(cam, data.dims);
  const RleVolume& rle = data.volume.for_axis(f.principal_axis);
  IntermediateImage img(f.intermediate_width, f.intermediate_height);
  ImageU8 final_img(f.final_width, f.final_height);

  double sw_composite = 0, sw_loop = 0, sw_warp = 0;
  for (int frame = 0; frame < frames; ++frame) {
    img.clear();
    WallTimer t1;
    for (int v = 0; v < img.height(); ++v) composite_scanline(rle, f, v, img);
    sw_composite += t1.millis();
    WallTimer t2;
    warp_frame(img, f, final_img);
    sw_warp += t2.millis();
    IntermediateImage scratch(f.intermediate_width, f.intermediate_height);
    WallTimer t3;
    for (int v = 0; v < scratch.height(); ++v) {
      composite_scanline_traversal_only(rle, f, v, scratch);
    }
    sw_loop += t3.millis();
  }
  sw_composite /= frames;
  sw_warp /= frames;
  sw_loop /= frames;
  // Traversal-only cannot early-terminate, so it bounds looping from above.
  sw_loop = std::min(sw_loop, sw_composite);

  // --- Ray caster. ---
  const RayCaster caster(classified, thresh);
  double rc_total = 0, rc_loop = 0;
  for (int frame = 0; frame < frames; ++frame) {
    ImageU8 out;
    RayCastOptions opt;
    rc_total += caster.render(cam, &out, opt).total_ms;
    opt.traversal_only = true;
    rc_loop += caster.render(cam, &out, opt).total_ms;
  }
  rc_total /= frames;
  rc_loop /= frames;
  rc_loop = std::min(rc_loop, rc_total);

  TextTable table({"renderer", "looping ms", "compute ms", "warp ms", "total ms",
                   "loop %"});
  const double sw_total = sw_composite + sw_warp;
  table.add_row({"ray caster (r-c)", fmt(rc_loop, 1), fmt(rc_total - rc_loop, 1), "-",
                 fmt(rc_total, 1), fmt(100 * rc_loop / rc_total, 0)});
  table.add_row({"shear warper (s-w)", fmt(sw_loop, 1), fmt(sw_composite - sw_loop, 1),
                 fmt(sw_warp, 1), fmt(sw_total, 1),
                 fmt(100 * sw_loop / sw_total, 0)});
  table.print();
  std::printf("\nray-caster / shear-warper total time ratio: %.1fx (paper: 4-7x)\n",
              rc_total / sw_total);
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
