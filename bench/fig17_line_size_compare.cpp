// Figure 17: spatial locality comparison — total miss rate vs cache line
// size for the old and new algorithms (Simulator, 32 procs, 512-class MRI).
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv, {"p"});
  bench::header("Figure 17", "miss rate vs line size, old vs new (32 procs)",
                "the new algorithm benefits even more from longer cache lines "
                "because each processor works on more contiguous scanlines of "
                "the intermediate image");

  const Dataset& data = ctx.mri(512);
  const int procs = ctx.flags().get_int("p", 32);
  const TraceSet old_t = trace_frame(Algo::kOld, data, procs);
  const TraceSet new_t = trace_frame(Algo::kNew, data, procs);

  TextTable table({"line B", "old total %", "new total %", "old true %", "new true %"});
  for (int line : {16, 32, 64, 128, 256}) {
    MachineConfig m = ctx.machine(MachineConfig::simulator());
    m.line_bytes = line;
    const SimResult ro = simulate(m, old_t);
    const SimResult rn = simulate(m, new_t);
    table.add_row({std::to_string(line), fmt(100 * ro.miss_rate(true), 3),
                   fmt(100 * rn.miss_rate(true), 3),
                   fmt(100 * ro.miss_rate_of(MissClass::kTrueShare), 3),
                   fmt(100 * rn.miss_rate_of(MissClass::kTrueShare), 3)});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
