// Figure 10: per-scanline compositing-cost profile for a frame of the
// 256-class MRI brain, showing the empty scanlines at the top and bottom
// of the intermediate image that the new algorithm never composites.
#include "bench/common.hpp"
#include "parallel/new_renderer.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 10", "per-scanline profile, 256-class MRI brain",
                "a roughly bell-shaped cost distribution across the middle of "
                "the intermediate image with empty runs at both ends (the "
                "paper's 256x256x167 brain yields a 326x326 sheared image)");

  const Dataset& data = ctx.mri(256);
  NewParallelRenderer renderer;
  SerialExecutor exec(1);
  ImageU8 out;
  const Camera cam = Camera::orbit(data.dims, 0.55, 0.35);
  const ParallelRenderStats stats = renderer.render(data.volume, cam, exec, &out);

  const auto& cost = renderer.profile().cost();
  const int height = static_cast<int>(cost.size());
  std::printf("intermediate image: %d x %d (paper: 326 x 326 at full scale)\n",
              renderer.intermediate().width(), height);
  std::printf("active scanlines: [%d, %d) of %d — %.0f%% of the image is "
              "composited\n\n",
              stats.active_lo, stats.active_hi, height,
              100.0 * (stats.active_hi - stats.active_lo) / height);

  // Print the profile as a 48-bucket histogram over scanline index.
  uint64_t peak = 1;
  for (uint32_t c : cost) peak = std::max<uint64_t>(peak, c);
  const int buckets = 48;
  std::printf("scanline profile (each row = %d scanlines, bar = relative cost):\n",
              (height + buckets - 1) / buckets);
  for (int b = 0; b < buckets; ++b) {
    const int lo = b * height / buckets, hi = (b + 1) * height / buckets;
    uint64_t total = 0;
    for (int v = lo; v < hi; ++v) total += cost[v];
    const double mean = hi > lo ? static_cast<double>(total) / (hi - lo) : 0;
    const int bar = static_cast<int>(56.0 * mean / peak);
    std::printf("%4d | %s\n", lo, std::string(bar, '#').c_str());
  }
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
