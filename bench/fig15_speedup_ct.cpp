// Figure 15: old vs new speedups on the 512-class CT human head on the
// distributed-memory machines.
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 15", "old vs new speedups, 512-class CT head",
                "the results mirror the MRI data sets: the new algorithm "
                "substantially outperforms and out-scales the old one, and "
                "(unlike the old) speeds up better on bigger data sets");

  const Dataset& data = ctx.ct(512);
  for (const MachineConfig& m :
       {ctx.machine(MachineConfig::dash()), ctx.machine(MachineConfig::simulator())}) {
    std::printf("\n--- %s ---\n", m.name.c_str());
    const auto old_curve = speedup_curve(Algo::kOld, data, m, ctx.procs());
    const auto new_curve = speedup_curve(Algo::kNew, data, m, ctx.procs());
    TextTable table({"procs", "old", "new"});
    for (size_t i = 0; i < ctx.procs().size(); ++i) {
      table.add_row({std::to_string(ctx.procs()[i]), fmt(old_curve[i].speedup, 2),
                     fmt(new_curve[i].speedup, 2)});
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
