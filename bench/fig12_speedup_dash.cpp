// Figure 12: old vs new parallel shear warper speedups on DASH for the
// three MRI data-set sizes.
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 12", "old vs new speedups on DASH (MRI sets)",
                "the new algorithm out-scales the old on every size, and the "
                "advantage grows with data-set size and processor count; "
                "unlike the old one, the new algorithm speeds up better on "
                "bigger data sets");

  for (int size : {128, 256, 512}) {
    const Dataset& data = ctx.mri(size);
    std::printf("\n--- mri-%d ---\n", size);
    const auto old_curve =
        speedup_curve(Algo::kOld, data, ctx.machine(MachineConfig::dash()), ctx.procs());
    const auto new_curve =
        speedup_curve(Algo::kNew, data, ctx.machine(MachineConfig::dash()), ctx.procs());
    TextTable table({"procs", "old", "new", "new/old"});
    for (size_t i = 0; i < ctx.procs().size(); ++i) {
      table.add_row({std::to_string(ctx.procs()[i]), fmt(old_curve[i].speedup, 2),
                     fmt(new_curve[i].speedup, 2),
                     fmt(new_curve[i].speedup / std::max(1e-9, old_curve[i].speedup), 2)});
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
