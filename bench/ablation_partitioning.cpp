// Ablations for the design choices DESIGN.md calls out:
//  1. contiguous partition WITHOUT profiling (uniform split) vs the full
//     profiled partition — isolates the §4.3 predictive balancing;
//  2. stealing chunk size (§4.4: single-scanline stealing costs ~10x more
//     synchronization than chunked stealing);
//  3. the old algorithm's task (chunk) size (§3.4: parallel efficiency is
//     strongly task-size dependent);
//  4. the old algorithm's warp tile size.
#include "bench/common.hpp"
#include "parallel/new_renderer.hpp"
#include "parallel/old_renderer.hpp"
#include "svmsim/svm.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv, {"p"});
  bench::header("Ablations", "partitioning design choices",
                "profiled-contiguous beats uniform-contiguous on balance; "
                "chunked stealing slashes lock traffic vs per-scanline "
                "stealing; old-algorithm efficiency depends on task size");

  const Dataset& data = ctx.mri(256);
  const int procs = ctx.flags().get_int("p", 16);
  const Camera cam = Camera::orbit(data.dims, 0.55, 0.35);

  std::printf("\n--- (1) initial-assignment balance, %d procs (no stealing) ---\n",
              procs);
  {
    TextTable table({"partition", "work imbalance (max/mean - 1)"});
    for (bool profiled : {false, true}) {
      ParallelOptions opt;
      opt.stealing = false;
      opt.profile_every = 1000;
      NewParallelRenderer renderer(opt);
      SerialExecutor exec(procs);
      ImageU8 out;
      // Frame 1 always uses the uniform partition; frame 2 the profile.
      ParallelRenderStats stats = renderer.render(data.volume, cam, exec, &out);
      if (profiled) stats = renderer.render(data.volume, cam, exec, &out);
      table.add_row({profiled ? "profiled contiguous (§4.3)" : "uniform contiguous",
                     fmt(stats.work_imbalance(), 3)});
    }
    table.print();
  }

  std::printf("\n--- (2) stealing unit: lock operations per frame (new algo) ---\n");
  {
    TextTable table({"chunk scanlines", "lock ops", "steals"});
    for (int chunk : {1, 2, 4, 8, 16}) {
      ParallelOptions opt;
      opt.chunk_scanlines = chunk;
      WorkloadOptions wopt;
      wopt.parallel = opt;
      const ParallelRenderStats stats = frame_stats(Algo::kNew, data, procs, wopt);
      table.add_row({std::to_string(chunk), std::to_string(stats.lock_ops),
                     std::to_string(stats.steals)});
    }
    table.print();
    std::printf("(the paper found 1-scanline stealing cost ~10x the lock traffic)\n");
  }

  std::printf("\n--- (3) old-algorithm task size vs simulated cycles (%d procs) ---\n",
              procs);
  {
    TextTable table({"chunk scanlines", "Mcycles (DASH model)", "true-share %"});
    for (int chunk : {1, 2, 4, 8, 16, 32}) {
      WorkloadOptions wopt;
      wopt.parallel.chunk_scanlines = chunk;
      const SimResult r = simulate(ctx.machine(MachineConfig::dash()),
                                   trace_frame(Algo::kOld, data, procs, wopt));
      table.add_row({std::to_string(chunk), fmt(r.total_cycles / 1e6, 2),
                     fmt(100 * r.miss_rate_of(MissClass::kTrueShare), 3)});
    }
    table.print();
  }

  std::printf("\n--- (4) old-algorithm warp tile size vs simulated cycles ---\n");
  {
    TextTable table({"tile", "Mcycles (DASH model)"});
    for (int tile : {8, 16, 32, 64, 128}) {
      WorkloadOptions wopt;
      wopt.parallel.warp_tile = tile;
      const SimResult r = simulate(ctx.machine(MachineConfig::dash()),
                                   trace_frame(Algo::kOld, data, procs, wopt));
      table.add_row({std::to_string(tile), fmt(r.total_cycles / 1e6, 2)});
    }
    table.print();
  }

  std::printf("\n--- (5) barrier vs p2p inter-phase sync on SVM (new algo) ---\n");
  {
    const TraceSet traces = trace_frame(Algo::kNew, data, procs);
    TextTable table({"sync", "Mcycles (SVM model)"});
    for (bool p2p : {false, true}) {
      SvmRunOptions opt;
      opt.warmup_intervals = traces.intervals() / 2;
      opt.p2p_interphase_sync = p2p;
      const SvmResult r = svm_simulate(SvmConfig{}, traces, opt);
      table.add_row({p2p ? "p2p neighbour flags (§5.5.2)" : "global barrier",
                     fmt(r.total_cycles / 1e6, 2)});
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
