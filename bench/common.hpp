// Shared context for the figure-reproduction bench binaries.
//
// Every binary prints: which paper figure it regenerates, the shape the
// paper reports, and the measured table. Flags:
//   --scale=half|quarter|full   dataset sizing (default half: paper
//                               dimensions / 2, so full sweeps run in
//                               seconds on one host core)
//   --procs=1,2,4,8,16,32       processor counts for sweeps
//   --prepare-threads=N         threads for dataset preparation (classify +
//                               encode; default: host concurrency). Output
//                               is bit-identical across thread counts.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "memsim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace psw::bench {

class Context {
 public:
  // `extra_flags`: flags the binary reads beyond the shared --scale/--procs;
  // anything else on the command line is a hard error (typos must not
  // silently fall back to defaults).
  Context(int argc, char** argv, std::vector<std::string> extra_flags = {})
      : flags_(argc, argv) {
    extra_flags.push_back("scale");
    extra_flags.push_back("procs");
    extra_flags.push_back("prepare-threads");
    flags_.require_known(extra_flags);
    const std::string scale = flags_.get("scale", "half");
    divisor_ = scale == "full" ? 1 : (scale == "quarter" ? 4 : 2);
    const unsigned hw = std::thread::hardware_concurrency();
    prepare_.threads = flags_.get_int("prepare-threads", hw > 0 ? static_cast<int>(hw) : 1);
    const std::string procs = flags_.get("procs", "1,2,4,8,16,32");
    size_t pos = 0;
    while (pos < procs.size()) {
      size_t comma = procs.find(',', pos);
      if (comma == std::string::npos) comma = procs.size();
      procs_.push_back(std::atoi(procs.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
  }

  int divisor() const { return divisor_; }
  const std::vector<int>& procs() const { return procs_; }
  const CliFlags& flags() const { return flags_; }
  const PrepareOptions& prepare_options() const { return prepare_; }

  // Scales a machine's cache capacity with the dataset divisor (by
  // divisor^2, the growth rate of the algorithm's plane working set, §3.4.4)
  // so that the working-set/cache and volume/aggregate-cache ratios that
  // drive the paper's results are preserved at reduced dataset scale.
  MachineConfig machine(MachineConfig m) const {
    m.cache_bytes = std::max<uint64_t>(16u << 10, m.cache_bytes / (divisor_ * divisor_));
    return m;
  }

  // Scaled paper datasets, cached per process. size_class is 128, 256, 512
  // or 640 for MRI; 128, 256 or 512 for CT.
  const Dataset& mri(int size_class) { return dataset("mri", size_class); }
  const Dataset& ct(int size_class) { return dataset("ct", size_class); }

  const Dataset& dataset(const std::string& kind, int size_class) {
    const std::string key = kind + std::to_string(size_class);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const DatasetSpec* spec = nullptr;
    if (kind == "mri") {
      for (const auto& s : kMriSpecs) {
        if (std::string(s.name) == "mri-" + std::to_string(size_class)) spec = &s;
      }
    } else {
      for (const auto& s : kCtSpecs) {
        if (std::string(s.name) == "ct-" + std::to_string(size_class)) spec = &s;
      }
    }
    const DatasetSpec scaled = scale_spec(*spec, divisor_);
    std::string name = std::string(spec->name);
    if (divisor_ > 1) {
      name += '/';
      name += std::to_string(divisor_);
    }
    std::fprintf(stderr, "[bench] building %s (%dx%dx%d)...\n", name.c_str(), scaled.nx,
                 scaled.ny, scaled.nz);
    Dataset d = make_dataset(kind, name, scaled.nx, scaled.ny, scaled.nz, prepare_);
    return cache_.emplace(key, std::move(d)).first->second;
  }

 private:
  CliFlags flags_;
  int divisor_ = 2;
  PrepareOptions prepare_;
  std::vector<int> procs_;
  std::map<std::string, Dataset> cache_;
};

inline void header(const char* figure, const char* what, const char* paper_shape) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("Paper shape: %s\n", paper_shape);
  std::printf("================================================================\n");
}

// Percentage-of-total triple used by the breakdown figures.
inline std::vector<double> pct_breakdown(double busy, double mem, double sync) {
  const double total = busy + mem + sync;
  if (total <= 0) return {0, 0, 0};
  return {100 * busy / total, 100 * mem / total, 100 * sync / total};
}

}  // namespace psw::bench
