// Verbatim copy of the pre-optimization (seed) volume-preparation path:
// the classify() that recomputed the central-difference gradient for the
// magnitude and again for the normal, classified every voxel with no
// transparency skip, and the per-voxel index-rebuilding RleVolume::encode().
// Kept here — not in the library — as the honest baseline the preparation
// bench times against and the reference the bit-identity tests pin the
// optimized pipeline to. Mirrors the hash layouts of
// classified_content_hash() / RleVolume::content_hash() /
// EncodedVolume::content_hash() so outputs compare across representations.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/classify.hpp"
#include "core/gradient.hpp"
#include "core/rle_volume.hpp"
#include "core/transfer.hpp"

namespace psw::bench::seed {

inline uint64_t fnv1a(uint64_t h, const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline constexpr uint64_t kFnvBasis = 1469598103934665603ull;

inline ClassifiedVolume classify(const DensityVolume& density, const TransferFunction& tf,
                                 const ClassifyOptions& opt = {}) {
  ClassifiedVolume out(density.nx(), density.ny(), density.nz());
  const Vec3 light = opt.light_dir.normalized();

  for (int z = 0; z < density.nz(); ++z) {
    for (int y = 0; y < density.ny(); ++y) {
      for (int x = 0; x < density.nx(); ++x) {
        const float d = density.at(x, y, z);
        const float gm = gradient_magnitude(density, x, y, z);
        const float a = tf.opacity(d, gm);
        ClassifiedVoxel cv;
        cv.a = static_cast<uint8_t>(std::lround(std::clamp(a, 0.0f, 1.0f) * 255.0f));
        if (cv.a >= opt.alpha_threshold) {
          const Vec3 n = surface_normal(density, x, y, z);
          const double lambert = std::max(0.0, n.dot(light));
          const double shade = opt.ambient + opt.diffuse * lambert;
          const Vec3 c = tf.color(d) * shade;
          cv.r = static_cast<uint8_t>(std::lround(std::clamp(c.x, 0.0, 1.0) * 255.0));
          cv.g = static_cast<uint8_t>(std::lround(std::clamp(c.y, 0.0, 1.0) * 255.0));
          cv.b = static_cast<uint8_t>(std::lround(std::clamp(c.z, 0.0, 1.0) * 255.0));
        } else {
          cv = ClassifiedVoxel{};  // fully transparent voxels carry no color
        }
        out.at(x, y, z) = cv;
      }
    }
  }
  return out;
}

// The seed encoder's output in plain vectors (RleVolume's internals are
// private; what matters is that the bytes hash identically).
struct SeedRle {
  int ni = 0, nj = 0, nk = 0;
  int axis = 2;
  uint8_t alpha_threshold = 1;
  std::vector<uint16_t> runs;
  std::vector<ClassifiedVoxel> voxels;
  std::vector<uint64_t> run_offset;
  std::vector<uint64_t> voxel_offset;

  // Same field order and widths as RleVolume::content_hash().
  uint64_t content_hash() const {
    uint64_t h = kFnvBasis;
    const int32_t dims[5] = {ni, nj, nk, axis, alpha_threshold};
    h = fnv1a(h, dims, sizeof(dims));
    h = fnv1a(h, runs.data(), runs.size() * sizeof(uint16_t));
    h = fnv1a(h, voxels.data(), voxels.size() * sizeof(ClassifiedVoxel));
    h = fnv1a(h, run_offset.data(), run_offset.size() * sizeof(uint64_t));
    h = fnv1a(h, voxel_offset.data(), voxel_offset.size() * sizeof(uint64_t));
    return h;
  }
};

inline SeedRle encode(const ClassifiedVolume& vol, int principal_axis,
                      uint8_t alpha_threshold) {
  SeedRle r;
  r.axis = principal_axis;
  const AxisPermutation perm = AxisPermutation::for_principal_axis(principal_axis);
  r.alpha_threshold = alpha_threshold;
  r.ni = vol.dim(perm.axis_i);
  r.nj = vol.dim(perm.axis_j);
  r.nk = vol.dim(perm.axis_k);

  const size_t scanlines = static_cast<size_t>(r.nk) * r.nj;
  r.run_offset.reserve(scanlines + 1);
  r.voxel_offset.reserve(scanlines + 1);
  r.run_offset.push_back(0);
  r.voxel_offset.push_back(0);

  for (int k = 0; k < r.nk; ++k) {
    for (int j = 0; j < r.nj; ++j) {
      // Encode one scanline: alternating runs starting transparent.
      bool cur_opaque = false;  // by convention the first run is transparent
      int cur_len = 0;
      for (int i = 0; i < r.ni; ++i) {
        const auto obj = perm.to_object(i, j, k);
        const ClassifiedVoxel& cv = vol.at(obj[0], obj[1], obj[2]);
        const bool opaque = !cv.transparent(alpha_threshold);
        if (opaque != cur_opaque) {
          r.runs.push_back(static_cast<uint16_t>(cur_len));
          cur_opaque = opaque;
          cur_len = 0;
        }
        ++cur_len;
        if (opaque) r.voxels.push_back(cv);
      }
      r.runs.push_back(static_cast<uint16_t>(cur_len));
      r.run_offset.push_back(r.runs.size());
      r.voxel_offset.push_back(r.voxels.size());
    }
  }
  return r;
}

// Same combination as EncodedVolume::content_hash().
inline uint64_t encoded_content_hash(const std::array<SeedRle, 3>& rle,
                                     std::array<int, 3> dims, uint8_t alpha_threshold) {
  uint64_t h = kFnvBasis;
  const int32_t d[4] = {dims[0], dims[1], dims[2], alpha_threshold};
  h = fnv1a(h, d, sizeof(d));
  for (int c = 0; c < 3; ++c) {
    const uint64_t hc = rle[c].content_hash();
    h = fnv1a(h, &hc, sizeof(hc));
  }
  return h;
}

}  // namespace psw::bench::seed
