# Bench binaries — one per reproduced figure (see DESIGN.md). Included from
# the top-level CMakeLists with include() rather than add_subdirectory() so
# build/bench/ contains only the executables and
#   for b in build/bench/*; do $b; done
# runs them all cleanly.

function(psw_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

psw_bench(fig02_serial_breakdown psw_memsim psw_baseline)
psw_bench(fig04_speedup_old_platforms psw_memsim)
psw_bench(fig05_breakdown_old psw_memsim)
psw_bench(fig06_speedup_old_datasets psw_memsim)
psw_bench(fig07_miss_breakdown_old psw_memsim)
psw_bench(fig08_line_size_old psw_memsim)
psw_bench(fig09_working_set_old psw_memsim)
psw_bench(fig10_profile psw_memsim)
psw_bench(fig12_speedup_dash psw_memsim)
psw_bench(fig13_speedup_sim psw_memsim)
psw_bench(fig14_breakdown_compare psw_memsim)
psw_bench(fig15_speedup_ct psw_memsim)
psw_bench(fig16_miss_compare psw_memsim)
psw_bench(fig17_line_size_compare psw_memsim)
psw_bench(fig18_working_set_new psw_memsim)
psw_bench(fig19_origin psw_memsim)
psw_bench(fig20_svm_speedup psw_memsim psw_svmsim)
psw_bench(fig21_svm_breakdown_old psw_memsim psw_svmsim)
psw_bench(fig22_svm_breakdown_new psw_memsim psw_svmsim)
psw_bench(ablation_partitioning psw_memsim psw_svmsim)
psw_bench(ext_scaling psw_memsim)
psw_bench(kernels psw_core psw_phantom psw_parallel benchmark::benchmark)
psw_bench(prepare psw_parallel psw_phantom)
# memserve counts heap allocations per served frame, so it links the global
# operator new/delete counting overrides from tools/alloc_probe.cpp.
psw_bench(memserve psw_net)
target_sources(memserve PRIVATE ${CMAKE_SOURCE_DIR}/tools/alloc_probe.cpp)

# `cmake --build build --target bench_kernels_json` regenerates the
# committed kernel-benchmark report at the repo root.
add_custom_target(bench_kernels_json
  COMMAND kernels --json ${CMAKE_SOURCE_DIR}/BENCH_kernels.json
  DEPENDS kernels
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench
  COMMENT "Running kernel benchmarks -> BENCH_kernels.json"
  VERBATIM)

# `cmake --build build --target bench_prepare_json` regenerates the
# committed volume-preparation report (seed vs serial vs parallel, with
# bit-identity hash checks) at the repo root.
add_custom_target(bench_prepare_json
  COMMAND prepare --json=${CMAKE_SOURCE_DIR}/BENCH_prepare.json
  DEPENDS prepare
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}/bench
  COMMENT "Running preparation benchmarks -> BENCH_prepare.json"
  VERBATIM)
