// Figure 20: old vs new speedups on the page-based shared virtual memory
// platform (HLRC protocol, 4-processor SMP nodes) for the MRI data sets.
#include "bench/common.hpp"
#include "svmsim/svm.hpp"

namespace psw {
namespace {

double svm_cycles(bench::Context&, Algo algo, const Dataset& data, int procs) {
  const TraceSet traces = trace_frame(algo, data, procs);
  SvmRunOptions opt;
  opt.warmup_intervals = traces.intervals() / 2;
  opt.p2p_interphase_sync = algo == Algo::kNew;
  opt.lock_ops = frame_stats(algo, data, procs, WorkloadOptions{}).lock_ops;
  return svm_simulate(SvmConfig{}, traces, opt).total_cycles;
}

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 20", "old vs new speedups on SVM (MRI sets)",
                "the old program barely speeds up (or slows down) on SVM; the "
                "new one achieves substantial speedups — the largest relative "
                "improvement of any platform, since coherence is page-grained "
                "and communication is most expensive here");

  std::vector<int> procs;
  for (int p : ctx.procs()) {
    if (p >= 4) procs.push_back(p);  // whole SMP nodes
  }
  for (int size : {128, 256, 512}) {
    const Dataset& data = ctx.mri(size);
    std::printf("\n--- mri-%d ---\n", size);
    const double old_t1 = svm_cycles(ctx, Algo::kOld, data, 1);
    const double new_t1 = svm_cycles(ctx, Algo::kNew, data, 1);
    TextTable table({"procs", "old", "new"});
    for (int p : procs) {
      std::fprintf(stderr, "[bench] mri-%d P=%d...\n", size, p);
      const double old_tp = svm_cycles(ctx, Algo::kOld, data, p);
      const double new_tp = svm_cycles(ctx, Algo::kNew, data, p);
      table.add_row({std::to_string(p), fmt(old_t1 / old_tp, 2), fmt(new_t1 / new_tp, 2)});
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
