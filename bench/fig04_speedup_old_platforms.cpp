// Figure 4: self-relative speedups of the OLD parallel shear warper on the
// 512-class MRI brain across platforms (DASH, Challenge, Simulator).
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 4", "old-algorithm speedups on three platforms (512-class MRI)",
                "speedups fall well short of linear and flatten beyond ~8-16 "
                "processors; the distributed-memory DASH scales worst, the "
                "centralized Challenge best at its size");

  const Dataset& data = ctx.mri(512);
  const std::vector<MachineConfig> machines{
      ctx.machine(MachineConfig::dash()), ctx.machine(MachineConfig::challenge()),
      ctx.machine(MachineConfig::simulator())};

  TextTable table({"procs", "DASH", "Challenge", "Simulator"});
  std::vector<std::vector<SpeedupPoint>> curves;
  for (const auto& m : machines) {
    std::fprintf(stderr, "[bench] machine %s...\n", m.name.c_str());
    curves.push_back(speedup_curve(Algo::kOld, data, m, ctx.procs()));
  }
  for (size_t i = 0; i < ctx.procs().size(); ++i) {
    table.add_row({std::to_string(ctx.procs()[i]), fmt(curves[0][i].speedup, 2),
                   fmt(curves[1][i].speedup, 2), fmt(curves[2][i].speedup, 2)});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
