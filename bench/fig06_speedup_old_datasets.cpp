// Figure 6: OLD-algorithm speedups for the three MRI data-set sizes on
// DASH and Challenge.
#include "bench/common.hpp"

namespace psw {
namespace {

void machine_sweep(bench::Context& ctx, const MachineConfig& machine) {
  std::printf("\n--- %s ---\n", machine.name.c_str());
  TextTable table({"procs", "mri-128", "mri-256", "mri-512"});
  std::vector<std::vector<SpeedupPoint>> curves;
  for (int size : {128, 256, 512}) {
    std::fprintf(stderr, "[bench] %s mri-%d...\n", machine.name.c_str(), size);
    curves.push_back(speedup_curve(Algo::kOld, ctx.mri(size), machine, ctx.procs()));
  }
  for (size_t i = 0; i < ctx.procs().size(); ++i) {
    table.add_row({std::to_string(ctx.procs()[i]), fmt(curves[0][i].speedup, 2),
                   fmt(curves[1][i].speedup, 2), fmt(curves[2][i].speedup, 2)});
  }
  table.print();
}

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 6", "old-algorithm speedups vs data-set size",
                "DASH speedups are well below Challenge's at every size; on "
                "DASH the intermediate (256-class) set speeds up best, with "
                "both the smaller and the larger sets doing worse");
  machine_sweep(ctx, ctx.machine(MachineConfig::dash()));
  machine_sweep(ctx, ctx.machine(MachineConfig::challenge()));
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
