// Figure 19: old vs new speedups on the SGI Origin2000 (16 processors),
// 512-class MRI brain.
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 19", "old vs new speedups on Origin2000 (512-class MRI)",
                "the new algorithm significantly outperforms the old one, "
                "validating the DASH/simulator results on modern scalable "
                "ccNUMA hardware");

  const Dataset& data = ctx.mri(512);
  std::vector<int> procs;
  for (int p : ctx.procs()) {
    if (p <= 16) procs.push_back(p);  // the paper's machine had 16 procs
  }
  const auto old_curve =
      speedup_curve(Algo::kOld, data, ctx.machine(MachineConfig::origin2000()), procs);
  const auto new_curve =
      speedup_curve(Algo::kNew, data, ctx.machine(MachineConfig::origin2000()), procs);
  TextTable table({"procs", "old", "new"});
  for (size_t i = 0; i < procs.size(); ++i) {
    table.add_row({std::to_string(procs[i]), fmt(old_curve[i].speedup, 2),
                   fmt(new_curve[i].speedup, 2)});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
