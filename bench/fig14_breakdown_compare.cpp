// Figure 14: cumulative time breakdown of the OLD vs NEW parallel shear
// warpers on DASH and the Simulator, 512-class MRI brain. (Panels (a)/(c)
// are the old program — the same data as Figure 5 — and (b)/(d) the new.)
#include "bench/common.hpp"

namespace psw {
namespace {

void compare_on(bench::Context& ctx, const MachineConfig& machine) {
  const Dataset& data = ctx.mri(512);
  std::printf("\n--- %s ---\n", machine.name.c_str());
  TextTable table({"procs", "old busy %", "old mem %", "old sync %", "new busy %",
                   "new mem %", "new sync %"});
  for (int procs : ctx.procs()) {
    std::fprintf(stderr, "[bench] %s P=%d...\n", machine.name.c_str(), procs);
    const SimResult old_r = simulate(machine, trace_frame(Algo::kOld, data, procs));
    const SimResult new_r = simulate(machine, trace_frame(Algo::kNew, data, procs));
    const auto po = bench::pct_breakdown(old_r.busy_sum(), old_r.mem_sum(), old_r.sync_sum());
    const auto pn = bench::pct_breakdown(new_r.busy_sum(), new_r.mem_sum(), new_r.sync_sum());
    table.add_row({std::to_string(procs), fmt(po[0], 1), fmt(po[1], 1), fmt(po[2], 1),
                   fmt(pn[0], 1), fmt(pn[1], 1), fmt(pn[2], 1)});
  }
  table.print();
}

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv);
  bench::header("Figure 14", "old vs new time breakdown (512-class MRI)",
                "the major difference is the data-access (memory) stall "
                "component, which no longer dominates in the new program, on "
                "DASH as well as the simulated machine; load balance is "
                "preserved");
  compare_on(ctx, ctx.machine(MachineConfig::dash()));
  compare_on(ctx, ctx.machine(MachineConfig::simulator()));
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
