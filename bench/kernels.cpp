// Microbenchmarks (google-benchmark) for the kernels the renderers are
// built from: RLE encoding, scanline compositing, warping, prefix sums and
// partition search. These quantify the constants behind the figure-level
// results (e.g. §4.3's claim that the cumulative-profile partition search
// is cheap).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/compositor.hpp"
#include "core/reference.hpp"
#include "core/renderer.hpp"
#include "parallel/partition.hpp"
#include "phantom/phantom.hpp"
#include "util/rng.hpp"

namespace psw {
namespace {

struct KernelScene {
  ClassifiedVolume classified;
  EncodedVolume encoded;
  Factorization fact;

  explicit KernelScene(int n = 96) {
    const DensityVolume density = make_mri_brain(n, n, n);
    classified = classify(density, TransferFunction::mri_preset());
    encoded = EncodedVolume::build(classified, ClassifyOptions{}.alpha_threshold);
    fact = factorize(Camera::orbit({n, n, n}, 0.55, 0.35), {n, n, n});
  }
};

KernelScene& scene() {
  static KernelScene s;
  return s;
}

void BM_RleEncode(benchmark::State& state) {
  const auto& vol = scene().classified;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RleVolume::encode(vol, 2, 12));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(vol.size()));
}
BENCHMARK(BM_RleEncode)->Unit(benchmark::kMillisecond);

void BM_CompositeFrame(benchmark::State& state) {
  const auto& s = scene();
  const RleVolume& rle = s.encoded.for_axis(s.fact.principal_axis);
  IntermediateImage img(s.fact.intermediate_width, s.fact.intermediate_height);
  for (auto _ : state) {
    img.clear();
    CompositeStats stats;
    for (int v = 0; v < img.height(); ++v) composite_scanline(rle, s.fact, v, img, nullptr, &stats);
    benchmark::DoNotOptimize(stats.voxels_composited);
  }
  state.SetLabel("run-based");
}
BENCHMARK(BM_CompositeFrame)->Unit(benchmark::kMillisecond);

// The acceptance kernel: segment-batched SIMD fast path, no hook, no stats
// — what a real-time render pays per frame for the compositing phase.
void BM_CompositeScanline(benchmark::State& state) {
  const auto& s = scene();
  const RleVolume& rle = s.encoded.for_axis(s.fact.principal_axis);
  IntermediateImage img(s.fact.intermediate_width, s.fact.intermediate_height);
  for (auto _ : state) {
    img.clear();
    uint32_t work = 0;
    for (int v = 0; v < img.height(); ++v) {
      work += composite_scanline_segmented(rle, s.fact, v, img);
    }
    benchmark::DoNotOptimize(work);
  }
  state.SetLabel("segment-batched fast path");
}
BENCHMARK(BM_CompositeScanline)->Unit(benchmark::kMillisecond);

// The seed kernel: per-pixel probing, hook policy compiled away (NullHook).
void BM_CompositeScanlineReference(benchmark::State& state) {
  const auto& s = scene();
  const RleVolume& rle = s.encoded.for_axis(s.fact.principal_axis);
  IntermediateImage img(s.fact.intermediate_width, s.fact.intermediate_height);
  for (auto _ : state) {
    img.clear();
    uint32_t work = 0;
    for (int v = 0; v < img.height(); ++v) {
      work += composite_scanline_reference(rle, s.fact, v, img);
    }
    benchmark::DoNotOptimize(work);
  }
  state.SetLabel("per-pixel reference kernel (NullHook)");
}
BENCHMARK(BM_CompositeScanlineReference)->Unit(benchmark::kMillisecond);

// The traced kernel: per-pixel with a live hook, the simulator's workload
// generator. The gap to the reference kernel is the cost of reporting.
void BM_CompositeScanlineHooked(benchmark::State& state) {
  struct CountingHook final : MemoryHook {
    uint64_t accesses = 0;
    void access(const void*, uint32_t, bool) override { ++accesses; }
  };
  const auto& s = scene();
  const RleVolume& rle = s.encoded.for_axis(s.fact.principal_axis);
  IntermediateImage img(s.fact.intermediate_width, s.fact.intermediate_height);
  CountingHook hook;
  for (auto _ : state) {
    img.clear();
    uint32_t work = 0;
    for (int v = 0; v < img.height(); ++v) {
      work += composite_scanline(rle, s.fact, v, img, &hook);
    }
    benchmark::DoNotOptimize(work);
    benchmark::DoNotOptimize(hook.accesses);
  }
  state.SetLabel("per-pixel kernel, SimHook attached");
}
BENCHMARK(BM_CompositeScanlineHooked)->Unit(benchmark::kMillisecond);

void BM_CompositeFrameDenseReference(benchmark::State& state) {
  const auto& s = scene();
  IntermediateImage img(s.fact.intermediate_width, s.fact.intermediate_height);
  for (auto _ : state) {
    img.clear();
    reference_composite(s.classified, s.fact, ClassifyOptions{}.alpha_threshold, img);
    benchmark::DoNotOptimize(img.pixel(0, 0));
  }
  state.SetLabel("dense (no RLE) — the coherence structures' advantage");
}
BENCHMARK(BM_CompositeFrameDenseReference)->Unit(benchmark::kMillisecond);

void BM_WarpFrame(benchmark::State& state) {
  const auto& s = scene();
  const RleVolume& rle = s.encoded.for_axis(s.fact.principal_axis);
  IntermediateImage img(s.fact.intermediate_width, s.fact.intermediate_height);
  for (int v = 0; v < img.height(); ++v) composite_scanline(rle, s.fact, v, img);
  ImageU8 out(s.fact.final_width, s.fact.final_height);
  for (auto _ : state) {
    benchmark::DoNotOptimize(warp_frame(img, s.fact, out).pixels_written);
  }
}
BENCHMARK(BM_WarpFrame)->Unit(benchmark::kMillisecond);

void BM_FullSerialRender(benchmark::State& state) {
  const auto& s = scene();
  SerialRenderer renderer;
  ImageU8 out;
  const Camera cam = Camera::orbit({96, 96, 96}, 0.55, 0.35);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(s.encoded, cam, &out).total_ms);
  }
}
BENCHMARK(BM_FullSerialRender)->Unit(benchmark::kMillisecond);

void BM_PrefixSum(benchmark::State& state) {
  SplitMix64 rng(1);
  std::vector<uint32_t> cost(state.range(0));
  for (auto& c : cost) c = static_cast<uint32_t>(rng.below(10000));
  for (auto _ : state) benchmark::DoNotOptimize(prefix_sum(cost));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrefixSum)->Arg(326)->Arg(4096);

void BM_BalancedPartitionSearch(benchmark::State& state) {
  SplitMix64 rng(2);
  std::vector<uint32_t> cost(1024);
  for (auto& c : cost) c = static_cast<uint32_t>(rng.below(10000));
  const auto cum = prefix_sum(cost);
  for (auto _ : state) benchmark::DoNotOptimize(balanced_partition(cum, 32));
  state.SetLabel("32-way partition of 1024 scanlines");
}
BENCHMARK(BM_BalancedPartitionSearch);

void BM_ScanlineProvablyEmpty(benchmark::State& state) {
  const auto& s = scene();
  const RleVolume& rle = s.encoded.for_axis(s.fact.principal_axis);
  for (auto _ : state) {
    int empties = 0;
    for (int v = 0; v < s.fact.intermediate_height; ++v) {
      empties += scanline_provably_empty(rle, s.fact, v);
    }
    benchmark::DoNotOptimize(empties);
  }
}
BENCHMARK(BM_ScanlineProvablyEmpty)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace psw

// `kernels --json <path>` writes the google-benchmark JSON report to <path>
// (the BENCH_kernels.json artifact) on top of the console output; all other
// flags pass through to the benchmark library untouched.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag;
  for (size_t i = 1; i < args.size(); ++i) {
    if (std::string(args[i]) == "--json" && i + 1 < args.size()) {
      out_flag = std::string("--benchmark_out=") + args[i + 1];
      fmt_flag = "--benchmark_out_format=json";
      args.erase(args.begin() + i, args.begin() + i + 2);
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
      break;
    }
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
