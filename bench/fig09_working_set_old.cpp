// Figure 9: miss rate vs per-processor cache size (working sets) for the
// OLD algorithm on the Simulator with 32 processors, three MRI sizes.
// The knee of each curve locates the important working set, which for the
// old algorithm grows with data-set size (~ a plane through the volume,
// O(n^2)) and is nearly independent of the processor count.
#include "bench/common.hpp"

namespace psw {
namespace {

int run(int argc, char** argv) {
  bench::Context ctx(argc, argv, {"p"});
  bench::header("Figure 9", "old-algorithm miss rate vs cache size (32 procs)",
                "a knee at a cache size that grows roughly with n^2 of the "
                "volume; past the knee the curve flattens at the sharing floor");

  const int procs = ctx.flags().get_int("p", 32);
  TextTable table({"cache KB", "mri-128", "mri-256", "mri-512"});
  std::vector<TraceSet> traces;
  for (int size : {128, 256, 512}) {
    std::fprintf(stderr, "[bench] tracing mri-%d...\n", size);
    traces.push_back(trace_frame(Algo::kOld, ctx.mri(size), procs));
  }
  for (int kb = 1; kb <= 1024; kb *= 2) {
    std::vector<std::string> row{std::to_string(kb)};
    for (const auto& t : traces) {
      MachineConfig m = MachineConfig::simulator();
      m.cache_bytes = static_cast<uint64_t>(kb) << 10;
      const SimResult r = simulate(m, t);
      row.push_back(fmt(100 * r.miss_rate(true), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(values are total miss rate %%; knees mark the working sets)\n");
  return 0;
}

}  // namespace
}  // namespace psw

int main(int argc, char** argv) { return psw::run(argc, argv); }
