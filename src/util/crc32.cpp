#include "util/crc32.hpp"

#include <array>

namespace psw {

namespace {

std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = make_table();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace psw
