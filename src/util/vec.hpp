// Small fixed-size vector types used throughout the renderer.
#pragma once

#include <cmath>
#include <cstdint>

namespace psw {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

// RGBA color with float components in [0,1]; alpha is accumulated opacity.
struct Rgba {
  float r = 0.0f, g = 0.0f, b = 0.0f, a = 0.0f;
};

}  // namespace psw
