#include "util/buffer_pool.hpp"

#include <algorithm>
#include <array>

#include "util/sync.hpp"

namespace psw {

namespace {

// 4 KiB (2^12) through 32 MiB (2^25): 14 classes. Small enough a linear
// class scan is free, large enough to cover a 2880x2880 RGBA frame.
constexpr int kNumClasses = 14;

size_t class_bytes(int idx) {
  return BufferPool::kMinClassBytes << static_cast<size_t>(idx);
}

// Smallest class that can hold `bytes`; kNumClasses if no class can.
int class_for_request(size_t bytes) {
  for (int i = 0; i < kNumClasses; ++i) {
    if (class_bytes(i) >= bytes) return i;
  }
  return kNumClasses;
}

// Largest class a buffer of `capacity` bytes fully covers, so a buffer
// retained in class i always satisfies any request routed to class <= i.
// -1 if the capacity is below even the smallest class (not worth keeping).
int class_for_storage(size_t capacity) {
  int best = -1;
  for (int i = 0; i < kNumClasses && class_bytes(i) <= capacity; ++i) best = i;
  return best;
}

}  // namespace

// The budget invariant — stats.retained_bytes equals the summed capacity of
// every freelist entry, and the conservation identities in PoolStats — only
// holds when freelists and stats move together, so both live under one
// capability. `options` is immutable after construction and needs none.
struct BufferPool::Shared {
  explicit Shared(Options o) : options(o) {}

  Options options;
  mutable Mutex mu;
  std::array<std::vector<std::vector<uint8_t>>, kNumClasses> freelists
      PSW_GUARDED_BY(mu);
  PoolStats stats PSW_GUARDED_BY(mu);
};

BufferPool::BufferPool() : BufferPool(Options{}) {}

BufferPool::BufferPool(Options options)
    : shared_(std::make_shared<Shared>(options)) {}

PooledBuffer BufferPool::acquire(size_t size_hint) {
  std::vector<uint8_t> buf;
  {
    MutexLock lock(shared_->mu);
    PoolStats& s = shared_->stats;
    ++s.acquires;
    ++s.outstanding;
    // Serve from the smallest class that covers the hint, climbing to larger
    // classes before giving up: one warm oversized buffer beats a fresh
    // allocation, and streams whose frames shrink keep hitting.
    const int first = class_for_request(size_hint);
    for (int i = first; i < kNumClasses; ++i) {
      auto& list = shared_->freelists[static_cast<size_t>(i)];
      if (list.empty()) continue;
      buf = std::move(list.back());
      list.pop_back();
      ++s.hits;
      --s.retained;
      s.retained_bytes -= buf.capacity();
      buf.clear();
      return PooledBuffer(shared_, std::move(buf));
    }
    ++s.misses;
  }
  // Allocate outside the lock. Round the capacity up to the class size so
  // the buffer re-enters the pool in the class it was requested from.
  const int idx = class_for_request(size_hint);
  buf.reserve(idx < kNumClasses ? class_bytes(idx) : size_hint);
  return PooledBuffer(shared_, std::move(buf));
}

void BufferPool::release(const std::shared_ptr<Shared>& shared,
                         std::vector<uint8_t>&& buf) {
  std::vector<uint8_t> local = std::move(buf);
  MutexLock lock(shared->mu);
  PoolStats& s = shared->stats;
  ++s.releases;
  --s.outstanding;
  const int idx = class_for_storage(local.capacity());
  if (idx < 0 || local.capacity() > kMaxClassBytes) {
    ++s.discards;  // too small to matter or an unpooled oversize one-off
    return;
  }
  auto& list = shared->freelists[static_cast<size_t>(idx)];
  if (list.size() >= shared->options.max_buffers_per_class ||
      s.retained_bytes + local.capacity() > shared->options.max_retained_bytes) {
    ++s.discards;
    return;
  }
  if (shared->options.poison_on_release) {
    local.resize(local.capacity());
    std::fill(local.begin(), local.end(), uint8_t{0xDD});
  }
  ++s.retained;
  s.retained_bytes += local.capacity();
  list.push_back(std::move(local));
}

PoolStats BufferPool::stats() const {
  MutexLock lock(shared_->mu);
  return shared_->stats;
}

void BufferPool::trim() {
  MutexLock lock(shared_->mu);
  for (auto& list : shared_->freelists) {
    shared_->stats.discards += list.size();
    list.clear();
  }
  shared_->stats.retained = 0;
  shared_->stats.retained_bytes = 0;
}

void PooledBuffer::release() {
  if (!active_) return;
  active_ = false;
  if (shared_) BufferPool::release(shared_, std::move(buf_));
  buf_ = std::vector<uint8_t>();
  shared_.reset();
}

struct FramePool::Impl {
  explicit Impl(Options o) : options(o) {}

  Options options;
  mutable Mutex mu;
  std::vector<ImageU8> freelist PSW_GUARDED_BY(mu);
  PoolStats stats PSW_GUARDED_BY(mu);
};

FramePool::FramePool() : FramePool(Options{}) {}

FramePool::FramePool(Options options)
    : impl_(std::make_shared<Impl>(options)) {}

ImageU8 FramePool::acquire(size_t pixel_hint) {
  MutexLock lock(impl_->mu);
  PoolStats& s = impl_->stats;
  ++s.acquires;
  ++s.outstanding;
  // Smallest retained frame that covers the hint: big sessions keep their
  // big frames, small sessions never pin oversized storage.
  size_t best = impl_->freelist.size();
  for (size_t i = 0; i < impl_->freelist.size(); ++i) {
    if (impl_->freelist[i].pixel_capacity() < pixel_hint) continue;
    if (best == impl_->freelist.size() ||
        impl_->freelist[i].pixel_capacity() <
            impl_->freelist[best].pixel_capacity()) {
      best = i;
    }
  }
  if (best == impl_->freelist.size()) {
    ++s.misses;
    return ImageU8();
  }
  ImageU8 frame = std::move(impl_->freelist[best]);
  impl_->freelist.erase(impl_->freelist.begin() +
                        static_cast<ptrdiff_t>(best));
  ++s.hits;
  --s.retained;
  s.retained_bytes -= frame.pixel_capacity() * sizeof(Pixel8);
  frame.resize(0, 0);  // keeps the capacity, drops stale dimensions
  return frame;
}

void FramePool::release(ImageU8&& frame) {
  ImageU8 local = std::move(frame);
  MutexLock lock(impl_->mu);
  PoolStats& s = impl_->stats;
  ++s.releases;
  if (s.outstanding > 0) --s.outstanding;
  const size_t bytes = local.pixel_capacity() * sizeof(Pixel8);
  if (bytes == 0 || impl_->freelist.size() >= impl_->options.max_frames ||
      s.retained_bytes + bytes > impl_->options.max_retained_bytes) {
    ++s.discards;
    return;
  }
  ++s.retained;
  s.retained_bytes += bytes;
  impl_->freelist.push_back(std::move(local));
}

PoolStats FramePool::stats() const {
  MutexLock lock(impl_->mu);
  return impl_->stats;
}

void FramePool::trim() {
  MutexLock lock(impl_->mu);
  impl_->stats.discards += impl_->freelist.size();
  impl_->freelist.clear();
  impl_->stats.retained = 0;
  impl_->stats.retained_bytes = 0;
}

}  // namespace psw
