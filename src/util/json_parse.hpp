// Minimal recursive-descent JSON parser for the tooling that consumes our
// own telemetry documents (trace dumps, metrics JSON). Numbers keep their
// raw token so 64-bit ids and nanosecond timestamps round-trip exactly
// (doubles alone lose precision past 2^53). Not a general-purpose parser:
// \uXXXX escapes outside the BMP-ASCII range decode to '?', and inputs are
// bounded by a nesting-depth cap.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace psw {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  // exact number token as it appeared in the input
  std::string str;  // decoded string value
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, in order

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  // Typed accessors with defaults (never throw).
  double as_double(double def = 0.0) const;
  int64_t as_i64(int64_t def = 0) const;
  uint64_t as_u64(uint64_t def = 0) const;
  const std::string& as_string() const { return str; }
  bool as_bool(bool def = false) const;
};

// Parses `text` into `*out`. Returns false (and sets `*error` when
// non-null) on malformed input; trailing non-whitespace is an error.
bool json_parse(const std::string& text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace psw
