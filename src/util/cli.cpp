#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace psw {

CliFlags::CliFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliFlags::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliFlags::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int CliFlags::get_int(const std::string& name, int def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::atoi(it->second.c_str());
}

double CliFlags::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::atof(it->second.c_str());
}

std::string CliFlags::unknown_flag_error(const std::vector<std::string>& known) const {
  std::string unknown;
  for (const auto& [name, value] : flags_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (unknown.empty()) return "";
  std::string msg = "unknown flag(s): " + unknown + "\nknown flags:";
  for (const auto& name : known) msg += " --" + name;
  msg += '\n';
  return msg;
}

void CliFlags::require_known(const std::vector<std::string>& known) const {
  const std::string err = unknown_flag_error(known);
  if (err.empty()) return;
  std::fputs(err.c_str(), stderr);
  std::exit(2);
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace psw
