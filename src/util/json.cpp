#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace psw {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::indent() { out_.append(2 * first_.size(), ' '); }

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
    out_ += '\n';
    indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = first_.back();
  first_.pop_back();
  if (!empty) {
    out_ += '\n';
    indent();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = first_.back();
  first_.pop_back();
  if (!empty) {
    out_ += '\n';
    indent();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  pre_value();
  out_ += json_quote(name);
  out_ += ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // %g may print an integer-looking value; that is still valid JSON.
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += json_quote(v);
  return *this;
}

}  // namespace psw
