#include "util/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace psw {

namespace {
uint8_t to_byte(float v) {
  const float c = std::clamp(v, 0.0f, 1.0f);
  return static_cast<uint8_t>(std::lround(c * 255.0f));
}
}  // namespace

Pixel8 quantize8(const Rgba& c) {
  return Pixel8{to_byte(c.r), to_byte(c.g), to_byte(c.b), to_byte(c.a)};
}

bool write_ppm(const std::string& path, const ImageRGBA& img) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << "P6\n" << img.width() << " " << img.height() << "\n255\n";
  std::vector<uint8_t> row(static_cast<size_t>(img.width()) * 3);
  for (int y = 0; y < img.height(); ++y) {
    const Rgba* src = img.row(y);
    for (int x = 0; x < img.width(); ++x) {
      row[3 * x + 0] = to_byte(src[x].r);
      row[3 * x + 1] = to_byte(src[x].g);
      row[3 * x + 2] = to_byte(src[x].b);
    }
    f.write(reinterpret_cast<const char*>(row.data()), row.size());
  }
  return static_cast<bool>(f);
}

bool write_ppm(const std::string& path, const ImageU8& img) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << "P6\n" << img.width() << " " << img.height() << "\n255\n";
  std::vector<uint8_t> row(static_cast<size_t>(img.width()) * 3);
  for (int y = 0; y < img.height(); ++y) {
    const Pixel8* src = img.row(y);
    for (int x = 0; x < img.width(); ++x) {
      row[3 * x + 0] = src[x].r;
      row[3 * x + 1] = src[x].g;
      row[3 * x + 2] = src[x].b;
    }
    f.write(reinterpret_cast<const char*>(row.data()), row.size());
  }
  return static_cast<bool>(f);
}

bool read_ppm(const std::string& path, ImageRGBA* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::string magic;
  f >> magic;
  if (magic != "P6") return false;
  auto skip_ws_comments = [&f]() {
    while (true) {
      int c = f.peek();
      if (c == '#') {
        std::string line;
        std::getline(f, line);
      } else if (std::isspace(c)) {
        f.get();
      } else {
        break;
      }
    }
  };
  int w = 0, h = 0, maxval = 0;
  skip_ws_comments();
  f >> w;
  skip_ws_comments();
  f >> h;
  skip_ws_comments();
  f >> maxval;
  if (!f || w <= 0 || h <= 0 || maxval != 255) return false;
  f.get();  // single whitespace after header
  out->resize(w, h);
  std::vector<uint8_t> row(static_cast<size_t>(w) * 3);
  for (int y = 0; y < h; ++y) {
    f.read(reinterpret_cast<char*>(row.data()), row.size());
    if (!f) return false;
    Rgba* dst = out->row(y);
    for (int x = 0; x < w; ++x) {
      dst[x].r = row[3 * x + 0] / 255.0f;
      dst[x].g = row[3 * x + 1] / 255.0f;
      dst[x].b = row[3 * x + 2] / 255.0f;
      dst[x].a = 1.0f;
    }
  }
  return true;
}

double image_mad(const ImageRGBA& a, const ImageRGBA& b) {
  if (a.width() != b.width() || a.height() != b.height()) return 1e30;
  double sum = 0.0;
  const size_t n = a.pixel_count();
  for (size_t i = 0; i < n; ++i) {
    const Rgba& p = a.data()[i];
    const Rgba& q = b.data()[i];
    sum += std::abs(p.r - q.r) + std::abs(p.g - q.g) + std::abs(p.b - q.b);
  }
  return n > 0 ? sum / (3.0 * n) : 0.0;
}

double image_mad(const ImageU8& a, const ImageU8& b) {
  if (a.width() != b.width() || a.height() != b.height()) return 1e30;
  double sum = 0.0;
  const size_t n = a.pixel_count();
  for (size_t i = 0; i < n; ++i) {
    const Pixel8& p = a.data()[i];
    const Pixel8& q = b.data()[i];
    sum += std::abs(p.r - q.r) + std::abs(p.g - q.g) + std::abs(p.b - q.b);
  }
  return n > 0 ? sum / (3.0 * 255.0 * n) : 0.0;
}

double image_correlation(const ImageU8& a, const ImageU8& b) {
  if (a.width() != b.width() || a.height() != b.height()) return 0.0;
  const size_t n = a.pixel_count();
  if (n == 0) return 1.0;
  auto lum = [](const Pixel8& p) { return 0.299 * p.r + 0.587 * p.g + 0.114 * p.b; };
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += lum(a.data()[i]);
    mb += lum(b.data()[i]);
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = lum(a.data()[i]) - ma;
    const double db = lum(b.data()[i]) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 && vb == 0.0) return 1.0;
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double image_correlation(const ImageRGBA& a, const ImageRGBA& b) {
  if (a.width() != b.width() || a.height() != b.height()) return 0.0;
  const size_t n = a.pixel_count();
  if (n == 0) return 1.0;
  auto lum = [](const Rgba& p) { return 0.299 * p.r + 0.587 * p.g + 0.114 * p.b; };
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += lum(a.data()[i]);
    mb += lum(b.data()[i]);
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = lum(a.data()[i]) - ma;
    const double db = lum(b.data()[i]) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 && vb == 0.0) return 1.0;
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace psw
