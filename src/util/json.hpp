// Minimal streaming JSON writer for the telemetry and bench report paths.
// Produces indented, standards-conforming JSON (non-finite numbers are
// emitted as null, strings are escaped). No parsing — reports are consumed
// by external tooling (python -c "json.load(...)" in CI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psw {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member key; must be followed by a value or container begin.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(double v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  // key + value in one call.
  template <class T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void pre_value();   // comma/newline/indent before a value or container
  void indent();

  std::string out_;
  // One frame per open container: true while it has no members yet.
  std::vector<bool> first_;
  bool after_key_ = false;
};

// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string json_quote(const std::string& s);

}  // namespace psw
