// Non-owning callable reference: two words (object pointer + call thunk),
// no heap, no virtual dispatch. The executor/thread-pool run paths take
// this instead of std::function so that per-frame parallel regions whose
// lambdas capture more than std::function's small-buffer budget (16 bytes
// on libstdc++) stop allocating. The referenced callable must outlive every
// invocation — true for all run() uses, which block until the region joins.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace psw {

template <class Sig>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): reference semantics on purpose
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace psw
