#include "util/mat4.hpp"

#include <cmath>
#include <cstdlib>

namespace psw {

Mat4::Mat4() {
  m_.fill(0.0);
  for (int i = 0; i < 4; ++i) at(i, i) = 1.0;
}

Mat4 Mat4::identity() { return Mat4{}; }

Mat4 Mat4::translation(double tx, double ty, double tz) {
  Mat4 r;
  r.at(0, 3) = tx;
  r.at(1, 3) = ty;
  r.at(2, 3) = tz;
  return r;
}

Mat4 Mat4::scale(double sx, double sy, double sz) {
  Mat4 r;
  r.at(0, 0) = sx;
  r.at(1, 1) = sy;
  r.at(2, 2) = sz;
  return r;
}

Mat4 Mat4::rotation_x(double angle) {
  Mat4 r;
  const double c = std::cos(angle), s = std::sin(angle);
  r.at(1, 1) = c;
  r.at(1, 2) = -s;
  r.at(2, 1) = s;
  r.at(2, 2) = c;
  return r;
}

Mat4 Mat4::rotation_y(double angle) {
  Mat4 r;
  const double c = std::cos(angle), s = std::sin(angle);
  r.at(0, 0) = c;
  r.at(0, 2) = s;
  r.at(2, 0) = -s;
  r.at(2, 2) = c;
  return r;
}

Mat4 Mat4::rotation_z(double angle) {
  Mat4 r;
  const double c = std::cos(angle), s = std::sin(angle);
  r.at(0, 0) = c;
  r.at(0, 1) = -s;
  r.at(1, 0) = s;
  r.at(1, 1) = c;
  return r;
}

Mat4 Mat4::axis_permutation(const std::array<int, 3>& perm) {
  Mat4 r;
  r.m_.fill(0.0);
  for (int i = 0; i < 3; ++i) r.at(i, perm[i]) = 1.0;
  r.at(3, 3) = 1.0;
  return r;
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 r;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double s = 0.0;
      for (int k = 0; k < 4; ++k) s += at(i, k) * o.at(k, j);
      r.at(i, j) = s;
    }
  }
  return r;
}

Vec3 Mat4::transform_point(const Vec3& p) const {
  const double w = at(3, 0) * p.x + at(3, 1) * p.y + at(3, 2) * p.z + at(3, 3);
  Vec3 r{at(0, 0) * p.x + at(0, 1) * p.y + at(0, 2) * p.z + at(0, 3),
         at(1, 0) * p.x + at(1, 1) * p.y + at(1, 2) * p.z + at(1, 3),
         at(2, 0) * p.x + at(2, 1) * p.y + at(2, 2) * p.z + at(2, 3)};
  if (w != 1.0 && w != 0.0) {
    r.x /= w;
    r.y /= w;
    r.z /= w;
  }
  return r;
}

Vec3 Mat4::transform_dir(const Vec3& d) const {
  return {at(0, 0) * d.x + at(0, 1) * d.y + at(0, 2) * d.z,
          at(1, 0) * d.x + at(1, 1) * d.y + at(1, 2) * d.z,
          at(2, 0) * d.x + at(2, 1) * d.y + at(2, 2) * d.z};
}

bool Mat4::inverse(Mat4* out) const {
  // Gauss-Jordan on [A | I].
  double a[4][8];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      a[i][j] = at(i, j);
      a[i][j + 4] = (i == j) ? 1.0 : 0.0;
    }
  }
  for (int col = 0; col < 4; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    if (pivot != col) {
      for (int j = 0; j < 8; ++j) std::swap(a[pivot][j], a[col][j]);
    }
    const double inv = 1.0 / a[col][col];
    for (int j = 0; j < 8; ++j) a[col][j] *= inv;
    for (int r = 0; r < 4; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (int j = 0; j < 8; ++j) a[r][j] -= f * a[col][j];
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) out->at(i, j) = a[i][j + 4];
  }
  return true;
}

bool Mat4::almost_equal(const Mat4& o, double tol) const {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (std::abs(at(i, j) - o.at(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace psw
