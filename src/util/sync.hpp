// Capability-annotated synchronization primitives: the one place in the
// repo where raw std::mutex / std::condition_variable are allowed to
// appear. Everything else locks through psw::Mutex, psw::MutexLock and
// psw::CondVar so Clang's thread-safety analysis (-Wthread-safety, enabled
// by the PSW_THREAD_SAFETY CMake option) can prove the locking discipline
// at compile time: every PSW_GUARDED_BY member access, every
// PSW_REQUIRES'd helper call and every scoped acquire/release is checked
// on every clang build instead of waiting for a TSan run to exercise the
// interleaving. scripts/check_invariants.sh enforces the "no raw std lock
// primitives outside this header" rule mechanically.
//
// The annotations are Clang attributes; on GCC (and on Clang builds
// without the capability attribute) every macro expands to nothing, so the
// types below are exactly a std::mutex / std::condition_variable wrapper
// with zero added cost.
//
// Condition-variable idiom: Clang's analysis cannot see through a
// predicate lambda passed to a wait(pred) overload (the lambda body is
// analyzed without knowledge of the caller's locks), so CondVar offers
// only the primitive wait(Mutex&) and call sites write the standard
//
//   MutexLock lock(mutex_);
//   while (!condition_over_guarded_state()) cv_.wait(mutex_);
//
// loop, which the analysis checks completely: the guarded reads in the
// condition happen in a scope that provably holds the mutex.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Thread-safety attribute macros (Clang only; no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PSW_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PSW_THREAD_ANNOTATION
#define PSW_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

// Declares a type to be a capability ("mutex"): the analysis tracks
// acquisition and release of its instances.
#define PSW_CAPABILITY(x) PSW_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose constructor acquires and destructor releases
// a capability.
#define PSW_SCOPED_CAPABILITY PSW_THREAD_ANNOTATION(scoped_lockable)

// Member `x` may only be read/written while the named capability is held.
#define PSW_GUARDED_BY(x) PSW_THREAD_ANNOTATION(guarded_by(x))

// Pointer member whose *pointee* is protected by the named capability.
#define PSW_PT_GUARDED_BY(x) PSW_THREAD_ANNOTATION(pt_guarded_by(x))

// The function may only be called while holding the named capabilities
// (and it does not release them).
#define PSW_REQUIRES(...) PSW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// The function acquires / releases the named capabilities (empty argument
// list on a member function means `this`).
#define PSW_ACQUIRE(...) PSW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PSW_RELEASE(...) PSW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PSW_TRY_ACQUIRE(...) PSW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// The function must be called *without* the named capabilities held
// (deadlock prevention: re-entry and lock-ordering violations).
#define PSW_EXCLUDES(...) PSW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock-ordering declarations on capability members.
#define PSW_ACQUIRED_BEFORE(...) PSW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PSW_ACQUIRED_AFTER(...) PSW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Escape hatch. The repo's acceptance gate allows this only inside
// util/sync.hpp and parallel/steal_queue.hpp, each use carrying a one-line
// justification; scripts/check_invariants.sh enforces the whitelist.
#define PSW_NO_THREAD_SAFETY_ANALYSIS PSW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace psw {

class CondVar;

// Annotated mutual-exclusion capability. Prefer MutexLock for scoped
// acquisition; bare lock()/unlock() exist for the rare hand-over-hand or
// conditional-release pattern and are still fully analyzed.
class PSW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PSW_ACQUIRE() { mu_.lock(); }
  void unlock() PSW_RELEASE() { mu_.unlock(); }
  bool try_lock() PSW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() adopts the raw handle across the sleep
  std::mutex mu_;
};

// Scoped acquisition (the std::lock_guard shape). The analysis treats the
// constructor as acquiring `mu` and the destructor as releasing it, so a
// guarded access anywhere in the scope type-checks.
class PSW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PSW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PSW_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to psw::Mutex. wait() requires the mutex held
// and holds it again on return (the atomic release-sleep-reacquire happens
// inside), which is exactly what the REQUIRES annotation expresses — the
// caller's view is "the lock never left my hands".
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified (spurious wakeups possible — always wait in a
  // `while (!condition)` loop over the guarded state).
  void wait(Mutex& mu) PSW_REQUIRES(mu) {
    // Adopt the already-held native handle for the duration of the sleep,
    // then release the std::unique_lock's ownership claim so the caller's
    // scoped guard (or explicit unlock) stays the one true owner.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Timed variant for bounded waits (e.g. a drain with a shutdown
  // deadline). Returns false on timeout, true when notified — either way
  // the mutex is held again on return, and callers still re-check their
  // condition in a loop exactly as with wait().
  bool wait_for(Mutex& mu, std::chrono::milliseconds timeout)
      PSW_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const bool notified = cv_.wait_for(native, timeout) == std::cv_status::no_timeout;
    native.release();
    return notified;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace psw
