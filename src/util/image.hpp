// Simple float-RGBA image container plus PPM (P6) import/export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/vec.hpp"

namespace psw {

class ImageRGBA {
 public:
  ImageRGBA() = default;
  ImageRGBA(int width, int height) { resize(width, height); }

  void resize(int width, int height) {
    width_ = width;
    height_ = height;
    pixels_.assign(static_cast<size_t>(width) * height, Rgba{});
  }
  void clear() { std::fill(pixels_.begin(), pixels_.end(), Rgba{}); }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  Rgba& at(int x, int y) { return pixels_[static_cast<size_t>(y) * width_ + x]; }
  const Rgba& at(int x, int y) const { return pixels_[static_cast<size_t>(y) * width_ + x]; }

  Rgba* row(int y) { return pixels_.data() + static_cast<size_t>(y) * width_; }
  const Rgba* row(int y) const { return pixels_.data() + static_cast<size_t>(y) * width_; }

  Rgba* data() { return pixels_.data(); }
  const Rgba* data() const { return pixels_.data(); }
  size_t pixel_count() const { return pixels_.size(); }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgba> pixels_;
};

// 8-bit RGBA pixel: the final (display) image format, as in a real
// framebuffer. The intermediate image keeps float precision for
// accumulation; the warp quantizes on store.
struct Pixel8 {
  uint8_t r = 0, g = 0, b = 0, a = 0;

  bool operator==(const Pixel8&) const = default;
};
static_assert(sizeof(Pixel8) == 4);

// Quantizes a float color (clamped to [0,1]) to 8 bits per channel.
Pixel8 quantize8(const Rgba& c);

class ImageU8 {
 public:
  ImageU8() = default;
  ImageU8(int width, int height) { resize(width, height); }

  void resize(int width, int height) {
    width_ = width;
    height_ = height;
    pixels_.assign(static_cast<size_t>(width) * height, Pixel8{});
  }
  void clear() { std::fill(pixels_.begin(), pixels_.end(), Pixel8{}); }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  Pixel8& at(int x, int y) { return pixels_[static_cast<size_t>(y) * width_ + x]; }
  const Pixel8& at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  Pixel8* row(int y) { return pixels_.data() + static_cast<size_t>(y) * width_; }
  const Pixel8* row(int y) const {
    return pixels_.data() + static_cast<size_t>(y) * width_;
  }
  Pixel8* data() { return pixels_.data(); }
  const Pixel8* data() const { return pixels_.data(); }
  size_t pixel_count() const { return pixels_.size(); }
  // Pixels the backing store can hold without reallocating; resize() within
  // this capacity never touches the allocator (FramePool relies on this).
  size_t pixel_capacity() const { return pixels_.capacity(); }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Pixel8> pixels_;
};

// Writes an 8-bit binary PPM; values are clamped to [0,1] then scaled.
// Returns false on I/O failure.
bool write_ppm(const std::string& path, const ImageRGBA& img);
bool write_ppm(const std::string& path, const ImageU8& img);

// Reads a binary PPM into a float image (alpha set to 1). Returns false on
// parse or I/O failure.
bool read_ppm(const std::string& path, ImageRGBA* out);

// Mean absolute difference over RGB channels between two images of equal
// size, normalized to [0,1]; returns a large value if the sizes differ.
double image_mad(const ImageRGBA& a, const ImageRGBA& b);
double image_mad(const ImageU8& a, const ImageU8& b);

// Pearson correlation of luminance between two equal-size images.
double image_correlation(const ImageRGBA& a, const ImageRGBA& b);
double image_correlation(const ImageU8& a, const ImageU8& b);

}  // namespace psw
