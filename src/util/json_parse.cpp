#include "util/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace psw {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& m : members) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

double JsonValue::as_double(double def) const {
  return type == Type::kNumber ? number : def;
}

int64_t JsonValue::as_i64(int64_t def) const {
  if (type != Type::kNumber) return def;
  return std::strtoll(raw.c_str(), nullptr, 10);
}

uint64_t JsonValue::as_u64(uint64_t def) const {
  if (type != Type::kNumber) return def;
  if (!raw.empty() && raw[0] == '-') return def;
  return std::strtoull(raw.c_str(), nullptr, 10);
}

bool JsonValue::as_bool(bool def) const {
  return type == Type::kBool ? boolean : def;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_literal(const char* lit, JsonValue* out, JsonValue::Type type,
                     bool boolean) {
    size_t i = 0;
    while (lit[i] != '\0') {
      if (pos + i >= text.size() || text[pos + i] != lit[i]) {
        return fail("bad literal");
      }
      ++i;
    }
    pos += i;
    out->type = type;
    out->boolean = boolean;
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return fail("truncated escape");
        const char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos += 4;
            // ASCII decodes exactly; anything wider is replaced (our own
            // documents never emit it).
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return fail("bad escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return fail("bad number");
    }
    out->type = JsonValue::Type::kNumber;
    out->raw = text.substr(start, pos - start);
    out->number = std::strtod(out->raw.c_str(), nullptr);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = JsonValue::Type::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        if (!consume(':')) return fail("expected ':'");
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        out->members.emplace_back(std::move(key), std::move(v));
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->type = JsonValue::Type::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        out->items.push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return parse_string(&out->str);
    }
    if (c == 't') return parse_literal("true", out, JsonValue::Type::kBool, true);
    if (c == 'f') return parse_literal("false", out, JsonValue::Type::kBool, false);
    if (c == 'n') return parse_literal("null", out, JsonValue::Type::kNull, false);
    return parse_number(out);
  }
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out, std::string* error) {
  Parser p{text, 0, {}};
  JsonValue v;
  if (!p.parse_value(&v, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing data at offset " + std::to_string(p.pos);
    }
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace psw
