// Deterministic, seedable random number generation (SplitMix64). Used by the
// phantom generators and the property-based tests; determinism keeps
// regression images and traces reproducible.
#pragma once

#include <cstdint>

namespace psw {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  uint64_t below(uint64_t n) { return n ? next() % n : 0; }

 private:
  uint64_t state_;
};

}  // namespace psw
