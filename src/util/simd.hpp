// Minimal portable 4-lane float SIMD wrapper for the compositing fast path.
//
// Backends: SSE2 (x86) and NEON (AArch64) via intrinsics, selected by the
// CMake feature probe (PSW_SIMD_SSE2 / PSW_SIMD_NEON compile definitions;
// PSW_FORCE_SCALAR_SIMD overrides both), with a scalar fallback that
// performs the same IEEE operations in the same order. Every backend is
// bit-exact with the scalar code: only lane-wise mul/add are used, no FMA
// contraction, no approximate reciprocals — which is what lets the
// SIMD-accumulating kernel stay bit-identical to the dense reference
// renderer.
#pragma once

#include <cstdint>
#include <cstring>

#if defined(PSW_FORCE_SCALAR_SIMD)
// scalar fallback
#elif defined(PSW_SIMD_SSE2) || defined(__SSE2__)
#define PSW_SIMD_BACKEND_SSE2 1
#include <emmintrin.h>
#elif defined(PSW_SIMD_NEON) || defined(__ARM_NEON)
#define PSW_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#endif

namespace psw::simd {

#if defined(PSW_SIMD_BACKEND_SSE2)

struct f32x4 {
  __m128 v;
};

// 16 classified voxels (64 bytes; opacity is byte 0 of each 4-byte voxel)
// -> bit t set iff voxel t's opacity >= threshold. Feeds the run-length
// encoder's block fast path: a uniform mask extends the current run 16
// voxels at a time. All backends produce the same mask, and the encoder
// only uses it to skip per-voxel comparisons whose outcome the mask already
// fixes, so encodings stay bit-identical to the scalar walk.
inline uint32_t opaque_mask16(const uint8_t* p, uint8_t threshold) {
  const __m128i* q = reinterpret_cast<const __m128i*>(p);
  const __m128i lo = _mm_set1_epi32(0xFF);
  const __m128i a0 = _mm_and_si128(_mm_loadu_si128(q + 0), lo);
  const __m128i a1 = _mm_and_si128(_mm_loadu_si128(q + 1), lo);
  const __m128i a2 = _mm_and_si128(_mm_loadu_si128(q + 2), lo);
  const __m128i a3 = _mm_and_si128(_mm_loadu_si128(q + 3), lo);
  // Values are <= 255, so the signed 32->16 pack is lossless.
  const __m128i bytes =
      _mm_packus_epi16(_mm_packs_epi32(a0, a1), _mm_packs_epi32(a2, a3));
  const __m128i thr = _mm_set1_epi8(static_cast<char>(threshold));
  const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(bytes, thr), bytes);
  return static_cast<uint32_t>(_mm_movemask_epi8(ge));
}

inline f32x4 zero() { return {_mm_setzero_ps()}; }
inline f32x4 set1(float x) { return {_mm_set1_ps(x)}; }
inline f32x4 loadu(const float* p) { return {_mm_loadu_ps(p)}; }
inline void storeu(float* p, f32x4 x) { _mm_storeu_ps(p, x.v); }
inline f32x4 add(f32x4 a, f32x4 b) { return {_mm_add_ps(a.v, b.v)}; }
inline f32x4 mul(f32x4 a, f32x4 b) { return {_mm_mul_ps(a.v, b.v)}; }
// Four unsigned bytes -> four float lanes [p[0], p[1], p[2], p[3]].
inline f32x4 from_u8x4(const uint8_t* p) {
  uint32_t packed;
  std::memcpy(&packed, p, 4);
  const __m128i b = _mm_cvtsi32_si128(static_cast<int>(packed));
  const __m128i z = _mm_setzero_si128();
  const __m128i w = _mm_unpacklo_epi16(_mm_unpacklo_epi8(b, z), z);
  return {_mm_cvtepi32_ps(w)};
}
inline f32x4 broadcast0(f32x4 x) {
  return {_mm_shuffle_ps(x.v, x.v, _MM_SHUFFLE(0, 0, 0, 0))};
}
inline float lane3(f32x4 x) {
  return _mm_cvtss_f32(_mm_shuffle_ps(x.v, x.v, _MM_SHUFFLE(3, 3, 3, 3)));
}
// (a, r, g, b) -> (r, g, b, 1): aligns a ClassifiedVoxel's channels with
// the Rgba pixel layout, with a unit lane so the opacity sum rides along.
inline f32x4 rgb1_from_argb(f32x4 x) {
  const __m128 one = _mm_set1_ps(1.0f);
  const __m128 b1 = _mm_shuffle_ps(x.v, one, _MM_SHUFFLE(0, 0, 3, 3));  // b b 1 1
  return {_mm_shuffle_ps(x.v, b1, _MM_SHUFFLE(2, 0, 2, 1))};            // r g b 1
}

#elif defined(PSW_SIMD_BACKEND_NEON)

struct f32x4 {
  float32x4_t v;
};

// See the SSE2 backend for the contract.
inline uint32_t opaque_mask16(const uint8_t* p, uint8_t threshold) {
  const uint8x16x4_t v = vld4q_u8(p);  // val[0] deinterleaves the opacities
  const uint8x16_t ge = vcgeq_u8(v.val[0], vdupq_n_u8(threshold));
  const uint8x16_t weights = {1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t bits = vandq_u8(ge, weights);
  return static_cast<uint32_t>(vaddv_u8(vget_low_u8(bits))) |
         (static_cast<uint32_t>(vaddv_u8(vget_high_u8(bits))) << 8);
}

inline f32x4 zero() { return {vdupq_n_f32(0.0f)}; }
inline f32x4 set1(float x) { return {vdupq_n_f32(x)}; }
inline f32x4 loadu(const float* p) { return {vld1q_f32(p)}; }
inline void storeu(float* p, f32x4 x) { vst1q_f32(p, x.v); }
inline f32x4 add(f32x4 a, f32x4 b) { return {vaddq_f32(a.v, b.v)}; }
inline f32x4 mul(f32x4 a, f32x4 b) { return {vmulq_f32(a.v, b.v)}; }
inline f32x4 from_u8x4(const uint8_t* p) {
  uint32_t packed;
  std::memcpy(&packed, p, 4);
  const uint8x8_t b = vreinterpret_u8_u32(vdup_n_u32(packed));
  const uint32x4_t w = vmovl_u16(vget_low_u16(vmovl_u8(b)));
  return {vcvtq_f32_u32(w)};
}
inline f32x4 broadcast0(f32x4 x) { return {vdupq_laneq_f32(x.v, 0)}; }
inline float lane3(f32x4 x) { return vgetq_lane_f32(x.v, 3); }
inline f32x4 rgb1_from_argb(f32x4 x) {
  const float32x4_t rot = vextq_f32(x.v, x.v, 1);  // r g b a
  return {vsetq_lane_f32(1.0f, rot, 3)};           // r g b 1
}

#else  // scalar fallback — identical operations in identical order

struct f32x4 {
  float v[4];
};

// See the SSE2 backend for the contract.
inline uint32_t opaque_mask16(const uint8_t* p, uint8_t threshold) {
  uint32_t m = 0;
  for (int t = 0; t < 16; ++t) {
    m |= static_cast<uint32_t>(p[4 * t] >= threshold) << t;
  }
  return m;
}

inline f32x4 zero() { return {{0.0f, 0.0f, 0.0f, 0.0f}}; }
inline f32x4 set1(float x) { return {{x, x, x, x}}; }
inline f32x4 loadu(const float* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void storeu(float* p, f32x4 x) {
  p[0] = x.v[0];
  p[1] = x.v[1];
  p[2] = x.v[2];
  p[3] = x.v[3];
}
inline f32x4 add(f32x4 a, f32x4 b) {
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2], a.v[3] + b.v[3]}};
}
inline f32x4 mul(f32x4 a, f32x4 b) {
  return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2], a.v[3] * b.v[3]}};
}
inline f32x4 from_u8x4(const uint8_t* p) {
  return {{static_cast<float>(p[0]), static_cast<float>(p[1]),
           static_cast<float>(p[2]), static_cast<float>(p[3])}};
}
inline f32x4 broadcast0(f32x4 x) { return set1(x.v[0]); }
inline float lane3(f32x4 x) { return x.v[3]; }
inline f32x4 rgb1_from_argb(f32x4 x) { return {{x.v[1], x.v[2], x.v[3], 1.0f}}; }

#endif

}  // namespace psw::simd
