// Minimal command-line flag parsing for the bench and example binaries.
// Flags have the form --name=value or --name (boolean true).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace psw {

class CliFlags {
 public:
  CliFlags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  // Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Strict validation: a typo'd --flag must not silently fall back to the
  // default. Returns "" when every parsed flag is in `known`, otherwise a
  // message naming the unknown flags and listing the known set.
  std::string unknown_flag_error(const std::vector<std::string>& known) const;

  // Convenience for binaries: prints unknown_flag_error to stderr and exits
  // with status 2 when validation fails.
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace psw
