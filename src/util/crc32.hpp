// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the network
// wire protocol's payload integrity check. Table-driven, one byte per
// step; incremental use chains the running value through `seed`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace psw {

// CRC-32 of `size` bytes at `data`. Pass a previous return value as `seed`
// to extend a running checksum; the default corresponds to a fresh start.
uint32_t crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace psw
