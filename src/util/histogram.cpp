#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/json.hpp"

namespace psw {

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& o) {
  if (this == &o) return *this;
  // relaxed: copying takes an advisory telemetry snapshot — fields may tear
  // against concurrent recorders, and the copy publishes no other memory.
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b].store(o.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  // relaxed: same snapshot rationale as the buckets above.
  count_.store(o.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_ms_.store(o.sum_ms_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  max_ms_.store(o.max_ms_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

int LatencyHistogram::bucket_for(double ms) {
  if (!(ms > kMinMs)) return 0;
  // Four buckets per power of two: index = floor(4 * log2(ms / kMinMs)).
  const int b = static_cast<int>(4.0 * std::log2(ms / kMinMs));
  return std::clamp(b, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_lo(int b) { return kMinMs * std::exp2(b / 4.0); }

void LatencyHistogram::record_ms(double ms) {
  if (!(ms >= 0.0)) ms = 0.0;  // negative/NaN clock glitches clamp to zero
  // relaxed: independent statistic counters; atomic RMWs keep them exact
  // and no reader infers ordering of other memory from them.
  buckets_[bucket_for(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ms_.fetch_add(ms, std::memory_order_relaxed);
  // relaxed: max is a monotonic watermark — the CAS loop retries on races,
  // and readers need no ordering with the other fields.
  double prev = max_ms_.load(std::memory_order_relaxed);
  while (ms > prev &&
         !max_ms_.compare_exchange_weak(prev, ms, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (this == &other) return;
  // relaxed: merge reads a quiescent (or snapshot) source into independent
  // counters; atomic RMWs keep the totals exact, nothing else is published.
  for (int b = 0; b < kBuckets; ++b) {
    const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  // relaxed: same rationale for the scalar totals.
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_ms_.fetch_add(other.sum_ms_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  // relaxed: monotonic max watermark, CAS retry as in record_ms.
  const double other_max = other.max_ms_.load(std::memory_order_relaxed);
  double prev = max_ms_.load(std::memory_order_relaxed);
  while (other_max > prev &&
         !max_ms_.compare_exchange_weak(prev, other_max, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean_ms() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum_ms() / static_cast<double>(n);
}

double LatencyHistogram::quantile_ms(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil), as in nearest-rank quantiles.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  // relaxed: quantiles are approximate by design — a concurrent recorder
  // moving a bucket mid-scan shifts the answer by one sample at most.
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Geometric midpoint of [lo, lo * 2^(1/4)); clamp to observed max.
      return std::min(bucket_lo(b) * std::exp2(0.125), max_ms());
    }
  }
  return max_ms();
}

void LatencyHistogram::write_json(JsonWriter& w) const {
  w.begin_object()
      .field("count", count())
      .field("mean_ms", mean_ms())
      .field("p50_ms", quantile_ms(0.50))
      .field("p95_ms", quantile_ms(0.95))
      .field("p99_ms", quantile_ms(0.99))
      .field("max_ms", max_ms())
      .end_object();
}

}  // namespace psw
