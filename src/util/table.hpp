// Aligned-column text tables: the bench binaries print every reproduced
// figure/table as one of these so paper rows and measured rows line up.
#pragma once

#include <string>
#include <vector>

namespace psw {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 2);

  // Renders with column alignment and a separator under the header.
  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision.
std::string fmt(double v, int precision = 2);

}  // namespace psw
