// Lock-free latency histogram for the frame-serving telemetry: geometric
// buckets from 1 µs to ~70 minutes, atomic counters so concurrent recorders
// (submitters, the scheduler) never serialize on a lock. Quantiles are
// approximate (bucket resolution ~19%, ratio 2^(1/4)); count/sum/max are
// exact.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace psw {

class JsonWriter;

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 128;
  static constexpr double kMinMs = 1e-3;  // bucket 0 lower bound: 1 µs

  LatencyHistogram() = default;

  // Copying snapshots the atomics (for export under concurrent recording).
  LatencyHistogram(const LatencyHistogram& o) { *this = o; }
  LatencyHistogram& operator=(const LatencyHistogram& o);

  void record_ms(double ms);

  // Adds `other`'s samples into this histogram (bucket-wise; count/sum add,
  // max takes the larger). Lets per-connection histograms recorded without
  // any shared lock aggregate into service-wide quantiles at export time.
  // `other` should be quiescent or a snapshot copy; concurrent recording
  // into *this* stays safe (all updates are atomic RMWs).
  void merge(const LatencyHistogram& other);

  // relaxed: advisory telemetry reads — each field is independently exact,
  // and cross-field consistency is not promised to readers.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const { return sum_ms_.load(std::memory_order_relaxed); }
  double max_ms() const { return max_ms_.load(std::memory_order_relaxed); }
  double mean_ms() const;

  // q in [0, 1]; returns the geometric midpoint of the bucket holding the
  // q-th sample (0 when empty).
  double quantile_ms(double q) const;

  // Writes {count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms} as one object
  // value (caller positions the writer at a value slot).
  void write_json(JsonWriter& w) const;

 private:
  static int bucket_for(double ms);
  static double bucket_lo(int b);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_ms_{0.0};
  std::atomic<double> max_ms_{0.0};
};

}  // namespace psw
