// Size-classed, thread-safe buffer pools for the zero-copy serving memory
// path. The paper's discipline — working sets that fit in cache, data never
// touched twice — is applied here to the layer *above* the render kernels:
// steady-state frame serving must not allocate, and an encoded frame must
// reach the socket without being copied into yet another buffer.
//
// Two pools cover the serving path's storage:
//
//   BufferPool   byte buffers (codec blobs, wire payloads). Buffers are
//                grouped into power-of-two size classes; acquire() pops the
//                smallest retained buffer whose class covers the size hint
//                (searching larger classes before allocating, so one warm
//                buffer serves callers with smaller hints). The PooledBuffer
//                RAII handle returns storage on destruction, wherever the
//                handle ends up — per-connection send queues, completion
//                items — so no call site can leak a pooled buffer.
//
//   FramePool    whole ImageU8 frames (the compositor's output). Rendered
//                frames travel by move through FrameResult to the consumer,
//                which recycles them once encoded; the pixel storage's
//                capacity travels with the image, so a session re-renders
//                into the same cache-warm allocation frame after frame.
//
// Both pools are bounded (per-class buffer count and a total retained-byte
// budget) and fully instrumented: PoolStats counts acquires, hits, misses,
// releases, discards and the outstanding/retained gauges, with conservation
// invariants (acquires == hits + misses == releases + outstanding) asserted
// in the tests and exported in the service/net metrics JSON. An optional
// poison-on-release mode fills returned buffers with 0xDD so use-after-
// release reads stale poison instead of silently reading recycled frames.
//
// Locking: each pool's freelists and stats live behind one psw::Mutex
// (util/sync.hpp) in the .cpp-private Shared/Impl state, declared
// PSW_GUARDED_BY so Clang's thread-safety analysis proves the budget
// accounting is never touched unlocked.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/image.hpp"

namespace psw {

// Counters of one pool. Monotonic counts plus two gauges; a snapshot is
// internally consistent (taken under the pool lock).
struct PoolStats {
  uint64_t acquires = 0;        // acquire() calls
  uint64_t hits = 0;            // served from a retained buffer
  uint64_t misses = 0;          // had to allocate fresh storage
  uint64_t releases = 0;        // handles/buffers given back (retained or not)
  uint64_t discards = 0;        // of `releases`, dropped instead of retained
  uint64_t outstanding = 0;     // gauge: acquired, not yet released
  uint64_t retained = 0;        // gauge: buffers sitting in freelists
  uint64_t retained_bytes = 0;  // gauge: capacity held by `retained`

  double hit_rate() const {
    return acquires == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(acquires);
  }
  // Invariants every quiesced pool satisfies; the metrics tests assert this.
  bool conserves() const {
    return acquires == hits + misses && releases <= acquires &&
           outstanding == acquires - releases && discards <= releases;
  }
};

class PooledBuffer;

// Thread-safe pool of std::vector<uint8_t> buffers in power-of-two size
// classes (4 KiB .. 32 MiB). Copyable handles are not provided: storage
// moves in and out through PooledBuffer.
class BufferPool {
 public:
  struct Options {
    size_t max_buffers_per_class = 8;
    size_t max_retained_bytes = 64u << 20;
    // Fill released buffers' bytes with 0xDD before retaining them, so a
    // use-after-release reads poison instead of a recycled frame. Cheap
    // enough for tests and debug servers; off in production paths.
    bool poison_on_release = false;
  };

  BufferPool();
  explicit BufferPool(Options options);
  ~BufferPool() = default;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns an empty (size 0) buffer whose capacity is at least `size_hint`
  // when a retained buffer can provide it, allocating one sized to the
  // hint's class otherwise. A hint larger than the largest class yields an
  // exact unpooled allocation (released back, it is discarded, not retained).
  PooledBuffer acquire(size_t size_hint);

  PoolStats stats() const;

  // Drops every retained buffer (budget pressure, tests).
  void trim();

  static constexpr size_t kMinClassBytes = 4096;
  static constexpr size_t kMaxClassBytes = 32u << 20;

 private:
  friend class PooledBuffer;
  struct Shared;
  static void release(const std::shared_ptr<Shared>& shared,
                      std::vector<uint8_t>&& buf);

  std::shared_ptr<Shared> shared_;
};

// RAII handle to one pooled byte buffer. Move-only; destruction returns the
// storage to its pool (which may outlive or predecease the handle — the
// pool's internal state is shared_ptr-owned, so either order is safe).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  ~PooledBuffer() { release(); }

  PooledBuffer(PooledBuffer&& other) noexcept
      : shared_(std::move(other.shared_)), buf_(std::move(other.buf_)),
        active_(other.active_) {
    other.active_ = false;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      shared_ = std::move(other.shared_);
      buf_ = std::move(other.buf_);
      active_ = other.active_;
      other.active_ = false;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  // The buffer itself. Valid only while the handle is active (acquired and
  // not yet released); an empty handle's vector is an empty dummy.
  std::vector<uint8_t>& vec() { return buf_; }
  const std::vector<uint8_t>& vec() const { return buf_; }

  bool active() const { return active_; }
  explicit operator bool() const { return active_; }

  // Early return to the pool (destruction does the same).
  void release();

 private:
  friend class BufferPool;
  PooledBuffer(std::shared_ptr<BufferPool::Shared> shared,
               std::vector<uint8_t>&& buf)
      : shared_(std::move(shared)), buf_(std::move(buf)), active_(true) {}

  std::shared_ptr<BufferPool::Shared> shared_;
  std::vector<uint8_t> buf_;
  bool active_ = false;
};

// Thread-safe pool of ImageU8 frames. acquire() prefers the smallest
// retained image whose pixel capacity covers the hint, so sessions with
// different frame sizes stop stealing each other's allocations once the
// pool is warm. Frames travel by value (move); callers recycle through
// release() — typically RenderService::recycle_frame once the frame has
// been encoded for the wire.
class FramePool {
 public:
  struct Options {
    size_t max_frames = 32;
    size_t max_retained_bytes = 256u << 20;
  };

  FramePool();
  explicit FramePool(Options options);

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // An image (dimensions 0x0, contents unspecified) whose pixel capacity is
  // at least `pixel_hint` when the pool can provide one. The caller resizes
  // it; resize() reuses the capacity, so a warm hit never allocates.
  ImageU8 acquire(size_t pixel_hint = 0);

  // Returns a frame for reuse. Empty images are counted but never retained.
  void release(ImageU8&& frame);

  PoolStats stats() const;
  void trim();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace psw
