// 4x4 matrix with the operations needed by the shear-warp factorization:
// multiplication, general inverse, rotations, translation, permutation.
#pragma once

#include <array>

#include "util/vec.hpp"

namespace psw {

class Mat4 {
 public:
  // Identity by default.
  Mat4();

  static Mat4 identity();
  static Mat4 translation(double tx, double ty, double tz);
  static Mat4 scale(double sx, double sy, double sz);
  // Rotations about the object-space axes, angle in radians.
  static Mat4 rotation_x(double angle);
  static Mat4 rotation_y(double angle);
  static Mat4 rotation_z(double angle);
  // Axis permutation matrix: output axis i takes input axis perm[i].
  static Mat4 axis_permutation(const std::array<int, 3>& perm);

  double& at(int r, int c) { return m_[r * 4 + c]; }
  double at(int r, int c) const { return m_[r * 4 + c]; }

  Mat4 operator*(const Mat4& o) const;
  // Transform a point (w = 1), returning the xyz of the result.
  Vec3 transform_point(const Vec3& p) const;
  // Transform a direction (w = 0).
  Vec3 transform_dir(const Vec3& d) const;

  // General inverse via Gauss-Jordan elimination with partial pivoting.
  // Returns false (and leaves *out* unspecified) if singular.
  bool inverse(Mat4* out) const;

  bool almost_equal(const Mat4& o, double tol = 1e-9) const;

 private:
  std::array<double, 16> m_;
};

}  // namespace psw
