// Wall-clock timing helper for the benchmark harness and renderer stats,
// plus the monotonic→wall-clock anchor that makes span timestamps exported
// by different processes (router vs. shards) comparable.
#pragma once

#include <chrono>
#include <cstdint>

namespace psw {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// One paired (steady, system) clock reading. Spans are timed on the steady
// clock — immune to NTP steps — and converted to wall nanoseconds only at
// export, through this anchor, so dumps from separate processes line up on
// a shared Unix-epoch axis (drift is bounded by NTP slew between process
// starts, microseconds over the lifetimes that matter here).
struct ClockAnchor {
  int64_t steady_ns = 0;  // steady_clock reading at capture
  int64_t wall_ns = 0;    // system_clock reading (Unix ns) at the same instant
};

// The process-wide anchor, captured once at process start (static
// initialization below forces the capture before main begins, so every
// exporter in the process shares one pairing).
inline const ClockAnchor& clock_anchor() {
  static const ClockAnchor anchor = [] {
    ClockAnchor a;
    a.steady_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
    a.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    return a;
  }();
  return anchor;
}

namespace detail {
struct ClockAnchorInit {
  ClockAnchorInit() { (void)clock_anchor(); }
};
inline ClockAnchorInit clock_anchor_init{};
}  // namespace detail

// Current steady-clock reading in nanoseconds (the span timestamp base).
inline int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Maps a steady-clock nanosecond reading onto the wall clock (Unix ns)
// through the process anchor.
inline int64_t steady_to_wall_ns(int64_t steady_ns) {
  const ClockAnchor& a = clock_anchor();
  return a.wall_ns + (steady_ns - a.steady_ns);
}

inline int64_t wall_now_ns() { return steady_to_wall_ns(steady_now_ns()); }

}  // namespace psw
