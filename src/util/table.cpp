#include "util/table.hpp"

#include <cstdio>
#include <sstream>

namespace psw {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::add_row_numeric(const std::string& label, const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.push_back(label);
  for (double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string TextTable::to_string() const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> width(ncols, 0);
  auto measure = [&width](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream out;
  auto emit = [&out, &width](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) out << std::string(width[i] - row[i].size() + 2, ' ');
    }
    out << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t i = 0; i < width.size(); ++i) total += width[i] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace psw
