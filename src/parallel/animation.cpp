#include "parallel/animation.hpp"

#include <algorithm>

namespace psw {

AnimationSummary run_animation(
    const AnimationPath& path,
    const std::function<ParallelRenderStats(int frame, const Camera&)>& render_frame) {
  AnimationSummary summary;
  // A zero- (or negative-) frame path yields the well-defined empty summary:
  // all counters zero, no division by the frame count below.
  summary.frames = std::max(0, path.frames);
  if (summary.frames == 0) return summary;
  for (int frame = 0; frame < path.frames; ++frame) {
    const ParallelRenderStats stats = render_frame(frame, path.camera(frame));
    summary.total_ms += stats.total_ms;
    summary.worst_frame_ms = std::max(summary.worst_frame_ms, stats.total_ms);
    summary.profiled_frames += stats.profiled ? 1 : 0;
    summary.total_steals += stats.steals;
    summary.mean_imbalance += stats.work_imbalance();
  }
  summary.mean_frame_ms = summary.total_ms / summary.frames;
  summary.mean_imbalance /= summary.frames;
  if (summary.total_ms > 0) {
    summary.frames_per_second = 1e3 * summary.frames / summary.total_ms;
  }
  return summary;
}

}  // namespace psw
