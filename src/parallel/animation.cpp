#include "parallel/animation.hpp"

#include <algorithm>

namespace psw {

AnimationSummary run_animation(
    const AnimationPath& path,
    const std::function<ParallelRenderStats(int frame, const Camera&)>& render_frame) {
  AnimationSummary summary;
  summary.frames = path.frames;
  for (int frame = 0; frame < path.frames; ++frame) {
    const ParallelRenderStats stats = render_frame(frame, path.camera(frame));
    summary.total_ms += stats.total_ms;
    summary.worst_frame_ms = std::max(summary.worst_frame_ms, stats.total_ms);
    summary.profiled_frames += stats.profiled ? 1 : 0;
    summary.total_steals += stats.steals;
    summary.mean_imbalance += stats.work_imbalance();
  }
  if (path.frames > 0) {
    summary.mean_frame_ms = summary.total_ms / path.frames;
    summary.mean_imbalance /= path.frames;
    if (summary.total_ms > 0) {
      summary.frames_per_second = 1e3 * path.frames / summary.total_ms;
    }
  }
  return summary;
}

}  // namespace psw
