// Deterministic virtual-time scheduling for serial (tracing) executors.
//
// The paper's renderers rely on dynamic task stealing for load balance; on
// real threads stealing is driven by wall-clock timing. When the renderers
// execute under a SerialExecutor to produce per-processor traces, running
// processor bodies to completion one after another would let processor 0
// steal everything, so instead the compositing phase is scheduled here:
// each virtual processor has a clock advanced by the work units of the
// chunks it processes, and the next chunk always goes to the processor
// with the smallest clock — exactly the schedule a timing-driven run with
// uniform per-unit cost would produce, deterministically.
#pragma once

#include <limits>
#include <vector>

#include "parallel/steal_queue.hpp"
#include "util/function_ref.hpp"

namespace psw {

// Drains `queues` with `procs` virtual processors. `process(p, range)`
// executes the chunk on processor p (recording that processor's trace) and
// returns its cost in work units. Stealing follows the same policy as the
// threaded path (own queue front first, then steal from the fullest
// victim's back).
inline void virtual_time_schedule(
    StealQueues& queues, int procs, int chunk, bool steal,
    FunctionRef<uint32_t(int, const ScanlineRange&)> process) {
  std::vector<double> clock(procs, 0.0);
  std::vector<bool> exhausted(procs, false);
  int active = procs;
  while (active > 0) {
    int p = -1;
    for (int q = 0; q < procs; ++q) {
      if (!exhausted[q] && (p < 0 || clock[q] < clock[p])) p = q;
    }
    ScanlineRange r;
    if (queues.pop_own(p, chunk, &r) || (steal && queues.steal(p, chunk, &r))) {
      clock[p] += process(p, r);
      // Zero-cost chunks must still advance time so empty partitions do
      // not monopolize the argmin.
      clock[p] += 1.0;
    } else {
      exhausted[p] = true;
      --active;
    }
  }
}

}  // namespace psw
