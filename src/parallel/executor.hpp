// Execution strategy for the parallel renderers. A ThreadedExecutor runs
// SPMD bodies on real threads; a SerialExecutor replays them one simulated
// processor at a time, which is how the trace-driven cache and SVM
// simulators observe each processor's reference stream deterministically.
#pragma once

#include <cstdint>
#include <memory>

#include "core/hook.hpp"
#include "parallel/thread_pool.hpp"
#include "util/function_ref.hpp"

namespace psw {

class Executor {
 public:
  virtual ~Executor() = default;

  // Number of (real or simulated) processors.
  virtual int procs() const = 0;

  // Runs body(p) for every p; returns when all are done. For a threaded
  // executor the return is a barrier; for a serial executor bodies run in
  // processor order. Takes a non-owning FunctionRef (the call blocks until
  // the region joins) so per-frame regions never pay a std::function heap
  // allocation for large captures.
  virtual void run(FunctionRef<void(int)> body) = 0;

  // True when bodies genuinely overlap in time. Renderers use this to
  // decide whether work stealing and fused composite+warp phases (with
  // point-to-point completion waits) are usable.
  virtual bool concurrent() const = 0;

  // Per-processor memory hook for the trace layer (null by default).
  virtual MemoryHook* hook(int p) {
    (void)p;
    return nullptr;
  }

  // Phase annotation, forwarded to the trace layer so simulators can place
  // synchronization interval boundaries. `barrier` records whether the
  // boundary is a global barrier (orders everything before it on every
  // processor before everything after it) or a mere label whose ordering
  // is carried by point-to-point sync_release/sync_acquire edges instead
  // (the new renderer's fused composite→warp transition, §5.5.2).
  virtual void begin_phase(const char* name, bool barrier = true) {
    (void)name;
    (void)barrier;
  }

  // Point-to-point synchronization annotations for the trace layer; no-ops
  // everywhere else. sync_release(p, t) marks a release point on p's stream
  // under token t (e.g. retiring a chunk of partition t's scanlines);
  // sync_acquire(p, t) orders every prior release under t before p's
  // subsequent references (e.g. the fused warp's neighbour completion
  // wait). sync_edge is the immediate form: everything `from` has
  // referenced so far happens-before everything `to` references from now
  // on. The race detector (src/analyze) consumes these.
  virtual void sync_release(int proc, uint64_t token) {
    (void)proc;
    (void)token;
  }
  virtual void sync_acquire(int proc, uint64_t token) {
    (void)proc;
    (void)token;
  }
  virtual void sync_edge(int from_proc, int to_proc) {
    (void)from_proc;
    (void)to_proc;
  }
};

// Runs everything on the calling thread, processor by processor.
class SerialExecutor : public Executor {
 public:
  explicit SerialExecutor(int procs) : procs_(procs) {}

  int procs() const override { return procs_; }
  bool concurrent() const override { return false; }
  void run(FunctionRef<void(int)> body) override {
    for (int p = 0; p < procs_; ++p) body(p);
  }

 private:
  int procs_;
};

// Real-thread executor owning a pool of `procs` workers.
class ThreadedExecutor : public Executor {
 public:
  explicit ThreadedExecutor(int procs) : pool_(procs) {}

  int procs() const override { return pool_.size(); }
  bool concurrent() const override { return true; }
  void run(FunctionRef<void(int)> body) override { pool_.run(body); }

 private:
  ThreadPool pool_;
};

}  // namespace psw
