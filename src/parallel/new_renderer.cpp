#include "parallel/new_renderer.hpp"

#include <atomic>
#include <cmath>
#include <thread>

#include "parallel/partition.hpp"
#include "parallel/steal_queue.hpp"
#include "parallel/virtual_schedule.hpp"
#include "util/timer.hpp"

namespace psw {

void warp_x_interval(const Affine2D& inv_warp, int y, double v_lo, double v_hi,
                     int final_width, int* x0, int* x1) {
  // v(x, y) = c0*x + c1*y + c2 from the inverse warp.
  const double c0 = inv_warp.a10;
  const double c1 = inv_warp.a11;
  const double c2 = inv_warp.by;
  const double rest = c1 * y + c2;

  if (std::abs(c0) < 1e-12) {
    // v is constant along the scanline: all or nothing.
    const bool inside = rest >= v_lo && rest < v_hi;
    *x0 = 0;
    *x1 = inside ? final_width : 0;
    return;
  }
  const double t_lo = (v_lo - rest) / c0;
  const double t_hi = (v_hi - rest) / c0;
  double lo, hi;
  if (c0 > 0) {
    // v increases with x: x in [t(v_lo), t(v_hi)).
    lo = std::ceil(t_lo);
    hi = std::ceil(t_hi);
  } else {
    // v decreases with x: x in (t(v_hi), t(v_lo)].
    lo = std::floor(t_hi) + 1;
    hi = std::floor(t_lo) + 1;
  }
  *x0 = static_cast<int>(std::clamp(lo, 0.0, static_cast<double>(final_width)));
  *x1 = static_cast<int>(std::clamp(hi, 0.0, static_cast<double>(final_width)));
}


ParallelRenderStats NewParallelRenderer::render(const EncodedVolume& volume,
                                                const Camera& camera, Executor& exec,
                                                ImageU8* out) {
  ParallelRenderStats stats;
  render(volume, camera, exec, out, &stats);
  return stats;
}

void NewParallelRenderer::render(const EncodedVolume& volume, const Camera& camera,
                                 Executor& exec, ImageU8* out,
                                 ParallelRenderStats* stats_out) {
  ParallelRenderStats& stats = *stats_out;
  stats.reset();
  WallTimer total;
  const int P = exec.procs();

  const std::array<int, 3> dims{volume.dim(0), volume.dim(1), volume.dim(2)};
  const Factorization f = factorize(camera, dims);
  const RleVolume& rle = volume.for_axis(f.principal_axis);

  // Reuse the intermediate image's storage across frames (and across the
  // small size wobbles of a rotating camera): every row of the new extent
  // is cleared below before it is read, either by the per-partition edge
  // pass or by process_chunk, so no zeroing resize is needed.
  intermediate_.resize_for_reuse(f.intermediate_width, f.intermediate_height);
  const int height = f.intermediate_height;

  // Region of the intermediate image that can receive any contribution
  // (§4.2: the empty top and bottom are never composited).
  int act_lo = 0;
  while (act_lo < height && scanline_provably_empty(rle, f, act_lo)) ++act_lo;
  int act_hi = height;
  while (act_hi > act_lo && scanline_provably_empty(rle, f, act_hi - 1)) --act_hi;
  stats.active_lo = act_lo;
  stats.active_hi = act_hi;

  // Partition: predictively balanced from the last profile, else uniform
  // over the active region (first frame). All arrays live in the scratch.
  std::vector<int>& bounds = scratch_.part.bounds;
  if (profile_.valid_for(profile_height_) && profile_height_ > 0) {
    prefix_sum_parallel_into(profile_.cost(), exec, &scratch_.part);
    balanced_partition_into(scratch_.part.cum, P, &bounds);
    if (profile_height_ != height) {
      // Rotation changed the intermediate size slightly; rescale.
      const double scale = static_cast<double>(height) / profile_height_;
      for (int p = 1; p < P; ++p) {
        bounds[p] = static_cast<int>(std::llround(bounds[p] * scale));
      }
      bounds[P] = height;
      for (int p = 1; p <= P; ++p) bounds[p] = std::max(bounds[p], bounds[p - 1]);
      for (int p = P - 1; p >= 1; --p) bounds[p] = std::min(bounds[p], bounds[p + 1]);
    }
  } else {
    uniform_partition_into(std::max(0, act_hi - act_lo), P, &bounds);
    for (int& b : bounds) b += act_lo;
    bounds.front() = 0;
    bounds.back() = height;
  }
  stats.bounds.assign(bounds.begin(), bounds.end());

  // Profile this frame? (First frame, or the profile is stale; §4.2.)
  const bool profiling =
      !profile_.valid_for(profile_height_) ||
      profile_.frames_since_profile() >= options_.profile_every;
  stats.profiled = profiling;
  if (profiling) profile_.begin_frame(height);

  // Seed the (reopened) queues with the active slice of each partition.
  scratch_.begin_frame(P);
  StealQueues& queues = scratch_.queues;
  std::atomic<int>* const remaining = scratch_.remaining.get();
  std::atomic<bool>* const done = scratch_.done.get();
  const int chunk = std::max(1, options_.chunk_scanlines);
  for (int p = 0; p < P; ++p) {
    const int lo = std::max(bounds[p], act_lo);
    const int hi = std::min(bounds[p + 1], act_hi);
    const int active = std::max(0, hi - lo);
    if (active > 0) queues.push(p, {lo, hi, p});
    // +1 is the owner's "cleared my inactive rows" token. relaxed: seeded
    // before the parallel region; the pool's run() barrier publishes both.
    remaining[p].store(active + 1, std::memory_order_relaxed);
    done[p].store(false, std::memory_order_relaxed);
  }

  const bool steal = options_.stealing;
  const bool fused = options_.fused_phases && exec.concurrent();
  // With fused phases requested, the composite→warp transition is ordered
  // by per-partition completion flags, not a global barrier — annotate the
  // trace with the matching point-to-point edges (release at every retire,
  // acquire at the neighbour wait) so the race detector checks the
  // synchronization actually claimed, not a stronger one.
  const bool p2p_sync = options_.fused_phases;
  stats.composite_work.assign(P, 0);
  stats.warp_pixels.assign(P, 0);
  std::vector<CompositeStats>& comp_stats = scratch_.comp_stats;
  std::vector<double>& composite_sec = scratch_.composite_sec;
  std::vector<double>& warp_sec = scratch_.warp_sec;

  // Rows the inactive-edge pass will clear (0 when every partition is
  // fully active and the pass is skipped); computed here so the stat needs
  // no synchronization inside the parallel region.
  for (int p = 0; p < P; ++p) {
    stats.edge_rows_cleared +=
        static_cast<uint64_t>(std::max(0, std::min(bounds[p + 1], act_lo) - bounds[p])) +
        static_cast<uint64_t>(std::max(0, bounds[p + 1] - std::max(bounds[p], act_hi)));
  }

  out->resize(f.final_width, f.final_height);
  const Affine2D inv = f.warp.inverse();

  auto retire = [&](int self, int owner, int count) {
    if (p2p_sync) exec.sync_release(self, static_cast<uint64_t>(owner));
    if (remaining[owner].fetch_sub(count, std::memory_order_acq_rel) == count) {
      done[owner].store(true, std::memory_order_release);
      done[owner].notify_all();
    }
  };

  // Point-to-point completion wait: a short bounded spin covers the common
  // case (the producer is scanlines away from finishing), then the waiter
  // parks on the futex-backed atomic instead of burning a core yielding.
  auto wait_done = [&](int q) {
    constexpr int kSpins = 4096;
    for (int spin = 0; spin < kSpins; ++spin) {
      if (done[q].load(std::memory_order_acquire)) return;
    }
    while (!done[q].load(std::memory_order_acquire)) {
      done[q].wait(false, std::memory_order_acquire);
    }
  };

  auto process_chunk = [&](int p, const ScanlineRange& r) -> uint32_t {
    MemoryHook* hook = exec.hook(p);
    uint32_t chunk_work = 0;
    intermediate_.clear_rows(r.lo, r.hi);
    for (int v = r.lo; v < r.hi; ++v) {
      const uint32_t work =
          composite_scanline(rle, f, v, intermediate_, hook, &comp_stats[p]);
      chunk_work += work;
      if (profiling) {
        profile_.record(v, work);
        hook_write(hook, profile_.data() + v, sizeof(uint32_t));
      }
    }
    stats.composite_work[p] += chunk_work;
    retire(p, r.owner, r.count());
    return chunk_work;
  };

  auto clear_inactive_rows = [&](int p) {
    // Clear the never-composited rows of my partition once per frame. A
    // fully active partition has none — skip the pass outright so warm
    // frames (where the profile pins every partition inside the active
    // region) pay nothing here.
    const int lo = bounds[p], hi = bounds[p + 1];
    if (lo < act_lo || hi > act_hi) {
      intermediate_.clear_rows(lo, std::min(hi, act_lo));
      intermediate_.clear_rows(std::max(lo, act_hi), hi);
    }
    retire(p, p, 1);
  };

  auto composite_body = [&](int p) {
    WallTimer timer;
    clear_inactive_rows(p);
    ScanlineRange r;
    while (queues.pop_own(p, chunk, &r)) process_chunk(p, r);
    if (steal) {
      while (queues.steal(p, chunk, &r)) process_chunk(p, r);
    }
    composite_sec[p] = timer.seconds();
  };

  auto warp_body = [&](int p) {
    MemoryHook* hook = exec.hook(p);
    if (fused) {
      // Point-to-point sync replacing the global barrier (§5.5.2): wait
      // only for the partitions whose scanlines this warp region reads.
      for (int q = std::max(0, p - 1); q <= std::min(P - 1, p + 1); ++q) wait_done(q);
    }
    if (p2p_sync) {
      // Acquire the completion of every chunk retired against the waited
      // partitions (including chunks other processors stole from them).
      for (int q = std::max(0, p - 1); q <= std::min(P - 1, p + 1); ++q) {
        exec.sync_acquire(p, static_cast<uint64_t>(q));
      }
    }
    WallTimer timer;
    // Final pixels whose inverse-warped v falls in my partition; the
    // telescoping x-intervals make the partitions exactly abut (§4.5).
    // The partition covers only the *active* v-range: pixels sampling the
    // provably-empty margins (all rows < act_lo or >= act_hi are zero) are
    // background and handled below. The -1 keeps pixels whose bilinear
    // footprint straddles the first active row inside the partition.
    const double wb_lo = std::max(0, act_lo - 1);
    const double wb_hi = act_hi;
    const double v_lo =
        p == 0 ? wb_lo : std::clamp(static_cast<double>(bounds[p]), wb_lo, wb_hi);
    const double v_hi = p == P - 1
                            ? wb_hi
                            : std::clamp(static_cast<double>(bounds[p + 1]), wb_lo, wb_hi);
    WarpStats ws;
    for (int y = 0; y < f.final_height; ++y) {
      int x0, x1;
      warp_x_interval(inv, y, v_lo, v_hi, f.final_width, &x0, &x1);
      if (x1 > x0) warp_scanline(intermediate_, f, inv, y, x0, x1, *out, hook, &ws);
    }
    // Background pixels (sampling only empty or out-of-range scanlines)
    // are striped across processors by final-image row so no processor
    // inherits the whole border region.
    const int y0 = static_cast<int>(static_cast<int64_t>(f.final_height) * p / P);
    const int y1 = static_cast<int>(static_cast<int64_t>(f.final_height) * (p + 1) / P);
    for (int y = y0; y < y1; ++y) {
      int xa, xb;
      warp_x_interval(inv, y, wb_lo, wb_hi, f.final_width, &xa, &xb);
      Pixel8* dst = out->row(y);
      for (int x = 0; x < xa; ++x) {
        dst[x] = Pixel8{};
        hook_write(hook, dst + x, sizeof(Pixel8));
        ++ws.pixels_written;
      }
      for (int x = xb; x < f.final_width; ++x) {
        dst[x] = Pixel8{};
        hook_write(hook, dst + x, sizeof(Pixel8));
        ++ws.pixels_written;
      }
    }
    stats.warp_pixels[p] = ws.pixels_written;
    warp_sec[p] = timer.seconds();
  };

  exec.begin_phase("composite");
  if (fused) {
    exec.run([&](int p) {
      composite_body(p);
      warp_body(p);
    });
  } else if (exec.concurrent()) {
    exec.run(composite_body);
    exec.begin_phase("warp");
    exec.run(warp_body);
  } else {
    // Tracing path: emulate the timing-driven stealing deterministically.
    // When fused phases are requested the boundary is not a barrier — the
    // warp's ordering comes from the sync_acquire edges above, so the race
    // detector verifies the neighbour-wait claim rather than assuming it.
    for (int p = 0; p < P; ++p) clear_inactive_rows(p);
    virtual_time_schedule(queues, P, chunk, steal, process_chunk);
    exec.begin_phase("warp", /*barrier=*/!p2p_sync);
    exec.run(warp_body);
  }

  for (const auto& cs : comp_stats) stats.composite.add(cs);
  stats.steals = queues.steals();
  stats.lock_ops = queues.lock_ops();
  for (int p = 0; p < P; ++p) {
    stats.composite_ms = std::max(stats.composite_ms, composite_sec[p] * 1e3);
    stats.warp_ms = std::max(stats.warp_ms, warp_sec[p] * 1e3);
  }

  if (profiling) {
    profile_.end_frame();
    profile_height_ = height;
  } else {
    profile_.tick_frame();
  }
  ++frame_index_;

  stats.total_ms = total.millis();
}

}  // namespace psw
