// Fixed-size thread pool running "one body per worker" parallel regions —
// the SPMD structure of the paper's renderers (P processes, barrier-joined
// phases).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psw {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Runs body(t) on every worker t in [0, size()) and returns when all have
  // finished (an implicit barrier). Exceptions from bodies are rethrown
  // (the first one) after all workers finish.
  void run(const std::function<void(int)>& body);

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* body_ = nullptr;
  uint64_t generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace psw
