// Fixed-size thread pool running "one body per worker" parallel regions —
// the SPMD structure of the paper's renderers (P processes, barrier-joined
// phases).
#pragma once

#include <thread>
#include <vector>

#include "util/function_ref.hpp"
#include "util/sync.hpp"

namespace psw {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Runs body(t) on every worker t in [0, size()) and returns when all have
  // finished (an implicit barrier). Exceptions from bodies are rethrown
  // (the first one) after all workers finish. The FunctionRef is non-owning
  // but run() blocks until every worker is done, so the caller's callable
  // outlives all invocations.
  void run(FunctionRef<void(int)> body);

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  // Lock protocol: one mutex covers the whole run/join handshake — the
  // caller publishes `body_` and bumps `generation_` under it, workers read
  // the generation and body under it, and the last worker out decrements
  // `remaining_` to zero and signals done_cv_. `body_` refers to the
  // caller's callable, which only the generation fence makes safe to call
  // (hence guarded reference, not guarded referent).
  Mutex mutex_;
  CondVar start_cv_;  // with mutex_: new generation published or shutdown_
  CondVar done_cv_;   // with mutex_: remaining_ reached zero
  FunctionRef<void(int)> body_ PSW_GUARDED_BY(mutex_);
  uint64_t generation_ PSW_GUARDED_BY(mutex_) = 0;
  int remaining_ PSW_GUARDED_BY(mutex_) = 0;
  bool shutdown_ PSW_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ PSW_GUARDED_BY(mutex_);
};

}  // namespace psw
