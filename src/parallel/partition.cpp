#include "parallel/partition.hpp"

#include <algorithm>
#include <cmath>

namespace psw {

void prefix_sum_into(const std::vector<uint32_t>& cost, std::vector<uint64_t>* out) {
  out->assign(cost.size() + 1, 0);
  for (size_t i = 0; i < cost.size(); ++i) (*out)[i + 1] = (*out)[i] + cost[i];
}

std::vector<uint64_t> prefix_sum(const std::vector<uint32_t>& cost) {
  std::vector<uint64_t> out;
  prefix_sum_into(cost, &out);
  return out;
}

void prefix_sum_parallel_into(const std::vector<uint32_t>& cost, Executor& exec,
                              PartitionScratch* scratch) {
  const int P = exec.procs();
  const size_t n = cost.size();
  if (P <= 1 || n < static_cast<size_t>(4 * P)) {
    prefix_sum_into(cost, &scratch->cum);
    return;
  }

  std::vector<uint64_t>& out = scratch->cum;
  std::vector<uint64_t>& block_sum = scratch->block_sum;
  out.assign(n + 1, 0);
  block_sum.assign(P, 0);
  const size_t block = (n + P - 1) / P;

  // Pass 1: per-block local prefix into out[1..], plus block totals.
  exec.run([&](int p) {
    const size_t lo = std::min(n, p * block);
    const size_t hi = std::min(n, lo + block);
    uint64_t acc = 0;
    for (size_t i = lo; i < hi; ++i) {
      acc += cost[i];
      out[i + 1] = acc;
    }
    block_sum[p] = acc;
  });

  // Scan of block sums (P entries; serial is fine and matches the paper's
  // logarithmic prefix step cost being negligible).
  std::vector<uint64_t>& block_base = scratch->block_base;
  block_base.assign(P + 1, 0);
  for (int p = 0; p < P; ++p) block_base[p + 1] = block_base[p] + block_sum[p];

  // Pass 2: add block bases.
  exec.run([&](int p) {
    if (block_base[p] == 0) return;
    const size_t lo = std::min(n, p * block);
    const size_t hi = std::min(n, lo + block);
    for (size_t i = lo; i < hi; ++i) out[i + 1] += block_base[p];
  });
}

std::vector<uint64_t> prefix_sum_parallel(const std::vector<uint32_t>& cost,
                                          Executor& exec) {
  PartitionScratch scratch;
  prefix_sum_parallel_into(cost, exec, &scratch);
  return std::move(scratch.cum);
}

void balanced_partition_into(const std::vector<uint64_t>& cumulative, int procs,
                             std::vector<int>* bounds_out) {
  const int n = static_cast<int>(cumulative.size()) - 1;
  const uint64_t total = cumulative.back();
  if (total == 0) {
    uniform_partition_into(n, procs, bounds_out);
    return;
  }

  std::vector<int>& bounds = *bounds_out;
  bounds.assign(procs + 1, 0);
  bounds[procs] = n;
  for (int p = 1; p < procs; ++p) {
    const double target = static_cast<double>(total) * p / procs;
    // First index with cumulative >= target...
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(),
                                     static_cast<uint64_t>(std::ceil(target)));
    int idx = static_cast<int>(it - cumulative.begin());
    // ...then pick the neighbour closest to the target (§4.3).
    if (idx > 0 &&
        target - static_cast<double>(cumulative[idx - 1]) <
            static_cast<double>(cumulative[std::min(idx, n)]) - target) {
      --idx;
    }
    idx = std::clamp(idx, bounds[p - 1], n);
    bounds[p] = idx;
  }
  // Enforce monotonicity against pathological profiles.
  for (int p = 1; p <= procs; ++p) bounds[p] = std::max(bounds[p], bounds[p - 1]);
}

std::vector<int> balanced_partition(const std::vector<uint64_t>& cumulative, int procs) {
  std::vector<int> bounds;
  balanced_partition_into(cumulative, procs, &bounds);
  return bounds;
}

void uniform_partition_into(int n, int procs, std::vector<int>* bounds_out) {
  std::vector<int>& bounds = *bounds_out;
  bounds.assign(procs + 1, 0);
  for (int p = 0; p <= procs; ++p) {
    bounds[p] = static_cast<int>(static_cast<int64_t>(n) * p / procs);
  }
}

std::vector<int> uniform_partition(int n, int procs) {
  std::vector<int> bounds;
  uniform_partition_into(n, procs, &bounds);
  return bounds;
}

double partition_imbalance(const std::vector<uint64_t>& cumulative,
                           const std::vector<int>& bounds) {
  const int procs = static_cast<int>(bounds.size()) - 1;
  const uint64_t total = cumulative.back();
  if (total == 0 || procs == 0) return 0.0;
  const double mean = static_cast<double>(total) / procs;
  double worst = 0.0;
  for (int p = 0; p < procs; ++p) {
    const double share =
        static_cast<double>(cumulative[bounds[p + 1]] - cumulative[bounds[p]]);
    worst = std::max(worst, std::abs(share - mean));
  }
  return worst / mean;
}

}  // namespace psw
