// Animation driver: renders a sequence of frames from a rotating viewpoint,
// the workload the paper's algorithms target (§4.1: "most often volume
// rendering is done as an animation ... the angle between successive
// viewpoints is typically small").
#pragma once

#include <functional>
#include <vector>

#include "core/factorization.hpp"
#include "parallel/options.hpp"

namespace psw {

struct AnimationPath {
  std::array<int, 3> dims{};
  double start_yaw = 0.0;
  double pitch = 0.35;          // slight tilt so all three axes matter
  double degrees_per_frame = 2.0;
  int frames = 30;

  Camera camera(int frame) const {
    constexpr double kDeg = 3.14159265358979323846 / 180.0;
    return Camera::orbit(dims, start_yaw + frame * degrees_per_frame * kDeg, pitch);
  }

  // Profile refresh interval in frames for a ~15-degree re-profiling
  // cadence (§4.2).
  int profile_interval() const {
    return std::max(1, static_cast<int>(15.0 / std::max(0.1, degrees_per_frame)));
  }
};

struct AnimationSummary {
  int frames = 0;
  double total_ms = 0.0;
  double mean_frame_ms = 0.0;
  double worst_frame_ms = 0.0;
  double frames_per_second = 0.0;
  int profiled_frames = 0;
  uint64_t total_steals = 0;
  double mean_imbalance = 0.0;
};

// Runs `render_frame(frame)` over the path and aggregates timing. The
// callback returns the frame's ParallelRenderStats. A path with zero (or
// negative) frames never invokes the callback and returns the all-zero
// empty summary.
AnimationSummary run_animation(
    const AnimationPath& path,
    const std::function<ParallelRenderStats(int frame, const Camera&)>& render_frame);

}  // namespace psw
