#include "parallel/prepare.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>
#include <vector>

namespace psw {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Splits [0, total) into `pieces` near-equal contiguous ranges.
std::pair<size_t, size_t> piece_range(size_t total, size_t pieces, size_t p) {
  return {total * p / pieces, total * (p + 1) / pieces};
}

}  // namespace

size_t PrepareScratch::footprint_bytes() const {
  size_t b = classified.capacity() * sizeof(ClassifiedVoxel);
  for (const auto& axis : chunks) {
    b += axis.capacity() * sizeof(RleVolume::Chunk);
    for (const auto& c : axis) {
      b += c.runs.capacity() * sizeof(uint16_t) +
           c.voxels.capacity() * sizeof(ClassifiedVoxel) +
           c.fragments.capacity() * sizeof(RleVolume::Chunk::Fragment);
    }
  }
  b += lane_bufs.capacity() * sizeof(std::vector<ClassifiedVoxel>);
  for (const auto& lanes : lane_bufs) b += lanes.capacity() * sizeof(ClassifiedVoxel);
  return b;
}

std::unique_ptr<PrepareScratch> PrepareScratchPool::acquire() {
  {
    MutexLock lock(mutex_);
    ++stats_.acquires;
    ++stats_.outstanding;
    if (!free_.empty()) {
      ++stats_.hits;
      std::unique_ptr<PrepareScratch> scratch = std::move(free_.back());
      free_.pop_back();
      --stats_.retained;
      stats_.retained_bytes -= scratch->footprint_bytes();
      return scratch;
    }
    ++stats_.misses;
  }
  return std::make_unique<PrepareScratch>();
}

void PrepareScratchPool::release(std::unique_ptr<PrepareScratch> scratch) {
  if (!scratch) return;
  const size_t bytes = scratch->footprint_bytes();
  {
    MutexLock lock(mutex_);
    ++stats_.releases;
    --stats_.outstanding;
    if (free_.size() < options_.max_retained &&
        stats_.retained_bytes + bytes <= options_.max_retained_bytes) {
      ++stats_.retained;
      stats_.retained_bytes += bytes;
      free_.push_back(std::move(scratch));
      return;
    }
    ++stats_.discards;
  }
  // An over-budget scratch frees here, outside the lock.
}

PoolStats PrepareScratchPool::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void PrepareScratchPool::trim() {
  std::vector<std::unique_ptr<PrepareScratch>> dropped;
  {
    MutexLock lock(mutex_);
    dropped.swap(free_);
    stats_.retained = 0;
    stats_.retained_bytes = 0;
  }
}

ClassifiedVolume classify_parallel(const DensityVolume& density, const TransferFunction& tf,
                                   const ClassifyOptions& opt, ThreadPool& pool,
                                   int chunks_per_thread) {
  ClassifiedVolume out;
  classify_parallel_into(density, tf, opt, pool, chunks_per_thread, &out);
  return out;
}

void classify_parallel_into(const DensityVolume& density, const TransferFunction& tf,
                            const ClassifyOptions& opt, ThreadPool& pool,
                            int chunks_per_thread, ClassifiedVolume* out) {
  out->resize_for_reuse(density.nx(), density.ny(), density.nz());
  const VoxelClassifier kernel(tf, opt);
  const size_t nz = static_cast<size_t>(density.nz());
  const size_t slabs = std::min(
      nz, static_cast<size_t>(pool.size()) * std::max(1, chunks_per_thread));
  if (slabs == 0) return;
  std::atomic<size_t> next{0};
  pool.run([&](int) {
    for (size_t s = next.fetch_add(1); s < slabs; s = next.fetch_add(1)) {
      const auto [z0, z1] = piece_range(nz, slabs, s);
      kernel.classify_slab(density, static_cast<int>(z0), static_cast<int>(z1), out);
    }
  });
}

RleVolume encode_parallel(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold, ThreadPool& pool,
                          int chunks_per_thread) {
  const size_t total = vol.size();
  const size_t nchunks = std::min(
      std::max<size_t>(total, 1),
      static_cast<size_t>(pool.size()) * std::max(1, chunks_per_thread));
  std::vector<RleVolume::Chunk> chunks(total > 0 ? nchunks : 0);
  std::atomic<size_t> next{0};
  pool.run([&](int) {
    for (size_t c = next.fetch_add(1); c < chunks.size(); c = next.fetch_add(1)) {
      const auto [begin, end] = piece_range(total, chunks.size(), c);
      chunks[c] = RleVolume::encode_chunk(vol, principal_axis, alpha_threshold, begin, end);
    }
  });
  return RleVolume::stitch(vol, principal_axis, alpha_threshold, chunks);
}

EncodedVolume build_encoded_parallel(const ClassifiedVolume& vol, uint8_t alpha_threshold,
                                     ThreadPool& pool, int chunks_per_thread,
                                     PrepareScratch* scratch) {
  const size_t total = vol.size();
  const size_t per_axis =
      total > 0 ? std::min(total, static_cast<size_t>(pool.size()) *
                                      std::max(1, chunks_per_thread))
                : 0;
  PrepareScratch local;
  PrepareScratch& s = scratch != nullptr ? *scratch : local;
  // Grow-only: a chunk table longer than this build needs keeps its tail
  // (and every chunk its vectors' capacity); only the first per_axis
  // entries participate below.
  for (auto& c : s.chunks) {
    if (c.size() < per_axis) c.resize(per_axis);
  }
  if (s.lane_bufs.size() < static_cast<size_t>(pool.size())) {
    s.lane_bufs.resize(static_cast<size_t>(pool.size()));
  }

  // One flat task list over (axis, chunk) so all three encodings advance
  // concurrently; chunk tasks of a straggling axis backfill idle workers.
  std::atomic<size_t> next{0};
  pool.run([&](int worker) {
    std::vector<ClassifiedVoxel>& lanes = s.lane_bufs[static_cast<size_t>(worker)];
    for (size_t t = next.fetch_add(1); t < 3 * per_axis; t = next.fetch_add(1)) {
      const int axis = static_cast<int>(t / per_axis);
      const size_t c = t % per_axis;
      const auto [begin, end] = piece_range(total, per_axis, c);
      RleVolume::encode_chunk_into(vol, axis, alpha_threshold, begin, end,
                                   &s.chunks[axis][c], &lanes);
    }
  });

  std::array<RleVolume, 3> rle;
  std::atomic<int> next_axis{0};
  pool.run([&](int) {
    for (int axis = next_axis.fetch_add(1); axis < 3; axis = next_axis.fetch_add(1)) {
      rle[axis] =
          RleVolume::stitch(vol, axis, alpha_threshold, s.chunks[axis].data(), per_axis);
    }
  });
  return EncodedVolume::from_axes(std::move(rle), {vol.nx(), vol.ny(), vol.nz()},
                                  alpha_threshold);
}

namespace {

// Serial encoding through the pooled scratch: each axis is one chunk built
// with encode_chunk_into, which is exactly how RleVolume::encode is
// implemented — so the output is bit-identical to EncodedVolume::build.
EncodedVolume build_encoded_serial(const ClassifiedVolume& vol, uint8_t alpha_threshold,
                                   PrepareScratch& s) {
  const size_t total = vol.size();
  if (s.lane_bufs.empty()) s.lane_bufs.resize(1);
  std::array<RleVolume, 3> rle;
  for (int axis = 0; axis < 3; ++axis) {
    auto& chunks = s.chunks[axis];
    size_t count = 0;
    if (total > 0) {
      if (chunks.empty()) chunks.resize(1);
      RleVolume::encode_chunk_into(vol, axis, alpha_threshold, 0, total, &chunks[0],
                                   &s.lane_bufs[0]);
      count = 1;
    }
    rle[axis] = RleVolume::stitch(vol, axis, alpha_threshold, chunks.data(), count);
  }
  return EncodedVolume::from_axes(std::move(rle), {vol.nx(), vol.ny(), vol.nz()},
                                  alpha_threshold);
}

}  // namespace

EncodedVolume prepare_volume(const DensityVolume& density, const TransferFunction& tf,
                             const ClassifyOptions& copt, const PrepareOptions& opt,
                             ClassifiedVolume* classified_out, PrepareTiming* timing,
                             PrepareScratch* scratch) {
  const auto t0 = std::chrono::steady_clock::now();
  ClassifiedVolume local_classified;
  ClassifiedVolume& classified =
      scratch != nullptr ? scratch->classified : local_classified;
  EncodedVolume encoded;
  double classify_ms = 0.0;
  if (opt.threads <= 1) {
    if (scratch != nullptr) {
      classified.resize_for_reuse(density.nx(), density.ny(), density.nz());
      const VoxelClassifier kernel(tf, copt);
      kernel.classify_slab(density, 0, density.nz(), &classified);
      classify_ms = elapsed_ms(t0);
      encoded = build_encoded_serial(classified, copt.alpha_threshold, *scratch);
    } else {
      classified = classify(density, tf, copt);
      classify_ms = elapsed_ms(t0);
      encoded = EncodedVolume::build(classified, copt.alpha_threshold);
    }
  } else {
    ThreadPool pool(opt.threads);
    classify_parallel_into(density, tf, copt, pool, opt.chunks_per_thread, &classified);
    classify_ms = elapsed_ms(t0);
    encoded = build_encoded_parallel(classified, copt.alpha_threshold, pool,
                                     opt.chunks_per_thread, scratch);
  }
  if (timing != nullptr) {
    timing->classify_ms = classify_ms;
    timing->total_ms = elapsed_ms(t0);
    timing->encode_ms = timing->total_ms - classify_ms;
  }
  if (classified_out != nullptr) {
    if (scratch != nullptr) {
      *classified_out = classified;  // copy: the scratch keeps its storage
    } else {
      *classified_out = std::move(classified);
    }
  }
  return encoded;
}

}  // namespace psw
