#include "parallel/prepare.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>
#include <vector>

namespace psw {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Splits [0, total) into `pieces` near-equal contiguous ranges.
std::pair<size_t, size_t> piece_range(size_t total, size_t pieces, size_t p) {
  return {total * p / pieces, total * (p + 1) / pieces};
}

}  // namespace

ClassifiedVolume classify_parallel(const DensityVolume& density, const TransferFunction& tf,
                                   const ClassifyOptions& opt, ThreadPool& pool,
                                   int chunks_per_thread) {
  ClassifiedVolume out(density.nx(), density.ny(), density.nz());
  const VoxelClassifier kernel(tf, opt);
  const size_t nz = static_cast<size_t>(density.nz());
  const size_t slabs = std::min(
      nz, static_cast<size_t>(pool.size()) * std::max(1, chunks_per_thread));
  if (slabs == 0) return out;
  std::atomic<size_t> next{0};
  pool.run([&](int) {
    for (size_t s = next.fetch_add(1); s < slabs; s = next.fetch_add(1)) {
      const auto [z0, z1] = piece_range(nz, slabs, s);
      kernel.classify_slab(density, static_cast<int>(z0), static_cast<int>(z1), &out);
    }
  });
  return out;
}

RleVolume encode_parallel(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold, ThreadPool& pool,
                          int chunks_per_thread) {
  const size_t total = vol.size();
  const size_t nchunks = std::min(
      std::max<size_t>(total, 1),
      static_cast<size_t>(pool.size()) * std::max(1, chunks_per_thread));
  std::vector<RleVolume::Chunk> chunks(total > 0 ? nchunks : 0);
  std::atomic<size_t> next{0};
  pool.run([&](int) {
    for (size_t c = next.fetch_add(1); c < chunks.size(); c = next.fetch_add(1)) {
      const auto [begin, end] = piece_range(total, chunks.size(), c);
      chunks[c] = RleVolume::encode_chunk(vol, principal_axis, alpha_threshold, begin, end);
    }
  });
  return RleVolume::stitch(vol, principal_axis, alpha_threshold, chunks);
}

EncodedVolume build_encoded_parallel(const ClassifiedVolume& vol, uint8_t alpha_threshold,
                                     ThreadPool& pool, int chunks_per_thread) {
  const size_t total = vol.size();
  const size_t per_axis =
      total > 0 ? std::min(total, static_cast<size_t>(pool.size()) *
                                      std::max(1, chunks_per_thread))
                : 0;
  std::array<std::vector<RleVolume::Chunk>, 3> chunks;
  for (auto& c : chunks) c.resize(per_axis);

  // One flat task list over (axis, chunk) so all three encodings advance
  // concurrently; chunk tasks of a straggling axis backfill idle workers.
  std::atomic<size_t> next{0};
  pool.run([&](int) {
    for (size_t t = next.fetch_add(1); t < 3 * per_axis; t = next.fetch_add(1)) {
      const int axis = static_cast<int>(t / per_axis);
      const size_t c = t % per_axis;
      const auto [begin, end] = piece_range(total, per_axis, c);
      chunks[axis][c] = RleVolume::encode_chunk(vol, axis, alpha_threshold, begin, end);
    }
  });

  std::array<RleVolume, 3> rle;
  std::atomic<int> next_axis{0};
  pool.run([&](int) {
    for (int axis = next_axis.fetch_add(1); axis < 3; axis = next_axis.fetch_add(1)) {
      rle[axis] = RleVolume::stitch(vol, axis, alpha_threshold, chunks[axis]);
    }
  });
  return EncodedVolume::from_axes(std::move(rle), {vol.nx(), vol.ny(), vol.nz()},
                                  alpha_threshold);
}

EncodedVolume prepare_volume(const DensityVolume& density, const TransferFunction& tf,
                             const ClassifyOptions& copt, const PrepareOptions& opt,
                             ClassifiedVolume* classified_out, PrepareTiming* timing) {
  const auto t0 = std::chrono::steady_clock::now();
  ClassifiedVolume classified;
  EncodedVolume encoded;
  double classify_ms = 0.0;
  if (opt.threads <= 1) {
    classified = classify(density, tf, copt);
    classify_ms = elapsed_ms(t0);
    encoded = EncodedVolume::build(classified, copt.alpha_threshold);
  } else {
    ThreadPool pool(opt.threads);
    classified = classify_parallel(density, tf, copt, pool, opt.chunks_per_thread);
    classify_ms = elapsed_ms(t0);
    encoded =
        build_encoded_parallel(classified, copt.alpha_threshold, pool, opt.chunks_per_thread);
  }
  if (timing != nullptr) {
    timing->classify_ms = classify_ms;
    timing->total_ms = elapsed_ms(t0);
    timing->encode_ms = timing->total_ms - classify_ms;
  }
  if (classified_out != nullptr) *classified_out = std::move(classified);
  return encoded;
}

}  // namespace psw
