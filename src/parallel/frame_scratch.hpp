// Persistent per-renderer working set for one rendered frame. Both
// parallel renderers used to allocate their partition arrays, steal
// queues, completion flags and per-worker statistics afresh every frame;
// FrameScratch owns all of it across frames instead, sized to the largest
// processor count seen and reused with capacity-growing writes only — the
// steady-state render loop never touches the allocator (the paper's
// frame-to-frame coherence argument, applied to the working set itself).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/compositor.hpp"
#include "parallel/partition.hpp"
#include "parallel/steal_queue.hpp"

namespace psw {

struct FrameScratch {
  // Partition computation: cumulative profile, prefix blocks, boundaries.
  PartitionScratch part;

  // Per-processor task queues, reopened (not reconstructed) each frame.
  StealQueues queues;

  // Completion accounting for the fused composite→warp hand-off: remaining
  // scanlines plus one clear token per partition, and the futex-waitable
  // done flags. Atomics are neither movable nor copyable, so growth
  // replaces the whole array; the capacity only ever increases.
  std::unique_ptr<std::atomic<int>[]> remaining;
  std::unique_ptr<std::atomic<bool>[]> done;
  int atomic_capacity = 0;

  // Per-worker statistics and phase timers, merged after the join.
  std::vector<CompositeStats> comp_stats;
  std::vector<double> composite_sec;
  std::vector<double> warp_sec;

  // Readies the scratch for a frame with P processors: grows what must
  // grow, zeroes what the frame reads. Called single-threaded before the
  // parallel region; the executor's run() entry publishes the writes.
  void begin_frame(int procs) {
    if (atomic_capacity < procs) {
      remaining = std::make_unique<std::atomic<int>[]>(procs);
      done = std::make_unique<std::atomic<bool>[]>(procs);
      atomic_capacity = procs;
    }
    queues.reset(procs);
    comp_stats.assign(procs, CompositeStats{});
    composite_sec.assign(procs, 0.0);
    warp_sec.assign(procs, 0.0);
  }
};

}  // namespace psw
