#include "parallel/executor.hpp"

// Executor implementations are header-only; this translation unit anchors
// the vtable.

namespace psw {}  // namespace psw
