#include "parallel/old_renderer.hpp"

#include "parallel/steal_queue.hpp"
#include "parallel/virtual_schedule.hpp"
#include "util/timer.hpp"

namespace psw {

ParallelRenderStats OldParallelRenderer::render(const EncodedVolume& volume,
                                                const Camera& camera, Executor& exec,
                                                ImageU8* out) {
  ParallelRenderStats stats;
  render(volume, camera, exec, out, &stats);
  return stats;
}

void OldParallelRenderer::render(const EncodedVolume& volume, const Camera& camera,
                                 Executor& exec, ImageU8* out,
                                 ParallelRenderStats* stats_out) {
  ParallelRenderStats& stats = *stats_out;
  stats.reset();
  WallTimer total;
  const int P = exec.procs();

  const std::array<int, 3> dims{volume.dim(0), volume.dim(1), volume.dim(2)};
  const Factorization f = factorize(camera, dims);
  const RleVolume& rle = volume.for_axis(f.principal_axis);

  // Storage-reusing resize: every scanline is cleared by process_chunk
  // below (the interleaved chunks tile [0, height)), so nothing stale is
  // ever read.
  intermediate_.resize_for_reuse(f.intermediate_width, f.intermediate_height);
  const int height = f.intermediate_height;

  // --- Compositing phase: interleaved chunks, task stealing. ---
  exec.begin_phase("composite");
  scratch_.begin_frame(P);
  StealQueues& queues = scratch_.queues;
  const int chunk = std::max(1, options_.chunk_scanlines);
  int chunk_index = 0;
  for (int lo = 0; lo < height; lo += chunk, ++chunk_index) {
    const int owner = chunk_index % P;
    queues.push(owner, {lo, std::min(height, lo + chunk), owner});
  }

  const bool steal = options_.stealing;
  stats.composite_work.assign(P, 0);
  std::vector<CompositeStats>& comp_stats = scratch_.comp_stats;

  auto process_chunk = [&](int p, const ScanlineRange& r) -> uint32_t {
    MemoryHook* hook = exec.hook(p);
    uint32_t chunk_work = 0;
    intermediate_.clear_rows(r.lo, r.hi);
    for (int v = r.lo; v < r.hi; ++v) {
      chunk_work += composite_scanline(rle, f, v, intermediate_, hook, &comp_stats[p]);
    }
    stats.composite_work[p] += chunk_work;
    return chunk_work;
  };

  WallTimer composite_timer;
  if (exec.concurrent()) {
    exec.run([&](int p) {
      ScanlineRange r;
      while (queues.pop_own(p, chunk, &r)) process_chunk(p, r);
      if (steal) {
        while (queues.steal(p, chunk, &r)) process_chunk(p, r);
      }
    });
  } else {
    // Tracing path: emulate the timing-driven stealing deterministically.
    virtual_time_schedule(queues, P, chunk, steal, process_chunk);
  }
  stats.composite_ms = composite_timer.millis();
  for (const auto& cs : comp_stats) stats.composite.add(cs);
  stats.steals = queues.steals();
  stats.lock_ops = queues.lock_ops();

  // --- Warp phase: round-robin square tiles of the final image (Fig 3).
  // The exec.run() boundary above is the inter-phase barrier. ---
  exec.begin_phase("warp");
  out->resize(f.final_width, f.final_height);
  const int tile = std::max(1, options_.warp_tile);
  const int tiles_x = (f.final_width + tile - 1) / tile;
  const int tiles_y = (f.final_height + tile - 1) / tile;
  const Affine2D inv = f.warp.inverse();
  stats.warp_pixels.assign(P, 0);

  WallTimer warp_timer;
  exec.run([&](int p) {
    MemoryHook* hook = exec.hook(p);
    WarpStats ws;
    for (int t = p; t < tiles_x * tiles_y; t += P) {
      const int ty = t / tiles_x, tx = t % tiles_x;
      warp_tile(intermediate_, f, inv, tx * tile, ty * tile, tile, *out, hook, &ws);
    }
    stats.warp_pixels[p] = ws.pixels_written;
  });
  stats.warp_ms = warp_timer.millis();

  stats.total_ms = total.millis();
}

}  // namespace psw
