// The NEW parallel shear-warp algorithm (§4): contiguous, predictively
// load-balanced partitions of intermediate-image scanlines, computed from
// per-scanline work profiles of a previous frame via a parallel prefix and
// binary search; the same partition is reused in the warp phase, and the
// empty top/bottom of the intermediate image is never composited. Stealing
// moves chunks (not single scanlines) when the prediction is off. With
// fused phases, per-partition completion flags replace the inter-phase
// barrier (§5.5.2): a processor's warp waits only on its neighbours.
#pragma once

#include "core/renderer.hpp"
#include "parallel/executor.hpp"
#include "parallel/frame_scratch.hpp"
#include "parallel/options.hpp"
#include "parallel/profile.hpp"

namespace psw {

class NewParallelRenderer {
 public:
  explicit NewParallelRenderer(ParallelOptions options = {}) : options_(options) {}

  // Renders one frame. Stateful across frames: profiles from earlier frames
  // drive this frame's partition (render successive animation frames
  // through the same instance). Output is bit-identical to SerialRenderer.
  ParallelRenderStats render(const EncodedVolume& volume, const Camera& camera,
                             Executor& exec, ImageU8* out);

  // Allocation-free form: all per-frame working state lives in the
  // renderer's FrameScratch, the intermediate image is reused within
  // capacity, and the statistics are written into *stats (capacity-reusing
  // assigns). Steady-state frames perform zero heap allocations.
  void render(const EncodedVolume& volume, const Camera& camera, Executor& exec,
              ImageU8* out, ParallelRenderStats* stats);

  // Forgets profile state (e.g. when switching animations or volumes).
  void reset() {
    profile_.invalidate();
    frame_index_ = 0;
  }

  const ParallelOptions& options() const { return options_; }
  const IntermediateImage& intermediate() const { return intermediate_; }
  const ScanlineProfile& profile() const { return profile_; }

 private:
  ParallelOptions options_;
  IntermediateImage intermediate_;
  ScanlineProfile profile_;
  FrameScratch scratch_;    // per-frame working set, reused across frames
  int profile_height_ = 0;  // intermediate height the profile was taken at
  int frame_index_ = 0;
};

// Final-image x-interval [x0, x1) of scanline y whose inverse-warped v
// coordinate falls in [v_lo, v_hi). Adjacent v-intervals produce exactly
// abutting x-intervals (telescoping), so partitioning the intermediate
// v-range partitions the final image with no write sharing (§4.5).
// Exposed for tests.
void warp_x_interval(const Affine2D& inv_warp, int y, double v_lo, double v_hi,
                     int final_width, int* x0, int* x1);

}  // namespace psw
