// The ORIGINAL parallel shear-warp algorithm (§3.1, Lacroute [5] / Singh et
// al. [12]): compositing over interleaved chunks of intermediate-image
// scanlines with task stealing; warp over round-robin square tiles of the
// final image; a global barrier between the phases.
#pragma once

#include "core/renderer.hpp"
#include "parallel/executor.hpp"
#include "parallel/frame_scratch.hpp"
#include "parallel/options.hpp"

namespace psw {

class OldParallelRenderer {
 public:
  explicit OldParallelRenderer(ParallelOptions options = {}) : options_(options) {}

  // Renders one frame with the executor's processors. The output is
  // bit-identical to SerialRenderer for any processor count: scanlines and
  // final pixels each have exactly one writer.
  ParallelRenderStats render(const EncodedVolume& volume, const Camera& camera,
                             Executor& exec, ImageU8* out);

  // Allocation-free form: per-frame working state lives in the renderer's
  // FrameScratch and statistics are written into *stats with
  // capacity-reusing assigns (see NewParallelRenderer for the contract).
  void render(const EncodedVolume& volume, const Camera& camera, Executor& exec,
              ImageU8* out, ParallelRenderStats* stats);

  const ParallelOptions& options() const { return options_; }
  const IntermediateImage& intermediate() const { return intermediate_; }

 private:
  ParallelOptions options_;
  IntermediateImage intermediate_;
  FrameScratch scratch_;  // per-frame working set, reused across frames
};

}  // namespace psw
