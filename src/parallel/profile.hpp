// Per-scanline work profiles (§4.2): the cost of compositing each
// intermediate-image scanline, measured in work units (the analogue of the
// paper's basic-block instruction counts), recorded on profiled frames and
// used to predict the next frames' balanced partition.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace psw {

class ScanlineProfile {
 public:
  // True when a usable profile exists for the given intermediate height.
  bool valid_for(int height) const {
    return valid_ && static_cast<int>(cost_.size()) == height;
  }

  // Starts recording a new profile for a frame with `height` scanlines.
  void begin_frame(int height) {
    cost_.assign(height, 0);
    valid_ = false;
  }
  // Finishes the recording; the profile becomes the predictor.
  void end_frame() {
    valid_ = true;
    frames_since_ = 0;
  }

  // Records the measured cost of one scanline. Each scanline is composited
  // by exactly one processor per frame, so entries are written once.
  void record(int v, uint32_t units) { cost_[v] = units; }
  uint32_t* data() { return cost_.data(); }

  const std::vector<uint32_t>& cost() const { return cost_; }
  uint32_t cost_at(int v) const { return cost_[v]; }

  void tick_frame() {
    if (frames_since_ != std::numeric_limits<int>::max()) ++frames_since_;
  }
  int frames_since_profile() const { return frames_since_; }
  void invalidate() {
    valid_ = false;
    frames_since_ = std::numeric_limits<int>::max();
  }

 private:
  std::vector<uint32_t> cost_;
  bool valid_ = false;
  int frames_since_ = std::numeric_limits<int>::max();
};

}  // namespace psw
