// Partition computation for the new parallel algorithm (§4.3): a cumulative
// profile built with a (parallel) prefix operation, divided into P equal
// cost shares by searching the cumulative array — so computing partitions
// is not the serial bottleneck the naive approach suffers from.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/executor.hpp"

namespace psw {

// Reusable working set for the per-frame partition computation. The
// renderers keep one per instance (inside FrameScratch) so steady-state
// frames recompute partitions without touching the allocator: every vector
// is written with assign(), which reuses capacity and only grows.
struct PartitionScratch {
  std::vector<uint64_t> cum;         // n+1 cumulative costs (prefix output)
  std::vector<uint64_t> block_sum;   // parallel prefix pass 1: P block totals
  std::vector<uint64_t> block_base;  // scanned block bases (P+1)
  std::vector<int> bounds;           // P+1 partition boundaries
};

// Inclusive-prefix cumulative cost; out[i] = sum of cost[0..i-1], size n+1
// (out[0] = 0, out[n] = total).
std::vector<uint64_t> prefix_sum(const std::vector<uint32_t>& cost);
void prefix_sum_into(const std::vector<uint32_t>& cost, std::vector<uint64_t>* out);

// Two-pass parallel prefix (block sums, scan of block sums, local fix-up)
// over the executor's processors. Equivalent to prefix_sum. The _into form
// leaves the result in scratch->cum and allocates only when the scratch
// capacities grow.
std::vector<uint64_t> prefix_sum_parallel(const std::vector<uint32_t>& cost,
                                          Executor& exec);
void prefix_sum_parallel_into(const std::vector<uint32_t>& cost, Executor& exec,
                              PartitionScratch* scratch);

// P+1 monotone boundaries over [0, n]: boundary p is the index whose
// cumulative cost is closest to p/P of the total (§4.3), found by binary
// search. Zero total cost degenerates to a uniform split.
std::vector<int> balanced_partition(const std::vector<uint64_t>& cumulative, int procs);
void balanced_partition_into(const std::vector<uint64_t>& cumulative, int procs,
                             std::vector<int>* bounds);

// Uniform split of [0, n] into P near-equal ranges.
std::vector<int> uniform_partition(int n, int procs);
void uniform_partition_into(int n, int procs, std::vector<int>* bounds);

// Largest absolute per-share deviation from perfect balance, as a fraction
// of the mean share (diagnostics and tests).
double partition_imbalance(const std::vector<uint64_t>& cumulative,
                           const std::vector<int>& bounds);

}  // namespace psw
