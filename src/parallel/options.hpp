// Shared knobs and statistics for the two parallel renderers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compositor.hpp"

namespace psw {

struct ParallelOptions {
  // Task size: scanlines per chunk. For the old algorithm this is the task
  // granularity (§3.1, "determined empirically"); for the new algorithm it
  // is the stealing unit only (§4.4).
  int chunk_scanlines = 4;
  // Old algorithm's warp phase: edge of the square final-image tiles.
  int warp_tile = 32;
  // Dynamic task stealing (disabled automatically on serial executors,
  // where sequential bodies would mis-order the steals).
  bool stealing = true;
  // New algorithm: frames between profiled frames (the paper picks k so
  // profiles recur every ~15 degrees of rotation).
  int profile_every = 8;
  // New algorithm: fuse composite+warp into one parallel region with
  // point-to-point completion flags instead of a global barrier (§5.5.2).
  // Only takes effect on concurrent executors.
  bool fused_phases = true;
};

struct ParallelRenderStats {
  double total_ms = 0.0;
  double composite_ms = 0.0;
  double warp_ms = 0.0;

  CompositeStats composite;
  std::vector<uint64_t> composite_work;  // per-processor work units
  std::vector<uint64_t> warp_pixels;     // per-processor final pixels written
  uint64_t steals = 0;
  uint64_t lock_ops = 0;

  // New algorithm only.
  bool profiled = false;
  std::vector<int> bounds;  // partition boundaries (P+1 entries)
  int active_lo = 0, active_hi = 0;
  // Rows cleared by the per-partition inactive-edge pass; 0 on frames whose
  // partitions are all fully active (the pass is skipped entirely then).
  uint64_t edge_rows_cleared = 0;

  // Returns the struct to its default state while keeping vector capacity,
  // so a caller-owned stats object makes the render out-param path
  // allocation-free across frames.
  void reset() {
    total_ms = composite_ms = warp_ms = 0.0;
    composite = CompositeStats{};
    composite_work.clear();
    warp_pixels.clear();
    steals = lock_ops = 0;
    profiled = false;
    bounds.clear();
    active_lo = active_hi = 0;
    edge_rows_cleared = 0;
  }

  // Max-over-mean deviation of per-processor composite work.
  double work_imbalance() const {
    if (composite_work.empty()) return 0.0;
    uint64_t total = 0, worst = 0;
    for (uint64_t w : composite_work) {
      total += w;
      worst = std::max(worst, w);
    }
    if (total == 0) return 0.0;
    const double mean = static_cast<double>(total) / composite_work.size();
    return static_cast<double>(worst) / mean - 1.0;
  }
};

}  // namespace psw
