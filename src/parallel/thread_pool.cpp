#include "parallel/thread_pool.hpp"

namespace psw {

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(FunctionRef<void(int)> body) {
  MutexLock lock(mutex_);
  body_ = body;
  remaining_ = size();
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  while (remaining_ != 0) done_cv_.wait(mutex_);
  body_ = FunctionRef<void(int)>();
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(int index) {
  uint64_t seen_generation = 0;
  while (true) {
    FunctionRef<void(int)> body;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && generation_ == seen_generation) start_cv_.wait(mutex_);
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
    }
    std::exception_ptr error;
    try {
      body(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace psw
