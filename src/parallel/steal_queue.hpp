// Per-processor task queues with work stealing, shared by both parallel
// renderers. The old algorithm seeds each queue with interleaved chunks of
// scanlines (§3.1); the new algorithm seeds one contiguous partition per
// processor and steals chunks from the back (§4.4).
//
// Memory-ordering audit: every atomic here is memory_order_relaxed on
// purpose. Queue *contents* are ordered by the per-queue mutex; the atomics
// fall into two classes that need no ordering of their own:
//   - approx_remaining: a victim-selection heuristic. A stale read can only
//     pick a worse victim; correctness is restored by the locked rescan.
//   - lock_ops_ / steals_: statistics, read after the parallel region has
//     joined (the executor's run() return is a barrier).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "util/sync.hpp"

namespace psw {

// A contiguous range of intermediate-image scanlines [lo, hi), tagged with
// the processor whose partition it came from (for completion accounting).
struct ScanlineRange {
  int lo = 0;
  int hi = 0;
  int owner = 0;

  int count() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};

class StealQueues {
 public:
  StealQueues() : lock_ops_(0), steals_(0) {}
  explicit StealQueues(int procs) : StealQueues() { reset(procs); }

  // Reopens the queues for a new frame with `procs` processors: grows the
  // per-processor storage if needed (grow-only, queues are pinned in place
  // by the deque), empties every active queue and zeroes the statistics.
  // Single-threaded, like seeding — called between parallel regions.
  void reset(int procs) {
    while (static_cast<int>(queues_.size()) < procs) queues_.emplace_back();
    procs_ = procs;
    for (int p = 0; p < procs_; ++p) {
      Queue& q = queues_[static_cast<size_t>(p)];
      MutexLock lock(q.mutex);
      q.ranges.clear();
      // relaxed: reset precedes the parallel region; the executor's run()
      // entry publishes the zeroed counters to the workers.
      q.approx_remaining.store(0, std::memory_order_relaxed);
    }
    lock_ops_.store(0, std::memory_order_relaxed);  // relaxed: see above
    steals_.store(0, std::memory_order_relaxed);    // relaxed: see above
  }

  int procs() const { return procs_; }

  // Seeds before the parallel region begins (no locking needed then, but we
  // lock anyway for simplicity; the renderers call this single-threaded).
  void push(int p, ScanlineRange range) {
    if (range.empty()) return;
    Queue& q = queues_[static_cast<size_t>(p)];
    MutexLock lock(q.mutex);
    q.ranges.push_back(range);
    // relaxed: heuristic counter, mutated under the queue mutex anyway.
    q.approx_remaining.fetch_add(range.count(), std::memory_order_relaxed);
  }

  // Takes up to `chunk` scanlines from the front of p's own queue.
  bool pop_own(int p, int chunk, ScanlineRange* out) {
    Queue& q = queues_[static_cast<size_t>(p)];
    MutexLock lock(q.mutex);
    lock_ops_.fetch_add(1, std::memory_order_relaxed);  // relaxed: statistic
    if (q.ranges.empty()) return false;
    ScanlineRange& front = q.ranges.front();
    *out = {front.lo, std::min(front.hi, front.lo + chunk), front.owner};
    front.lo = out->hi;
    if (front.empty()) q.ranges.pop_front();
    // relaxed: heuristic counter, mutated under the queue mutex anyway.
    q.approx_remaining.fetch_sub(out->count(), std::memory_order_relaxed);
    return true;
  }

  // Steals up to `chunk` scanlines from the back of the fullest victim
  // queue. Returns false when every queue is empty.
  bool steal(int thief, int chunk, ScanlineRange* out) {
    const int n = procs();
    // Pick the victim with the most remaining work.
    int victim = -1, best = 0;
    for (int i = 0; i < n; ++i) {
      if (i == thief) continue;
      // relaxed: racy read is fine — a stale value only picks a worse
      // victim, and the locked rescan below recovers from an empty choice.
      const int remaining = queues_[i].approx_remaining.load(std::memory_order_relaxed);
      if (remaining > best) {
        best = remaining;
        victim = i;
      }
    }
    if (victim < 0) {
      // Fall back to a scan; approx counters may lag.
      for (int d = 1; d < n; ++d) {
        const int i = (thief + d) % n;
        if (try_steal_from(i, chunk, out)) {
          steals_.fetch_add(1, std::memory_order_relaxed);  // relaxed: statistic
          return true;
        }
      }
      return false;
    }
    if (try_steal_from(victim, chunk, out)) {
      steals_.fetch_add(1, std::memory_order_relaxed);  // relaxed: statistic
      return true;
    }
    // Victim raced to empty; rescan everyone once.
    for (int d = 1; d < n; ++d) {
      const int i = (thief + d) % n;
      if (try_steal_from(i, chunk, out)) {
        steals_.fetch_add(1, std::memory_order_relaxed);  // relaxed: statistic
        return true;
      }
    }
    return false;
  }

  // relaxed: statistics, only read after the parallel region has joined.
  uint64_t lock_ops() const { return lock_ops_.load(std::memory_order_relaxed); }
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  // Per-queue lock protocol: `mutex` orders the deque contents; the atomic
  // victim-selection counter deliberately rides outside it (see the audit
  // note at the top of this file).
  struct Queue {
    Mutex mutex;
    std::deque<ScanlineRange> ranges PSW_GUARDED_BY(mutex);
    std::atomic<int> approx_remaining{0};
  };

  bool try_steal_from(int victim, int chunk, ScanlineRange* out) {
    Queue& q = queues_[static_cast<size_t>(victim)];
    MutexLock lock(q.mutex);
    lock_ops_.fetch_add(1, std::memory_order_relaxed);  // relaxed: statistic
    if (q.ranges.empty()) return false;
    ScanlineRange& back = q.ranges.back();
    *out = {std::max(back.lo, back.hi - chunk), back.hi, back.owner};
    back.hi = out->lo;
    if (back.empty()) q.ranges.pop_back();
    // relaxed: heuristic counter, mutated under the queue mutex anyway.
    q.approx_remaining.fetch_sub(out->count(), std::memory_order_relaxed);
    return true;
  }

  // Deque, not vector: Queue is pinned by its Mutex/atomic (non-movable),
  // and deque growth never relocates existing elements — so reset() can
  // grow the storage across frames while reusing every existing queue's
  // deque nodes (steady-state seeding allocates nothing).
  std::deque<Queue> queues_;
  int procs_ = 0;
  std::atomic<uint64_t> lock_ops_;
  std::atomic<uint64_t> steals_;
};

}  // namespace psw
