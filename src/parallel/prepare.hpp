// Parallel volume preparation: slab-parallel classification and concurrent
// per-axis run-length encoding on the SPMD thread pool. Both stages are
// bit-identical to the serial classify() + EncodedVolume::build() path —
// classification shares the VoxelClassifier kernel and writes disjoint
// z-slabs, and encoding reassembles per-chunk partial run tables with
// RleVolume::stitch(), which merges runs spanning chunk seams exactly as
// the single-pass encoder would have produced them.
#pragma once

#include "core/classify.hpp"
#include "core/rle_volume.hpp"
#include "core/transfer.hpp"
#include "core/volume.hpp"
#include "parallel/thread_pool.hpp"

namespace psw {

struct PrepareOptions {
  // Worker threads for preparation. <= 1 selects the serial path (no pool).
  int threads = 1;
  // Over-decomposition factor: each stage splits its work into
  // threads * chunks_per_thread chunks grabbed off a shared counter, so a
  // slow slab (e.g. one dense in opaque voxels) does not straggle the rest.
  int chunks_per_thread = 4;
};

struct PrepareTiming {
  double classify_ms = 0.0;
  double encode_ms = 0.0;
  double total_ms = 0.0;
};

// Slab-parallel classification: z-slabs are claimed off an atomic counter
// and written to disjoint output ranges through the shared kernel.
ClassifiedVolume classify_parallel(const DensityVolume& density, const TransferFunction& tf,
                                   const ClassifyOptions& opt, ThreadPool& pool,
                                   int chunks_per_thread = 4);

// Chunk-parallel encoding of one principal axis.
RleVolume encode_parallel(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold, ThreadPool& pool,
                          int chunks_per_thread = 4);

// Encodes all three principal axes concurrently: every (axis, chunk) pair
// is one task in a single flat work list, so all three encodings progress
// at once rather than axis-by-axis.
EncodedVolume build_encoded_parallel(const ClassifiedVolume& vol, uint8_t alpha_threshold,
                                     ThreadPool& pool, int chunks_per_thread = 4);

// The full preparation pipeline: classification followed by per-axis
// encoding, serial when opt.threads <= 1 and pool-parallel otherwise.
// Output is bit-identical across thread counts. `classified_out` (optional)
// receives the intermediate classified volume; `timing` (optional) receives
// per-stage wall times.
EncodedVolume prepare_volume(const DensityVolume& density, const TransferFunction& tf,
                             const ClassifyOptions& copt, const PrepareOptions& opt = {},
                             ClassifiedVolume* classified_out = nullptr,
                             PrepareTiming* timing = nullptr);

}  // namespace psw
