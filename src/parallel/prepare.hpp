// Parallel volume preparation: slab-parallel classification and concurrent
// per-axis run-length encoding on the SPMD thread pool. Both stages are
// bit-identical to the serial classify() + EncodedVolume::build() path —
// classification shares the VoxelClassifier kernel and writes disjoint
// z-slabs, and encoding reassembles per-chunk partial run tables with
// RleVolume::stitch(), which merges runs spanning chunk seams exactly as
// the single-pass encoder would have produced them.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/classify.hpp"
#include "core/rle_volume.hpp"
#include "core/transfer.hpp"
#include "core/volume.hpp"
#include "parallel/thread_pool.hpp"
#include "util/buffer_pool.hpp"
#include "util/sync.hpp"

namespace psw {

struct PrepareOptions {
  // Worker threads for preparation. <= 1 selects the serial path (no pool).
  int threads = 1;
  // Over-decomposition factor: each stage splits its work into
  // threads * chunks_per_thread chunks grabbed off a shared counter, so a
  // slow slab (e.g. one dense in opaque voxels) does not straggle the rest.
  int chunks_per_thread = 4;
};

struct PrepareTiming {
  double classify_ms = 0.0;
  double encode_ms = 0.0;
  double total_ms = 0.0;
};

// Reusable build-side storage for one volume preparation: the classified
// voxel grid, the three per-axis chunk tables (each chunk's run/voxel/
// fragment vectors keep their capacity across builds) and one strided-lane
// gather buffer per pool worker. None of this survives into the returned
// EncodedVolume — it is exactly the transient storage a cold build would
// otherwise allocate and free — so a warm scratch makes repeated
// preparations (cache misses in the serving path) allocation-free on the
// build side. Grow-only: capacities track the largest volume prepared.
struct PrepareScratch {
  ClassifiedVolume classified;
  std::array<std::vector<RleVolume::Chunk>, 3> chunks;
  std::vector<std::vector<ClassifiedVoxel>> lane_bufs;  // one per worker
  // Heap bytes held (capacities, not sizes); pool retention accounting.
  size_t footprint_bytes() const;
};

// Thread-safe pool of PrepareScratch instances with the same PoolStats
// accounting (and conservation invariants) as the frame/buffer pools, so
// the service metrics JSON can export prepare-side reuse next to
// frame_pool. Retention is bounded by count and by held bytes — a scratch
// sized for a huge one-off volume is discarded rather than pinned.
class PrepareScratchPool {
 public:
  struct Options {
    size_t max_retained = 2;
    size_t max_retained_bytes = 1u << 30;
  };

  PrepareScratchPool() : PrepareScratchPool(Options{}) {}
  explicit PrepareScratchPool(Options options) : options_(options) {}

  PrepareScratchPool(const PrepareScratchPool&) = delete;
  PrepareScratchPool& operator=(const PrepareScratchPool&) = delete;

  // Warmest retained scratch, or a fresh one. Never returns null.
  std::unique_ptr<PrepareScratch> acquire();
  // Returns a scratch for reuse (null is ignored). Retained unless the
  // count or byte bound says otherwise.
  void release(std::unique_ptr<PrepareScratch> scratch);

  PoolStats stats() const;
  // Drops every retained scratch (budget pressure, tests).
  void trim();

 private:
  Options options_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<PrepareScratch>> free_ PSW_GUARDED_BY(mutex_);
  PoolStats stats_ PSW_GUARDED_BY(mutex_);
};

// Slab-parallel classification: z-slabs are claimed off an atomic counter
// and written to disjoint output ranges through the shared kernel.
ClassifiedVolume classify_parallel(const DensityVolume& density, const TransferFunction& tf,
                                   const ClassifyOptions& opt, ThreadPool& pool,
                                   int chunks_per_thread = 4);

// Same, classifying into `out` (resized for reuse — warm storage is kept,
// and every voxel is stored before any is read).
void classify_parallel_into(const DensityVolume& density, const TransferFunction& tf,
                            const ClassifyOptions& opt, ThreadPool& pool,
                            int chunks_per_thread, ClassifiedVolume* out);

// Chunk-parallel encoding of one principal axis.
RleVolume encode_parallel(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold, ThreadPool& pool,
                          int chunks_per_thread = 4);

// Encodes all three principal axes concurrently: every (axis, chunk) pair
// is one task in a single flat work list, so all three encodings progress
// at once rather than axis-by-axis. With a `scratch`, chunk tables and
// per-worker lane buffers come from it instead of being allocated (output
// is bit-identical either way).
EncodedVolume build_encoded_parallel(const ClassifiedVolume& vol, uint8_t alpha_threshold,
                                     ThreadPool& pool, int chunks_per_thread = 4,
                                     PrepareScratch* scratch = nullptr);

// The full preparation pipeline: classification followed by per-axis
// encoding, serial when opt.threads <= 1 and pool-parallel otherwise.
// Output is bit-identical across thread counts. `classified_out` (optional)
// receives the intermediate classified volume; `timing` (optional) receives
// per-stage wall times. `scratch` (optional) supplies the transient build
// storage — classified grid, chunk tables, lane buffers — so a warm
// scratch makes the whole build allocation-free except the returned
// encoding itself; with both `scratch` and `classified_out` set, the
// classified volume is copied out (the scratch keeps its storage).
EncodedVolume prepare_volume(const DensityVolume& density, const TransferFunction& tf,
                             const ClassifyOptions& copt, const PrepareOptions& opt = {},
                             ClassifiedVolume* classified_out = nullptr,
                             PrepareTiming* timing = nullptr,
                             PrepareScratch* scratch = nullptr);

}  // namespace psw
