// Ray-casting baseline renderer (Levoy-style, as parallelized by Nieh &
// Levoy [8]). Functionally equivalent to the shear warper: same classified
// voxels, same compositing operator, same framing — but image-order
// traversal with an octree for space leaping and early ray termination.
//
// The paper's Figure 2 contrasts its time breakdown (dominated by looping/
// traversal) with the shear warper's (dominated by compositing); the
// `traversal_only` mode supports exactly that decomposition: a run that
// performs all addressing and traversal but skips the resample/composite
// arithmetic measures the looping time.
#pragma once

#include "baseline/octree.hpp"
#include "core/classify.hpp"
#include "core/factorization.hpp"
#include "util/image.hpp"

namespace psw {

struct RayCastStats {
  double total_ms = 0.0;
  uint64_t rays = 0;
  uint64_t steps = 0;            // ray-march iterations (looping work)
  uint64_t samples_composited = 0;  // samples that did resample+composite
  uint64_t space_leaps = 0;      // octree-accelerated skips
};

struct RayCastOptions {
  double step = 1.0;             // sample spacing along the ray, in voxels
  bool traversal_only = false;   // skip the compositing arithmetic
  bool use_octree = true;        // disable to measure the octree's benefit
};

class RayCaster {
 public:
  // Builds the opacity octree once per classified volume.
  RayCaster(const ClassifiedVolume& volume, uint8_t alpha_threshold);

  // Renders with the same framing the shear warper would use for `camera`
  // (so outputs are directly comparable). Dispatches once per call to a
  // kernel specialized on the octree/traversal-only options, so the
  // per-sample loop carries no option branches.
  RayCastStats render(const Camera& camera, ImageU8* out,
                      const RayCastOptions& opt = {}) const;

 private:
  template <bool kUseOctree, bool kTraversalOnly>
  RayCastStats render_impl(const Camera& camera, ImageU8* out,
                           const RayCastOptions& opt) const;

  const ClassifiedVolume& volume_;
  uint8_t alpha_threshold_;
  DensityVolume opacity_;  // per-voxel opacity, input to the octree
  MinMaxOctree octree_;
};

}  // namespace psw
