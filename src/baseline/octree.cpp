#include "baseline/octree.hpp"

#include <algorithm>
#include <array>

namespace psw {

MinMaxOctree::MinMaxOctree(const DensityVolume& vol, int leaf_size)
    : leaf_size_(leaf_size) {
  auto ceil_div = [](int a, int b) { return (a + b - 1) / b; };

  // Level 0: leaf bricks.
  std::array<int, 3> dims{ceil_div(vol.nx(), leaf_size), ceil_div(vol.ny(), leaf_size),
                          ceil_div(vol.nz(), leaf_size)};
  while (true) {
    level_dims_.push_back(dims);
    level_offset_.push_back(nodes_.size());
    nodes_.resize(nodes_.size() + static_cast<size_t>(dims[0]) * dims[1] * dims[2]);
    ++levels_;
    if (dims[0] == 1 && dims[1] == 1 && dims[2] == 1) break;
    dims = {ceil_div(dims[0], 2), ceil_div(dims[1], 2), ceil_div(dims[2], 2)};
  }

  // Fill leaves.
  const auto& d0 = level_dims_[0];
  for (int bz = 0; bz < d0[2]; ++bz) {
    for (int by = 0; by < d0[1]; ++by) {
      for (int bx = 0; bx < d0[0]; ++bx) {
        Range r;
        const int x1 = std::min(vol.nx(), (bx + 1) * leaf_size);
        const int y1 = std::min(vol.ny(), (by + 1) * leaf_size);
        const int z1 = std::min(vol.nz(), (bz + 1) * leaf_size);
        for (int z = bz * leaf_size; z < z1; ++z) {
          for (int y = by * leaf_size; y < y1; ++y) {
            for (int x = bx * leaf_size; x < x1; ++x) {
              const uint8_t v = vol.at(x, y, z);
              r.min = std::min(r.min, v);
              r.max = std::max(r.max, v);
            }
          }
        }
        node(0, bx, by, bz) = r;
      }
    }
  }

  // Build interior levels bottom-up.
  for (int l = 1; l < levels_; ++l) {
    const auto& dl = level_dims_[l];
    const auto& dc = level_dims_[l - 1];
    for (int bz = 0; bz < dl[2]; ++bz) {
      for (int by = 0; by < dl[1]; ++by) {
        for (int bx = 0; bx < dl[0]; ++bx) {
          Range r;
          for (int dz = 0; dz <= 1; ++dz) {
            for (int dy = 0; dy <= 1; ++dy) {
              for (int dx = 0; dx <= 1; ++dx) {
                const int cx = 2 * bx + dx, cy = 2 * by + dy, cz = 2 * bz + dz;
                if (cx >= dc[0] || cy >= dc[1] || cz >= dc[2]) continue;
                const Range& c = node(l - 1, cx, cy, cz);
                r.min = std::min(r.min, c.min);
                r.max = std::max(r.max, c.max);
              }
            }
          }
          node(l, bx, by, bz) = r;
        }
      }
    }
  }
}

MinMaxOctree::Range MinMaxOctree::leaf_range(int x, int y, int z) const {
  return node(0, x / leaf_size_, y / leaf_size_, z / leaf_size_);
}

MinMaxOctree::Range MinMaxOctree::node_range(int level, int x, int y, int z) const {
  const int edge = node_edge(level);
  return node(level, x / edge, y / edge, z / edge);
}

int MinMaxOctree::largest_empty_level(int x, int y, int z, uint8_t threshold) const {
  int best = -1;
  for (int l = 0; l < levels_; ++l) {
    const int edge = node_edge(l);
    const auto& dims = level_dims_[l];
    const int bx = x / edge, by = y / edge, bz = z / edge;
    if (bx >= dims[0] || by >= dims[1] || bz >= dims[2]) break;
    if (node(l, bx, by, bz).max >= threshold) break;
    best = l;
  }
  return best;
}

}  // namespace psw
