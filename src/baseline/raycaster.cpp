#include "baseline/raycaster.hpp"

#include <algorithm>
#include <cmath>

#include "core/intermediate_image.hpp"
#include "util/timer.hpp"

namespace psw {

namespace {

DensityVolume opacity_volume(const ClassifiedVolume& vol) {
  DensityVolume o(vol.nx(), vol.ny(), vol.nz());
  for (int z = 0; z < vol.nz(); ++z) {
    for (int y = 0; y < vol.ny(); ++y) {
      for (int x = 0; x < vol.nx(); ++x) o.at(x, y, z) = vol.at(x, y, z).a;
    }
  }
  return o;
}

}  // namespace

RayCaster::RayCaster(const ClassifiedVolume& volume, uint8_t alpha_threshold)
    : volume_(volume),
      alpha_threshold_(alpha_threshold),
      opacity_(opacity_volume(volume)),
      octree_(opacity_, 4) {}

RayCastStats RayCaster::render(const Camera& camera, ImageU8* out,
                               const RayCastOptions& opt) const {
  // One dispatch per frame; the march loop below is compiled per variant.
  if (opt.use_octree) {
    return opt.traversal_only ? render_impl<true, true>(camera, out, opt)
                              : render_impl<true, false>(camera, out, opt);
  }
  return opt.traversal_only ? render_impl<false, true>(camera, out, opt)
                            : render_impl<false, false>(camera, out, opt);
}

template <bool kUseOctree, bool kTraversalOnly>
RayCastStats RayCaster::render_impl(const Camera& camera, ImageU8* out,
                                    const RayCastOptions& opt) const {
  RayCastStats stats;
  WallTimer timer;

  const std::array<int, 3> dims{volume_.nx(), volume_.ny(), volume_.nz()};
  const Factorization f = factorize(camera, dims);
  out->resize(f.final_width, f.final_height);
  out->clear();

  // Recover the framing shift the factorization applied: final image
  // coordinates are view projection plus a constant 2-D shift.
  auto uv_of = [&](const Vec3& p) {
    const double coords[3] = {p.x, p.y, p.z};
    return std::pair<double, double>{
        coords[f.perm[0]] + f.trans_i + f.shear_i * coords[f.perm[2]],
        coords[f.perm[1]] + f.trans_j + f.shear_j * coords[f.perm[2]]};
  };
  const auto [u0, v0] = uv_of({0, 0, 0});
  const Vec3 warped0 = f.warp.apply(u0, v0);
  const Vec3 proj0 = camera.view.transform_point({0, 0, 0});
  const double shift_x = warped0.x - proj0.x;
  const double shift_y = warped0.y - proj0.y;

  Mat4 inv_view;
  const bool ok = camera.view.inverse(&inv_view);
  (void)ok;
  const Vec3 dir = inv_view.transform_dir({0, 0, 1});
  const float inv255 = 1.0f / 255.0f;
  const double nx = dims[0], ny = dims[1], nz = dims[2];

  for (int py = 0; py < f.final_height; ++py) {
    for (int px = 0; px < f.final_width; ++px) {
      ++stats.rays;
      // Object-space ray through this pixel.
      const Vec3 origin =
          inv_view.transform_point({px - shift_x, py - shift_y, 0.0});

      // Clip against the volume bounds [0, n-1] per axis.
      double t_near = -1e30, t_far = 1e30;
      const double o[3] = {origin.x, origin.y, origin.z};
      const double d[3] = {dir.x, dir.y, dir.z};
      const double hi[3] = {nx - 1, ny - 1, nz - 1};
      bool miss = false;
      for (int a = 0; a < 3; ++a) {
        if (std::abs(d[a]) < 1e-12) {
          if (o[a] < 0 || o[a] > hi[a]) {
            miss = true;
            break;
          }
          continue;
        }
        double t0 = (0 - o[a]) / d[a];
        double t1 = (hi[a] - o[a]) / d[a];
        if (t0 > t1) std::swap(t0, t1);
        t_near = std::max(t_near, t0);
        t_far = std::min(t_far, t1);
      }
      if (miss || t_near > t_far) continue;

      float r = 0, g = 0, b = 0, a_acc = 0;
      double t = t_near;
      while (t <= t_far) {
        ++stats.steps;
        const double sx = o[0] + t * d[0];
        const double sy = o[1] + t * d[1];
        const double sz = o[2] + t * d[2];
        const int ix = static_cast<int>(sx);
        const int iy = static_cast<int>(sy);
        const int iz = static_cast<int>(sz);

        if constexpr (kUseOctree) {
          const int lvl = octree_.largest_empty_level(ix, iy, iz, alpha_threshold_);
          if (lvl >= 0) {
            // Skip to where the ray exits this empty node.
            const int edge = octree_.node_edge(lvl);
            double t_exit = t + opt.step;
            double best = 1e30;
            const double pos[3] = {sx, sy, sz};
            for (int axis = 0; axis < 3; ++axis) {
              if (std::abs(d[axis]) < 1e-12) continue;
              const double lo = std::floor(pos[axis] / edge) * edge;
              const double bound = d[axis] > 0 ? lo + edge : lo;
              const double dt = (bound - pos[axis]) / d[axis];
              if (dt > 1e-9) best = std::min(best, dt);
            }
            if (best < 1e29) {
              t_exit = t + best + 1e-6;
              ++stats.space_leaps;
            }
            // Re-align to the sampling grid.
            t = t_near + std::ceil((t_exit - t_near) / opt.step) * opt.step;
            continue;
          }
        }

        if constexpr (!kTraversalOnly) {
          // Opacity-weighted trilinear resampling of classified voxels —
          // the same resampling operator the shear warper applies.
          const int x1 = std::min(ix + 1, volume_.nx() - 1);
          const int y1 = std::min(iy + 1, volume_.ny() - 1);
          const int z1 = std::min(iz + 1, volume_.nz() - 1);
          const float fx = static_cast<float>(sx - ix);
          const float fy = static_cast<float>(sy - iy);
          const float fz = static_cast<float>(sz - iz);
          float sa = 0, sr = 0, sg = 0, sb = 0;
          for (int dz = 0; dz <= 1; ++dz) {
            for (int dy = 0; dy <= 1; ++dy) {
              for (int dx = 0; dx <= 1; ++dx) {
                const float w = (dx ? fx : 1 - fx) * (dy ? fy : 1 - fy) *
                                (dz ? fz : 1 - fz);
                if (w == 0.0f) continue;
                const ClassifiedVoxel& cv = volume_.at(
                    dx ? x1 : ix, dy ? y1 : iy, dz ? z1 : iz);
                if (cv.transparent(alpha_threshold_)) continue;
                const float va = w * (cv.a * inv255);
                sa += va;
                sr += va * (cv.r * inv255);
                sg += va * (cv.g * inv255);
                sb += va * (cv.b * inv255);
              }
            }
          }
          if (sa > 0) {
            ++stats.samples_composited;
            const float transmit = 1.0f - a_acc;
            r += transmit * sr;
            g += transmit * sg;
            b += transmit * sb;
            a_acc += transmit * sa;
            if (a_acc >= IntermediateImage::kOpaqueAlpha) break;  // early termination
          }
        }
        t += opt.step;
      }
      out->at(px, py) = quantize8(Rgba{r, g, b, a_acc});
    }
  }
  stats.total_ms = timer.millis();
  return stats;
}

}  // namespace psw
