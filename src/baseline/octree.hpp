// Min-max octree over the density volume — the coherence data structure of
// the ray-casting baseline (§2: "ray casting algorithms use an octree
// representation of the volume" to skip transparent regions).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/volume.hpp"

namespace psw {

// Complete octree stored in a flat array, built bottom-up from fixed-size
// leaf bricks. Each node records the min and max density in its region, so
// a traversal can skip regions the transfer function maps to zero opacity.
class MinMaxOctree {
 public:
  // Builds over the volume with the given leaf brick edge (power of two).
  MinMaxOctree(const DensityVolume& vol, int leaf_size = 4);

  int leaf_size() const { return leaf_size_; }
  int levels() const { return levels_; }

  struct Range {
    uint8_t min = 255;
    uint8_t max = 0;
  };

  // Min/max of the leaf brick containing voxel (x, y, z).
  Range leaf_range(int x, int y, int z) const;

  // Min/max of the node at `level` (0 = leaves) containing (x, y, z).
  // Edge length of a level-l node is leaf_size << l.
  Range node_range(int level, int x, int y, int z) const;

  // Largest level whose node at (x, y, z) has max < threshold (i.e. the
  // whole node is transparent under a monotone opacity map), or -1 if even
  // the leaf is not transparent. Used to skip empty space in big steps.
  int largest_empty_level(int x, int y, int z, uint8_t threshold) const;

  // Edge length (in voxels) of a node at the given level.
  int node_edge(int level) const { return leaf_size_ << level; }

 private:
  Range& node(int level, int bx, int by, int bz) {
    const auto& dims = level_dims_[level];
    return nodes_[level_offset_[level] +
                  (static_cast<size_t>(bz) * dims[1] + by) * dims[0] + bx];
  }
  const Range& node(int level, int bx, int by, int bz) const {
    const auto& dims = level_dims_[level];
    return nodes_[level_offset_[level] +
                  (static_cast<size_t>(bz) * dims[1] + by) * dims[0] + bx];
  }

  int leaf_size_;
  int levels_ = 0;
  std::vector<std::array<int, 3>> level_dims_;
  std::vector<size_t> level_offset_;
  std::vector<Range> nodes_;
};

}  // namespace psw
