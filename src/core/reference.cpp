#include "core/reference.hpp"

#include <cmath>

#include "core/rle_volume.hpp"
#include "core/warp.hpp"

namespace psw {

void reference_composite(const ClassifiedVolume& vol, const Factorization& f,
                         uint8_t alpha_threshold, IntermediateImage& img) {
  const float inv255 = 1.0f / 255.0f;
  const AxisPermutation perm = AxisPermutation::for_principal_axis(f.principal_axis);
  const int ni = f.ni, nj = f.nj;

  // Fetch voxel (i, j) of slice k in permuted coordinates; transparent and
  // out-of-range voxels return null exactly like RunCursor::at.
  auto fetch = [&](int i, int j, int k) -> const ClassifiedVoxel* {
    if (i < 0 || i >= ni || j < 0 || j >= nj) return nullptr;
    const auto obj = perm.to_object(i, j, k);
    const ClassifiedVoxel& cv = vol.at(obj[0], obj[1], obj[2]);
    return cv.transparent(alpha_threshold) ? nullptr : &cv;
  };

  for (int v = 0; v < img.height(); ++v) {
    for (int t = 0; t < f.nk; ++t) {
      const int k = f.slice(t);
      const double off_u = f.offset_u(k);
      const double off_v = f.offset_v(k);

      const int base_v = static_cast<int>(std::ceil(off_v));
      const int j0 = v - base_v;
      if (j0 < -1 || j0 >= nj) continue;
      const float wv = static_cast<float>(base_v - off_v);

      const int base_u = static_cast<int>(std::ceil(off_u));
      const float wu = static_cast<float>(base_u - off_u);
      const float w00 = (1.0f - wu) * (1.0f - wv);
      const float w10 = wu * (1.0f - wv);
      const float w01 = (1.0f - wu) * wv;
      const float w11 = wu * wv;

      int u = std::max(0, static_cast<int>(std::floor(off_u - 1.0)) + 1);
      const int u_end = std::min(img.width(), static_cast<int>(std::ceil(off_u + ni)));
      for (; u < u_end; ++u) {
        Rgba& px = img.pixel(u, v);
        if (px.a >= IntermediateImage::kOpaqueAlpha) continue;  // early termination
        const int i0 = u - base_u;

        float sa = 0.0f, sr = 0.0f, sg = 0.0f, sb = 0.0f;
        auto accumulate = [&](const ClassifiedVoxel* cv, float w) {
          if (!cv) return;
          const float a = w * (cv->a * inv255);
          sa += a;
          sr += a * (cv->r * inv255);
          sg += a * (cv->g * inv255);
          sb += a * (cv->b * inv255);
        };
        accumulate(fetch(i0, j0, k), w00);
        accumulate(fetch(i0 + 1, j0, k), w10);
        accumulate(fetch(i0, j0 + 1, k), w01);
        accumulate(fetch(i0 + 1, j0 + 1, k), w11);
        if (sa == 0.0f && sr == 0.0f && sg == 0.0f && sb == 0.0f) continue;

        const float transmit = 1.0f - px.a;
        px.r += transmit * sr;
        px.g += transmit * sg;
        px.b += transmit * sb;
        px.a += transmit * sa;
      }
    }
  }
}

void reference_render(const ClassifiedVolume& vol, const Camera& camera,
                      uint8_t alpha_threshold, ImageU8* out) {
  const std::array<int, 3> dims{vol.nx(), vol.ny(), vol.nz()};
  const Factorization f = factorize(camera, dims);
  IntermediateImage img(f.intermediate_width, f.intermediate_height);
  reference_composite(vol, f, alpha_threshold, img);
  out->resize(f.final_width, f.final_height);
  warp_frame(img, f, *out);
}

}  // namespace psw
