// Memory-access hooks: the renderers report their data references (volume
// runs, voxel data, image pixels, skip links) through this layer so the
// cache and SVM simulators can replay them.
//
// Two forms exist. The virtual MemoryHook is the runtime interface the
// trace layer implements. The static hook policies (NullHook / SimHook /
// MaybeHook) are what the kernels are templated on: a kernel instantiated
// with NullHook compiles to code with no per-access branch or call at all,
// while the SimHook instantiation forwards every access to a MemoryHook
// with the exact same call sites — so the real-time path pays nothing and
// the simulated path produces the same reference stream it always did.
// Kernels dispatch between the two instantiations once per call.
#pragma once

#include <cstdint>

namespace psw {

class MemoryHook {
 public:
  virtual ~MemoryHook() = default;
  virtual void access(const void* addr, uint32_t bytes, bool write) = 0;
};

// Convenience wrappers used outside the templated kernels; `hook` may be
// null.
inline void hook_read(MemoryHook* hook, const void* addr, uint32_t bytes) {
  if (hook) hook->access(addr, bytes, false);
}
inline void hook_write(MemoryHook* hook, const void* addr, uint32_t bytes) {
  if (hook) hook->access(addr, bytes, true);
}

// Static hook policy: no tracing. Empty inline members compile away
// entirely, so NullHook-instantiated kernels carry zero per-access cost.
struct NullHook {
  static constexpr bool tracing = false;
  void read(const void*, uint32_t) const {}
  void write(const void*, uint32_t) const {}
};

// Static hook policy wrapping a (non-null) MemoryHook for the simulators.
struct SimHook {
  static constexpr bool tracing = true;
  MemoryHook* sink;
  void read(const void* addr, uint32_t bytes) const { sink->access(addr, bytes, false); }
  void write(const void* addr, uint32_t bytes) const { sink->access(addr, bytes, true); }
};

// Static hook policy with a runtime null check — the behaviour of the old
// non-templated kernels, kept for call sites that take a possibly-null
// MemoryHook* directly (e.g. RunCursor in tests and tools).
struct MaybeHook {
  static constexpr bool tracing = true;
  MemoryHook* sink = nullptr;
  MaybeHook(MemoryHook* s = nullptr) : sink(s) {}  // NOLINT: implicit by design
  void read(const void* addr, uint32_t bytes) const {
    if (sink) sink->access(addr, bytes, false);
  }
  void write(const void* addr, uint32_t bytes) const {
    if (sink) sink->access(addr, bytes, true);
  }
};

}  // namespace psw
