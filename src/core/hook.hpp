// Memory-access hook: the renderers report their data references (volume
// runs, voxel data, image pixels, skip links) through this interface so the
// cache and SVM simulators can replay them. A null hook costs one
// predictable branch in the hot loops.
#pragma once

#include <cstdint>

namespace psw {

class MemoryHook {
 public:
  virtual ~MemoryHook() = default;
  virtual void access(const void* addr, uint32_t bytes, bool write) = 0;
};

// Convenience wrappers used by the kernels; `hook` may be null.
inline void hook_read(MemoryHook* hook, const void* addr, uint32_t bytes) {
  if (hook) hook->access(addr, bytes, false);
}
inline void hook_write(MemoryHook* hook, const void* addr, uint32_t bytes) {
  if (hook) hook->access(addr, bytes, true);
}

}  // namespace psw
