// Classification: maps raw density (and gradient magnitude) to opacity and
// color. The shear-warp pipeline pre-classifies and pre-shades the volume
// (Lacroute's fast mode); the ray-casting baseline evaluates the same
// transfer function along each ray so the two renderers are functionally
// equivalent, as in the paper's Figure 2 comparison.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/vec.hpp"

namespace psw {

// A piecewise-linear ramp over density [0,255].
class Ramp {
 public:
  // Control points (density, value); densities must be increasing.
  Ramp(std::initializer_list<std::pair<int, float>> points);
  Ramp() : Ramp({{0, 0.0f}, {255, 1.0f}}) {}

  float operator()(float density) const;

 private:
  std::vector<std::pair<int, float>> points_;
};

// Transfer function: opacity from a density ramp, optionally modulated by
// gradient magnitude (so homogeneous interiors become transparent and tissue
// boundaries opaque, the standard Levoy-style classification); color from a
// density-indexed map.
class TransferFunction {
 public:
  TransferFunction();

  // Presets matching the phantom tissue bands.
  static TransferFunction mri_preset();
  static TransferFunction ct_preset();
  // Simple threshold classification for tests: opacity 0 below `threshold`,
  // `alpha` at and above it; constant white color.
  static TransferFunction threshold_preset(uint8_t threshold, float alpha = 0.8f);

  void set_opacity_ramp(Ramp r) { opacity_ = std::move(r); }
  void set_gradient_ramp(Ramp r) { gradient_ = std::move(r); }
  void set_gradient_modulation(bool on) { use_gradient_ = on; }
  void set_color_map(std::array<Vec3, 4> colors, std::array<int, 4> stops);

  // Opacity in [0,1] for a voxel with the given density and gradient
  // magnitude (magnitude normalized to [0,1]).
  float opacity(float density, float gradient_mag) const;

  // Unshaded material color in [0,1]^3.
  Vec3 color(float density) const;

  // Exact quantized (0..255) opacity ceiling for a density value, over all
  // possible gradient magnitudes. With gradient modulation off — the case
  // for every preset — opacity depends on density alone, so this is the
  // exact quantized opacity every voxel of that density classifies to; the
  // classifier uses it to prove voxels transparent and skip their gradient
  // and shading work bit-identically. With modulation on it returns 255
  // (no density-only ceiling is claimed; every voxel takes the full path).
  uint8_t max_quantized_opacity(uint8_t density) const;

  bool gradient_modulated() const { return use_gradient_; }

 private:
  Ramp opacity_;
  Ramp gradient_;
  bool use_gradient_ = false;
  std::array<Vec3, 4> colors_;
  std::array<int, 4> stops_;
};

}  // namespace psw
