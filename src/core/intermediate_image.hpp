// The intermediate (composited) image: premultiplied RGBA pixels plus
// per-pixel skip links implementing the dynamically run-length-encoded
// opaque-pixel structure used for early ray termination (§2). Skip links
// are path-compressed offsets to the next non-opaque pixel in a scanline.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hook.hpp"
#include "util/vec.hpp"

namespace psw {

class IntermediateImage {
 public:
  // Pixels whose accumulated opacity reaches this are marked opaque and
  // skipped in later slices (the paper's early ray termination threshold).
  static constexpr float kOpaqueAlpha = 0.98f;

  IntermediateImage() = default;
  IntermediateImage(int width, int height) { resize(width, height); }

  void resize(int width, int height);
  // Clears pixels and skip links for a new frame.
  void clear();
  // Clears only the given scanline range [v0, v1) — what each processor
  // clears for its own partition in the parallel renderers.
  void clear_rows(int v0, int v1);

  int width() const { return width_; }
  int height() const { return height_; }

  Rgba& pixel(int u, int v) { return pixels_[static_cast<size_t>(v) * width_ + u]; }
  const Rgba& pixel(int u, int v) const {
    return pixels_[static_cast<size_t>(v) * width_ + u];
  }
  Rgba* row(int v) { return pixels_.data() + static_cast<size_t>(v) * width_; }
  const Rgba* row(int v) const { return pixels_.data() + static_cast<size_t>(v) * width_; }

  // First non-opaque pixel index >= u in scanline v (may be width()).
  // Follows and path-compresses skip links; reports link traffic to hook.
  int next_writable(int v, int u, MemoryHook* hook = nullptr);

  // Marks pixel (u, v) opaque so later slices skip it.
  void mark_opaque(int u, int v, MemoryHook* hook = nullptr);

  // True when every pixel of scanline v is opaque from index `from` on.
  bool fully_opaque_from(int v, int from, MemoryHook* hook = nullptr) {
    return next_writable(v, from, hook) >= width_;
  }

 private:
  int width_ = 0, height_ = 0;
  std::vector<Rgba> pixels_;
  std::vector<int32_t> skip_;  // 0 = writable, >0 = offset to candidate
};

}  // namespace psw
