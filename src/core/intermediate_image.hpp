// The intermediate (composited) image: premultiplied RGBA pixels plus
// per-pixel skip links implementing the dynamically run-length-encoded
// opaque-pixel structure used for early ray termination (§2). Skip links
// are path-compressed offsets to the next non-opaque pixel in a scanline.
//
// The skip-link queries are templated on the hook policy (see hook.hpp):
// the NullHook instantiations are branch-free, the SimHook instantiations
// report link traffic to the simulators. The MemoryHook* overloads keep
// the historical runtime-dispatch interface.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hook.hpp"
#include "util/vec.hpp"

namespace psw {

class IntermediateImage {
 public:
  // Pixels whose accumulated opacity reaches this are marked opaque and
  // skipped in later slices (the paper's early ray termination threshold).
  static constexpr float kOpaqueAlpha = 0.98f;

  IntermediateImage() = default;
  IntermediateImage(int width, int height) { resize(width, height); }

  void resize(int width, int height);
  // Resize without clearing, reusing existing storage when it is large
  // enough (mirrors ImageU8::pixel_capacity). Contents of the new extent
  // are unspecified: only callers that clear every row they later read —
  // the parallel renderers clear all of [0, height) each frame — may use
  // this; everyone else wants resize().
  void resize_for_reuse(int width, int height);
  // Clears pixels and skip links for a new frame.
  void clear();
  // Clears only the given scanline range [v0, v1) — what each processor
  // clears for its own partition in the parallel renderers.
  void clear_rows(int v0, int v1);

  int width() const { return width_; }
  int height() const { return height_; }

  Rgba& pixel(int u, int v) { return pixels_[static_cast<size_t>(v) * width_ + u]; }
  const Rgba& pixel(int u, int v) const {
    return pixels_[static_cast<size_t>(v) * width_ + u];
  }
  Rgba* row(int v) { return pixels_.data() + static_cast<size_t>(v) * width_; }
  const Rgba* row(int v) const { return pixels_.data() + static_cast<size_t>(v) * width_; }

  // First non-opaque pixel index >= u in scanline v (may be width()).
  // Follows and path-compresses skip links; reports link traffic to hook.
  template <class Hook>
  int next_writable(int v, int u, Hook hook) {
    int32_t* s = skip_.data() + static_cast<size_t>(v) * width_;
    const int start = u;
    while (u < width_) {
      hook.read(s + u, sizeof(int32_t));
      if (s[u] == 0) break;
      u += s[u];
    }
    // Path compression: point every link on the path at the destination.
    int cur = start;
    while (cur < u && s[cur] > 0) {
      const int nxt = cur + s[cur];
      if (s[cur] != u - cur) {
        s[cur] = u - cur;
        hook.write(s + cur, sizeof(int32_t));
      }
      cur = nxt;
    }
    return u;
  }
  int next_writable(int v, int u, MemoryHook* hook = nullptr);

  // Marks pixel (u, v) opaque so later slices skip it.
  template <class Hook>
  void mark_opaque(int u, int v, Hook hook) {
    int32_t* s = skip_.data() + static_cast<size_t>(v) * width_;
    s[u] = 1;
    hook.write(s + u, sizeof(int32_t));
  }
  void mark_opaque(int u, int v, MemoryHook* hook = nullptr);

  // True when every pixel of scanline v is opaque from index `from` on.
  template <class Hook>
  bool fully_opaque_from(int v, int from, Hook hook) {
    return next_writable(v, from, hook) >= width_;
  }
  bool fully_opaque_from(int v, int from, MemoryHook* hook = nullptr) {
    return next_writable(v, from, hook) >= width_;
  }

  // Base of the skip-link array (one int32 per pixel, scanline-major), for
  // address-region registration in the trace analyzers.
  const int32_t* skip_data() const { return skip_.data(); }

  // Writable-run query for the segment-batched fast path: first index in
  // [u, limit) whose pixel is opaque, or `limit` if the whole range is
  // writable. Does not follow or compress links (a marked pixel always has
  // skip != 0, so a single-load test per pixel suffices).
  int writable_run_end(int v, int u, int limit) const {
    const int32_t* s = skip_.data() + static_cast<size_t>(v) * width_;
    while (u < limit && s[u] == 0) ++u;
    return u;
  }

 private:
  int width_ = 0, height_ = 0;
  std::vector<Rgba> pixels_;
  std::vector<int32_t> skip_;  // 0 = writable, >0 = offset to candidate
};

}  // namespace psw
