#include "core/factorization.hpp"

#include <cassert>
#include <cmath>

namespace psw {

Camera Camera::orbit(const std::array<int, 3>& dims, double yaw, double pitch, double roll) {
  (void)dims;  // bounds recentering in factorize() makes the center moot
  Camera cam;
  cam.view = Mat4::rotation_y(yaw) * Mat4::rotation_x(pitch) * Mat4::rotation_z(roll);
  return cam;
}

Affine2D Affine2D::inverse() const {
  const double det = a00 * a11 - a01 * a10;
  assert(std::abs(det) > 1e-12);
  Affine2D inv;
  inv.a00 = a11 / det;
  inv.a01 = -a01 / det;
  inv.a10 = -a10 / det;
  inv.a11 = a00 / det;
  inv.bx = -(inv.a00 * bx + inv.a01 * by);
  inv.by = -(inv.a10 * bx + inv.a11 * by);
  return inv;
}

Factorization factorize(const Camera& camera, const std::array<int, 3>& dims) {
  Factorization f;

  // Object-space viewing direction: the direction that projects to +z.
  Mat4 inv_view;
  const bool ok = camera.view.inverse(&inv_view);
  assert(ok && "view matrix must be invertible");
  (void)ok;
  const Vec3 d = inv_view.transform_dir({0.0, 0.0, 1.0});

  // Principal axis: object axis most parallel to the viewing direction.
  int c = 0;
  for (int a = 1; a < 3; ++a) {
    if (std::abs(d[a]) > std::abs(d[c])) c = a;
  }
  f.principal_axis = c;
  f.perm = {(c + 1) % 3, (c + 2) % 3, c};
  f.ni = dims[f.perm[0]];
  f.nj = dims[f.perm[1]];
  f.nk = dims[f.perm[2]];

  // Along a viewing ray, u = i - (d_i/d_k) k is invariant, so voxel i of
  // slice k lands at u = i + shear_i * k with shear_i = -d_i/d_k.
  const double di = d[f.perm[0]], dj = d[f.perm[1]], dk = d[f.perm[2]];
  assert(std::abs(dk) > 0.0);
  f.shear_i = -di / dk;
  f.shear_j = -dj / dk;
  // |shear| <= 1 is the factorization's defining property (principal axis
  // dominates), up to rounding at exact 45-degree views.
  f.trans_i = f.shear_i < 0.0 ? -f.shear_i * (f.nk - 1) : 0.0;
  f.trans_j = f.shear_j < 0.0 ? -f.shear_j * (f.nk - 1) : 0.0;

  f.intermediate_width =
      f.ni + static_cast<int>(std::ceil(std::abs(f.shear_i) * (f.nk - 1))) + 1;
  f.intermediate_height =
      f.nj + static_cast<int>(std::ceil(std::abs(f.shear_j) * (f.nk - 1))) + 1;

  // Front-to-back order: slice depth increases along +k iff the z row of
  // the view has positive coefficient on the k' axis.
  f.k_ascending = camera.view.at(2, f.perm[2]) > 0.0;

  // Warp: image position of the ray with sheared coords (u, v). The ray
  // passes through the object point with permuted coords
  // (u - trans_i, v - trans_j, 0) on the k=0 slice plane.
  auto project = [&](double u, double v) {
    Vec3 obj;
    double coords[3] = {0.0, 0.0, 0.0};
    coords[f.perm[0]] = u - f.trans_i;
    coords[f.perm[1]] = v - f.trans_j;
    coords[f.perm[2]] = 0.0;
    obj = {coords[0], coords[1], coords[2]};
    return camera.view.transform_point(obj);
  };
  const Vec3 p00 = project(0, 0), p10 = project(1, 0), p01 = project(0, 1);
  f.warp.a00 = p10.x - p00.x;
  f.warp.a10 = p10.y - p00.y;
  f.warp.a01 = p01.x - p00.x;
  f.warp.a11 = p01.y - p00.y;
  f.warp.bx = p00.x;
  f.warp.by = p00.y;

  // Final image bounds: warp the intermediate image corners.
  const double w = f.intermediate_width, h = f.intermediate_height;
  const Vec3 corners[4] = {f.warp.apply(0, 0), f.warp.apply(w, 0), f.warp.apply(0, h),
                           f.warp.apply(w, h)};
  double min_x = corners[0].x, max_x = corners[0].x;
  double min_y = corners[0].y, max_y = corners[0].y;
  for (const Vec3& p : corners) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const int need_w = static_cast<int>(std::ceil(max_x - min_x)) + 1;
  const int need_h = static_cast<int>(std::ceil(max_y - min_y)) + 1;
  if (camera.image_width > 0 && camera.image_height > 0) {
    f.final_width = camera.image_width;
    f.final_height = camera.image_height;
    // Center the warped bounds in the requested image.
    f.warp.bx += (f.final_width - (max_x - min_x)) * 0.5 - min_x;
    f.warp.by += (f.final_height - (max_y - min_y)) * 0.5 - min_y;
  } else {
    f.final_width = need_w;
    f.final_height = need_h;
    f.warp.bx -= min_x;
    f.warp.by -= min_y;
  }
  return f;
}

}  // namespace psw
