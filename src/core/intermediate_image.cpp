#include "core/intermediate_image.hpp"

#include <algorithm>
#include <cstring>

namespace psw {

void IntermediateImage::resize(int width, int height) {
  width_ = width;
  height_ = height;
  pixels_.assign(static_cast<size_t>(width) * height, Rgba{});
  skip_.assign(static_cast<size_t>(width) * height, 0);
}

void IntermediateImage::clear() { clear_rows(0, height_); }

void IntermediateImage::clear_rows(int v0, int v1) {
  v0 = std::max(0, v0);
  v1 = std::min(height_, v1);
  if (v1 <= v0) return;
  const size_t begin = static_cast<size_t>(v0) * width_;
  const size_t count = static_cast<size_t>(v1 - v0) * width_;
  std::fill_n(pixels_.data() + begin, count, Rgba{});
  std::memset(skip_.data() + begin, 0, count * sizeof(int32_t));
}

int IntermediateImage::next_writable(int v, int u, MemoryHook* hook) {
  int32_t* s = skip_.data() + static_cast<size_t>(v) * width_;
  const int start = u;
  while (u < width_) {
    hook_read(hook, s + u, sizeof(int32_t));
    if (s[u] == 0) break;
    u += s[u];
  }
  // Path compression: point every link on the path at the destination.
  int cur = start;
  while (cur < u && s[cur] > 0) {
    const int nxt = cur + s[cur];
    if (s[cur] != u - cur) {
      s[cur] = u - cur;
      hook_write(hook, s + cur, sizeof(int32_t));
    }
    cur = nxt;
  }
  return u;
}

void IntermediateImage::mark_opaque(int u, int v, MemoryHook* hook) {
  int32_t* s = skip_.data() + static_cast<size_t>(v) * width_;
  s[u] = 1;
  hook_write(hook, s + u, sizeof(int32_t));
}

}  // namespace psw
