#include "core/intermediate_image.hpp"

#include <algorithm>
#include <cstring>

namespace psw {

void IntermediateImage::resize(int width, int height) {
  width_ = width;
  height_ = height;
  pixels_.assign(static_cast<size_t>(width) * height, Rgba{});
  skip_.assign(static_cast<size_t>(width) * height, 0);
}

void IntermediateImage::resize_for_reuse(int width, int height) {
  width_ = width;
  height_ = height;
  const size_t n = static_cast<size_t>(width) * height;
  if (pixels_.size() < n) {
    pixels_.resize(n);
    skip_.resize(n);
  }
}

void IntermediateImage::clear() { clear_rows(0, height_); }

void IntermediateImage::clear_rows(int v0, int v1) {
  v0 = std::max(0, v0);
  v1 = std::min(height_, v1);
  if (v1 <= v0) return;
  const size_t begin = static_cast<size_t>(v0) * width_;
  const size_t count = static_cast<size_t>(v1 - v0) * width_;
  std::fill_n(pixels_.data() + begin, count, Rgba{});
  std::memset(skip_.data() + begin, 0, count * sizeof(int32_t));
}

int IntermediateImage::next_writable(int v, int u, MemoryHook* hook) {
  if (hook) return next_writable(v, u, SimHook{hook});
  return next_writable(v, u, NullHook{});
}

void IntermediateImage::mark_opaque(int u, int v, MemoryHook* hook) {
  if (hook) return mark_opaque(u, v, SimHook{hook});
  mark_opaque(u, v, NullHook{});
}

}  // namespace psw
