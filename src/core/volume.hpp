// Dense 3-D voxel grid. Storage order is x fastest, then y, then z — the
// "scanline order" the shear-warp algorithm's spatial locality argument
// depends on (§2 of the paper).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace psw {

template <typename T>
class Volume {
 public:
  Volume() = default;
  Volume(int nx, int ny, int nz, T fill = T{}) { resize(nx, ny, nz, fill); }

  void resize(int nx, int ny, int nz, T fill = T{}) {
    nx_ = nx;
    ny_ = ny;
    nz_ = nz;
    data_.assign(static_cast<size_t>(nx) * ny * nz, fill);
  }

  // Like resize(), but reused storage keeps its previous contents (no
  // refill pass over the grid). Only for callers that store every voxel
  // before reading any — the classification kernels qualify: they write
  // even provably-transparent voxels explicitly. Capacity is retained
  // across shrink/regrow, so pooled volumes stop allocating once warm.
  void resize_for_reuse(int nx, int ny, int nz) {
    nx_ = nx;
    ny_ = ny;
    nz_ = nz;
    data_.resize(static_cast<size_t>(nx) * ny * nz);
  }

  // Allocated (not just used) element capacity; pool byte accounting.
  size_t capacity() const { return data_.capacity(); }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int dim(int axis) const { return axis == 0 ? nx_ : (axis == 1 ? ny_ : nz_); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  bool in_bounds(int x, int y, int z) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_;
  }

  size_t index(int x, int y, int z) const {
    assert(in_bounds(x, y, z));
    return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
  }

  T& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  const T& at(int x, int y, int z) const { return data_[index(x, y, z)]; }

  // Clamped access: coordinates are clamped to the valid range. Used by
  // gradient estimation and resampling at the borders.
  const T& at_clamped(int x, int y, int z) const {
    x = std::clamp(x, 0, nx_ - 1);
    y = std::clamp(y, 0, ny_ - 1);
    z = std::clamp(z, 0, nz_ - 1);
    return data_[index(x, y, z)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<T> data_;
};

// Raw scalar volumes use 8-bit density, like the MRI/CT data in the paper.
using DensityVolume = Volume<uint8_t>;

}  // namespace psw
