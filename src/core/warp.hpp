// The warp phase (§2): transforms the composited intermediate image into
// the final undistorted image with an inverse-mapped bilinear 2-D warp.
#pragma once

#include <cstdint>

#include "core/factorization.hpp"
#include "core/intermediate_image.hpp"
#include "core/hook.hpp"
#include "util/image.hpp"

namespace psw {

struct WarpStats {
  uint64_t pixels_written = 0;
  uint64_t samples = 0;  // intermediate pixels read
};

// Warps final-image scanline y for x in [x0, x1). The intermediate image is
// sampled bilinearly at the inverse-warped position; pixels mapping outside
// it compose over a black background. `inv` must be f.warp.inverse().
void warp_scanline(const IntermediateImage& src, const Factorization& f,
                   const Affine2D& inv, int y, int x0, int x1, ImageU8& out,
                   MemoryHook* hook = nullptr, WarpStats* stats = nullptr);

// Warps the whole final image serially; `out` must be sized
// f.final_width x f.final_height.
WarpStats warp_frame(const IntermediateImage& src, const Factorization& f, ImageU8& out,
                     MemoryHook* hook = nullptr);

// Warps one square tile of the final image — the task unit of the *old*
// parallel algorithm's warp phase (§3.1, Figure 3).
void warp_tile(const IntermediateImage& src, const Factorization& f, const Affine2D& inv,
               int tile_x, int tile_y, int tile_size, ImageU8& out,
               MemoryHook* hook = nullptr, WarpStats* stats = nullptr);

}  // namespace psw
