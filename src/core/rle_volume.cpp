#include "core/rle_volume.hpp"

#include <cstring>

namespace psw {

RleVolume RleVolume::encode(const ClassifiedVolume& vol, int principal_axis,
                            uint8_t alpha_threshold) {
  RleVolume r;
  r.axis_ = principal_axis;
  r.perm_ = AxisPermutation::for_principal_axis(principal_axis);
  r.alpha_threshold_ = alpha_threshold;
  r.ni_ = vol.dim(r.perm_.axis_i);
  r.nj_ = vol.dim(r.perm_.axis_j);
  r.nk_ = vol.dim(r.perm_.axis_k);

  const size_t scanlines = static_cast<size_t>(r.nk_) * r.nj_;
  r.run_offset_.reserve(scanlines + 1);
  r.voxel_offset_.reserve(scanlines + 1);
  r.run_offset_.push_back(0);
  r.voxel_offset_.push_back(0);

  for (int k = 0; k < r.nk_; ++k) {
    for (int j = 0; j < r.nj_; ++j) {
      // Encode one scanline: alternating runs starting transparent.
      bool cur_opaque = false;  // by convention the first run is transparent
      int cur_len = 0;
      for (int i = 0; i < r.ni_; ++i) {
        const auto obj = r.perm_.to_object(i, j, k);
        const ClassifiedVoxel& cv = vol.at(obj[0], obj[1], obj[2]);
        const bool opaque = !cv.transparent(alpha_threshold);
        if (opaque != cur_opaque) {
          r.runs_.push_back(static_cast<uint16_t>(cur_len));
          cur_opaque = opaque;
          cur_len = 0;
        }
        ++cur_len;
        if (opaque) r.voxels_.push_back(cv);
      }
      r.runs_.push_back(static_cast<uint16_t>(cur_len));
      r.run_offset_.push_back(r.runs_.size());
      r.voxel_offset_.push_back(r.voxels_.size());
    }
  }
  return r;
}

size_t RleVolume::storage_bytes() const {
  return runs_.size() * sizeof(uint16_t) + voxels_.size() * sizeof(ClassifiedVoxel) +
         (run_offset_.size() + voxel_offset_.size()) * sizeof(uint64_t);
}

void RleVolume::decode_scanline(int k, int j, ClassifiedVoxel* out) const {
  std::memset(out, 0, sizeof(ClassifiedVoxel) * ni_);
  const uint16_t* run = runs_at(k, j);
  const size_t nruns = runs_in_scanline(k, j);
  const ClassifiedVoxel* vox = voxels_at(k, j);
  int pos = 0;
  bool opaque = false;
  for (size_t ri = 0; ri < nruns; ++ri) {
    const int len = run[ri];
    if (opaque) {
      for (int t = 0; t < len; ++t) out[pos + t] = *vox++;
    }
    pos += len;
    opaque = !opaque;
  }
}

RunCursor::RunCursor(const RleVolume& vol, int k, int j, MemoryHook* hook) {
  ni_ = vol.ni();
  if (j < 0 || j >= vol.nj() || k < 0 || k >= vol.nk()) return;  // null cursor
  runs_ = vol.runs_at(k, j);
  num_runs_ = vol.runs_in_scanline(k, j);
  voxels_ = vol.voxels_at(k, j);
  hook_ = hook;
  ni_ = vol.ni();
  empty_ = vol.scanline_empty(k, j);
  run_idx_ = 0;
  run_start_ = 0;
  run_len_ = num_runs_ > 0 ? runs_[0] : ni_;
  voxels_before_ = 0;
  run_opaque_ = false;
  hook_read(hook_, runs_, sizeof(uint16_t));
}

void RunCursor::advance_to(int i) {
  while (i >= run_start_ + run_len_ && run_idx_ + 1 < num_runs_) {
    if (run_opaque_) voxels_before_ += run_len_;
    run_start_ += run_len_;
    ++run_idx_;
    run_len_ = runs_[run_idx_];
    run_opaque_ = !run_opaque_;
    hook_read(hook_, runs_ + run_idx_, sizeof(uint16_t));
  }
}

const ClassifiedVoxel* RunCursor::at(int i) {
  if (runs_ == nullptr || i < 0 || i >= ni_) return nullptr;
  advance_to(i);
  if (!run_opaque_ || i < run_start_ || i >= run_start_ + run_len_) return nullptr;
  const ClassifiedVoxel* v = voxels_ + voxels_before_ + (i - run_start_);
  hook_read(hook_, v, sizeof(ClassifiedVoxel));
  return v;
}

int RunCursor::next_nontransparent(int i) const {
  if (runs_ == nullptr) return ni_ == 0 ? 0 : ni_;
  if (i < 0) i = 0;
  // Scan forward from the current run without mutating state.
  size_t idx = run_idx_;
  int start = run_start_;
  int len = run_len_;
  bool opaque = run_opaque_;
  while (true) {
    if (opaque && i < start + len) return std::max(i, start);
    if (idx + 1 >= num_runs_) return ni_;
    start += len;
    ++idx;
    len = runs_[idx];
    opaque = !opaque;
  }
}

EncodedVolume EncodedVolume::build(const ClassifiedVolume& vol, uint8_t alpha_threshold) {
  EncodedVolume e;
  e.alpha_threshold_ = alpha_threshold;
  e.dims_ = {vol.nx(), vol.ny(), vol.nz()};
  for (int c = 0; c < 3; ++c) e.rle_[c] = RleVolume::encode(vol, c, alpha_threshold);
  return e;
}

}  // namespace psw
