#include "core/rle_volume.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstring>
#include <memory>

#include "util/simd.hpp"

namespace psw {

namespace {

// FNV-1a, byte-wise over a POD span.
uint64_t fnv1a(uint64_t h, const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint64_t kFnvBasis = 1469598103934665603ull;

// Unit-stride run builder for `n` contiguous voxels, appending one
// Fragment. 16-voxel blocks are classified at once by a SIMD opacity mask;
// a block uniformly on the current run's side extends it (and bulk-copies
// its voxels when opaque) with no per-voxel work — on the 70-95%
// transparent volumes the paper targets, runs are long and almost every
// block takes this path. Mixed blocks replay the mask bit by bit through
// the same state machine as the scalar walk, so the emitted runs, voxels,
// and fragment are exactly the scalar encoder's.
void encode_line(const ClassifiedVoxel* base, size_t n, uint8_t threshold,
                 RleVolume::Chunk& out) {
  RleVolume::Chunk::Fragment frag;
  const bool first = !base[0].transparent(threshold);
  frag.first_opaque = first;
  bool cur = first;
  uint32_t len = 0;
  size_t i = 0;
  while (n - i >= 16) {
    const uint32_t m =
        simd::opaque_mask16(reinterpret_cast<const uint8_t*>(base + i), threshold);
    if (m == 0xFFFFu && cur) {
      len += 16;
      out.voxels.insert(out.voxels.end(), base + i, base + i + 16);
      frag.voxel_count += 16;
    } else if (m == 0 && !cur) {
      len += 16;
    } else {
      for (size_t t = 0; t < 16; ++t) {
        const bool opaque = (m >> t) & 1u;
        if (opaque != cur) {
          out.runs.push_back(static_cast<uint16_t>(len));
          ++frag.run_count;
          cur = opaque;
          len = 0;
        }
        ++len;
        if (opaque) {
          out.voxels.push_back(base[i + t]);
          ++frag.voxel_count;
        }
      }
    }
    i += 16;
  }
  for (; i < n; ++i) {
    const bool opaque = !base[i].transparent(threshold);
    if (opaque != cur) {
      out.runs.push_back(static_cast<uint16_t>(len));
      ++frag.run_count;
      cur = opaque;
      len = 0;
    }
    ++len;
    if (opaque) {
      out.voxels.push_back(base[i]);
      ++frag.voxel_count;
    }
  }
  out.runs.push_back(static_cast<uint16_t>(len));
  ++frag.run_count;
  out.fragments.push_back(frag);
}

// Scalar encoder for the piece [i0, i1) of one scanline. `base` is the
// scanline's first voxel; consecutive i step the dense array by `step`.
// Appends one Fragment. Unit-stride pieces take the block-mask path.
void encode_piece(const ClassifiedVoxel* base, size_t step, size_t i0, size_t i1,
                  uint8_t threshold, RleVolume::Chunk& out) {
  if (step == 1 && i1 > i0) {
    encode_line(base + i0, i1 - i0, threshold, out);
    return;
  }
  RleVolume::Chunk::Fragment frag;
  const ClassifiedVoxel* p = base + i0 * step;
  bool cur_opaque = false;
  uint32_t cur_len = 0;
  for (size_t i = i0; i < i1; ++i, p += step) {
    const ClassifiedVoxel& cv = *p;
    const bool opaque = !cv.transparent(threshold);
    if (i == i0) {
      frag.first_opaque = opaque;
      cur_opaque = opaque;
    } else if (opaque != cur_opaque) {
      out.runs.push_back(static_cast<uint16_t>(cur_len));
      ++frag.run_count;
      cur_opaque = opaque;
      cur_len = 0;
    }
    ++cur_len;
    if (opaque) {
      out.voxels.push_back(cv);
      ++frag.voxel_count;
    }
  }
  out.runs.push_back(static_cast<uint16_t>(cur_len));
  ++frag.run_count;
  out.fragments.push_back(frag);
}

constexpr size_t kLanes = 16;  // 16 x 4-byte voxels = one cache line per fetch

// The two strided axis orderings walk scanlines whose starting addresses are
// CONTIGUOUS in memory, `kLanes` at a time ("lanes"): one cache-line fetch
// of p[0..15] feeds every lane where the scalar walk paid a miss per voxel.
// This copies `tn` lanes of an i-strided walk into contiguous per-lane
// buffers (lane t at dst + t*dst_stride); the branchy run-building then
// streams over warm unit-stride memory instead of the cold strided source.
void gather_lanes(const ClassifiedVoxel* base, size_t step_i, size_t n, size_t tn,
                  ClassifiedVoxel* dst, size_t dst_stride) {
  const ClassifiedVoxel* p = base;
  size_t i = 0;
#if defined(PSW_SIMD_BACKEND_SSE2)
  // Full 16-lane tiles transpose in registers, 4 i-rows x 4 lanes at a
  // time: the per-lane writes become contiguous 16-byte stores instead of
  // 16 interleaved 4-byte streams (which overwhelm the core's fill
  // buffers). shufps/unpcklps only move bits, so the copy is exact.
  if (tn == kLanes) {
    for (; i + 4 <= n; i += 4, p += 4 * step_i) {
      const float* r0 = reinterpret_cast<const float*>(p);
      const float* r1 = reinterpret_cast<const float*>(p + step_i);
      const float* r2 = reinterpret_cast<const float*>(p + 2 * step_i);
      const float* r3 = reinterpret_cast<const float*>(p + 3 * step_i);
      for (size_t g = 0; g < 4; ++g) {
        __m128 a = _mm_loadu_ps(r0 + 4 * g);
        __m128 b = _mm_loadu_ps(r1 + 4 * g);
        __m128 c = _mm_loadu_ps(r2 + 4 * g);
        __m128 d = _mm_loadu_ps(r3 + 4 * g);
        _MM_TRANSPOSE4_PS(a, b, c, d);
        float* o = reinterpret_cast<float*>(dst + i) + 4 * g * dst_stride;
        _mm_storeu_ps(o, a);
        _mm_storeu_ps(o + dst_stride, b);
        _mm_storeu_ps(o + 2 * dst_stride, c);
        _mm_storeu_ps(o + 3 * dst_stride, d);
      }
    }
  }
#endif
  for (; i < n; ++i, p += step_i) {
    ClassifiedVoxel* d = dst + i;
    for (size_t t = 0; t < tn; ++t, d += dst_stride) *d = p[t];
  }
}

// Tiled encoder for the axis ordering whose j axis is the unit-stride
// object axis: scanlines (k, j0..j0+tn) are lanes. A tile's gather buffer
// is kLanes scanlines (L1-resident), encoded in j order right away.
void encode_jtile(const ClassifiedVoxel* data, size_t step_i, size_t step_k, size_t ni,
                  size_t k, size_t jlo, size_t jhi, uint8_t threshold,
                  ClassifiedVoxel* buf, RleVolume::Chunk& out) {
  for (size_t j0 = jlo; j0 < jhi; j0 += kLanes) {
    const size_t tn = std::min(kLanes, jhi - j0);
    gather_lanes(data + k * step_k + j0, step_i, ni, tn, buf, ni);
    for (size_t t = 0; t < tn; ++t) {
      encode_piece(buf + t * ni, 1, 0, ni, threshold, out);
    }
  }
}

// Tiled encoder for the axis ordering whose k axis is the unit-stride
// object axis. Lanes are k values, but scanline order puts ALL of a k's
// scanlines before the next k, so a tile gathers kLanes whole k-slices
// (lane t's slice contiguous at buf + t*ni*nj) before encoding slice by
// slice. Only fully covered ks tile; callers feed partial edge ks to the
// scalar path.
void encode_ktile(const ClassifiedVoxel* data, size_t step_i, size_t step_j, size_t ni,
                  size_t nj, size_t klo, size_t khi, uint8_t threshold,
                  ClassifiedVoxel* buf, RleVolume::Chunk& out) {
  const size_t slice = ni * nj;
  for (size_t k0 = klo; k0 < khi; k0 += kLanes) {
    const size_t tn = std::min(kLanes, khi - k0);
    for (size_t j = 0; j < nj; ++j) {
      gather_lanes(data + j * step_j + k0, step_i, ni, tn, buf + j * ni, slice);
    }
    for (size_t t = 0; t < tn; ++t) {
      for (size_t j = 0; j < nj; ++j) {
        encode_piece(buf + t * slice + j * ni, 1, 0, ni, threshold, out);
      }
    }
  }
}

}  // namespace

RleVolume::Chunk RleVolume::encode_chunk(const ClassifiedVolume& vol, int principal_axis,
                                         uint8_t alpha_threshold, size_t begin,
                                         size_t end) {
  Chunk out;
  std::vector<ClassifiedVoxel> lane_buf;
  encode_chunk_into(vol, principal_axis, alpha_threshold, begin, end, &out, &lane_buf);
  return out;
}

void RleVolume::encode_chunk_into(const ClassifiedVolume& vol, int principal_axis,
                                  uint8_t alpha_threshold, size_t begin, size_t end,
                                  Chunk* outp, std::vector<ClassifiedVoxel>* lane_buf) {
  const AxisPermutation perm = AxisPermutation::for_principal_axis(principal_axis);
  const size_t ni = static_cast<size_t>(vol.dim(perm.axis_i));
  const size_t nj = static_cast<size_t>(vol.dim(perm.axis_j));

  // Object-space strides of the permuted axes (x fastest, then y, then z):
  // walking i/j/k in permuted space steps the dense array by these, reading
  // exactly the voxels encode() visits, without a per-voxel index rebuild.
  const size_t stride[3] = {1, static_cast<size_t>(vol.nx()),
                            static_cast<size_t>(vol.nx()) * vol.ny()};
  const size_t step_i = stride[perm.axis_i];
  const size_t step_j = stride[perm.axis_j];
  const size_t step_k = stride[perm.axis_k];

  Chunk& out = *outp;
  out.runs.clear();
  out.voxels.clear();
  out.fragments.clear();
  out.begin = begin;
  out.end = end;
  if (begin >= end || ni == 0) return;
  const ClassifiedVoxel* data = vol.data();
  const auto scanline_base = [&](size_t s) {
    return data + (s / nj) * step_k + (s % nj) * step_j;
  };

  size_t v = begin;
  // Head: partial leading scanline (a chunk boundary mid-scanline).
  if (v % ni != 0) {
    const size_t i0 = v % ni;
    const size_t i1 = std::min(ni, i0 + (end - v));
    encode_piece(scanline_base(v / ni), step_i, i0, i1, alpha_threshold, out);
    v += i1 - i0;
  }
  // Middle: the run of complete scanlines, encoded with the cache layout
  // each axis ordering calls for.
  const size_t full_end = end - end % ni;
  if (v < full_end) {
    const size_t s0 = v / ni;
    const size_t s1 = full_end / ni;
    if (step_i == 1) {
      // Scanlines are contiguous in memory: the scalar walk streams.
      for (size_t s = s0; s < s1; ++s) {
        encode_piece(scanline_base(s), 1, 0, ni, alpha_threshold, out);
      }
    } else if (step_j == 1) {
      if (lane_buf->size() < kLanes * ni) lane_buf->resize(kLanes * ni);
      const size_t k_first = s0 / nj, k_last = (s1 - 1) / nj;
      for (size_t k = k_first; k <= k_last; ++k) {
        const size_t jlo = k == k_first ? s0 % nj : 0;
        const size_t jhi = k == k_last ? (s1 - 1) % nj + 1 : nj;
        encode_jtile(data, step_i, step_k, ni, k, jlo, jhi, alpha_threshold,
                     lane_buf->data(), out);
      }
    } else {
      // step_k == 1: only fully covered ks tile; the partial first/last k
      // fall back to the scalar walk (at most two per chunk).
      if (lane_buf->size() < kLanes * ni * nj) lane_buf->resize(kLanes * ni * nj);
      const size_t k_first = s0 / nj, k_last = (s1 - 1) / nj;
      size_t klo = k_first, khi = k_last + 1;
      if (s0 % nj != 0) {  // leading partial k
        const size_t jhi = k_first == k_last ? (s1 - 1) % nj + 1 : nj;
        for (size_t j = s0 % nj; j < jhi; ++j) {
          encode_piece(data + j * step_j + k_first, step_i, 0, ni, alpha_threshold, out);
        }
        klo = k_first + 1;
      }
      const bool trailing_partial = s1 % nj != 0 && khi > klo;
      if (trailing_partial) --khi;
      if (klo < khi) {
        encode_ktile(data, step_i, step_j, ni, nj, klo, khi, alpha_threshold,
                     lane_buf->data(), out);
      }
      if (trailing_partial) {
        for (size_t j = 0; j < s1 % nj; ++j) {
          encode_piece(data + j * step_j + k_last, step_i, 0, ni, alpha_threshold, out);
        }
      }
    }
    v = full_end;
  }
  // Tail: partial trailing scanline.
  if (v < end) {
    encode_piece(scanline_base(v / ni), step_i, 0, end - v, alpha_threshold, out);
  }
}

RleVolume RleVolume::stitch(const ClassifiedVolume& vol, int principal_axis,
                            uint8_t alpha_threshold, const std::vector<Chunk>& chunks) {
  return stitch(vol, principal_axis, alpha_threshold, chunks.data(), chunks.size());
}

RleVolume RleVolume::stitch(const ClassifiedVolume& vol, int principal_axis,
                            uint8_t alpha_threshold, const Chunk* chunks, size_t count) {
  RleVolume r;
  r.axis_ = principal_axis;
  r.perm_ = AxisPermutation::for_principal_axis(principal_axis);
  r.alpha_threshold_ = alpha_threshold;
  r.ni_ = vol.dim(r.perm_.axis_i);
  r.nj_ = vol.dim(r.perm_.axis_j);
  r.nk_ = vol.dim(r.perm_.axis_k);

  const size_t scanlines = static_cast<size_t>(r.nk_) * r.nj_;
  r.run_offset_.reserve(scanlines + 1);
  r.voxel_offset_.reserve(scanlines + 1);
  r.run_offset_.push_back(0);
  r.voxel_offset_.push_back(0);

  if (r.ni_ == 0) {
    // Degenerate scanlines still carry their conventional (empty)
    // transparent run each, as the per-scanline encoder produced.
    for (size_t s = 0; s < scanlines; ++s) {
      r.runs_.push_back(0);
      r.run_offset_.push_back(r.runs_.size());
      r.voxel_offset_.push_back(0);
    }
    return r;
  }

  size_t total_runs = 0, total_voxels = 0;
  for (size_t ci = 0; ci < count; ++ci) {
    total_runs += chunks[ci].runs.size();
    total_voxels += chunks[ci].voxels.size();
  }
  r.runs_.reserve(total_runs + scanlines);  // + possible leading zero runs
  r.voxels_.reserve(total_voxels);

  bool line_open = false;
  bool last_opaque = false;  // class of the last appended run of the open line
  for (size_t ci = 0; ci < count; ++ci) {
    const Chunk& c = chunks[ci];
    size_t run_pos = 0, vox_pos = 0;
    const bool continues_line = (c.begin % static_cast<size_t>(r.ni_)) != 0;
    for (size_t f = 0; f < c.fragments.size(); ++f) {
      const Chunk::Fragment& fr = c.fragments[f];
      const auto runs_begin = c.runs.begin() + static_cast<ptrdiff_t>(run_pos);
      if (f == 0 && continues_line) {
        // Seam: the fragment continues the open scanline. A run spanning
        // the seam (same class on both sides) must merge to reproduce the
        // single-pass encoding exactly.
        if (fr.first_opaque == last_opaque) {
          r.runs_.back() = static_cast<uint16_t>(r.runs_.back() + c.runs[run_pos]);
          r.runs_.insert(r.runs_.end(), runs_begin + 1,
                         runs_begin + static_cast<ptrdiff_t>(fr.run_count));
        } else {
          r.runs_.insert(r.runs_.end(), runs_begin,
                         runs_begin + static_cast<ptrdiff_t>(fr.run_count));
        }
      } else {
        if (line_open) {
          r.run_offset_.push_back(r.runs_.size());
          r.voxel_offset_.push_back(r.voxels_.size());
        }
        line_open = true;
        // By convention a scanline's first run is transparent (possibly
        // zero-length).
        if (fr.first_opaque) r.runs_.push_back(0);
        r.runs_.insert(r.runs_.end(), runs_begin,
                       runs_begin + static_cast<ptrdiff_t>(fr.run_count));
      }
      last_opaque = (fr.run_count % 2 == 1) ? fr.first_opaque : !fr.first_opaque;
      const auto vox_begin = c.voxels.begin() + static_cast<ptrdiff_t>(vox_pos);
      r.voxels_.insert(r.voxels_.end(), vox_begin,
                       vox_begin + static_cast<ptrdiff_t>(fr.voxel_count));
      run_pos += fr.run_count;
      vox_pos += fr.voxel_count;
    }
  }
  if (line_open) {
    r.run_offset_.push_back(r.runs_.size());
    r.voxel_offset_.push_back(r.voxels_.size());
  }
  return r;
}

RleVolume RleVolume::encode(const ClassifiedVolume& vol, int principal_axis,
                            uint8_t alpha_threshold) {
  const AxisPermutation perm = AxisPermutation::for_principal_axis(principal_axis);
  const size_t total = static_cast<size_t>(vol.dim(perm.axis_i)) *
                       vol.dim(perm.axis_j) * vol.dim(perm.axis_k);
  std::vector<Chunk> chunks;
  if (total > 0) {
    chunks.push_back(encode_chunk(vol, principal_axis, alpha_threshold, 0, total));
  }
  return stitch(vol, principal_axis, alpha_threshold, chunks);
}

bool RleVolume::identical(const RleVolume& o) const {
  return ni_ == o.ni_ && nj_ == o.nj_ && nk_ == o.nk_ && axis_ == o.axis_ &&
         alpha_threshold_ == o.alpha_threshold_ && runs_ == o.runs_ &&
         run_offset_ == o.run_offset_ && voxel_offset_ == o.voxel_offset_ &&
         voxels_.size() == o.voxels_.size() &&
         (voxels_.empty() ||
          std::memcmp(voxels_.data(), o.voxels_.data(),
                      voxels_.size() * sizeof(ClassifiedVoxel)) == 0);
}

uint64_t RleVolume::content_hash() const {
  uint64_t h = kFnvBasis;
  const int32_t dims[5] = {ni_, nj_, nk_, axis_, alpha_threshold_};
  h = fnv1a(h, dims, sizeof(dims));
  h = fnv1a(h, runs_.data(), runs_.size() * sizeof(uint16_t));
  h = fnv1a(h, voxels_.data(), voxels_.size() * sizeof(ClassifiedVoxel));
  h = fnv1a(h, run_offset_.data(), run_offset_.size() * sizeof(uint64_t));
  h = fnv1a(h, voxel_offset_.data(), voxel_offset_.size() * sizeof(uint64_t));
  return h;
}

size_t RleVolume::storage_bytes() const {
  return runs_.size() * sizeof(uint16_t) + voxels_.size() * sizeof(ClassifiedVoxel) +
         (run_offset_.size() + voxel_offset_.size()) * sizeof(uint64_t);
}

void RleVolume::decode_scanline(int k, int j, ClassifiedVoxel* out) const {
  std::fill(out, out + ni_, ClassifiedVoxel{});
  SegmentCursor cur(*this, k, j);
  VoxelSegment seg;
  while (cur.next(&seg)) {
    std::memcpy(out + seg.start, seg.vox,
                sizeof(ClassifiedVoxel) * (seg.end - seg.start));
  }
}

SegmentCursor::SegmentCursor(const RleVolume& vol, int k, int j) {
  if (j < 0 || j >= vol.nj() || k < 0 || k >= vol.nk()) return;  // no segments
  if (vol.scanline_empty(k, j)) return;
  runs_ = vol.runs_at(k, j);
  num_runs_ = vol.runs_in_scanline(k, j);
  vox_ = vol.voxels_at(k, j);
}

bool SegmentCursor::next(VoxelSegment* out) {
  while (idx_ < num_runs_) {
    const int len = runs_[idx_];
    const int start = pos_;
    const bool opaque = opaque_;
    pos_ += len;
    opaque_ = !opaque_;
    ++idx_;
    if (opaque && len > 0) {
      out->start = start;
      out->end = start + len;
      out->vox = vox_;
      vox_ += len;
      return true;
    }
  }
  return false;
}

EncodedVolume EncodedVolume::build(const ClassifiedVolume& vol, uint8_t alpha_threshold) {
  EncodedVolume e;
  e.alpha_threshold_ = alpha_threshold;
  e.dims_ = {vol.nx(), vol.ny(), vol.nz()};
  for (int c = 0; c < 3; ++c) e.rle_[c] = RleVolume::encode(vol, c, alpha_threshold);
  return e;
}

EncodedVolume EncodedVolume::from_axes(std::array<RleVolume, 3> rle,
                                       std::array<int, 3> dims, uint8_t alpha_threshold) {
  EncodedVolume e;
  e.alpha_threshold_ = alpha_threshold;
  e.dims_ = dims;
  e.rle_ = std::move(rle);
  return e;
}

uint64_t EncodedVolume::content_hash() const {
  uint64_t h = kFnvBasis;
  const int32_t dims[4] = {dims_[0], dims_[1], dims_[2], alpha_threshold_};
  h = fnv1a(h, dims, sizeof(dims));
  for (int c = 0; c < 3; ++c) {
    const uint64_t hc = rle_[c].content_hash();
    h = fnv1a(h, &hc, sizeof(hc));
  }
  return h;
}

}  // namespace psw
