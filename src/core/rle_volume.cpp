#include "core/rle_volume.hpp"

#include <algorithm>
#include <cstring>

namespace psw {

RleVolume RleVolume::encode(const ClassifiedVolume& vol, int principal_axis,
                            uint8_t alpha_threshold) {
  RleVolume r;
  r.axis_ = principal_axis;
  r.perm_ = AxisPermutation::for_principal_axis(principal_axis);
  r.alpha_threshold_ = alpha_threshold;
  r.ni_ = vol.dim(r.perm_.axis_i);
  r.nj_ = vol.dim(r.perm_.axis_j);
  r.nk_ = vol.dim(r.perm_.axis_k);

  const size_t scanlines = static_cast<size_t>(r.nk_) * r.nj_;
  r.run_offset_.reserve(scanlines + 1);
  r.voxel_offset_.reserve(scanlines + 1);
  r.run_offset_.push_back(0);
  r.voxel_offset_.push_back(0);

  for (int k = 0; k < r.nk_; ++k) {
    for (int j = 0; j < r.nj_; ++j) {
      // Encode one scanline: alternating runs starting transparent.
      bool cur_opaque = false;  // by convention the first run is transparent
      int cur_len = 0;
      for (int i = 0; i < r.ni_; ++i) {
        const auto obj = r.perm_.to_object(i, j, k);
        const ClassifiedVoxel& cv = vol.at(obj[0], obj[1], obj[2]);
        const bool opaque = !cv.transparent(alpha_threshold);
        if (opaque != cur_opaque) {
          r.runs_.push_back(static_cast<uint16_t>(cur_len));
          cur_opaque = opaque;
          cur_len = 0;
        }
        ++cur_len;
        if (opaque) r.voxels_.push_back(cv);
      }
      r.runs_.push_back(static_cast<uint16_t>(cur_len));
      r.run_offset_.push_back(r.runs_.size());
      r.voxel_offset_.push_back(r.voxels_.size());
    }
  }
  return r;
}

size_t RleVolume::storage_bytes() const {
  return runs_.size() * sizeof(uint16_t) + voxels_.size() * sizeof(ClassifiedVoxel) +
         (run_offset_.size() + voxel_offset_.size()) * sizeof(uint64_t);
}

void RleVolume::decode_scanline(int k, int j, ClassifiedVoxel* out) const {
  std::fill(out, out + ni_, ClassifiedVoxel{});
  SegmentCursor cur(*this, k, j);
  VoxelSegment seg;
  while (cur.next(&seg)) {
    std::memcpy(out + seg.start, seg.vox,
                sizeof(ClassifiedVoxel) * (seg.end - seg.start));
  }
}

SegmentCursor::SegmentCursor(const RleVolume& vol, int k, int j) {
  if (j < 0 || j >= vol.nj() || k < 0 || k >= vol.nk()) return;  // no segments
  if (vol.scanline_empty(k, j)) return;
  runs_ = vol.runs_at(k, j);
  num_runs_ = vol.runs_in_scanline(k, j);
  vox_ = vol.voxels_at(k, j);
}

bool SegmentCursor::next(VoxelSegment* out) {
  while (idx_ < num_runs_) {
    const int len = runs_[idx_];
    const int start = pos_;
    const bool opaque = opaque_;
    pos_ += len;
    opaque_ = !opaque_;
    ++idx_;
    if (opaque && len > 0) {
      out->start = start;
      out->end = start + len;
      out->vox = vox_;
      vox_ += len;
      return true;
    }
  }
  return false;
}

EncodedVolume EncodedVolume::build(const ClassifiedVolume& vol, uint8_t alpha_threshold) {
  EncodedVolume e;
  e.alpha_threshold_ = alpha_threshold;
  e.dims_ = {vol.nx(), vol.ny(), vol.nz()};
  for (int c = 0; c < 3; ++c) e.rle_[c] = RleVolume::encode(vol, c, alpha_threshold);
  return e;
}

}  // namespace psw
