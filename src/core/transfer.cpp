#include "core/transfer.hpp"

#include <algorithm>
#include <cmath>

namespace psw {

Ramp::Ramp(std::initializer_list<std::pair<int, float>> points) : points_(points) {
  if (points_.empty()) points_.push_back({0, 0.0f});
}

float Ramp::operator()(float density) const {
  if (density <= points_.front().first) return points_.front().second;
  if (density >= points_.back().first) return points_.back().second;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (density <= points_[i].first) {
      const float d0 = static_cast<float>(points_[i - 1].first);
      const float d1 = static_cast<float>(points_[i].first);
      const float t = (d1 > d0) ? (density - d0) / (d1 - d0) : 0.0f;
      return points_[i - 1].second + t * (points_[i].second - points_[i - 1].second);
    }
  }
  return points_.back().second;
}

TransferFunction::TransferFunction()
    : colors_{Vec3{1, 1, 1}, Vec3{1, 1, 1}, Vec3{1, 1, 1}, Vec3{1, 1, 1}},
      stops_{0, 85, 170, 255} {}

void TransferFunction::set_color_map(std::array<Vec3, 4> colors, std::array<int, 4> stops) {
  colors_ = colors;
  stops_ = stops;
}

float TransferFunction::opacity(float density, float gradient_mag) const {
  float a = opacity_(density);
  if (use_gradient_) a *= gradient_(gradient_mag * 255.0f);
  return std::clamp(a, 0.0f, 1.0f);
}

uint8_t TransferFunction::max_quantized_opacity(uint8_t density) const {
  if (use_gradient_) return 255;
  // Mirrors the classifier's quantization expression exactly: without
  // modulation opacity() ignores the gradient argument.
  const float a = opacity(static_cast<float>(density), 0.0f);
  return static_cast<uint8_t>(std::lround(std::clamp(a, 0.0f, 1.0f) * 255.0f));
}

Vec3 TransferFunction::color(float density) const {
  if (density <= stops_.front()) return colors_.front();
  if (density >= stops_.back()) return colors_.back();
  for (size_t i = 1; i < stops_.size(); ++i) {
    if (density <= stops_[i]) {
      const double t = (stops_[i] > stops_[i - 1])
                           ? (density - stops_[i - 1]) /
                                 static_cast<double>(stops_[i] - stops_[i - 1])
                           : 0.0;
      return colors_[i - 1] + t * (colors_[i] - colors_[i - 1]);
    }
  }
  return colors_.back();
}

TransferFunction TransferFunction::mri_preset() {
  TransferFunction tf;
  // CSF (~40) transparent, gray matter (~110) translucent, white matter
  // (~170) fairly opaque. Background and skin mostly transparent, which
  // yields the 70-95% transparent-voxel fraction the paper relies on.
  tf.set_opacity_ramp(Ramp{{0, 0.0f}, {70, 0.0f}, {100, 0.25f}, {130, 0.45f},
                           {160, 0.75f}, {200, 0.95f}, {255, 1.0f}});
  tf.set_color_map({Vec3{0.25, 0.22, 0.20}, Vec3{0.65, 0.55, 0.45},
                    Vec3{0.85, 0.78, 0.70}, Vec3{1.0, 0.97, 0.92}},
                   {0, 100, 170, 255});
  return tf;
}

TransferFunction TransferFunction::ct_preset() {
  TransferFunction tf;
  // Soft tissue translucent, bone opaque.
  tf.set_opacity_ramp(Ramp{{0, 0.0f}, {60, 0.0f}, {95, 0.12f}, {150, 0.2f},
                           {210, 0.9f}, {255, 1.0f}});
  tf.set_color_map({Vec3{0.3, 0.15, 0.1}, Vec3{0.8, 0.5, 0.4},
                    Vec3{0.95, 0.9, 0.8}, Vec3{1.0, 1.0, 0.98}},
                   {0, 90, 200, 255});
  return tf;
}

TransferFunction TransferFunction::threshold_preset(uint8_t threshold, float alpha) {
  TransferFunction tf;
  const int t = threshold;
  tf.set_opacity_ramp(Ramp{{0, 0.0f}, {std::max(0, t - 1), 0.0f}, {t, alpha}, {255, alpha}});
  return tf;
}

}  // namespace psw
