#include "core/compositor.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

#include "util/simd.hpp"

namespace psw {

namespace {

// Per-slice resampling geometry: voxel i of the slice lands at
// u = i + offset; pixel u therefore resamples voxels i0 = u - base and
// i0 + 1 with weight `w` on the upper neighbour, where base = ceil(offset)
// and w = base - offset in [0, 1).
struct SliceGeom {
  int base;
  float w;

  static SliceGeom from_offset(double offset) {
    const int base = static_cast<int>(std::ceil(offset));
    return {base, static_cast<float>(base - offset)};
  }
};

// ---------------------------------------------------------------------------
// Per-pixel reference kernel, templated on the hook policy. The SimHook
// instantiation reproduces the historical reference stream access for
// access; the NullHook instantiation compiles the hook calls away.
// ---------------------------------------------------------------------------

template <bool kTraversalOnly, class Hook>
uint32_t composite_scanline_impl(const RleVolume& rle, const Factorization& f, int v,
                                 IntermediateImage& img, Hook hook,
                                 CompositeStats* stats) {
  uint32_t work = 0;
  const int width = img.width();
  const float inv255 = 1.0f / 255.0f;

  for (int t = 0; t < f.nk; ++t) {
    const int k = f.slice(t);
    const double off_u = f.offset_u(k);
    const double off_v = f.offset_v(k);

    // Which voxel scanlines feed intermediate scanline v in this slice.
    const SliceGeom gv = SliceGeom::from_offset(off_v);
    const int j0 = v - gv.base;  // lower voxel scanline; j0+1 is the upper
    if (j0 < -1 || j0 >= f.nj) continue;
    const float wv = gv.w;

    RunCursorT<Hook> c0(rle, k, j0, hook);
    RunCursorT<Hook> c1(rle, k, j0 + 1, hook);
    if ((c0.null() || c0.empty()) && (c1.null() || c1.empty())) continue;

    // Early scanline termination: if everything is already opaque, no
    // later slice can contribute either.
    if (img.fully_opaque_from(v, 0, hook)) break;

    const SliceGeom gu = SliceGeom::from_offset(off_u);
    const float wu = gu.w;
    const float w00 = (1.0f - wu) * (1.0f - wv);  // (i0,   j0)
    const float w10 = wu * (1.0f - wv);           // (i0+1, j0)
    const float w01 = (1.0f - wu) * wv;           // (i0,   j0+1)
    const float w11 = wu * wv;                    // (i0+1, j0+1)

    // Pixel range receiving any contribution: i_real = u - off_u in
    // (-1, ni).
    int u = std::max(0, static_cast<int>(std::floor(off_u - 1.0)) + 1);
    const int u_end =
        std::min(width, static_cast<int>(std::ceil(off_u + rle.ni())));

    ++work;
    if (stats) ++stats->slices_touched;

    while (u < u_end) {
      u = img.next_writable(v, u, hook);
      if (u >= u_end) break;
      const int i0 = u - gu.base;

      const ClassifiedVoxel* v00 = c0.at(i0);
      const ClassifiedVoxel* v10 = c0.at(i0 + 1);
      const ClassifiedVoxel* v01 = c1.at(i0);
      const ClassifiedVoxel* v11 = c1.at(i0 + 1);

      if (!v00 && !v10 && !v01 && !v11) {
        // Skip to the next pixel whose 2x2 footprint can contain a
        // non-transparent voxel.
        const int m = std::min(c0.next_nontransparent(i0 + 2),
                               c1.next_nontransparent(i0 + 2));
        if (m >= rle.ni()) break;  // nothing further in this slice
        u = std::max(u + 1, m - 1 + gu.base);
        continue;
      }

      if constexpr (!kTraversalOnly) {
        // Opacity-weighted (premultiplied) bilinear resampling, in a fixed
        // term order so the dense reference renderer is bit-identical.
        float sa = 0.0f, sr = 0.0f, sg = 0.0f, sb = 0.0f;
        auto accumulate = [&](const ClassifiedVoxel* cv, float w) {
          if (!cv) return;
          const float a = w * (cv->a * inv255);
          sa += a;
          sr += a * (cv->r * inv255);
          sg += a * (cv->g * inv255);
          sb += a * (cv->b * inv255);
          ++work;
          if (stats) ++stats->voxels_composited;
        };
        accumulate(v00, w00);
        accumulate(v10, w10);
        accumulate(v01, w01);
        accumulate(v11, w11);

        Rgba& px = img.pixel(u, v);
        hook.read(&px, sizeof(Rgba));
        const float transmit = 1.0f - px.a;
        px.r += transmit * sr;
        px.g += transmit * sg;
        px.b += transmit * sb;
        px.a += transmit * sa;
        hook.write(&px, sizeof(Rgba));
        ++work;
        if (stats) ++stats->pixels_visited;

        if (px.a >= IntermediateImage::kOpaqueAlpha) img.mark_opaque(u, v, hook);
      } else {
        // Touch the voxel pointers so the traversal cost is realistic but
        // do no compositing arithmetic.
        work += (v00 != nullptr) + (v10 != nullptr) + (v01 != nullptr) +
                (v11 != nullptr) + 1;
        if (stats) ++stats->pixels_visited;
      }
      ++u;
    }
  }
  if (stats) ++stats->scanlines;
  return work;
}

// ---------------------------------------------------------------------------
// Segment-batched SIMD fast path. Traversal is restructured around the
// maximal non-transparent segments of the two source scanlines: within a
// stretch where the 2x2 tap pattern is constant, the inner loop over the
// image's writable runs is branch-free — four stride-0/1 voxel pointers
// (inactive taps read a shared zero voxel, contributing exactly +0.0f to
// every sum, which leaves non-negative float accumulators bit-unchanged)
// and a fixed-order 4-tap accumulation, so pixels, stats and work counts
// are bit-identical to the reference kernel.
// ---------------------------------------------------------------------------

constexpr ClassifiedVoxel kZeroVoxel{};

// S += (w * a_n) * (r_n, g_n, b_n, 1) for one resampling tap, matching the
// reference kernel's term order exactly.
inline simd::f32x4 tap(simd::f32x4 S, const ClassifiedVoxel* p, simd::f32x4 w,
                       simd::f32x4 inv255) {
  const simd::f32x4 argb = simd::mul(simd::from_u8x4(&p->a), inv255);
  const simd::f32x4 aw = simd::mul(w, simd::broadcast0(argb));
  return simd::add(S, simd::mul(aw, simd::rgb1_from_argb(argb)));
}

}  // namespace

uint32_t composite_scanline_segmented(const RleVolume& rle, const Factorization& f,
                                      int v, IntermediateImage& img,
                                      CompositeStats* stats) {
  uint32_t work = 0;
  const int width = img.width();
  const simd::f32x4 inv255 = simd::set1(1.0f / 255.0f);
  static_assert(sizeof(Rgba) == 4 * sizeof(float));

  for (int t = 0; t < f.nk; ++t) {
    const int k = f.slice(t);
    const double off_u = f.offset_u(k);
    const double off_v = f.offset_v(k);

    const SliceGeom gv = SliceGeom::from_offset(off_v);
    const int j0 = v - gv.base;  // lower voxel scanline; j0+1 is the upper
    if (j0 < -1 || j0 >= f.nj) continue;
    const float wv = gv.w;

    SegmentCursor s0(rle, k, j0);
    SegmentCursor s1(rle, k, j0 + 1);
    VoxelSegment g0, g1;
    bool has0 = s0.next(&g0);
    bool has1 = s1.next(&g1);
    if (!has0 && !has1) continue;  // both scanlines empty or out of range

    if (img.fully_opaque_from(v, 0, NullHook{})) break;

    const SliceGeom gu = SliceGeom::from_offset(off_u);
    const int base = gu.base;
    const float wu = gu.w;
    const simd::f32x4 w00 = simd::set1((1.0f - wu) * (1.0f - wv));
    const simd::f32x4 w10 = simd::set1(wu * (1.0f - wv));
    const simd::f32x4 w01 = simd::set1((1.0f - wu) * wv);
    const simd::f32x4 w11 = simd::set1(wu * wv);

    int u = std::max(0, static_cast<int>(std::floor(off_u - 1.0)) + 1);
    const int u_end =
        std::min(width, static_cast<int>(std::ceil(off_u + rle.ni())));

    ++work;
    if (stats) ++stats->slices_touched;

    while (u < u_end) {
      const int i0 = u - base;
      // Drop segments entirely behind the current footprint.
      while (has0 && g0.end <= i0) has0 = s0.next(&g0);
      while (has1 && g1.end <= i0) has1 = s1.next(&g1);
      if (!has0 && !has1) break;  // nothing further in this slice

      // A segment [s, e) contributes to pixels with i0 in [s-1, e).
      int next_on = INT_MAX;
      if (has0) next_on = std::min(next_on, g0.start - 1);
      if (has1) next_on = std::min(next_on, g1.start - 1);
      if (i0 < next_on) {  // inside a fully-transparent gap: leap it
        u = next_on + base;
        continue;
      }

      // Maximal subinterval [i0, stop) over which the 2x2 tap-activeness
      // pattern is constant: clip at every point where a tap of either
      // scanline switches on or off.
      int stop = u_end - base;
      const auto clip = [&](int x) {
        if (x > i0 && x < stop) stop = x;
      };
      if (has0) {
        clip(g0.start - 1);
        clip(g0.start);
        clip(g0.end - 1);
        clip(g0.end);
      }
      if (has1) {
        clip(g1.start - 1);
        clip(g1.start);
        clip(g1.end - 1);
        clip(g1.end);
      }

      const bool a00 = has0 && i0 >= g0.start && i0 < g0.end;
      const bool a10 = has0 && i0 + 1 >= g0.start && i0 + 1 < g0.end;
      const bool a01 = has1 && i0 >= g1.start && i0 < g1.end;
      const bool a11 = has1 && i0 + 1 >= g1.start && i0 + 1 < g1.end;
      const int ntaps = static_cast<int>(a00) + a10 + a01 + a11;
      // Inactive taps read the shared zero voxel with stride 0.
      const ClassifiedVoxel* p00 = a00 ? g0.vox + (i0 - g0.start) : &kZeroVoxel;
      const ClassifiedVoxel* p10 = a10 ? g0.vox + (i0 + 1 - g0.start) : &kZeroVoxel;
      const ClassifiedVoxel* p01 = a01 ? g1.vox + (i0 - g1.start) : &kZeroVoxel;
      const ClassifiedVoxel* p11 = a11 ? g1.vox + (i0 + 1 - g1.start) : &kZeroVoxel;
      const int st00 = a00, st10 = a10, st01 = a01, st11 = a11;

      const int su = stop + base;  // pixel index where the subinterval ends
      while (u < su) {
        // One writable run of the image at a time; the run query is a
        // plain load per pixel, no link chasing.
        const int we = img.writable_run_end(v, u, su);
        if (stats) {
          stats->pixels_visited += we - u;
          stats->voxels_composited += static_cast<uint64_t>(ntaps) * (we - u);
        }
        work += static_cast<uint32_t>(ntaps + 1) * (we - u);
        for (; u < we; ++u) {
          simd::f32x4 S = simd::zero();
          S = tap(S, p00, w00, inv255);
          S = tap(S, p10, w10, inv255);
          S = tap(S, p01, w01, inv255);
          S = tap(S, p11, w11, inv255);
          Rgba& px = img.pixel(u, v);
          const float transmit = 1.0f - px.a;
          const simd::f32x4 out =
              simd::add(simd::loadu(&px.r), simd::mul(simd::set1(transmit), S));
          simd::storeu(&px.r, out);
          if (simd::lane3(out) >= IntermediateImage::kOpaqueAlpha) {
            img.mark_opaque(u, v, NullHook{});
          }
          p00 += st00;
          p10 += st10;
          p01 += st01;
          p11 += st11;
        }
        if (u >= su) break;
        // Leap the opaque run (path-compressing, like the reference
        // kernel) and realign the tap pointers.
        const int u2 = img.next_writable(v, u, NullHook{});
        // Clamp the realignment so tap pointers never step past their
        // segment (u2 may leap beyond the subinterval, which ends it).
        const int d = std::min(u2, su) - u;
        p00 += st00 * d;
        p10 += st10 * d;
        p01 += st01 * d;
        p11 += st11 * d;
        u = u2;
      }
    }
  }
  if (stats) ++stats->scanlines;
  return work;
}

uint32_t composite_scanline_reference(const RleVolume& rle, const Factorization& f,
                                      int v, IntermediateImage& img, MemoryHook* hook,
                                      CompositeStats* stats) {
  if (hook) return composite_scanline_impl<false>(rle, f, v, img, SimHook{hook}, stats);
  return composite_scanline_impl<false>(rle, f, v, img, NullHook{}, stats);
}

uint32_t composite_scanline(const RleVolume& rle, const Factorization& f, int v,
                            IntermediateImage& img, MemoryHook* hook,
                            CompositeStats* stats) {
  // Dispatch once per scanline call: the traced path must replay the
  // reference kernel's access stream; the hook-free path takes the fast
  // kernel (unless the build pins the reference kernel for A/B tests).
  if (hook) return composite_scanline_impl<false>(rle, f, v, img, SimHook{hook}, stats);
#ifdef PSW_REFERENCE_KERNEL
  return composite_scanline_impl<false>(rle, f, v, img, NullHook{}, stats);
#else
  return composite_scanline_segmented(rle, f, v, img, stats);
#endif
}

uint32_t composite_scanline_traversal_only(const RleVolume& rle, const Factorization& f,
                                           int v, IntermediateImage& img,
                                           MemoryHook* hook, CompositeStats* stats) {
  if (hook) return composite_scanline_impl<true>(rle, f, v, img, SimHook{hook}, stats);
  return composite_scanline_impl<true>(rle, f, v, img, NullHook{}, stats);
}

bool scanline_provably_empty(const RleVolume& rle, const Factorization& f, int v) {
  for (int t = 0; t < f.nk; ++t) {
    const int k = f.slice(t);
    const SliceGeom gv = SliceGeom::from_offset(f.offset_v(k));
    const int j0 = v - gv.base;
    if (j0 < -1 || j0 >= f.nj) continue;
    if (j0 >= 0 && !rle.scanline_empty(k, j0)) return false;
    if (j0 + 1 < f.nj && !rle.scanline_empty(k, j0 + 1)) return false;
  }
  return true;
}

CompositeStats composite_frame(const RleVolume& rle, const Factorization& f,
                               IntermediateImage& img, MemoryHook* hook) {
  CompositeStats stats;
  for (int v = 0; v < img.height(); ++v) {
    composite_scanline(rle, f, v, img, hook, &stats);
  }
  return stats;
}

}  // namespace psw
