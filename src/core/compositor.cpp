#include "core/compositor.hpp"

#include <algorithm>
#include <cmath>

namespace psw {

namespace {

// Per-slice resampling geometry: voxel i of the slice lands at
// u = i + offset; pixel u therefore resamples voxels i0 = u - base and
// i0 + 1 with weight `w` on the upper neighbour, where base = ceil(offset)
// and w = base - offset in [0, 1).
struct SliceGeom {
  int base;
  float w;

  static SliceGeom from_offset(double offset) {
    const int base = static_cast<int>(std::ceil(offset));
    return {base, static_cast<float>(base - offset)};
  }
};

}  // namespace

namespace {

template <bool kTraversalOnly>
uint32_t composite_scanline_impl(const RleVolume& rle, const Factorization& f, int v,
                                 IntermediateImage& img, MemoryHook* hook,
                                 CompositeStats* stats) {
  uint32_t work = 0;
  const int width = img.width();
  const float inv255 = 1.0f / 255.0f;

  for (int t = 0; t < f.nk; ++t) {
    const int k = f.slice(t);
    const double off_u = f.offset_u(k);
    const double off_v = f.offset_v(k);

    // Which voxel scanlines feed intermediate scanline v in this slice.
    const SliceGeom gv = SliceGeom::from_offset(off_v);
    const int j0 = v - gv.base;  // lower voxel scanline; j0+1 is the upper
    if (j0 < -1 || j0 >= f.nj) continue;
    const float wv = gv.w;

    RunCursor c0(rle, k, j0, hook);
    RunCursor c1(rle, k, j0 + 1, hook);
    if ((c0.null() || c0.empty()) && (c1.null() || c1.empty())) continue;

    // Early scanline termination: if everything is already opaque, no
    // later slice can contribute either.
    if (img.fully_opaque_from(v, 0, hook)) break;

    const SliceGeom gu = SliceGeom::from_offset(off_u);
    const float wu = gu.w;
    const float w00 = (1.0f - wu) * (1.0f - wv);  // (i0,   j0)
    const float w10 = wu * (1.0f - wv);           // (i0+1, j0)
    const float w01 = (1.0f - wu) * wv;           // (i0,   j0+1)
    const float w11 = wu * wv;                    // (i0+1, j0+1)

    // Pixel range receiving any contribution: i_real = u - off_u in
    // (-1, ni).
    int u = std::max(0, static_cast<int>(std::floor(off_u - 1.0)) + 1);
    const int u_end =
        std::min(width, static_cast<int>(std::ceil(off_u + rle.ni())));

    ++work;
    if (stats) ++stats->slices_touched;

    while (u < u_end) {
      u = img.next_writable(v, u, hook);
      if (u >= u_end) break;
      const int i0 = u - gu.base;

      const ClassifiedVoxel* v00 = c0.at(i0);
      const ClassifiedVoxel* v10 = c0.at(i0 + 1);
      const ClassifiedVoxel* v01 = c1.at(i0);
      const ClassifiedVoxel* v11 = c1.at(i0 + 1);

      if (!v00 && !v10 && !v01 && !v11) {
        // Skip to the next pixel whose 2x2 footprint can contain a
        // non-transparent voxel.
        const int m = std::min(c0.next_nontransparent(i0 + 2),
                               c1.next_nontransparent(i0 + 2));
        if (m >= rle.ni()) break;  // nothing further in this slice
        u = std::max(u + 1, m - 1 + gu.base);
        continue;
      }

      if constexpr (!kTraversalOnly) {
        // Opacity-weighted (premultiplied) bilinear resampling, in a fixed
        // term order so the dense reference renderer is bit-identical.
        float sa = 0.0f, sr = 0.0f, sg = 0.0f, sb = 0.0f;
        auto accumulate = [&](const ClassifiedVoxel* cv, float w) {
          if (!cv) return;
          const float a = w * (cv->a * inv255);
          sa += a;
          sr += a * (cv->r * inv255);
          sg += a * (cv->g * inv255);
          sb += a * (cv->b * inv255);
          ++work;
          if (stats) ++stats->voxels_composited;
        };
        accumulate(v00, w00);
        accumulate(v10, w10);
        accumulate(v01, w01);
        accumulate(v11, w11);

        Rgba& px = img.pixel(u, v);
        hook_read(hook, &px, sizeof(Rgba));
        const float transmit = 1.0f - px.a;
        px.r += transmit * sr;
        px.g += transmit * sg;
        px.b += transmit * sb;
        px.a += transmit * sa;
        hook_write(hook, &px, sizeof(Rgba));
        ++work;
        if (stats) ++stats->pixels_visited;

        if (px.a >= IntermediateImage::kOpaqueAlpha) img.mark_opaque(u, v, hook);
      } else {
        // Touch the voxel pointers so the traversal cost is realistic but
        // do no compositing arithmetic.
        work += (v00 != nullptr) + (v10 != nullptr) + (v01 != nullptr) +
                (v11 != nullptr) + 1;
        if (stats) ++stats->pixels_visited;
      }
      ++u;
    }
  }
  if (stats) ++stats->scanlines;
  return work;
}

}  // namespace

uint32_t composite_scanline(const RleVolume& rle, const Factorization& f, int v,
                            IntermediateImage& img, MemoryHook* hook,
                            CompositeStats* stats) {
  return composite_scanline_impl<false>(rle, f, v, img, hook, stats);
}

uint32_t composite_scanline_traversal_only(const RleVolume& rle, const Factorization& f,
                                           int v, IntermediateImage& img,
                                           MemoryHook* hook, CompositeStats* stats) {
  return composite_scanline_impl<true>(rle, f, v, img, hook, stats);
}

bool scanline_provably_empty(const RleVolume& rle, const Factorization& f, int v) {
  for (int t = 0; t < f.nk; ++t) {
    const int k = f.slice(t);
    const SliceGeom gv = SliceGeom::from_offset(f.offset_v(k));
    const int j0 = v - gv.base;
    if (j0 < -1 || j0 >= f.nj) continue;
    if (j0 >= 0 && !rle.scanline_empty(k, j0)) return false;
    if (j0 + 1 < f.nj && !rle.scanline_empty(k, j0 + 1)) return false;
  }
  return true;
}

CompositeStats composite_frame(const RleVolume& rle, const Factorization& f,
                               IntermediateImage& img, MemoryHook* hook) {
  CompositeStats stats;
  for (int v = 0; v < img.height(); ++v) {
    composite_scanline(rle, f, v, img, hook, &stats);
  }
  return stats;
}

}  // namespace psw
