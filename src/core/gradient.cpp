#include "core/gradient.hpp"

namespace psw {

Vec3 gradient_at(const DensityVolume& v, int x, int y, int z) {
  const double gx = 0.5 * (v.at_clamped(x + 1, y, z) - v.at_clamped(x - 1, y, z));
  const double gy = 0.5 * (v.at_clamped(x, y + 1, z) - v.at_clamped(x, y - 1, z));
  const double gz = 0.5 * (v.at_clamped(x, y, z + 1) - v.at_clamped(x, y, z - 1));
  return {gx, gy, gz};
}

float gradient_magnitude(const DensityVolume& v, int x, int y, int z) {
  return gradient_magnitude_from(gradient_at(v, x, y, z));
}

Vec3 surface_normal(const DensityVolume& v, int x, int y, int z) {
  return surface_normal_from(gradient_at(v, x, y, z));
}

}  // namespace psw
