#include "core/gradient.hpp"

#include <cmath>

namespace psw {

Vec3 gradient_at(const DensityVolume& v, int x, int y, int z) {
  const double gx = 0.5 * (v.at_clamped(x + 1, y, z) - v.at_clamped(x - 1, y, z));
  const double gy = 0.5 * (v.at_clamped(x, y + 1, z) - v.at_clamped(x, y - 1, z));
  const double gz = 0.5 * (v.at_clamped(x, y, z + 1) - v.at_clamped(x, y, z - 1));
  return {gx, gy, gz};
}

float gradient_magnitude(const DensityVolume& v, int x, int y, int z) {
  // Max per-axis central difference is 127.5; max magnitude sqrt(3)*127.5.
  constexpr double kMax = 220.836;  // sqrt(3) * 127.5
  const Vec3 g = gradient_at(v, x, y, z);
  return static_cast<float>(std::min(1.0, g.norm() / kMax));
}

Vec3 surface_normal(const DensityVolume& v, int x, int y, int z) {
  const Vec3 g = gradient_at(v, x, y, z);
  const double n = g.norm();
  if (n < 1e-9) return {};
  return {-g.x / n, -g.y / n, -g.z / n};
}

}  // namespace psw
