// Volume file I/O: a minimal self-describing binary format (".vol") for
// 8-bit density grids, so users can feed real scans to the renderer and
// persist phantoms. Layout: magic "PSWVOL1\n", three ASCII dimensions and
// a newline, then nx*ny*nz raw bytes in x-fastest order.
#pragma once

#include <string>

#include "core/volume.hpp"

namespace psw {

// Writes the volume; returns false on I/O failure.
bool write_volume(const std::string& path, const DensityVolume& volume);

// Reads a volume written by write_volume; returns false on parse or I/O
// failure (including truncated payloads).
bool read_volume(const std::string& path, DensityVolume* out);

// Reads a headerless raw 8-bit volume of known dimensions (the format most
// public CT/MRI datasets ship in).
bool read_raw_volume(const std::string& path, int nx, int ny, int nz,
                     DensityVolume* out);

}  // namespace psw
