// Run-length encoded classified volume — the coherence data structure of the
// shear-warp algorithm (§2). Three encodings are kept, one per principal
// viewing axis, each storing scanlines in the order the compositor streams
// them, which is what gives the algorithm its sequential-locality advantage.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/classify.hpp"
#include "core/hook.hpp"

namespace psw {

// Axis permutation for principal axis c: slice axis k' = c,
// scanline-in-slice axis j' = (c+2)%3, voxel-in-scanline axis i' = (c+1)%3.
struct AxisPermutation {
  int axis_i, axis_j, axis_k;

  static AxisPermutation for_principal_axis(int c) {
    return {(c + 1) % 3, (c + 2) % 3, c};
  }
  // Object-space coordinates of permuted-space point (i, j, k).
  std::array<int, 3> to_object(int i, int j, int k) const {
    std::array<int, 3> obj{};
    obj[axis_i] = i;
    obj[axis_j] = j;
    obj[axis_k] = k;
    return obj;
  }
};

// One per-axis encoding. Runs alternate transparent/non-transparent,
// starting with a (possibly zero-length) transparent run. Non-transparent
// voxels are packed contiguously in scanline order.
class RleVolume {
 public:
  RleVolume() = default;

  // Encodes the classified volume for principal axis c (0=x, 1=y, 2=z).
  static RleVolume encode(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold);

  int ni() const { return ni_; }
  int nj() const { return nj_; }
  int nk() const { return nk_; }
  int principal_axis() const { return axis_; }
  const AxisPermutation& perm() const { return perm_; }
  uint8_t alpha_threshold() const { return alpha_threshold_; }

  size_t run_count() const { return runs_.size(); }
  size_t voxel_count() const { return voxels_.size(); }
  // Bytes of encoded data (runs + voxels + offsets); the paper notes the
  // encoded volume is greatly compressed relative to the dense data.
  size_t storage_bytes() const;

  bool scanline_empty(int k, int j) const {
    const size_t s = scanline_index(k, j);
    return voxel_offset_[s] == voxel_offset_[s + 1];
  }

  // Decodes one scanline to dense voxels (transparent voxels zeroed);
  // `out` must have room for ni() entries. For tests and tools.
  void decode_scanline(int k, int j, ClassifiedVoxel* out) const;

  size_t scanline_index(int k, int j) const {
    return static_cast<size_t>(k) * nj_ + j;
  }

  // Raw access for the cursor and the trace layer.
  const uint16_t* runs_at(int k, int j) const { return runs_.data() + run_offset_[scanline_index(k, j)]; }
  size_t runs_in_scanline(int k, int j) const {
    const size_t s = scanline_index(k, j);
    return run_offset_[s + 1] - run_offset_[s];
  }
  const ClassifiedVoxel* voxels_at(int k, int j) const {
    return voxels_.data() + voxel_offset_[scanline_index(k, j)];
  }

 private:
  int ni_ = 0, nj_ = 0, nk_ = 0;
  int axis_ = 2;
  AxisPermutation perm_{0, 1, 2};
  uint8_t alpha_threshold_ = 1;
  std::vector<uint16_t> runs_;
  std::vector<ClassifiedVoxel> voxels_;
  std::vector<uint64_t> run_offset_;    // per scanline, size nk*nj + 1
  std::vector<uint64_t> voxel_offset_;  // per scanline, size nk*nj + 1
};

// Streams one scanline's runs with monotonically non-decreasing queries.
// Out-of-range scanlines (j outside [0, nj)) construct a null cursor whose
// queries report "all transparent".
class RunCursor {
 public:
  RunCursor() = default;  // null cursor
  RunCursor(const RleVolume& vol, int k, int j, MemoryHook* hook = nullptr);

  bool null() const { return runs_ == nullptr; }
  // All voxels in the scanline are transparent (cheap: checks offsets).
  bool empty() const { return empty_; }

  // Voxel at index i, or nullptr if transparent/out of range. Queries must
  // be non-decreasing in i (i may repeat). Reports data references to the
  // hook: run-length reads on run advances, voxel reads on hits.
  const ClassifiedVoxel* at(int i);

  // Smallest index >= i holding a non-transparent voxel, or ni if none.
  // Does not consume cursor state. Must also be called non-decreasing.
  int next_nontransparent(int i) const;

 private:
  void advance_to(int i);

  const uint16_t* runs_ = nullptr;
  size_t num_runs_ = 0;
  const ClassifiedVoxel* voxels_ = nullptr;
  MemoryHook* hook_ = nullptr;
  int ni_ = 0;
  bool empty_ = true;
  // Current run state.
  size_t run_idx_ = 0;
  int run_start_ = 0;           // first voxel index of current run
  int run_len_ = 0;             // length of current run
  size_t voxels_before_ = 0;    // packed voxels preceding current run
  bool run_opaque_ = false;
};

// The full shear-warp input: one encoding per principal axis.
class EncodedVolume {
 public:
  EncodedVolume() = default;
  // Encodes all three axis orderings.
  static EncodedVolume build(const ClassifiedVolume& vol, uint8_t alpha_threshold = 1);

  const RleVolume& for_axis(int c) const { return rle_[c]; }
  int dim(int axis) const { return dims_[axis]; }
  uint8_t alpha_threshold() const { return alpha_threshold_; }
  size_t storage_bytes() const {
    return rle_[0].storage_bytes() + rle_[1].storage_bytes() + rle_[2].storage_bytes();
  }

 private:
  std::array<RleVolume, 3> rle_;
  std::array<int, 3> dims_{0, 0, 0};
  uint8_t alpha_threshold_ = 1;
};

}  // namespace psw
