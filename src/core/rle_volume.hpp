// Run-length encoded classified volume — the coherence data structure of the
// shear-warp algorithm (§2). Three encodings are kept, one per principal
// viewing axis, each storing scanlines in the order the compositor streams
// them, which is what gives the algorithm its sequential-locality advantage.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "core/classify.hpp"
#include "core/hook.hpp"

namespace psw {

// Axis permutation for principal axis c: slice axis k' = c,
// scanline-in-slice axis j' = (c+2)%3, voxel-in-scanline axis i' = (c+1)%3.
struct AxisPermutation {
  int axis_i, axis_j, axis_k;

  static AxisPermutation for_principal_axis(int c) {
    return {(c + 1) % 3, (c + 2) % 3, c};
  }
  // Object-space coordinates of permuted-space point (i, j, k).
  std::array<int, 3> to_object(int i, int j, int k) const {
    std::array<int, 3> obj{};
    obj[axis_i] = i;
    obj[axis_j] = j;
    obj[axis_k] = k;
    return obj;
  }
};

// One per-axis encoding. Runs alternate transparent/non-transparent,
// starting with a (possibly zero-length) transparent run. Non-transparent
// voxels are packed contiguously in scanline order.
class RleVolume {
 public:
  RleVolume() = default;

  // Encodes the classified volume for principal axis c (0=x, 1=y, 2=z).
  // Implemented as a single chunk through the chunked encoder below, so the
  // serial and parallel preparation paths share one code path.
  static RleVolume encode(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold);

  // Chunked encoding, the unit of the parallel preparation pipeline: a
  // Chunk encodes one contiguous range [begin, end) of the flattened
  // permuted voxel space (index (k*nj + j)*ni + i — scanline-major, the
  // order encode() visits voxels). Chunk boundaries may fall mid-scanline;
  // each scanline piece becomes one Fragment whose runs start at the
  // piece's first voxel with no leading transparent run. stitch() walks
  // chunks in order and reassembles exactly what encode() would produce:
  // a fragment continuing its predecessor's scanline merges its first run
  // into the predecessor's last run when both have the same transparency
  // class (a run spanning a chunk seam), and a fragment opening a scanline
  // gains the conventional leading transparent run (zero-length when the
  // scanline starts opaque).
  struct Chunk {
    size_t begin = 0, end = 0;  // flattened permuted voxel range
    struct Fragment {
      uint32_t run_count = 0;
      uint32_t voxel_count = 0;   // non-transparent voxels in the piece
      bool first_opaque = false;  // class of the piece's first run
    };
    std::vector<uint16_t> runs;
    std::vector<ClassifiedVoxel> voxels;
    std::vector<Fragment> fragments;  // consecutive scanline pieces
  };
  static Chunk encode_chunk(const ClassifiedVolume& vol, int principal_axis,
                            uint8_t alpha_threshold, size_t begin, size_t end);
  // Allocation-reusing form of encode_chunk: rewrites `out` in place (its
  // run/voxel/fragment tables are cleared but keep their capacity) and
  // gathers strided lanes through `lane_buf`, which is grown as needed and
  // meant to be shared across a worker's sequential calls. Bit-identical
  // output — the lane buffer's prior contents are never read.
  static void encode_chunk_into(const ClassifiedVolume& vol, int principal_axis,
                                uint8_t alpha_threshold, size_t begin, size_t end,
                                Chunk* out, std::vector<ClassifiedVoxel>* lane_buf);
  // `chunks` must tile [0, ni*nj*nk) in order. Bit-identical to encode().
  static RleVolume stitch(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold, const std::vector<Chunk>& chunks);
  // Same, over the first `count` entries of a caller-owned chunk array —
  // the pooled preparation path keeps oversized (capacity-retaining) chunk
  // tables and passes the live prefix.
  static RleVolume stitch(const ClassifiedVolume& vol, int principal_axis,
                          uint8_t alpha_threshold, const Chunk* chunks, size_t count);

  // Structural equality / FNV-1a content hash over runs, voxels and offset
  // tables; pins serial-vs-parallel bit-identity in tests and benches.
  bool identical(const RleVolume& o) const;
  uint64_t content_hash() const;

  int ni() const { return ni_; }
  int nj() const { return nj_; }
  int nk() const { return nk_; }
  int principal_axis() const { return axis_; }
  const AxisPermutation& perm() const { return perm_; }
  uint8_t alpha_threshold() const { return alpha_threshold_; }

  size_t run_count() const { return runs_.size(); }
  size_t voxel_count() const { return voxels_.size(); }
  // Bytes of encoded data (runs + voxels + offsets); the paper notes the
  // encoded volume is greatly compressed relative to the dense data.
  size_t storage_bytes() const;

  bool scanline_empty(int k, int j) const {
    const size_t s = scanline_index(k, j);
    return voxel_offset_[s] == voxel_offset_[s + 1];
  }

  // Decodes one scanline to dense voxels (transparent voxels zeroed);
  // `out` must have room for ni() entries. For tests and tools.
  void decode_scanline(int k, int j, ClassifiedVoxel* out) const;

  size_t scanline_index(int k, int j) const {
    return static_cast<size_t>(k) * nj_ + j;
  }

  // Raw access for the cursor and the trace layer.
  const uint16_t* runs_at(int k, int j) const { return runs_.data() + run_offset_[scanline_index(k, j)]; }
  size_t runs_in_scanline(int k, int j) const {
    const size_t s = scanline_index(k, j);
    return run_offset_[s + 1] - run_offset_[s];
  }
  const ClassifiedVoxel* voxels_at(int k, int j) const {
    return voxels_.data() + voxel_offset_[scanline_index(k, j)];
  }

 private:
  int ni_ = 0, nj_ = 0, nk_ = 0;
  int axis_ = 2;
  AxisPermutation perm_{0, 1, 2};
  uint8_t alpha_threshold_ = 1;
  std::vector<uint16_t> runs_;
  std::vector<ClassifiedVoxel> voxels_;
  std::vector<uint64_t> run_offset_;    // per scanline, size nk*nj + 1
  std::vector<uint64_t> voxel_offset_;  // per scanline, size nk*nj + 1
};

// Streams one scanline's runs with monotonically non-decreasing queries,
// templated on the hook policy: RunCursorT<NullHook> has no per-access
// branch at all, RunCursorT<SimHook> reports every run-length and voxel
// read. Out-of-range scanlines (j outside [0, nj)) construct a null cursor
// whose queries report "all transparent".
template <class Hook>
class RunCursorT {
 public:
  RunCursorT() = default;  // null cursor
  RunCursorT(const RleVolume& vol, int k, int j, Hook hook = Hook{}) : hook_(hook) {
    ni_ = vol.ni();
    if (j < 0 || j >= vol.nj() || k < 0 || k >= vol.nk()) return;  // null cursor
    runs_ = vol.runs_at(k, j);
    num_runs_ = vol.runs_in_scanline(k, j);
    voxels_ = vol.voxels_at(k, j);
    empty_ = vol.scanline_empty(k, j);
    run_idx_ = 0;
    run_start_ = 0;
    run_len_ = num_runs_ > 0 ? runs_[0] : ni_;
    voxels_before_ = 0;
    run_opaque_ = false;
    hook_.read(runs_, sizeof(uint16_t));
  }

  bool null() const { return runs_ == nullptr; }
  // All voxels in the scanline are transparent (cheap: checks offsets).
  bool empty() const { return empty_; }

  // Voxel at index i, or nullptr if transparent/out of range. Queries must
  // be non-decreasing in i (i may repeat). Reports data references to the
  // hook: run-length reads on run advances, voxel reads on hits.
  const ClassifiedVoxel* at(int i) {
    if (runs_ == nullptr || i < 0 || i >= ni_) return nullptr;
    advance_to(i);
    if (!run_opaque_ || i < run_start_ || i >= run_start_ + run_len_) return nullptr;
    const ClassifiedVoxel* v = voxels_ + voxels_before_ + (i - run_start_);
    hook_.read(v, sizeof(ClassifiedVoxel));
    return v;
  }

  // Smallest index >= i holding a non-transparent voxel, or ni if none.
  // Does not consume cursor state. Must also be called non-decreasing.
  int next_nontransparent(int i) const {
    if (runs_ == nullptr) return ni_ == 0 ? 0 : ni_;
    if (i < 0) i = 0;
    // Scan forward from the current run without mutating state.
    size_t idx = run_idx_;
    int start = run_start_;
    int len = run_len_;
    bool opaque = run_opaque_;
    while (true) {
      if (opaque && i < start + len) return std::max(i, start);
      if (idx + 1 >= num_runs_) return ni_;
      start += len;
      ++idx;
      len = runs_[idx];
      opaque = !opaque;
    }
  }

 private:
  void advance_to(int i) {
    while (i >= run_start_ + run_len_ && run_idx_ + 1 < num_runs_) {
      if (run_opaque_) voxels_before_ += run_len_;
      run_start_ += run_len_;
      ++run_idx_;
      run_len_ = runs_[run_idx_];
      run_opaque_ = !run_opaque_;
      hook_.read(runs_ + run_idx_, sizeof(uint16_t));
    }
  }

  const uint16_t* runs_ = nullptr;
  size_t num_runs_ = 0;
  const ClassifiedVoxel* voxels_ = nullptr;
  Hook hook_{};
  int ni_ = 0;
  bool empty_ = true;
  // Current run state.
  size_t run_idx_ = 0;
  int run_start_ = 0;           // first voxel index of current run
  int run_len_ = 0;             // length of current run
  size_t voxels_before_ = 0;    // packed voxels preceding current run
  bool run_opaque_ = false;
};

// The historical cursor type: a runtime-checked hook pointer (may be null).
using RunCursor = RunCursorT<MaybeHook>;

// One maximal non-transparent segment of a scanline: voxel indices
// [start, end) with the packed voxels at `vox` (vox[i - start] is voxel i).
struct VoxelSegment {
  int start = 0;
  int end = 0;
  const ClassifiedVoxel* vox = nullptr;
};

// Iterates the non-transparent segments of one scanline in index order —
// the traversal unit of the segment-batched compositing fast path. Because
// runs strictly alternate, segments are exactly the opaque runs and are
// separated by at least one transparent voxel. Out-of-range scanlines
// yield no segments.
class SegmentCursor {
 public:
  SegmentCursor() = default;  // exhausted
  SegmentCursor(const RleVolume& vol, int k, int j);

  // Fills `out` with the next segment and returns true, or returns false
  // when the scanline is exhausted.
  bool next(VoxelSegment* out);

 private:
  const uint16_t* runs_ = nullptr;
  size_t num_runs_ = 0;
  const ClassifiedVoxel* vox_ = nullptr;
  size_t idx_ = 0;       // next run to inspect
  int pos_ = 0;          // voxel index where that run starts
  bool opaque_ = false;  // opacity of run idx_ (first run is transparent)
};

// The full shear-warp input: one encoding per principal axis.
class EncodedVolume {
 public:
  EncodedVolume() = default;
  // Encodes all three axis orderings.
  static EncodedVolume build(const ClassifiedVolume& vol, uint8_t alpha_threshold = 1);
  // Assembles from already-encoded axes (the parallel preparation path);
  // rle[c] must be the axis-c encoding of a volume with the given dims.
  static EncodedVolume from_axes(std::array<RleVolume, 3> rle, std::array<int, 3> dims,
                                 uint8_t alpha_threshold);

  uint64_t content_hash() const;

  const RleVolume& for_axis(int c) const { return rle_[c]; }
  int dim(int axis) const { return dims_[axis]; }
  uint8_t alpha_threshold() const { return alpha_threshold_; }
  size_t storage_bytes() const {
    return rle_[0].storage_bytes() + rle_[1].storage_bytes() + rle_[2].storage_bytes();
  }

 private:
  std::array<RleVolume, 3> rle_;
  std::array<int, 3> dims_{0, 0, 0};
  uint8_t alpha_threshold_ = 1;
};

}  // namespace psw
