// Pre-classification and pre-shading: turns a raw density volume into a
// dense volume of classified voxels (opacity + shaded color). This is the
// input to the run-length encoder and to the dense reference renderer.
#pragma once

#include <cstdint>

#include "core/transfer.hpp"
#include "core/volume.hpp"

namespace psw {

// 4-byte classified voxel: quantized opacity and shaded color. The compact
// layout matters: it sets the spatial-locality behaviour the paper measures
// (several voxels per cache line).
struct ClassifiedVoxel {
  uint8_t a = 0;  // opacity, 0..255
  uint8_t r = 0, g = 0, b = 0;

  bool transparent(uint8_t threshold) const { return a < threshold; }
};
static_assert(sizeof(ClassifiedVoxel) == 4);

using ClassifiedVolume = Volume<ClassifiedVoxel>;

struct ClassifyOptions {
  // Directional light in object space for Lambertian + ambient shading.
  Vec3 light_dir{0.3, -0.5, 1.0};
  float ambient = 0.35f;
  float diffuse = 0.65f;
  // Opacities below this (in 0..255 quantized units) are treated as fully
  // transparent by the run-length encoder.
  uint8_t alpha_threshold = 12;
};

// Classifies and shades every voxel. Shading is precomputed with a fixed
// object-space light, as in Lacroute's fastest (pre-shaded) mode.
ClassifiedVolume classify(const DensityVolume& density, const TransferFunction& tf,
                          const ClassifyOptions& opt = {});

// Fraction of classified voxels below the alpha threshold.
double classified_transparent_fraction(const ClassifiedVolume& v, uint8_t alpha_threshold);

}  // namespace psw
