// Pre-classification and pre-shading: turns a raw density volume into a
// dense volume of classified voxels (opacity + shaded color). This is the
// input to the run-length encoder and to the dense reference renderer.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "core/gradient.hpp"
#include "core/transfer.hpp"
#include "core/volume.hpp"

namespace psw {

// 4-byte classified voxel: quantized opacity and shaded color. The compact
// layout matters: it sets the spatial-locality behaviour the paper measures
// (several voxels per cache line).
struct ClassifiedVoxel {
  uint8_t a = 0;  // opacity, 0..255
  uint8_t r = 0, g = 0, b = 0;

  bool transparent(uint8_t threshold) const { return a < threshold; }
};
static_assert(sizeof(ClassifiedVoxel) == 4);

using ClassifiedVolume = Volume<ClassifiedVoxel>;

// std::lround for non-negative v below 2^52, without the libm PLT call (the
// shading loop quantizes three color channels per opaque voxel through it).
// For v >= 0, lround(v) is the unique integer r with r - 0.5 <= v < r + 0.5;
// the truncated r0 = (long)(v + 0.5) can be off by one when the v + 0.5 sum
// rounds across an integer, so r is nudged using comparisons against
// r +/- 0.5, which are exactly representable.
inline long lround_nonneg(double v) {
  long r = static_cast<long>(v + 0.5);
  if (static_cast<double>(r) - 0.5 > v) {
    --r;
  } else if (static_cast<double>(r) + 0.5 <= v) {
    ++r;
  }
  return r;
}

struct ClassifyOptions {
  // Directional light in object space for Lambertian + ambient shading.
  Vec3 light_dir{0.3, -0.5, 1.0};
  float ambient = 0.35f;
  float diffuse = 0.65f;
  // Opacities below this (in 0..255 quantized units) are treated as fully
  // transparent by the run-length encoder.
  uint8_t alpha_threshold = 12;
};

// Per-call classification kernel shared by the serial classify() and the
// slab-parallel preparation pipeline, so the two are bit-identical by
// construction. Hoists the per-call state the per-voxel loop needs:
//  * the normalized light direction;
//  * a per-density transparency proof (TransferFunction's quantized opacity
//    ceiling): a voxel whose density proves it below the alpha threshold
//    classifies to the all-zero voxel without any gradient or shading work.
//    For the presets (no gradient modulation) this covers every transparent
//    voxel — 70-95% of a medical volume (§2);
//  * the fused gradient: the six central-difference neighbors are fetched
//    once and both magnitude and surface normal derive from the same
//    vector (the seed path refetched them per query).
class VoxelClassifier {
 public:
  VoxelClassifier(const TransferFunction& tf, const ClassifyOptions& opt)
      : tf_(&tf), opt_(opt), light_(opt.light_dir.normalized()),
        modulated_(tf.gradient_modulated()) {
    for (int d = 0; d < 256; ++d) {
      // Without gradient modulation the quantized opacity and the base color
      // are exact pure functions of the density byte, so both are tabled
      // once per classify call instead of interpolated per voxel.
      alpha_q_[d] = tf.max_quantized_opacity(static_cast<uint8_t>(d));
      skip_[d] = alpha_q_[d] < opt.alpha_threshold;
      color_[d] = tf.color(static_cast<float>(d));
    }
    // The skip set as maximal density ranges. When there are at most two
    // (true for ramp-style transfer functions, including both presets), the
    // slab kernel tests 16 densities per SIMD compare and zero-fills
    // all-transparent blocks wholesale; more ranges just disable that path.
    int d = 0;
    while (d < 256) {
      if (!skip_[d]) {
        ++d;
        continue;
      }
      int e = d;
      while (e + 1 < 256 && skip_[e + 1]) ++e;
      if (skip_range_count_ == 2) {
        skip_range_count_ = 0;
        break;
      }
      skip_range_[skip_range_count_][0] = static_cast<uint8_t>(d);
      skip_range_[skip_range_count_][1] = static_cast<uint8_t>(e);
      ++skip_range_count_;
      d = e + 1;
    }
  }

  // Opacity + shading given the voxel's density byte and its precomputed
  // gradient vector. Callers must have rejected skip_[] densities already.
  ClassifiedVoxel shade(uint8_t raw, const Vec3& g) const {
    ClassifiedVoxel cv;
    if (!modulated_) {
      cv.a = alpha_q_[raw];  // table == lround(clamp(opacity(d, gm)) * 255)
    } else {
      const float gm = gradient_magnitude_from(g);
      const float a = tf_->opacity(static_cast<float>(raw), gm);
      cv.a = static_cast<uint8_t>(std::lround(std::clamp(a, 0.0f, 1.0f) * 255.0f));
    }
    if (cv.a >= opt_.alpha_threshold) {
      const Vec3 n = surface_normal_from(g);
      const double lambert = std::max(0.0, n.dot(light_));
      const double shade = opt_.ambient + opt_.diffuse * lambert;
      const Vec3 c = color_[raw] * shade;
      cv.r = static_cast<uint8_t>(lround_nonneg(std::clamp(c.x, 0.0, 1.0) * 255.0));
      cv.g = static_cast<uint8_t>(lround_nonneg(std::clamp(c.y, 0.0, 1.0) * 255.0));
      cv.b = static_cast<uint8_t>(lround_nonneg(std::clamp(c.z, 0.0, 1.0) * 255.0));
    } else {
      cv = ClassifiedVoxel{};  // fully transparent voxels carry no color
    }
    return cv;
  }

  ClassifiedVoxel operator()(const DensityVolume& density, int x, int y, int z) const {
    const uint8_t raw = density.at(x, y, z);
    if (skip_[raw]) return {};  // provably transparent: no gradient needed
    return shade(raw, gradient_at(density, x, y, z));
  }

  // Classifies the z-slab [z0, z1) into `out` (pre-sized to the density
  // volume's dims). Slabs are disjoint, so parallel callers write without
  // synchronization; the serial path is the single slab [0, nz).
  void classify_slab(const DensityVolume& density, int z0, int z1,
                     ClassifiedVolume* out) const;

 private:
  const TransferFunction* tf_;
  ClassifyOptions opt_;
  Vec3 light_;
  bool modulated_ = false;
  std::array<bool, 256> skip_{};
  std::array<uint8_t, 256> alpha_q_{};
  std::array<Vec3, 256> color_{};
  int skip_range_count_ = 0;      // 0 disables the block skip-scan
  uint8_t skip_range_[2][2]{};    // inclusive [lo, hi] density ranges
};

// Classifies and shades every voxel. Shading is precomputed with a fixed
// object-space light, as in Lacroute's fastest (pre-shaded) mode.
ClassifiedVolume classify(const DensityVolume& density, const TransferFunction& tf,
                          const ClassifyOptions& opt = {});

// Fraction of classified voxels below the alpha threshold.
double classified_transparent_fraction(const ClassifiedVolume& v, uint8_t alpha_threshold);

// FNV-1a over dims and voxel bytes; pins bit-identity of classification
// outputs across the serial and parallel preparation paths.
uint64_t classified_content_hash(const ClassifiedVolume& v);

}  // namespace psw
