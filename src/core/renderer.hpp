// The serial shear-warp renderer: compositing + warp for one frame.
#pragma once

#include "core/compositor.hpp"
#include "core/factorization.hpp"
#include "core/rle_volume.hpp"
#include "core/warp.hpp"
#include "util/image.hpp"

namespace psw {

struct RenderStats {
  double composite_ms = 0.0;
  double warp_ms = 0.0;
  double total_ms = 0.0;
  CompositeStats composite;
  WarpStats warp;
  int intermediate_width = 0;
  int intermediate_height = 0;
};

// Serial renderer. Holds the intermediate image across frames so repeated
// renders don't reallocate (matching the measured steady-state behaviour).
class SerialRenderer {
 public:
  // Renders one frame into `out` (resized to the factorization's final
  // image dimensions).
  RenderStats render(const EncodedVolume& volume, const Camera& camera, ImageU8* out,
                     MemoryHook* hook = nullptr);

  // The intermediate image of the last rendered frame (for tests/tools).
  const IntermediateImage& intermediate() const { return intermediate_; }

 private:
  IntermediateImage intermediate_;
};

}  // namespace psw
