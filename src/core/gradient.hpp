// Central-difference gradient estimation over a density volume; used for
// shading and for gradient-modulated classification.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/volume.hpp"
#include "util/vec.hpp"

namespace psw {

// Max per-axis central difference is 127.5; max magnitude sqrt(3)*127.5.
inline constexpr double kMaxGradientMagnitude = 220.836;  // sqrt(3) * 127.5

// Gradient vector at a voxel (central differences, clamped at borders).
Vec3 gradient_at(const DensityVolume& v, int x, int y, int z);

// Derivations from an already-computed gradient vector. The classification
// kernel fetches the six central-difference neighbors once and derives both
// magnitude and normal from the same vector; these produce bit-identical
// results to recomputing the gradient per query.
inline float gradient_magnitude_from(const Vec3& g) {
  return static_cast<float>(std::min(1.0, g.norm() / kMaxGradientMagnitude));
}

inline Vec3 surface_normal_from(const Vec3& g) {
  const double n = g.norm();
  if (n < 1e-9) return {};
  return {-g.x / n, -g.y / n, -g.z / n};
}

// Gradient magnitude normalized to [0,1] (divided by the maximum possible
// central-difference magnitude for 8-bit data).
float gradient_magnitude(const DensityVolume& v, int x, int y, int z);

// Unit surface normal (negated normalized gradient); zero vector where the
// gradient vanishes.
Vec3 surface_normal(const DensityVolume& v, int x, int y, int z);

}  // namespace psw
