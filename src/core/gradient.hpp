// Central-difference gradient estimation over a density volume; used for
// shading and for gradient-modulated classification.
#pragma once

#include "core/volume.hpp"
#include "util/vec.hpp"

namespace psw {

// Gradient vector at a voxel (central differences, clamped at borders).
Vec3 gradient_at(const DensityVolume& v, int x, int y, int z);

// Gradient magnitude normalized to [0,1] (divided by the maximum possible
// central-difference magnitude for 8-bit data).
float gradient_magnitude(const DensityVolume& v, int x, int y, int z);

// Unit surface normal (negated normalized gradient); zero vector where the
// gradient vanishes.
Vec3 surface_normal(const DensityVolume& v, int x, int y, int z);

}  // namespace psw
