#include "core/warp.hpp"

#include <algorithm>
#include <cmath>

namespace psw {

namespace {

// Hook-templated kernel: the NullHook instantiation carries no per-access
// branch; the SimHook instantiation reports every sample and pixel write.
template <class Hook>
void warp_scanline_impl(const IntermediateImage& src, const Affine2D& inv, int y,
                        int x0, int x1, ImageU8& out, Hook hook, WarpStats* stats) {
  const int sw = src.width(), sh = src.height();
  Pixel8* dst = out.row(y);
  for (int x = x0; x < x1; ++x) {
    const Vec3 uv = inv.apply(x + 0.0, y + 0.0);
    const double u = uv.x, v = uv.y;
    // Bilinear footprint; outside pixels are transparent black.
    const int u0 = static_cast<int>(std::floor(u));
    const int v0 = static_cast<int>(std::floor(v));
    if (u0 < -1 || u0 >= sw || v0 < -1 || v0 >= sh) {
      dst[x] = Pixel8{};
      hook.write(dst + x, sizeof(Pixel8));
      if (stats) ++stats->pixels_written;
      continue;
    }
    const float fu = static_cast<float>(u - u0);
    const float fv = static_cast<float>(v - v0);
    float r = 0, g = 0, b = 0, a = 0;
    auto sample = [&](int su, int sv, float w) {
      if (w == 0.0f || su < 0 || su >= sw || sv < 0 || sv >= sh) return;
      const Rgba& p = src.pixel(su, sv);
      hook.read(&p, sizeof(Rgba));
      r += w * p.r;
      g += w * p.g;
      b += w * p.b;
      a += w * p.a;
      if (stats) ++stats->samples;
    };
    sample(u0, v0, (1 - fu) * (1 - fv));
    sample(u0 + 1, v0, fu * (1 - fv));
    sample(u0, v0 + 1, (1 - fu) * fv);
    sample(u0 + 1, v0 + 1, fu * fv);
    dst[x] = quantize8(Rgba{r, g, b, a});
    hook.write(dst + x, sizeof(Pixel8));
    if (stats) ++stats->pixels_written;
  }
}

}  // namespace

void warp_scanline(const IntermediateImage& src, const Factorization& f,
                   const Affine2D& inv, int y, int x0, int x1, ImageU8& out,
                   MemoryHook* hook, WarpStats* stats) {
  (void)f;
  // Dispatch once per scanline call, not once per access.
  if (hook) {
    warp_scanline_impl(src, inv, y, x0, x1, out, SimHook{hook}, stats);
  } else {
    warp_scanline_impl(src, inv, y, x0, x1, out, NullHook{}, stats);
  }
}

WarpStats warp_frame(const IntermediateImage& src, const Factorization& f, ImageU8& out,
                     MemoryHook* hook) {
  WarpStats stats;
  const Affine2D inv = f.warp.inverse();
  for (int y = 0; y < out.height(); ++y) {
    warp_scanline(src, f, inv, y, 0, out.width(), out, hook, &stats);
  }
  return stats;
}

void warp_tile(const IntermediateImage& src, const Factorization& f, const Affine2D& inv,
               int tile_x, int tile_y, int tile_size, ImageU8& out, MemoryHook* hook,
               WarpStats* stats) {
  const int y1 = std::min(out.height(), tile_y + tile_size);
  const int x1 = std::min(out.width(), tile_x + tile_size);
  for (int y = tile_y; y < y1; ++y) {
    warp_scanline(src, f, inv, y, tile_x, x1, out, hook, stats);
  }
}

}  // namespace psw
