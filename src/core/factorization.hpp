// Shear-warp factorization of a parallel-projection viewing transformation
// (Lacroute [4]): M_view = M_warp2D ∘ M_shear ∘ P. The volume is sheared so
// viewing rays become perpendicular to the slices; slices composite into an
// intermediate image that a 2-D warp maps to the final image.
#pragma once

#include <array>

#include "util/mat4.hpp"
#include "util/vec.hpp"

namespace psw {

// Camera for parallel projection: `view` maps object space to image space
// (the projection drops the z row). Typically a rotation about the volume
// center composed from rotation angles.
struct Camera {
  Mat4 view;
  // Final image dimensions; 0 means "auto-size to the warped bounds".
  int image_width = 0;
  int image_height = 0;

  // View matrix rotating the volume of the given dimensions about its
  // center by the given Euler angles (radians), applied z(roll), then
  // x(pitch), then y(yaw).
  static Camera orbit(const std::array<int, 3>& dims, double yaw, double pitch,
                      double roll = 0.0);
};

// 2-D affine map: (out_x, out_y) = A * (u, v) + b.
struct Affine2D {
  double a00 = 1, a01 = 0, a10 = 0, a11 = 1;
  double bx = 0, by = 0;

  Vec3 apply(double u, double v) const {
    return {a00 * u + a01 * v + bx, a10 * u + a11 * v + by, 0.0};
  }
  // Inverse map; asserts non-singularity via the factorization contract.
  Affine2D inverse() const;
};

// Everything the compositor and warper need for one viewpoint.
struct Factorization {
  int principal_axis = 2;       // object axis most parallel to the view dir
  std::array<int, 3> perm{0, 1, 2};  // permuted axes (i', j', k'=principal)
  int ni = 0, nj = 0, nk = 0;   // permuted volume dimensions

  double shear_i = 0.0;         // shear per slice along i'
  double shear_j = 0.0;         // shear per slice along j'
  double trans_i = 0.0;         // translation making sheared coords >= 0
  double trans_j = 0.0;

  bool k_ascending = true;      // front-to-back slice order

  int intermediate_width = 0;   // sheared (intermediate) image size
  int intermediate_height = 0;

  Affine2D warp;                // intermediate (u,v) -> final image (x,y)
  int final_width = 0;          // final image size (auto or from camera)
  int final_height = 0;

  // Sheared-space offset of slice k: voxel i of slice k lands at
  // u = i + offset_u(k) in the intermediate image.
  double offset_u(int k) const { return trans_i + shear_i * k; }
  double offset_v(int k) const { return trans_j + shear_j * k; }

  // Slice index of the t-th slice in front-to-back order.
  int slice(int t) const { return k_ascending ? t : nk - 1 - t; }
};

// Computes the factorization for a camera and volume dimensions.
// The view matrix must be invertible (e.g. a rotation).
Factorization factorize(const Camera& camera, const std::array<int, 3>& dims);

}  // namespace psw
