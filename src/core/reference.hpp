// Brute-force dense reference renderer: identical shear-warp math and
// compositing expressions, but direct dense-array access with no run-length
// encoding and no skip links. The run-based renderer must match it
// bit-for-bit; the test suite enforces this.
#pragma once

#include "core/classify.hpp"
#include "core/factorization.hpp"
#include "core/intermediate_image.hpp"
#include "util/image.hpp"

namespace psw {

// Composites the whole frame from the dense classified volume. Voxels with
// opacity below `alpha_threshold` are treated as fully transparent, exactly
// as the run-length encoder does.
void reference_composite(const ClassifiedVolume& vol, const Factorization& f,
                         uint8_t alpha_threshold, IntermediateImage& img);

// Full reference render: composite + warp.
void reference_render(const ClassifiedVolume& vol, const Camera& camera,
                      uint8_t alpha_threshold, ImageU8* out);

}  // namespace psw
