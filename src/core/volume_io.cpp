#include "core/volume_io.hpp"

#include <fstream>

namespace psw {

namespace {
constexpr char kMagic[] = "PSWVOL1\n";
}

bool write_volume(const std::string& path, const DensityVolume& volume) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << kMagic << volume.nx() << " " << volume.ny() << " " << volume.nz() << "\n";
  f.write(reinterpret_cast<const char*>(volume.data()),
          static_cast<std::streamsize>(volume.size()));
  return static_cast<bool>(f);
}

bool read_volume(const std::string& path, DensityVolume* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[sizeof(kMagic) - 1];
  f.read(magic, sizeof(magic));
  if (!f || std::string(magic, sizeof(magic)) != kMagic) return false;
  int nx = 0, ny = 0, nz = 0;
  f >> nx >> ny >> nz;
  if (!f || nx <= 0 || ny <= 0 || nz <= 0) return false;
  // Guard absurd sizes before allocating (corrupt headers).
  const uint64_t total = static_cast<uint64_t>(nx) * ny * nz;
  if (total > (4ull << 30)) return false;
  f.get();  // the newline after the dimensions
  out->resize(nx, ny, nz);
  f.read(reinterpret_cast<char*>(out->data()), static_cast<std::streamsize>(total));
  return static_cast<bool>(f);
}

bool read_raw_volume(const std::string& path, int nx, int ny, int nz,
                     DensityVolume* out) {
  if (nx <= 0 || ny <= 0 || nz <= 0) return false;
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  out->resize(nx, ny, nz);
  f.read(reinterpret_cast<char*>(out->data()),
         static_cast<std::streamsize>(out->size()));
  return static_cast<bool>(f);
}

}  // namespace psw
