#include "core/classify.hpp"

#include <cmath>

#include "core/gradient.hpp"

namespace psw {

ClassifiedVolume classify(const DensityVolume& density, const TransferFunction& tf,
                          const ClassifyOptions& opt) {
  ClassifiedVolume out(density.nx(), density.ny(), density.nz());
  const Vec3 light = opt.light_dir.normalized();

  for (int z = 0; z < density.nz(); ++z) {
    for (int y = 0; y < density.ny(); ++y) {
      for (int x = 0; x < density.nx(); ++x) {
        const float d = density.at(x, y, z);
        const float gm = gradient_magnitude(density, x, y, z);
        const float a = tf.opacity(d, gm);
        ClassifiedVoxel cv;
        cv.a = static_cast<uint8_t>(std::lround(std::clamp(a, 0.0f, 1.0f) * 255.0f));
        if (cv.a >= opt.alpha_threshold) {
          const Vec3 n = surface_normal(density, x, y, z);
          const double lambert = std::max(0.0, n.dot(light));
          const double shade = opt.ambient + opt.diffuse * lambert;
          const Vec3 c = tf.color(d) * shade;
          cv.r = static_cast<uint8_t>(std::lround(std::clamp(c.x, 0.0, 1.0) * 255.0));
          cv.g = static_cast<uint8_t>(std::lround(std::clamp(c.y, 0.0, 1.0) * 255.0));
          cv.b = static_cast<uint8_t>(std::lround(std::clamp(c.z, 0.0, 1.0) * 255.0));
        } else {
          cv = ClassifiedVoxel{};  // fully transparent voxels carry no color
        }
        out.at(x, y, z) = cv;
      }
    }
  }
  return out;
}

double classified_transparent_fraction(const ClassifiedVolume& v, uint8_t alpha_threshold) {
  if (v.empty()) return 1.0;
  size_t transparent = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v.data()[i].transparent(alpha_threshold)) ++transparent;
  }
  return static_cast<double>(transparent) / static_cast<double>(v.size());
}

}  // namespace psw
