#include "core/classify.hpp"

#include "util/simd.hpp"

namespace psw {

namespace {

#if defined(PSW_SIMD_BACKEND_SSE2)
// 0xFF per byte of v inside [lo, hi], via the signed-compare bias trick
// (SSE2 has no unsigned byte compare).
inline __m128i bytes_in_range(__m128i v, uint8_t lo, uint8_t hi) {
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i vb = _mm_xor_si128(v, bias);
  const __m128i lob = _mm_set1_epi8(static_cast<char>(lo ^ 0x80));
  const __m128i hib = _mm_set1_epi8(static_cast<char>(hi ^ 0x80));
  const __m128i outside =
      _mm_or_si128(_mm_cmplt_epi8(vb, lob), _mm_cmpgt_epi8(vb, hib));
  return _mm_andnot_si128(outside, _mm_cmpeq_epi8(v, v));
}
#endif

}  // namespace

void VoxelClassifier::classify_slab(const DensityVolume& density, int z0, int z1,
                                    ClassifiedVolume* out) const {
  const int nx = density.nx(), ny = density.ny(), nz = density.nz();
  const uint8_t* data = density.data();
  const size_t sy = static_cast<size_t>(nx);
  const size_t sz = static_cast<size_t>(nx) * ny;
  for (int z = z0; z < z1; ++z) {
    for (int y = 0; y < ny; ++y) {
      const uint8_t* row = data + static_cast<size_t>(z) * sz + static_cast<size_t>(y) * sy;
      ClassifiedVoxel* orow =
          out->data() + static_cast<size_t>(z) * sz + static_cast<size_t>(y) * sy;
      // Rows away from the volume faces read all six central-difference
      // neighbors with direct offsets; border rows go through the clamped
      // gradient_at (identical arithmetic: same neighbors, same int
      // subtraction, same 0.5 scale).
      const bool interior_row = z > 0 && z < nz - 1 && y > 0 && y < ny - 1;
      if (interior_row) {
        const uint8_t* ym = row - sy;
        const uint8_t* yp = row + sy;
        const uint8_t* zm = row - sz;
        const uint8_t* zp = row + sz;
        int x = 0;
        while (x < nx) {
#if defined(PSW_SIMD_BACKEND_SSE2)
          // Block skip-scan: 16 densities tested against the skip ranges at
          // once; an all-transparent block zero-fills with no per-voxel
          // work. Mostly-transparent volumes take this path for the bulk of
          // their voxels. Mixed blocks replay the 16 voxels through the
          // same per-voxel logic, so outputs are unchanged.
          if (skip_range_count_ > 0 && x + 16 <= nx) {
            const __m128i v =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + x));
            __m128i m = bytes_in_range(v, skip_range_[0][0], skip_range_[0][1]);
            if (skip_range_count_ == 2) {
              m = _mm_or_si128(m,
                               bytes_in_range(v, skip_range_[1][0], skip_range_[1][1]));
            }
            if (_mm_movemask_epi8(m) == 0xFFFF) {
              const __m128i z = _mm_setzero_si128();
              __m128i* o = reinterpret_cast<__m128i*>(orow + x);
              _mm_storeu_si128(o + 0, z);
              _mm_storeu_si128(o + 1, z);
              _mm_storeu_si128(o + 2, z);
              _mm_storeu_si128(o + 3, z);
              x += 16;
              continue;
            }
            const int xe = x + 16;
            for (; x < xe; ++x) {
              const uint8_t raw = row[x];
              if (skip_[raw]) {
                orow[x] = ClassifiedVoxel{};
                continue;
              }
              const Vec3 g = (x > 0 && x < nx - 1)
                                 ? Vec3{0.5 * (row[x + 1] - row[x - 1]),
                                        0.5 * (yp[x] - ym[x]), 0.5 * (zp[x] - zm[x])}
                                 : gradient_at(density, x, y, z);
              orow[x] = shade(raw, g);
            }
            continue;
          }
#endif
          const uint8_t raw = row[x];
          if (skip_[raw]) {  // provably transparent: no gradient needed
            orow[x] = ClassifiedVoxel{};
            ++x;
            continue;
          }
          const Vec3 g = (x > 0 && x < nx - 1)
                             ? Vec3{0.5 * (row[x + 1] - row[x - 1]),
                                    0.5 * (yp[x] - ym[x]), 0.5 * (zp[x] - zm[x])}
                             : gradient_at(density, x, y, z);
          orow[x] = shade(raw, g);
          ++x;
        }
      } else {
        for (int x = 0; x < nx; ++x) {
          const uint8_t raw = row[x];
          if (skip_[raw]) {
            orow[x] = ClassifiedVoxel{};
            continue;
          }
          orow[x] = shade(raw, gradient_at(density, x, y, z));
        }
      }
    }
  }
}

ClassifiedVolume classify(const DensityVolume& density, const TransferFunction& tf,
                          const ClassifyOptions& opt) {
  ClassifiedVolume out(density.nx(), density.ny(), density.nz());
  const VoxelClassifier kernel(tf, opt);
  kernel.classify_slab(density, 0, density.nz(), &out);
  return out;
}

double classified_transparent_fraction(const ClassifiedVolume& v, uint8_t alpha_threshold) {
  if (v.empty()) return 1.0;
  size_t transparent = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v.data()[i].transparent(alpha_threshold)) ++transparent;
  }
  return static_cast<double>(transparent) / static_cast<double>(v.size());
}

uint64_t classified_content_hash(const ClassifiedVolume& v) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      h ^= (value >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(v.nx()));
  mix(static_cast<uint64_t>(v.ny()));
  mix(static_cast<uint64_t>(v.nz()));
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(v.data());
  const size_t n = v.size() * sizeof(ClassifiedVoxel);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace psw
