#include "core/renderer.hpp"

#include "util/timer.hpp"

namespace psw {

RenderStats SerialRenderer::render(const EncodedVolume& volume, const Camera& camera,
                                   ImageU8* out, MemoryHook* hook) {
  RenderStats stats;
  WallTimer total;

  const std::array<int, 3> dims{volume.dim(0), volume.dim(1), volume.dim(2)};
  const Factorization f = factorize(camera, dims);
  const RleVolume& rle = volume.for_axis(f.principal_axis);

  if (intermediate_.width() != f.intermediate_width ||
      intermediate_.height() != f.intermediate_height) {
    intermediate_.resize(f.intermediate_width, f.intermediate_height);
  } else {
    intermediate_.clear();
  }
  stats.intermediate_width = f.intermediate_width;
  stats.intermediate_height = f.intermediate_height;

  WallTimer composite_timer;
  stats.composite = composite_frame(rle, f, intermediate_, hook);
  stats.composite_ms = composite_timer.millis();

  out->resize(f.final_width, f.final_height);
  WallTimer warp_timer;
  stats.warp = warp_frame(intermediate_, f, *out, hook);
  stats.warp_ms = warp_timer.millis();

  stats.total_ms = total.millis();
  return stats;
}

}  // namespace psw
