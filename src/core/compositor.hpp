// The compositing phase (§2): streams run-length encoded volume scanlines
// front-to-back into the intermediate image with bilinear resampling,
// skipping transparent voxel runs and opaque image pixels.
//
// The unit of work is "one intermediate-image scanline across all slices",
// because that is the task granularity of both parallel algorithms (§3.1,
// §4.1). Pixels of a scanline are composited in front-to-back slice order,
// preserving early ray termination.
//
// Two kernels implement the phase and produce bit-identical pixels, stats
// and work counts (see DESIGN.md "Kernel dispatch and fast path"):
//  - the per-pixel reference kernel, templated on the hook policy; its
//    SimHook instantiation emits the exact reference stream the simulators
//    replay, its NullHook instantiation is the branch-free baseline;
//  - the segment-batched fast path, which intersects the non-transparent
//    segments of the two source scanlines with the image's writable runs
//    and composites each overlap in a tight SIMD inner loop. It traces
//    nothing, so it only serves hook-free (real-time) rendering.
// composite_scanline dispatches once per call: SimHook kernel when a hook
// is attached, fast path otherwise (reference kernel if the build sets
// PSW_REFERENCE_KERNEL, the A/B switch used by the golden tests and the
// kernel benchmarks).
#pragma once

#include <cstdint>

#include "core/factorization.hpp"
#include "core/intermediate_image.hpp"
#include "core/rle_volume.hpp"

namespace psw {

struct CompositeStats {
  uint64_t voxels_composited = 0;  // non-transparent voxels resampled
  uint64_t pixels_visited = 0;     // intermediate pixels composited into
  uint64_t slices_touched = 0;     // (scanline, slice) pairs processed
  uint64_t scanlines = 0;          // intermediate scanlines processed

  void add(const CompositeStats& o) {
    voxels_composited += o.voxels_composited;
    pixels_visited += o.pixels_visited;
    slices_touched += o.slices_touched;
    scanlines += o.scanlines;
  }
};

// Composites every slice's contribution to intermediate scanline v,
// front-to-back. Returns the work units spent (the profile quantity of
// §4.2: a count proportional to the instructions executed for the
// scanline). `rle` must be the encoding for the factorization's principal
// axis.
uint32_t composite_scanline(const RleVolume& rle, const Factorization& f, int v,
                            IntermediateImage& img, MemoryHook* hook = nullptr,
                            CompositeStats* stats = nullptr);

// The per-pixel reference kernel, always available for A/B comparison
// regardless of the dispatch default. Bit-identical to the fast path.
uint32_t composite_scanline_reference(const RleVolume& rle, const Factorization& f,
                                      int v, IntermediateImage& img,
                                      MemoryHook* hook = nullptr,
                                      CompositeStats* stats = nullptr);

// The segment-batched SIMD fast path (hook-free by construction).
uint32_t composite_scanline_segmented(const RleVolume& rle, const Factorization& f,
                                      int v, IntermediateImage& img,
                                      CompositeStats* stats = nullptr);

// Traversal-only variant: performs all run/skip-link traversal and
// addressing but skips the resample/composite arithmetic (and therefore
// writes nothing). The difference between a normal and a traversal-only
// run is the Figure 2 "looping time vs computation" decomposition.
uint32_t composite_scanline_traversal_only(const RleVolume& rle, const Factorization& f,
                                           int v, IntermediateImage& img,
                                           MemoryHook* hook = nullptr,
                                           CompositeStats* stats = nullptr);

// True if intermediate scanline v provably receives no contribution: every
// voxel scanline it overlaps (across all slices) is empty. Used for the
// §4.2 optimization of not compositing the empty top/bottom of the
// intermediate image, with exact (not profile-guessed) emptiness.
bool scanline_provably_empty(const RleVolume& rle, const Factorization& f, int v);

// Serial compositing of the whole frame; `img` must be sized and cleared.
CompositeStats composite_frame(const RleVolume& rle, const Factorization& f,
                               IntermediateImage& img, MemoryHook* hook = nullptr);

}  // namespace psw
