// The compositing phase (§2): streams run-length encoded volume scanlines
// front-to-back into the intermediate image with bilinear resampling,
// skipping transparent voxel runs and opaque image pixels.
//
// The unit of work is "one intermediate-image scanline across all slices",
// because that is the task granularity of both parallel algorithms (§3.1,
// §4.1). Pixels of a scanline are composited in front-to-back slice order,
// preserving early ray termination.
#pragma once

#include <cstdint>

#include "core/factorization.hpp"
#include "core/intermediate_image.hpp"
#include "core/rle_volume.hpp"

namespace psw {

struct CompositeStats {
  uint64_t voxels_composited = 0;  // non-transparent voxels resampled
  uint64_t pixels_visited = 0;     // intermediate pixels composited into
  uint64_t slices_touched = 0;     // (scanline, slice) pairs processed
  uint64_t scanlines = 0;          // intermediate scanlines processed

  void add(const CompositeStats& o) {
    voxels_composited += o.voxels_composited;
    pixels_visited += o.pixels_visited;
    slices_touched += o.slices_touched;
    scanlines += o.scanlines;
  }
};

// Composites every slice's contribution to intermediate scanline v,
// front-to-back. Returns the work units spent (the profile quantity of
// §4.2: a count proportional to the instructions executed for the
// scanline). `rle` must be the encoding for the factorization's principal
// axis.
uint32_t composite_scanline(const RleVolume& rle, const Factorization& f, int v,
                            IntermediateImage& img, MemoryHook* hook = nullptr,
                            CompositeStats* stats = nullptr);

// Traversal-only variant: performs all run/skip-link traversal and
// addressing but skips the resample/composite arithmetic (and therefore
// writes nothing). The difference between a normal and a traversal-only
// run is the Figure 2 "looping time vs computation" decomposition.
uint32_t composite_scanline_traversal_only(const RleVolume& rle, const Factorization& f,
                                           int v, IntermediateImage& img,
                                           MemoryHook* hook = nullptr,
                                           CompositeStats* stats = nullptr);

// True if intermediate scanline v provably receives no contribution: every
// voxel scanline it overlaps (across all slices) is empty. Used for the
// §4.2 optimization of not compositing the empty top/bottom of the
// intermediate image, with exact (not profile-guessed) emptiness.
bool scanline_provably_empty(const RleVolume& rle, const Factorization& f, int v);

// Serial compositing of the whole frame; `img` must be sized and cleared.
CompositeStats composite_frame(const RleVolume& rle, const Factorization& f,
                               IntermediateImage& img, MemoryHook* hook = nullptr);

}  // namespace psw
