// End-to-end request tracing: trace/span identity and the allocation-
// disciplined span sink.
//
// A TraceContext (128-bit trace id + parent span id + flags) rides inside
// the PSWN wire payloads, is forwarded verbatim by the cluster router, and
// names one logical render request across processes. Each instrumented
// stage (queue wait, cache build, composite, warp, encode, send, router
// proxy) records a SpanRecord into a SpanRecorder — striped fixed-capacity
// ring buffers written with relaxed atomics. The discipline mirrors the
// serving hot path's zero-alloc contract: when a request is unsampled the
// record call is a single branch (no allocation, no lock, no atomic RMW),
// and when a ring wraps the oldest spans are overwritten in place rather
// than grown. Only the rare export paths (metrics endpoint, shutdown dump,
// slow-request flight recorder) take locks or allocate.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/timer.hpp"

namespace psw::obs {

// Fixed span taxonomy. The wire format and the dump carry the enum value,
// so names stay consistent across router, shards and tools.
enum class SpanKind : uint8_t {
  kClient = 0,     // client-side root: request sent -> frame decoded
  kRequest,        // server-side whole-request span (admission -> delivery)
  kQueueWait,      // admission queue residency (enqueue -> dispatch)
  kCacheBuild,     // VolumeCache miss build (classify + RLE encode)
  kClassify,       // classification stage of a cache build
  kEncodeVolume,   // per-axis RLE encoding stage of a cache build
  kComposite,      // paper phase 1: intermediate-image compositing
  kWarp,           // paper phase 2: warp to the final image
  kFrameEncode,    // frame codec encode into the pooled wire payload
  kSend,           // sendq residency: queued -> last byte handed to kernel
  kRouterProxy,    // router: request forwarded -> frame received upstream
  kCount,
};

const char* to_string(SpanKind k);
// Reverse mapping for the dump/tool side; returns kCount for unknown names.
SpanKind span_kind_from(const std::string& name);

struct TraceContext {
  static constexpr uint8_t kSampledFlag = 0x01;

  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t parent_span = 0;  // span id of the caller's span, 0 at the root
  uint8_t flags = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  bool sampled() const { return valid() && (flags & kSampledFlag) != 0; }
};

// Process-unique nonzero span id.
uint64_t next_span_id();

// Fresh sampled trace rooted at a new 128-bit id. `root_span` (if non-null)
// receives the id of the implicit root span callers should parent their
// stage spans to.
TraceContext make_sampled_trace(uint64_t* root_span = nullptr);

// Hex formatting shared by the dump, the errors and the tools: 32 hex
// digits for a trace id, 16 for a span id.
std::string trace_id_hex(uint64_t hi, uint64_t lo);
std::string trace_id_hex(const TraceContext& ctx);
std::string span_id_hex(uint64_t id);
bool parse_hex_u64(const std::string& s, uint64_t* out);
// Parses a 32-digit trace id into (hi, lo); accepts shorter strings as lo.
bool parse_trace_id(const std::string& s, uint64_t* hi, uint64_t* lo);

struct SpanRecord {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  SpanKind kind = SpanKind::kRequest;
  int64_t t_start_ns = 0;  // steady ns inside the recorder, wall ns on export
  int64_t t_end_ns = 0;
  uint64_t tag = 0;  // request/stream correlator (request_id, or seq for streams)

  double duration_ms() const {
    return static_cast<double>(t_end_ns - t_start_ns) / 1e6;
  }
};

// A trace retained by the slow-request flight recorder.
struct RetainedTrace {
  TraceContext ctx;
  double total_ms = 0.0;
  std::vector<SpanRecord> spans;
};

class SpanRecorder {
 public:
  struct Options {
    int rings = 16;          // stripes; threads hash onto them by ordinal
    int ring_capacity = 512; // spans per ring before overwrite
    double slow_ms = 0.0;    // flight-recorder threshold; <= 0 disables
    int slow_capacity = 32;  // retained slow traces (oldest evicted)
  };

  SpanRecorder() : SpanRecorder(Options()) {}
  explicit SpanRecorder(Options opt);

  // Records one finished span. When `ctx` is unsampled this is a single
  // branch: no allocation, no lock, no shared-cacheline write. When
  // sampled, the owning thread claims a slot in its ring with one relaxed
  // fetch_add and fills it with relaxed stores behind a seqlock word — a
  // full ring overwrites its oldest slot, it never grows.
  void record(const TraceContext& ctx, const SpanRecord& span);

  // Copies every stable slot out of the rings (export path; skips slots
  // caught mid-write). Timestamps stay on the steady clock.
  std::vector<SpanRecord> snapshot() const;

  // Slow-request flight recorder: called once per completed request on the
  // sampled path; retains the trace when total_ms clears the threshold.
  void note_request(const TraceContext& ctx, const std::vector<SpanRecord>& spans,
                    double total_ms);
  std::vector<RetainedTrace> slow_traces() const;

  uint64_t recorded() const;     // spans written (including overwritten)
  uint64_t overwritten() const;  // spans lost to ring wrap

  double slow_threshold_ms() const { return opt_.slow_ms; }

  // Structured-JSON trace dump: rings + flight recorder, timestamps
  // converted steady -> wall ns through the process ClockAnchor so dumps
  // from different processes share one time axis. `node` labels the
  // emitting process ("router", "shard-0", ...).
  std::string dump_json(const std::string& node) const;

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // seqlock: odd while a writer is inside
    std::atomic<uint64_t> trace_hi{0};
    std::atomic<uint64_t> trace_lo{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> kind{0};
    std::atomic<int64_t> t_start_ns{0};
    std::atomic<int64_t> t_end_ns{0};
    std::atomic<uint64_t> tag{0};
  };
  struct Ring {
    std::atomic<uint64_t> head{0};  // total spans ever written to this ring
    std::unique_ptr<Slot[]> slots;
  };

  Options opt_;
  std::vector<Ring> rings_;

  mutable Mutex slow_mutex_;
  std::deque<RetainedTrace> slow_ PSW_GUARDED_BY(slow_mutex_);
};

}  // namespace psw::obs
