// Exporters and reassembly for the tracing subsystem.
//
// PromText builds a Prometheus text-exposition document (counters, gauges,
// and latency summaries from util/histogram.hpp); the serving layers feed
// it their own metrics structs, keeping obs below serve/net/cluster in the
// dependency order. assemble_traces/format_trace_tree turn span dumps from
// any number of processes (router + shards) back into per-request trees
// with a phase-breakdown table — shared by tools/traceview and the tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/histogram.hpp"

namespace psw::obs {

class PromText {
 public:
  // `labels` is the raw label body without braces, e.g. "shard=\"0\"".
  void counter(const std::string& name, const std::string& help, uint64_t v,
               const std::string& labels = "");
  void gauge(const std::string& name, const std::string& help, double v,
             const std::string& labels = "");
  // Prometheus summary: q50/q90/q99 quantile samples plus _sum and _count.
  // Values stay in milliseconds (the unit is in the metric name).
  void summary_ms(const std::string& name, const std::string& help,
                  const LatencyHistogram& h, const std::string& labels = "");

  const std::string& str() const { return out_; }

 private:
  void header(const std::string& name, const std::string& help,
              const char* type);
  void sample(const std::string& name, const std::string& labels, double v);

  std::vector<std::string> seen_;  // names with emitted HELP/TYPE headers
  std::string out_;
};

// One reassembled request: every span sharing a trace id, deduplicated by
// span id (the same span can appear in a ring dump and the flight
// recorder) and sorted by start time.
struct TraceTree {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  std::vector<SpanRecord> spans;

  std::string id_hex() const { return trace_id_hex(trace_hi, trace_lo); }
  // The request's time extent: [min start, max end] across all spans.
  int64_t start_ns() const;
  int64_t end_ns() const;
  double total_ms() const;
  // Summed duration of spans of one kind (0 when absent).
  double kind_ms(SpanKind k) const;
  bool has_kind(SpanKind k) const;
};

// Groups spans by trace id. Spans may come from multiple dumps with a
// shared wall-clock axis (SpanRecorder::dump_json exports wall ns).
std::vector<TraceTree> assemble_traces(std::vector<SpanRecord> spans);

// Indented per-request tree: parentage from span ids, children ordered by
// start time; spans whose parent is absent from the dump root the tree.
std::string format_trace_tree(const TraceTree& t);

// Phase-breakdown table (kind, count, total ms, share of the request's
// time extent), widest phases first. Uses util/table.hpp.
std::string format_phase_table(const TraceTree& t);

}  // namespace psw::obs
