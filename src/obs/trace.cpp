#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/json.hpp"

namespace psw::obs {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kClient: return "client";
    case SpanKind::kRequest: return "request";
    case SpanKind::kQueueWait: return "queue-wait";
    case SpanKind::kCacheBuild: return "cache-build";
    case SpanKind::kClassify: return "classify";
    case SpanKind::kEncodeVolume: return "encode-volume";
    case SpanKind::kComposite: return "composite";
    case SpanKind::kWarp: return "warp";
    case SpanKind::kFrameEncode: return "frame-encode";
    case SpanKind::kSend: return "send";
    case SpanKind::kRouterProxy: return "router-proxy";
    case SpanKind::kCount: break;
  }
  return "unknown";
}

SpanKind span_kind_from(const std::string& name) {
  for (int i = 0; i < static_cast<int>(SpanKind::kCount); ++i) {
    const auto k = static_cast<SpanKind>(i);
    if (name == to_string(k)) return k;
  }
  return SpanKind::kCount;
}

namespace {

// SplitMix64: full-period mixer, cheap enough to run per id. Seeded per
// stream from the clock and a distinct stream constant so two processes
// started in the same tick still diverge after one step.
uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t seed_entropy(uint64_t stream) {
  const uint64_t t = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const uint64_t w = static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  const uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return t ^ (w << 1) ^ (tid * 0x9e3779b97f4a7c15ULL) ^ stream;
}

std::atomic<uint64_t>& id_state() {
  static std::atomic<uint64_t> state{seed_entropy(0x5350414e5f494453ULL)};
  return state;
}

uint64_t next_id64() {
  // relaxed: id generation only needs per-process uniqueness; the fetch_add
  // reserves a distinct stream position and the mixer spreads it — no
  // ordering with any other memory is implied.
  uint64_t s = id_state().fetch_add(0x9e3779b97f4a7c15ULL,
                                    std::memory_order_relaxed);
  uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t next_span_id() {
  uint64_t id = next_id64();
  while (id == 0) id = next_id64();
  return id;
}

TraceContext make_sampled_trace(uint64_t* root_span) {
  TraceContext ctx;
  uint64_t seed = seed_entropy(0x54524143455f4944ULL);
  ctx.trace_hi = splitmix64(seed) ^ next_id64();
  ctx.trace_lo = next_span_id();
  if (ctx.trace_hi == 0 && ctx.trace_lo == 0) ctx.trace_lo = 1;
  ctx.parent_span = next_span_id();
  ctx.flags = TraceContext::kSampledFlag;
  if (root_span != nullptr) *root_span = ctx.parent_span;
  return ctx;
}

std::string trace_id_hex(uint64_t hi, uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64, hi, lo);
  return buf;
}

std::string trace_id_hex(const TraceContext& ctx) {
  return trace_id_hex(ctx.trace_hi, ctx.trace_lo);
}

std::string span_id_hex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return buf;
}

bool parse_hex_u64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

bool parse_trace_id(const std::string& s, uint64_t* hi, uint64_t* lo) {
  if (s.size() > 16) {
    if (s.size() > 32) return false;
    const size_t split = s.size() - 16;
    return parse_hex_u64(s.substr(0, split), hi) &&
           parse_hex_u64(s.substr(split), lo);
  }
  *hi = 0;
  return parse_hex_u64(s, lo);
}

namespace {

// Stable small ordinal per thread, used to stripe threads across rings.
uint32_t thread_ordinal() {
  static std::atomic<uint32_t> next{0};
  // relaxed: the counter only hands out distinct ordinals; no other state
  // is published through it.
  thread_local uint32_t ord = next.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

}  // namespace

SpanRecorder::SpanRecorder(Options opt) : opt_(opt) {
  if (opt_.rings < 1) opt_.rings = 1;
  if (opt_.ring_capacity < 1) opt_.ring_capacity = 1;
  if (opt_.slow_capacity < 1) opt_.slow_capacity = 1;
  rings_ = std::vector<Ring>(static_cast<size_t>(opt_.rings));
  for (auto& r : rings_) {
    r.slots = std::make_unique<Slot[]>(static_cast<size_t>(opt_.ring_capacity));
  }
}

void SpanRecorder::record(const TraceContext& ctx, const SpanRecord& span) {
  if (!ctx.sampled()) return;  // the hot path: one branch, nothing else
  Ring& ring = rings_[thread_ordinal() % rings_.size()];
  // relaxed: the claim only needs to hand this writer a distinct slot
  // index; publication of the slot contents happens through `seq` below.
  const uint64_t idx = ring.head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring.slots[idx % static_cast<uint64_t>(opt_.ring_capacity)];
  // Seqlock write: odd while mid-write, distinct even value when stable.
  s.seq.store(2 * idx + 1, std::memory_order_release);
  // relaxed: plain payload stores; readers validate with the acquire loads
  // of `seq` around their copy and discard torn slots, so per-field
  // ordering carries no meaning.
  s.trace_hi.store(span.trace_hi, std::memory_order_relaxed);
  s.trace_lo.store(span.trace_lo, std::memory_order_relaxed);
  // relaxed: same audit as the ids above — `seq` publishes the slot.
  s.span_id.store(span.span_id, std::memory_order_relaxed);
  s.parent_id.store(span.parent_id, std::memory_order_relaxed);
  s.kind.store(static_cast<uint64_t>(span.kind), std::memory_order_relaxed);
  s.t_start_ns.store(span.t_start_ns, std::memory_order_relaxed);
  // relaxed: same audit as the ids above — `seq` publishes the slot.
  s.t_end_ns.store(span.t_end_ns, std::memory_order_relaxed);
  s.tag.store(span.tag, std::memory_order_relaxed);
  s.seq.store(2 * idx + 2, std::memory_order_release);
}

std::vector<SpanRecord> SpanRecorder::snapshot() const {
  std::vector<SpanRecord> out;
  for (const auto& ring : rings_) {
    // relaxed: advisory bound on how many slots hold data; a concurrent
    // writer past this read is caught by the seq validation per slot.
    const uint64_t head = ring.head.load(std::memory_order_relaxed);
    const uint64_t cap = static_cast<uint64_t>(opt_.ring_capacity);
    const uint64_t n = head < cap ? head : cap;
    for (uint64_t i = 0; i < n; ++i) {
      const Slot& s = ring.slots[i];
      const uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 == 0 || (seq1 & 1) != 0) continue;  // empty or mid-write
      SpanRecord r;
      // relaxed: payload loads; the seq re-check below rejects any slot a
      // writer touched while we copied.
      r.trace_hi = s.trace_hi.load(std::memory_order_relaxed);
      r.trace_lo = s.trace_lo.load(std::memory_order_relaxed);
      r.span_id = s.span_id.load(std::memory_order_relaxed);
      // relaxed: same audit as the loads above — seq re-check rejects tears.
      r.parent_id = s.parent_id.load(std::memory_order_relaxed);
      r.kind = static_cast<SpanKind>(s.kind.load(std::memory_order_relaxed));
      r.t_start_ns = s.t_start_ns.load(std::memory_order_relaxed);
      r.t_end_ns = s.t_end_ns.load(std::memory_order_relaxed);
      // relaxed: same audit as the loads above — seq re-check rejects tears.
      r.tag = s.tag.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t seq2 = s.seq.load(std::memory_order_acquire);
      if (seq1 != seq2) continue;  // torn: writer raced the copy
      out.push_back(r);
    }
  }
  return out;
}

void SpanRecorder::note_request(const TraceContext& ctx,
                                const std::vector<SpanRecord>& spans,
                                double total_ms) {
  if (!ctx.sampled() || opt_.slow_ms <= 0.0 || total_ms < opt_.slow_ms) return;
  RetainedTrace t;
  t.ctx = ctx;
  t.total_ms = total_ms;
  t.spans = spans;
  MutexLock lock(slow_mutex_);
  if (slow_.size() >= static_cast<size_t>(opt_.slow_capacity)) {
    slow_.pop_front();
  }
  slow_.push_back(std::move(t));
}

std::vector<RetainedTrace> SpanRecorder::slow_traces() const {
  MutexLock lock(slow_mutex_);
  return std::vector<RetainedTrace>(slow_.begin(), slow_.end());
}

uint64_t SpanRecorder::recorded() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    // relaxed: monotonic event count for reporting.
    total += ring.head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SpanRecorder::overwritten() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    // relaxed: monotonic event count for reporting.
    const uint64_t head = ring.head.load(std::memory_order_relaxed);
    const uint64_t cap = static_cast<uint64_t>(opt_.ring_capacity);
    if (head > cap) total += head - cap;
  }
  return total;
}

namespace {

void write_span(JsonWriter& w, const SpanRecord& s, bool to_wall) {
  const int64_t start = to_wall ? steady_to_wall_ns(s.t_start_ns) : s.t_start_ns;
  const int64_t end = to_wall ? steady_to_wall_ns(s.t_end_ns) : s.t_end_ns;
  w.begin_object();
  w.field("trace", trace_id_hex(s.trace_hi, s.trace_lo));
  w.field("span", span_id_hex(s.span_id));
  w.field("parent", span_id_hex(s.parent_id));
  w.field("kind", to_string(s.kind));
  w.field("start_ns", static_cast<uint64_t>(start));
  w.field("end_ns", static_cast<uint64_t>(end));
  w.field("tag", s.tag);
  w.end_object();
}

}  // namespace

std::string SpanRecorder::dump_json(const std::string& node) const {
  JsonWriter w;
  w.begin_object();
  w.field("node", node);
  w.field("anchor_unix_ns", static_cast<uint64_t>(clock_anchor().wall_ns));
  w.field("recorded", recorded());
  w.field("overwritten", overwritten());
  w.key("spans");
  w.begin_array();
  for (const SpanRecord& s : snapshot()) write_span(w, s, /*to_wall=*/true);
  w.end_array();
  w.key("slow");
  w.begin_array();
  for (const RetainedTrace& t : slow_traces()) {
    w.begin_object();
    w.field("trace", trace_id_hex(t.ctx));
    w.field("total_ms", t.total_ms);
    w.key("spans");
    w.begin_array();
    for (const SpanRecord& s : t.spans) write_span(w, s, /*to_wall=*/true);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace psw::obs
