#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/table.hpp"

namespace psw::obs {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void PromText::header(const std::string& name, const std::string& help,
                      const char* type) {
  for (const auto& s : seen_) {
    if (s == name) return;
  }
  seen_.push_back(name);
  out_ += "# HELP " + name + " " + help + "\n";
  out_ += "# TYPE " + name + " " + std::string(type) + "\n";
}

void PromText::sample(const std::string& name, const std::string& labels,
                      double v) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  out_ += num(v);
  out_ += '\n';
}

void PromText::counter(const std::string& name, const std::string& help,
                       uint64_t v, const std::string& labels) {
  header(name, help, "counter");
  sample(name, labels, static_cast<double>(v));
}

void PromText::gauge(const std::string& name, const std::string& help,
                     double v, const std::string& labels) {
  header(name, help, "gauge");
  sample(name, labels, v);
}

void PromText::summary_ms(const std::string& name, const std::string& help,
                          const LatencyHistogram& h,
                          const std::string& labels) {
  header(name, help, "summary");
  const char* quantiles[] = {"0.5", "0.9", "0.99"};
  const double qs[] = {0.5, 0.9, 0.99};
  for (int i = 0; i < 3; ++i) {
    std::string l = "quantile=\"" + std::string(quantiles[i]) + "\"";
    if (!labels.empty()) l = labels + "," + l;
    sample(name, l, h.quantile_ms(qs[i]));
  }
  sample(name + "_sum", labels, h.sum_ms());
  sample(name + "_count", labels, static_cast<double>(h.count()));
}

int64_t TraceTree::start_ns() const {
  int64_t v = 0;
  for (const auto& s : spans) {
    if (v == 0 || s.t_start_ns < v) v = s.t_start_ns;
  }
  return v;
}

int64_t TraceTree::end_ns() const {
  int64_t v = 0;
  for (const auto& s : spans) {
    if (s.t_end_ns > v) v = s.t_end_ns;
  }
  return v;
}

double TraceTree::total_ms() const {
  return static_cast<double>(end_ns() - start_ns()) / 1e6;
}

double TraceTree::kind_ms(SpanKind k) const {
  double ms = 0.0;
  for (const auto& s : spans) {
    if (s.kind == k) ms += s.duration_ms();
  }
  return ms;
}

bool TraceTree::has_kind(SpanKind k) const {
  for (const auto& s : spans) {
    if (s.kind == k) return true;
  }
  return false;
}

std::vector<TraceTree> assemble_traces(std::vector<SpanRecord> spans) {
  // Group by trace id, preserving first-seen trace order; dedup span ids
  // within a trace (ring dump + flight recorder can both carry a span).
  std::vector<TraceTree> out;
  std::map<std::pair<uint64_t, uint64_t>, size_t> index;
  std::unordered_set<uint64_t> seen_span;
  for (const SpanRecord& s : spans) {
    const auto key = std::make_pair(s.trace_hi, s.trace_lo);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, out.size()).first;
      out.push_back(TraceTree{s.trace_hi, s.trace_lo, {}});
    }
    TraceTree& t = out[it->second];
    bool dup = false;
    for (const auto& existing : t.spans) {
      if (existing.span_id == s.span_id) {
        dup = true;
        break;
      }
    }
    if (!dup) t.spans.push_back(s);
  }
  for (TraceTree& t : out) {
    std::sort(t.spans.begin(), t.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.t_start_ns != b.t_start_ns) return a.t_start_ns < b.t_start_ns;
                return a.span_id < b.span_id;
              });
  }
  return out;
}

namespace {

void format_span_line(std::string& out, const TraceTree& t,
                      const SpanRecord& s, int depth) {
  const double offset_ms =
      static_cast<double>(s.t_start_ns - t.start_ns()) / 1e6;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%*s%-13s %9.3f ms  +%8.3f ms  span=%s tag=%llu\n",
                depth * 2, "", to_string(s.kind), s.duration_ms(), offset_ms,
                span_id_hex(s.span_id).c_str(),
                static_cast<unsigned long long>(s.tag));
  out += buf;
}

void format_subtree(std::string& out, const TraceTree& t,
                    const std::unordered_map<uint64_t, std::vector<size_t>>& kids,
                    size_t idx, int depth) {
  const SpanRecord& s = t.spans[idx];
  format_span_line(out, t, s, depth);
  auto it = kids.find(s.span_id);
  if (it == kids.end() || depth > 16) return;
  for (size_t child : it->second) {
    format_subtree(out, t, kids, child, depth + 1);
  }
}

}  // namespace

std::string format_trace_tree(const TraceTree& t) {
  std::string out = "trace " + t.id_hex() + "  " + fmt(t.total_ms(), 3) +
                    " ms  " + std::to_string(t.spans.size()) + " spans\n";
  std::unordered_set<uint64_t> ids;
  for (const auto& s : t.spans) ids.insert(s.span_id);
  // parent span id -> children (span order is already by start time)
  std::unordered_map<uint64_t, std::vector<size_t>> kids;
  std::vector<size_t> roots;
  for (size_t i = 0; i < t.spans.size(); ++i) {
    const SpanRecord& s = t.spans[i];
    if (s.parent_id != 0 && s.parent_id != s.span_id &&
        ids.count(s.parent_id) != 0) {
      kids[s.parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  for (size_t r : roots) format_subtree(out, t, kids, r, 1);
  return out;
}

std::string format_phase_table(const TraceTree& t) {
  struct Phase {
    SpanKind kind;
    int count = 0;
    double total_ms = 0.0;
  };
  std::vector<Phase> phases;
  for (const auto& s : t.spans) {
    Phase* p = nullptr;
    for (auto& existing : phases) {
      if (existing.kind == s.kind) {
        p = &existing;
        break;
      }
    }
    if (p == nullptr) {
      phases.push_back(Phase{s.kind, 0, 0.0});
      p = &phases.back();
    }
    p->count += 1;
    p->total_ms += s.duration_ms();
  }
  std::sort(phases.begin(), phases.end(),
            [](const Phase& a, const Phase& b) { return a.total_ms > b.total_ms; });
  const double extent_ms = t.total_ms();
  TextTable table({"phase", "spans", "total ms", "% of request"});
  for (const auto& p : phases) {
    const double share = extent_ms > 0.0 ? 100.0 * p.total_ms / extent_ms : 0.0;
    table.add_row({to_string(p.kind), std::to_string(p.count),
                   fmt(p.total_ms, 3), fmt(share, 1)});
  }
  return table.to_string();
}

}  // namespace psw::obs
