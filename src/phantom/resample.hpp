// Trilinear volume resampling. The paper (§3.3) generated its 512^3 and
// 640^3 data sets by up-sampling the 256^3 raw data along each dimension;
// this tool reproduces that methodology.
#pragma once

#include "core/volume.hpp"

namespace psw {

// Resamples `src` to the given dimensions with trilinear interpolation
// (sample positions are aligned so corners map to corners).
DensityVolume resample(const DensityVolume& src, int nx, int ny, int nz);

}  // namespace psw
