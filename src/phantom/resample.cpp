#include "phantom/resample.hpp"

#include <cmath>

namespace psw {

DensityVolume resample(const DensityVolume& src, int nx, int ny, int nz) {
  DensityVolume dst(nx, ny, nz, 0);
  if (src.empty() || nx <= 0 || ny <= 0 || nz <= 0) return dst;

  const double sx = nx > 1 ? static_cast<double>(src.nx() - 1) / (nx - 1) : 0.0;
  const double sy = ny > 1 ? static_cast<double>(src.ny() - 1) / (ny - 1) : 0.0;
  const double sz = nz > 1 ? static_cast<double>(src.nz() - 1) / (nz - 1) : 0.0;

  for (int z = 0; z < nz; ++z) {
    const double fz = z * sz;
    const int z0 = static_cast<int>(fz);
    const double wz = fz - z0;
    for (int y = 0; y < ny; ++y) {
      const double fy = y * sy;
      const int y0 = static_cast<int>(fy);
      const double wy = fy - y0;
      for (int x = 0; x < nx; ++x) {
        const double fx = x * sx;
        const int x0 = static_cast<int>(fx);
        const double wx = fx - x0;
        double acc = 0.0;
        for (int dz = 0; dz <= 1; ++dz) {
          for (int dy = 0; dy <= 1; ++dy) {
            for (int dx = 0; dx <= 1; ++dx) {
              const double w =
                  (dx ? wx : 1 - wx) * (dy ? wy : 1 - wy) * (dz ? wz : 1 - wz);
              if (w == 0.0) continue;
              acc += w * src.at_clamped(x0 + dx, y0 + dy, z0 + dz);
            }
          }
        }
        dst.at(x, y, z) = static_cast<uint8_t>(std::lround(std::clamp(acc, 0.0, 255.0)));
      }
    }
  }
  return dst;
}

}  // namespace psw
