#include "phantom/phantom.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "util/vec.hpp"

namespace psw {

namespace {

// Periodic value-noise lattice: smooth pseudo-random field used to perturb
// tissue boundaries so runs are coherent but not perfectly ellipsoidal.
class ValueNoise {
 public:
  ValueNoise(uint64_t seed, int period) : period_(period), lattice_(period * period * period) {
    SplitMix64 rng(seed);
    for (auto& v : lattice_) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  float sample(double x, double y, double z) const {
    const int x0 = wrap(static_cast<int>(std::floor(x)));
    const int y0 = wrap(static_cast<int>(std::floor(y)));
    const int z0 = wrap(static_cast<int>(std::floor(z)));
    const double fx = smooth(x - std::floor(x));
    const double fy = smooth(y - std::floor(y));
    const double fz = smooth(z - std::floor(z));
    double acc = 0.0;
    for (int dz = 0; dz <= 1; ++dz) {
      for (int dy = 0; dy <= 1; ++dy) {
        for (int dx = 0; dx <= 1; ++dx) {
          const double w = (dx ? fx : 1 - fx) * (dy ? fy : 1 - fy) * (dz ? fz : 1 - fz);
          acc += w * lat(x0 + dx, y0 + dy, z0 + dz);
        }
      }
    }
    return static_cast<float>(acc);
  }

 private:
  int wrap(int i) const { return ((i % period_) + period_) % period_; }
  static double smooth(double t) { return t * t * (3.0 - 2.0 * t); }
  float lat(int x, int y, int z) const {
    return lattice_[(static_cast<size_t>(wrap(z)) * period_ + wrap(y)) * period_ + wrap(x)];
  }

  int period_;
  std::vector<float> lattice_;
};

struct Ellipsoid {
  Vec3 center;   // in normalized [0,1]^3 coordinates
  Vec3 radius;   // semi-axes, normalized
  // Signed normalized distance: <1 inside, >1 outside.
  double level(const Vec3& p) const {
    const double dx = (p.x - center.x) / radius.x;
    const double dy = (p.y - center.y) / radius.y;
    const double dz = (p.z - center.z) / radius.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  }
};

}  // namespace

DensityVolume make_mri_brain(int nx, int ny, int nz, uint64_t seed) {
  DensityVolume vol(nx, ny, nz, 0);
  const ValueNoise folds(seed, 16);
  const ValueNoise texture(seed ^ 0x9e3779b9ULL, 12);

  const Ellipsoid scalp{{0.5, 0.5, 0.5}, {0.42, 0.46, 0.40}};
  const Ellipsoid cortex{{0.5, 0.5, 0.5}, {0.36, 0.40, 0.34}};
  const Ellipsoid white{{0.5, 0.5, 0.5}, {0.28, 0.32, 0.26}};
  const Ellipsoid vent_l{{0.42, 0.48, 0.52}, {0.06, 0.12, 0.05}};
  const Ellipsoid vent_r{{0.58, 0.48, 0.52}, {0.06, 0.12, 0.05}};
  const Ellipsoid stem{{0.5, 0.78, 0.45}, {0.08, 0.16, 0.08}};

  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const Vec3 p{(x + 0.5) / nx, (y + 0.5) / ny, (z + 0.5) / nz};
        // Fold perturbation shifts the cortical boundary in and out,
        // creating sulci-like grooves with long coherent runs.
        const double fold = 0.05 * folds.sample(p.x * 10, p.y * 10, p.z * 10);
        const double tex = texture.sample(p.x * 14, p.y * 14, p.z * 14);

        double density = 0.0;
        if (scalp.level(p) < 1.0 && cortex.level(p) + fold > 1.04) {
          // Thin scalp/skin shell, mostly transparent after classification.
          if (scalp.level(p) > 0.93) density = 60.0 + 6.0 * tex;
        }
        if (cortex.level(p) + fold < 1.0) density = 110.0 + 10.0 * tex;       // gray matter
        if (white.level(p) + 0.6 * fold < 1.0) density = 170.0 + 8.0 * tex;   // white matter
        if (stem.level(p) < 1.0) density = 150.0 + 8.0 * tex;                 // brain stem
        if (vent_l.level(p) < 1.0 || vent_r.level(p) < 1.0) density = 40.0;   // CSF ventricles
        vol.at(x, y, z) = static_cast<uint8_t>(std::clamp(density, 0.0, 255.0));
      }
    }
  }
  return vol;
}

DensityVolume make_ct_head(int nx, int ny, int nz, uint64_t seed) {
  DensityVolume vol(nx, ny, nz, 0);
  const ValueNoise bumps(seed, 16);
  const ValueNoise texture(seed ^ 0x7f4a7c15ULL, 12);

  const Ellipsoid skull_out{{0.5, 0.5, 0.52}, {0.40, 0.44, 0.38}};
  const Ellipsoid skull_in{{0.5, 0.5, 0.52}, {0.345, 0.385, 0.325}};
  const Ellipsoid sinus{{0.5, 0.30, 0.42}, {0.07, 0.10, 0.07}};
  const Ellipsoid airway{{0.5, 0.38, 0.30}, {0.04, 0.12, 0.10}};
  const Ellipsoid jaw{{0.5, 0.40, 0.18}, {0.20, 0.16, 0.10}};

  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const Vec3 p{(x + 0.5) / nx, (y + 0.5) / ny, (z + 0.5) / nz};
        const double bump = 0.03 * bumps.sample(p.x * 9, p.y * 9, p.z * 9);
        const double tex = texture.sample(p.x * 13, p.y * 13, p.z * 13);

        double density = 0.0;
        const double lo = skull_out.level(p) + bump;
        const double li = skull_in.level(p) + bump;
        if (lo < 1.0) density = 90.0 + 8.0 * tex;            // soft tissue fills the head
        if (lo < 1.0 && li > 1.0) density = 230.0 + 6.0 * tex;  // skull shell (bone)
        if (jaw.level(p) + bump < 1.0) density = 225.0 + 6.0 * tex;  // mandible
        if (sinus.level(p) < 1.0 || airway.level(p) < 1.0) density = 5.0;  // air cavities
        vol.at(x, y, z) = static_cast<uint8_t>(std::clamp(density, 0.0, 255.0));
      }
    }
  }
  return vol;
}

double transparent_fraction(const DensityVolume& v, uint8_t threshold) {
  if (v.empty()) return 1.0;
  size_t transparent = 0;
  const uint8_t* d = v.data();
  for (size_t i = 0; i < v.size(); ++i) {
    if (d[i] < threshold) ++transparent;
  }
  return static_cast<double>(transparent) / static_cast<double>(v.size());
}

}  // namespace psw
