// Procedural stand-ins for the paper's input data (§3.3): an MRI scan of a
// human brain and a CT scan of a human head. We do not have the original
// scans, so these generators synthesize volumes with the *statistics* the
// algorithms care about: 70-95% of voxels transparent after classification,
// spatially coherent opaque structure (long runs), nested tissue layers with
// distinct density bands, and an empty margin around the object.
#pragma once

#include <cstdint>

#include "core/volume.hpp"

namespace psw {

// MRI brain phantom: ellipsoidal cortex with folded-surface perturbation
// (sulci/gyri analogue), interior white-matter body, ventricle cavities and
// a faint skin/scalp shell. Densities: background ~0, CSF ~40, gray matter
// ~110, white matter ~170, skin ~60.
DensityVolume make_mri_brain(int nx, int ny, int nz, uint64_t seed = 0x5eedbeef);

// CT head phantom: high-density skull shell enclosing soft tissue, with
// sinus/airway cavities and mandible-like lower structure. Densities:
// air ~0, soft tissue ~90, bone ~230.
DensityVolume make_ct_head(int nx, int ny, int nz, uint64_t seed = 0xc7c7c7c7);

// Fraction of voxels with density below the given threshold; the paper notes
// that for typical medical volumes 70-95% of voxels are transparent.
double transparent_fraction(const DensityVolume& v, uint8_t threshold);

// Named dataset sizes mirroring §3.3. The paper's "256^3" MRI set is really
// 256x256x167 and the "512^3" set 511x511x333; we keep those aspect ratios.
struct DatasetSpec {
  const char* name;
  int nx, ny, nz;
};

// MRI brain dataset sizes used throughout the evaluation (128/256/512-class
// plus the supplementary 640-class set).
inline constexpr DatasetSpec kMriSpecs[] = {
    {"mri-128", 128, 128, 128},
    {"mri-256", 256, 256, 167},
    {"mri-512", 511, 511, 333},
    {"mri-640", 640, 640, 417},
};

// CT head dataset sizes (§3.3 / Figure 15; the 512-class CT set is 511^3).
inline constexpr DatasetSpec kCtSpecs[] = {
    {"ct-128", 128, 128, 128},
    {"ct-256", 256, 256, 256},
    {"ct-512", 511, 511, 510},
};

}  // namespace psw
