#include "cluster/metrics.hpp"

#include <cctype>

#include "util/json.hpp"

namespace psw::cluster {

const char* to_string(ShardState s) {
  switch (s) {
    case ShardState::kConnecting: return "connecting";
    case ShardState::kHealthy: return "healthy";
    case ShardState::kDraining: return "draining";
    case ShardState::kEjected: return "ejected";
  }
  return "?";
}

namespace {

// Parses the unsigned integer following `"key":` starting at `from`;
// returns false when the key is absent before `until`.
bool scan_from(const std::string& json, const std::string& key, size_t from,
               size_t until, uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos || at >= until) return false;
  size_t p = at + needle.size();
  while (p < until && std::isspace(static_cast<unsigned char>(json[p]))) ++p;
  uint64_t v = 0;
  bool any = false;
  while (p < until && std::isdigit(static_cast<unsigned char>(json[p]))) {
    v = v * 10 + static_cast<uint64_t>(json[p] - '0');
    any = true;
    ++p;
  }
  if (!any) return false;
  *out = v;
  return true;
}

// [start, end) of the brace-balanced block of the first `"object": {`.
bool object_extent(const std::string& json, const std::string& object,
                   size_t* begin, size_t* end) {
  const std::string needle = "\"" + object + "\":";
  size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  size_t p = json.find('{', at + needle.size());
  if (p == std::string::npos) return false;
  int depth = 0;
  for (size_t i = p; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) {
      *begin = p;
      *end = i + 1;
      return true;
    }
  }
  return false;
}

}  // namespace

uint64_t scan_json_u64(const std::string& json, const std::string& key) {
  uint64_t v = 0;
  scan_from(json, key, 0, json.size(), &v);
  return v;
}

uint64_t scan_json_u64_in(const std::string& json, const std::string& object,
                          const std::string& key) {
  size_t begin = 0, end = 0;
  if (!object_extent(json, object, &begin, &end)) return 0;
  uint64_t v = 0;
  scan_from(json, key, begin, end, &v);
  return v;
}

std::string aggregate_metrics_json(const RouterMetrics& m,
                                   const std::vector<ShardSnapshot>& shards) {
  // Cluster rollups from the embedded shard documents, plus the merged
  // router-observed latency distribution.
  uint64_t completed = 0, cache_hits = 0, cache_misses = 0;
  size_t healthy = 0, in_ring = 0;
  LatencyHistogram merged;
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardSnapshot& s = shards[i];
    completed += scan_json_u64_in(s.metrics_json, "completion", "completed");
    cache_hits += scan_json_u64_in(s.metrics_json, "volume_cache", "hits");
    cache_misses += scan_json_u64_in(s.metrics_json, "volume_cache", "misses");
    if (s.state == ShardState::kHealthy || s.state == ShardState::kDraining) {
      ++healthy;
    }
    if (s.in_ring) ++in_ring;
    if (i < m.shards.size()) merged.merge(m.shards[i]->frame_latency_ms);
  }

  JsonWriter w;
  w.begin_object();
  w.key("router").begin_object()
      .field("clients_accepted", m.clients_accepted.load())
      .field("clients_rejected", m.clients_rejected.load())
      .field("hello_rejects", m.hello_rejects.load())
      .field("protocol_errors", m.protocol_errors.load())
      .field("requests_routed", m.requests_routed.load())
      .field("streams_routed", m.streams_routed.load())
      .field("frames_forwarded", m.frames_forwarded.load())
      .field("metrics_served", m.metrics_served.load())
      .field("reroutes", m.reroutes.load())
      .field("unavailable_rejections", m.unavailable_rejections.load())
      .field("orphaned_replies", m.orphaned_replies.load());
  w.key("frame_latency_ms");
  merged.write_json(w);
  w.end_object();

  w.key("cluster").begin_object()
      .field("shards", static_cast<uint64_t>(shards.size()))
      .field("shards_healthy", static_cast<uint64_t>(healthy))
      .field("shards_in_ring", static_cast<uint64_t>(in_ring))
      .field("frames_completed", completed)
      .field("cache_hits", cache_hits)
      .field("cache_misses", cache_misses)
      .end_object();

  w.key("shards").begin_array();
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardSnapshot& s = shards[i];
    w.begin_object()
        .field("id", s.id)
        .field("state", to_string(s.state))
        .field("weight", s.weight)
        .field("in_ring", s.in_ring);
    if (i < m.shards.size()) {
      const ShardCounters& c = *m.shards[i];
      w.field("routed_requests", c.routed_requests.load())
          .field("routed_streams", c.routed_streams.load())
          .field("forwarded_frames", c.forwarded_frames.load())
          .field("forwarded_errors", c.forwarded_errors.load())
          .field("probes_ok", c.probes_ok.load())
          .field("probe_failures", c.probe_failures.load())
          .field("ejections", c.ejections.load())
          .field("rejoins", c.rejoins.load())
          .field("inflight_requests", c.inflight_requests.load())
          .field("active_streams", c.active_streams.load());
      w.key("frame_latency_ms");
      c.frame_latency_ms.write_json(w);
    }
    // The shard's own metrics document, embedded verbatim (it is already
    // JSON; an empty snapshot becomes null).
    w.key("metrics");
    if (s.metrics_json.empty()) {
      w.value("null");  // placeholder replaced below
    } else {
      w.value("@SHARD@");  // placeholder replaced below
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  // JsonWriter only emits scalar values; splice the raw shard documents in
  // place of the placeholders it wrote.
  std::string out = w.str();
  size_t cursor = 0;
  for (const ShardSnapshot& s : shards) {
    const std::string placeholder =
        s.metrics_json.empty() ? "\"null\"" : "\"@SHARD@\"";
    const size_t at = out.find(placeholder, cursor);
    if (at == std::string::npos) break;
    const std::string replacement = s.metrics_json.empty() ? "null" : s.metrics_json;
    out.replace(at, placeholder.size(), replacement);
    cursor = at + replacement.size();
  }
  return out;
}

}  // namespace psw::cluster
