#include "cluster/router.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>

#include "obs/export.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace psw::cluster {

using net::MsgType;
using net::WireMessage;
using net::WireStatus;
using serve::Clock;

namespace {

constexpr size_t kReadChunk = 64 * 1024;
// Compact a flat send buffer once this many flushed bytes accumulate.
constexpr size_t kCompactThreshold = 256 * 1024;

double ms_since(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

// Reads everything currently available into `in`. Returns false on EOF or a
// hard error (the connection is done).
bool read_available(int fd, std::vector<uint8_t>* in) {
  for (;;) {
    const size_t old = in->size();
    in->resize(old + kReadChunk);
    const ssize_t n = ::recv(fd, in->data() + old, kReadChunk, 0);
    if (n > 0) {
      in->resize(old + static_cast<size_t>(n));
      if (static_cast<size_t>(n) < kReadChunk) return true;
      continue;
    }
    in->resize(old);
    if (n == 0) return false;  // orderly EOF
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

// Decodes complete wire messages off the front of `in`, calling
// handler(msg) for each. Returns false when the connection must close
// (framing error, or the handler said stop); *framing_error reports which.
template <typename Handler>
bool drain_messages(std::vector<uint8_t>* in, bool* framing_error,
                    Handler&& handler) {
  *framing_error = false;
  size_t off = 0;
  bool keep = true;
  while (keep) {
    WireMessage msg;
    size_t consumed = 0;
    const WireStatus status =
        net::decode_message(in->data() + off, in->size() - off, &msg, &consumed);
    if (status == WireStatus::kNeedMore) break;
    if (status != WireStatus::kOk) {
      *framing_error = true;
      keep = false;
      break;
    }
    off += consumed;
    keep = handler(msg);
  }
  if (off > 0) in->erase(in->begin(), in->begin() + static_cast<long>(off));
  return keep;
}

}  // namespace

Router::Router(std::vector<ShardSpec> shards, RouterOptions options)
    : specs_(std::move(shards)),
      options_(std::move(options)),
      metrics_(specs_.size()),
      ring_(options_.vnodes),
      published_state_(new std::atomic<int>[specs_.size()]),
      drain_want_(new std::atomic<bool>[specs_.size()]) {
  shards_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    shards_[i].spec = specs_[i];
    published_state_[i].store(static_cast<int>(ShardState::kConnecting));
    drain_want_[i].store(false);
  }
  {
    MutexLock lock(snapshot_mutex_);
    shard_metrics_.resize(specs_.size());
  }
}

Router::~Router() { stop(); }

bool Router::start(std::string* error) {
  if (running()) return true;
  listener_ = net::tcp_listen(options_.bind_address, options_.port,
                              options_.backlog, error);
  if (!listener_.valid()) return false;
  net::set_nonblocking(listener_.get(), true);
  port_ = net::local_port(listener_.get());

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    listener_.reset();
    return false;
  }
  wake_rd_.reset(pipe_fds[0]);
  wake_wr_.reset(pipe_fds[1]);
  net::set_nonblocking(wake_rd_.get(), true);
  net::set_nonblocking(wake_wr_.get(), true);

  stopping_.store(false);
  const Clock::time_point now = Clock::now();
  for (Shard& s : shards_) {
    s.next_reconnect = now;  // connect control channels immediately
    s.backoff_ms = options_.reconnect_backoff_ms;
  }
  thread_ = std::thread([this] { poll_loop(); });
  return true;
}

void Router::stop() {
  if (!running()) return;
  stopping_.store(true);
  wake();
  thread_.join();
  conns_.clear();
  for (Shard& s : shards_) {
    s.ctl.reset();
    s.connecting = false;
    s.hello_done = false;
    s.in.clear();
    s.out.clear();
    s.out_off = 0;
  }
  listener_.reset();
  wake_rd_.reset();
  wake_wr_.reset();
}

void Router::wake() {
  if (!wake_wr_.valid()) return;
  const uint8_t byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_.get(), &byte, 1);
}

bool Router::wait_healthy(size_t n, double timeout_ms) const {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(static_cast<int64_t>(timeout_ms));
  for (;;) {
    size_t healthy = 0;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const ShardState s = shard_state(i);
      if (s == ShardState::kHealthy || s == ShardState::kDraining) ++healthy;
    }
    if (healthy >= n) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool Router::set_drain(const std::string& shard_id, bool draining) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].id == shard_id) {
      // relaxed: a one-word request flag; the poll thread re-reads it on
      // its next iteration and the pipe write below provides the wakeup.
      drain_want_[i].store(draining, std::memory_order_relaxed);
      wake();
      return true;
    }
  }
  return false;
}

std::string Router::metrics_json() const {
  std::vector<ShardSnapshot> snaps(specs_.size());
  {
    MutexLock lock(snapshot_mutex_);
    for (size_t i = 0; i < specs_.size(); ++i) {
      snaps[i].metrics_json = shard_metrics_[i];
    }
  }
  for (size_t i = 0; i < specs_.size(); ++i) {
    snaps[i].id = specs_[i].id;
    snaps[i].weight = specs_[i].weight;
    snaps[i].state = shard_state(i);
    snaps[i].in_ring = snaps[i].state == ShardState::kHealthy;
  }
  return aggregate_metrics_json(metrics_, snaps);
}

std::string Router::prometheus_text() const {
  obs::PromText p;
  p.counter("psw_router_clients_accepted_total", "Client connections accepted",
            metrics_.clients_accepted.load());
  p.counter("psw_router_clients_rejected_total",
            "Client connections rejected at the accept cap",
            metrics_.clients_rejected.load());
  p.counter("psw_router_protocol_errors_total", "Framing/decode failures",
            metrics_.protocol_errors.load());
  p.counter("psw_router_requests_routed_total", "Render requests routed",
            metrics_.requests_routed.load());
  p.counter("psw_router_streams_routed_total", "Streams routed",
            metrics_.streams_routed.load());
  p.counter("psw_router_frames_forwarded_total", "Frames forwarded",
            metrics_.frames_forwarded.load());
  p.counter("psw_router_reroutes_total", "Sessions re-pinned after shard loss",
            metrics_.reroutes.load());
  p.counter("psw_router_unavailable_total",
            "Requests rejected with no eligible shard",
            metrics_.unavailable_rejections.load());
  for (size_t i = 0; i < specs_.size(); ++i) {
    const ShardCounters& c = *metrics_.shards[i];
    const std::string label = "shard=\"" + specs_[i].id + "\"";
    p.counter("psw_router_shard_requests_total", "Requests routed per shard",
              c.routed_requests.load(), label);
    p.counter("psw_router_shard_frames_total", "Frames forwarded per shard",
              c.forwarded_frames.load(), label);
    p.counter("psw_router_shard_ejections_total", "Shard ejections",
              c.ejections.load(), label);
    p.gauge("psw_router_shard_inflight", "Routed, unanswered requests",
            static_cast<double>(c.inflight_requests.load()), label);
    p.summary_ms("psw_router_shard_frame_latency_ms",
                 "Server total_ms of forwarded frames", c.frame_latency_ms,
                 label);
  }
  if (options_.recorder != nullptr) {
    p.counter("psw_trace_spans_recorded_total", "Spans recorded",
              options_.recorder->recorded());
    p.counter("psw_trace_spans_overwritten_total", "Spans lost to ring wrap",
              options_.recorder->overwritten());
  }
  return p.str();
}

std::string Router::trace_dump_json() const {
  if (options_.recorder != nullptr) {
    return options_.recorder->dump_json(options_.trace_node);
  }
  JsonWriter w;
  w.begin_object();
  w.field("node", options_.trace_node);
  w.field("anchor_unix_ns", static_cast<uint64_t>(clock_anchor().wall_ns));
  w.field("recorded", static_cast<uint64_t>(0));
  w.field("overwritten", static_cast<uint64_t>(0));
  w.key("spans");
  w.begin_array();
  w.end_array();
  w.key("slow");
  w.begin_array();
  w.end_array();
  w.end_object();
  return w.str();
}

// --------------------------------------------------------------------------
// Poll loop
// --------------------------------------------------------------------------

void Router::poll_loop() {
  struct Slot {
    enum class Kind { kClient, kUpstream, kCtl } kind;
    uint64_t conn_id = 0;
    size_t shard = 0;
  };
  std::vector<pollfd> fds;
  std::vector<Slot> slots;

  while (!stopping_.load()) {
    const Clock::time_point now = Clock::now();

    // Apply administrative drain requests.
    for (size_t i = 0; i < shards_.size(); ++i) {
      // relaxed: see set_drain — the flag is a standalone request word.
      const bool want = drain_want_[i].load(std::memory_order_relaxed);
      if (want != shards_[i].draining) {
        shards_[i].draining = want;
        rebuild_ring();
        publish_state(i);
      }
    }

    // Advance shard control channels: reconnects, probes, probe timeouts.
    for (Shard& s : shards_) advance_shard(s, now);

    // Build the poll set.
    fds.clear();
    slots.clear();
    fds.push_back({listener_.get(), POLLIN, 0});
    fds.push_back({wake_rd_.get(), POLLIN, 0});
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn.out_off < conn.out.size()) events |= POLLOUT;
      fds.push_back({conn.fd.get(), events, 0});
      slots.push_back({Slot::Kind::kClient, id, 0});
      for (auto& [shard, up] : conn.upstreams) {
        if (!up.fd.valid()) continue;
        short uevents = 0;
        if (up.connecting) {
          uevents = POLLOUT;
        } else {
          uevents = POLLIN;
          if (up.out_off < up.out.size()) uevents |= POLLOUT;
        }
        fds.push_back({up.fd.get(), uevents, 0});
        slots.push_back({Slot::Kind::kUpstream, id, shard});
      }
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = shards_[i];
      if (!s.ctl.valid()) continue;
      short events = 0;
      if (s.connecting) {
        events = POLLOUT;
      } else {
        events = POLLIN;
        if (s.out_off < s.out.size()) events |= POLLOUT;
      }
      fds.push_back({s.ctl.get(), events, 0});
      slots.push_back({Slot::Kind::kCtl, 0, i});
    }

    ::poll(fds.data(), fds.size(), 50);
    if (stopping_.load()) break;

    if (fds[1].revents & POLLIN) {
      uint8_t buf[64];
      while (::read(wake_rd_.get(), buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) accept_ready();

    std::vector<uint64_t> dead_clients;
    std::vector<size_t> dead_shards;  // via data-path upstream loss

    for (size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      const short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      const auto it = conns_.find(slot.conn_id);

      switch (slot.kind) {
        case Slot::Kind::kClient: {
          if (it == conns_.end()) break;
          ClientConn& conn = it->second;
          if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
            if (!(revents & POLLIN)) {
              dead_clients.push_back(conn.id);
              break;
            }
          }
          if (revents & POLLIN) client_read(conn);
          break;
        }
        case Slot::Kind::kUpstream: {
          if (it == conns_.end()) break;
          ClientConn& conn = it->second;
          const auto uit = conn.upstreams.find(slot.shard);
          if (uit == conn.upstreams.end()) break;
          Upstream& up = uit->second;
          if (up.connecting && (revents & (POLLOUT | POLLERR | POLLHUP))) {
            const int err = net::finish_nonblocking_connect(up.fd.get());
            if (err != 0) {
              up.broken = true;
              dead_shards.push_back(up.shard);
              break;
            }
            up.connecting = false;
          }
          if (!up.connecting && (revents & POLLIN)) upstream_read(conn, up);
          if (up.broken) dead_shards.push_back(up.shard);
          break;
        }
        case Slot::Kind::kCtl: {
          Shard& s = shards_[slot.shard];
          if (!s.ctl.valid()) break;
          if (s.connecting && (revents & (POLLOUT | POLLERR | POLLHUP))) {
            const int err = net::finish_nonblocking_connect(s.ctl.get());
            if (err != 0) {
              ctl_failure(s, "connect failed");
              break;
            }
            s.connecting = false;
            // Handshake first; the first probe follows the hello ack.
            net::HelloMsg hello;
            hello.version = net::kProtocolVersion;
            hello.name = options_.name;
            std::vector<uint8_t> payload;
            hello.encode(&payload);
            queue_message(&s.out, MsgType::kHello, payload);
          }
          if (!s.connecting && (revents & POLLIN)) shard_ctl_read(s);
          break;
        }
      }
    }

    // Flush everything with pending output (newly queued bytes included).
    for (auto& [id, conn] : conns_) {
      if (conn.out_off < conn.out.size()) {
        if (!flush_out(conn.fd.get(), &conn.out, &conn.out_off)) {
          dead_clients.push_back(id);
          continue;
        }
      }
      if (conn.out.size() - conn.out_off > options_.max_send_buffer_bytes) {
        // A reader this slow would make the router buffer frames without
        // bound (forwarded delta frames cannot be dropped: the codec chain
        // breaks). Cut the connection instead.
        metrics_.protocol_errors.fetch_add(1);
        dead_clients.push_back(id);
        continue;
      }
      if (conn.closing && conn.out_off >= conn.out.size()) {
        dead_clients.push_back(id);
        continue;
      }
      for (auto& [shard, up] : conn.upstreams) {
        if (!up.fd.valid() || up.connecting || up.broken) continue;
        if (up.out_off < up.out.size()) {
          if (!flush_out(up.fd.get(), &up.out, &up.out_off)) {
            up.broken = true;
            dead_shards.push_back(shard);
          }
        }
      }
    }
    for (Shard& s : shards_) {
      if (!s.ctl.valid() || s.connecting) continue;
      if (s.out_off < s.out.size()) {
        if (!flush_out(s.ctl.get(), &s.out, &s.out_off)) {
          ctl_failure(s, "control write failed");
        }
      }
    }

    // Idle-harvest clients with nothing outstanding.
    if (options_.idle_timeout_ms > 0) {
      for (auto& [id, conn] : conns_) {
        bool outstanding = conn.out_off < conn.out.size();
        for (auto& [shard, up] : conn.upstreams) {
          if (!up.inflight_requests.empty() || !up.active_streams.empty()) {
            outstanding = true;
          }
        }
        if (!outstanding && ms_since(conn.last_activity, now) > options_.idle_timeout_ms) {
          dead_clients.push_back(id);
        }
      }
    }

    // Data-path losses eject the shard (which notifies every affected
    // client), then dead clients go away.
    std::sort(dead_shards.begin(), dead_shards.end());
    dead_shards.erase(std::unique(dead_shards.begin(), dead_shards.end()),
                      dead_shards.end());
    for (const size_t shard : dead_shards) {
      eject_shard(shard, "upstream connection lost");
    }
    std::sort(dead_clients.begin(), dead_clients.end());
    dead_clients.erase(std::unique(dead_clients.begin(), dead_clients.end()),
                       dead_clients.end());
    for (const uint64_t id : dead_clients) close_client(id);
  }
}

void Router::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) return;
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      metrics_.clients_rejected.fetch_add(1);
      ::close(fd);
      continue;
    }
    net::set_nonblocking(fd, true);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ClientConn conn;
    conn.id = next_conn_id_++;
    conn.fd.reset(fd);
    conn.last_activity = Clock::now();
    metrics_.clients_accepted.fetch_add(1);
    conns_.emplace(conn.id, std::move(conn));
  }
}

// --------------------------------------------------------------------------
// Client face
// --------------------------------------------------------------------------

void Router::client_read(ClientConn& conn) {
  if (!read_available(conn.fd.get(), &conn.in)) {
    conn.closing = true;
    return;
  }
  conn.last_activity = Clock::now();
  bool framing_error = false;
  const bool keep = drain_messages(&conn.in, &framing_error, [&](const WireMessage& m) {
    return handle_client_message(conn, m);
  });
  if (framing_error) {
    metrics_.protocol_errors.fetch_add(1);
    send_client_error(conn, 0, serve::ServeStatus::kError, "wire error");
  }
  if (!keep) conn.closing = true;
}

bool Router::handle_client_message(ClientConn& conn, const WireMessage& msg) {
  if (!conn.got_hello && msg.type != MsgType::kHello) {
    metrics_.protocol_errors.fetch_add(1);
    send_client_error(conn, 0, serve::ServeStatus::kError, "expected hello first");
    return false;
  }
  switch (msg.type) {
    case MsgType::kHello: {
      net::HelloMsg hello;
      if (!net::HelloMsg::decode(msg.payload, &hello)) break;
      // Same contract as netserve: the peer's intended protocol version
      // must match ours — a mixed-version fleet answers with a typed error
      // instead of bytes the peer cannot parse.
      if (hello.version != net::kProtocolVersion) {
        metrics_.hello_rejects.fetch_add(1);
        send_client_error(conn, 0, serve::ServeStatus::kError,
                          "unsupported protocol version " +
                              std::to_string(hello.version) + " (want " +
                              std::to_string(net::kProtocolVersion) + ")");
        return false;
      }
      conn.got_hello = true;
      net::HelloMsg ack;
      ack.version = net::kProtocolVersion;
      ack.name = options_.name;
      send_client_payload(conn, MsgType::kHelloAck, ack);
      return true;
    }
    case MsgType::kRenderRequest:
      route_render_request(conn, msg);
      return true;
    case MsgType::kStreamRequest:
      route_stream_request(conn, msg);
      return true;
    case MsgType::kMetricsRequest: {
      metrics_.metrics_served.fetch_add(1);
      // Same selector contract as netserve: empty payload keeps the
      // aggregated-JSON document, one byte picks an alternative exposition.
      uint8_t selector = net::kMetricsSelectorJson;
      if (msg.payload.size() == 1) selector = msg.payload[0];
      net::MetricsReplyMsg reply;
      switch (selector) {
        case net::kMetricsSelectorPrometheus:
          reply.json = prometheus_text();
          break;
        case net::kMetricsSelectorTrace:
          reply.json = trace_dump_json();
          break;
        default:
          reply.json = metrics_json();
          break;
      }
      send_client_payload(conn, MsgType::kMetricsReply, reply);
      return true;
    }
    case MsgType::kBye:
      return false;  // flush, then close (upstreams close with the client)
    default:
      break;
  }
  metrics_.protocol_errors.fetch_add(1);
  send_client_error(conn, 0, serve::ServeStatus::kError,
                    std::string("bad message: ") + to_string(msg.type));
  return false;
}

bool Router::pick_shard(ClientConn& conn, uint64_t session_id,
                        const serve::VolumeKey& volume,
                        uint64_t error_request_id,
                        const obs::TraceContext& trace, size_t* shard_out) {
  // Affinity first: the pinned shard holds this session's delta-codec and
  // renderer-profile state, so the pin survives ring churn (including
  // drain) as long as the shard itself is alive.
  const auto pin = conn.session_pins.find(session_id);
  if (pin != conn.session_pins.end()) {
    if (shards_[pin->second].healthy) {
      *shard_out = pin->second;
      return true;
    }
    conn.session_pins.erase(pin);
    conn.lost_pins.insert(session_id);
  }

  if (ring_.empty()) {
    metrics_.unavailable_rejections.fetch_add(1);
    send_client_error(conn, error_request_id, serve::ServeStatus::kUnavailable,
                      "no healthy shard available", trace);
    return false;
  }

  const uint64_t h = HashRing::hash_key(volume.canonical());
  const std::vector<size_t> ring_candidates = ring_.pick(h, options_.replicate);
  size_t best = ring_shard_map_[ring_candidates[0]];
  int64_t best_load = std::numeric_limits<int64_t>::max();
  for (const size_t ring_idx : ring_candidates) {
    const size_t shard = ring_shard_map_[ring_idx];
    const ShardCounters& c = *metrics_.shards[shard];
    const int64_t load =
        c.inflight_requests.load() + c.active_streams.load();
    if (load < best_load) {
      best_load = load;
      best = shard;
    }
  }

  if (conn.lost_pins.erase(session_id) > 0) {
    metrics_.reroutes.fetch_add(1);
    if (trace.sampled()) {
      std::fprintf(stderr,
                   "[router] session %llu rerouted to shard %s trace=%s\n",
                   static_cast<unsigned long long>(session_id),
                   shards_[best].spec.id.c_str(),
                   obs::trace_id_hex(trace).c_str());
    }
  }
  conn.session_pins[session_id] = best;
  *shard_out = best;
  return true;
}

Router::Upstream* Router::upstream_for(ClientConn& conn, size_t shard) {
  auto it = conn.upstreams.find(shard);
  if (it != conn.upstreams.end() && it->second.fd.valid() && !it->second.broken) {
    return &it->second;
  }
  conn.upstreams.erase(shard);

  Upstream up;
  up.shard = shard;
  std::string error;
  bool in_progress = false;
  up.fd = net::tcp_connect_start(shards_[shard].spec.host,
                                 shards_[shard].spec.port, &error, &in_progress);
  if (!up.fd.valid()) return nullptr;
  up.connecting = in_progress;
  net::HelloMsg hello;
  hello.version = net::kProtocolVersion;
  hello.name = options_.name;
  std::vector<uint8_t> payload;
  hello.encode(&payload);
  queue_message(&up.out, MsgType::kHello, payload);
  auto [pos, inserted] = conn.upstreams.emplace(shard, std::move(up));
  return &pos->second;
}

void Router::route_render_request(ClientConn& conn, const WireMessage& msg) {
  net::RenderRequestMsg req;
  if (!net::RenderRequestMsg::decode(msg.payload, &req)) {
    metrics_.protocol_errors.fetch_add(1);
    send_client_error(conn, 0, serve::ServeStatus::kError, "bad render request");
    return;
  }
  size_t shard = 0;
  if (!pick_shard(conn, req.session_id, req.volume, req.request_id, req.trace,
                  &shard)) {
    return;
  }
  Upstream* up = upstream_for(conn, shard);
  if (up == nullptr) {
    metrics_.unavailable_rejections.fetch_add(1);
    send_client_error(conn, req.request_id, serve::ServeStatus::kUnavailable,
                      "shard " + shards_[shard].spec.id + " unreachable",
                      req.trace);
    return;
  }
  up->inflight_requests[req.request_id] = ProxyEntry{req.trace, steady_now_ns()};
  metrics_.requests_routed.fetch_add(1);
  metrics_.shards[shard]->routed_requests.fetch_add(1);
  metrics_.shards[shard]->inflight_requests.fetch_add(1);
  queue_message(&up->out, MsgType::kRenderRequest, msg.payload);
}

void Router::route_stream_request(ClientConn& conn, const WireMessage& msg) {
  net::StreamRequestMsg req;
  if (!net::StreamRequestMsg::decode(msg.payload, &req)) {
    metrics_.protocol_errors.fetch_add(1);
    send_client_error(conn, 0, serve::ServeStatus::kError, "bad stream request");
    return;
  }
  size_t shard = 0;
  if (!pick_shard(conn, req.session_id, req.volume, req.stream_id, req.trace,
                  &shard)) {
    return;
  }
  Upstream* up = upstream_for(conn, shard);
  if (up == nullptr) {
    metrics_.unavailable_rejections.fetch_add(1);
    send_client_error(conn, req.stream_id, serve::ServeStatus::kUnavailable,
                      "shard " + shards_[shard].spec.id + " unreachable",
                      req.trace);
    return;
  }
  up->active_streams[req.stream_id] = ProxyEntry{req.trace, steady_now_ns()};
  metrics_.streams_routed.fetch_add(1);
  metrics_.shards[shard]->routed_streams.fetch_add(1);
  metrics_.shards[shard]->active_streams.fetch_add(1);
  queue_message(&up->out, MsgType::kStreamRequest, msg.payload);
}

void Router::send_client_error(ClientConn& conn, uint64_t request_id,
                               serve::ServeStatus status,
                               const std::string& message,
                               const obs::TraceContext& trace) {
  net::ErrorMsg err;
  err.request_id = request_id;
  err.status = static_cast<uint16_t>(status);
  err.message = message;
  err.trace = trace;  // correlates router-originated errors with the trace
  send_client_payload(conn, MsgType::kError, err);
}

void Router::record_proxy_span(const ProxyEntry& entry, uint64_t tag) {
  if (options_.recorder == nullptr || !entry.trace.sampled()) return;
  obs::SpanRecord s;
  s.trace_hi = entry.trace.trace_hi;
  s.trace_lo = entry.trace.trace_lo;
  s.span_id = obs::next_span_id();
  // The router forwards the payload verbatim, so the shard's request span
  // parents to the same wire parent — the proxy span sits beside it under
  // the client root, wrapping it in time.
  s.parent_id = entry.trace.parent_span;
  s.kind = obs::SpanKind::kRouterProxy;
  s.t_start_ns = entry.start_ns;
  s.t_end_ns = steady_now_ns();
  s.tag = tag;
  options_.recorder->record(entry.trace, s);
}

template <typename Msg>
void Router::send_client_payload(ClientConn& conn, MsgType type, const Msg& msg) {
  std::vector<uint8_t> payload;
  payload.reserve(msg.encoded_size());
  msg.encode(&payload);
  queue_message(&conn.out, type, payload);
}

void Router::close_client(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Upstream sockets close with the client; the shard sees EOF and reaps
  // its per-connection state, exactly as with a direct client.
  conns_.erase(it);
}

// --------------------------------------------------------------------------
// Upstream face
// --------------------------------------------------------------------------

void Router::upstream_read(ClientConn& conn, Upstream& up) {
  if (!read_available(up.fd.get(), &up.in)) {
    up.broken = true;
    return;
  }
  bool framing_error = false;
  const bool keep = drain_messages(&up.in, &framing_error, [&](const WireMessage& m) {
    return handle_upstream_message(conn, up, m);
  });
  if (framing_error) metrics_.protocol_errors.fetch_add(1);
  if (!keep || framing_error) up.broken = true;
}

bool Router::handle_upstream_message(ClientConn& conn, Upstream& up,
                                     const WireMessage& msg) {
  switch (msg.type) {
    case MsgType::kHelloAck:
      return true;  // consumed by the proxy, not forwarded
    case MsgType::kFrame: {
      // Peek the fixed-offset metadata (wire.hpp FrameMsg layout) without
      // touching the codec blob; the frame forwards verbatim either way.
      net::ByteReader r(msg.payload);
      const uint64_t request_id = r.read_u64();
      r.read_u64();  // stream_id
      r.read_u32();  // seq
      r.read_u32();  // dropped_before
      r.read_f64();  // render_ms
      const double total_ms = r.read_f64();
      if (r.ok()) {
        metrics_.shards[up.shard]->frame_latency_ms.record_ms(total_ms);
        if (request_id != 0) {
          const auto rit = up.inflight_requests.find(request_id);
          if (rit != up.inflight_requests.end()) {
            record_proxy_span(rit->second, request_id);
            up.inflight_requests.erase(rit);
            metrics_.shards[up.shard]->inflight_requests.fetch_sub(1);
          }
        }
      }
      metrics_.frames_forwarded.fetch_add(1);
      metrics_.shards[up.shard]->forwarded_frames.fetch_add(1);
      queue_message(&conn.out, MsgType::kFrame, msg.payload);
      return true;
    }
    case MsgType::kStreamEnd: {
      net::StreamEndMsg end;
      if (net::StreamEndMsg::decode(msg.payload, &end)) {
        const auto sit = up.active_streams.find(end.stream_id);
        if (sit != up.active_streams.end()) {
          // One proxy span covers the whole stream: forwarded -> stream end.
          record_proxy_span(sit->second, end.stream_id);
          up.active_streams.erase(sit);
          metrics_.shards[up.shard]->active_streams.fetch_sub(1);
        }
      }
      queue_message(&conn.out, MsgType::kStreamEnd, msg.payload);
      return true;
    }
    case MsgType::kError: {
      net::ErrorMsg err;
      if (net::ErrorMsg::decode(msg.payload, &err) && err.request_id != 0) {
        if (up.inflight_requests.erase(err.request_id) > 0) {
          metrics_.shards[up.shard]->inflight_requests.fetch_sub(1);
        }
        if (up.active_streams.erase(err.request_id) > 0) {
          metrics_.shards[up.shard]->active_streams.fetch_sub(1);
        }
      }
      metrics_.shards[up.shard]->forwarded_errors.fetch_add(1);
      queue_message(&conn.out, MsgType::kError, msg.payload);
      return true;
    }
    case MsgType::kBye:
      return false;  // shard is going away; the loss path takes over
    default:
      metrics_.protocol_errors.fetch_add(1);
      return false;
  }
}

void Router::upstream_lost(ClientConn& conn, Upstream& up, const std::string& why) {
  // Every in-flight request and open stream on this upstream dies with a
  // typed, per-id error — the client learns exactly which work was lost
  // and can retry; the session unpins so its next request re-places.
  for (const auto& [request_id, entry] : up.inflight_requests) {
    if (entry.trace.sampled()) {
      std::fprintf(stderr, "[router] shard %s lost request %llu trace=%s: %s\n",
                   shards_[up.shard].spec.id.c_str(),
                   static_cast<unsigned long long>(request_id),
                   obs::trace_id_hex(entry.trace).c_str(), why.c_str());
    }
    send_client_error(conn, request_id, serve::ServeStatus::kUnavailable,
                      "shard " + shards_[up.shard].spec.id + " lost: " + why,
                      entry.trace);
    metrics_.shards[up.shard]->inflight_requests.fetch_sub(1);
  }
  up.inflight_requests.clear();
  for (const auto& [stream_id, entry] : up.active_streams) {
    if (entry.trace.sampled()) {
      std::fprintf(stderr, "[router] shard %s lost stream %llu trace=%s: %s\n",
                   shards_[up.shard].spec.id.c_str(),
                   static_cast<unsigned long long>(stream_id),
                   obs::trace_id_hex(entry.trace).c_str(), why.c_str());
    }
    send_client_error(conn, stream_id, serve::ServeStatus::kUnavailable,
                      "shard " + shards_[up.shard].spec.id +
                          " lost mid-stream: " + why,
                      entry.trace);
    metrics_.shards[up.shard]->active_streams.fetch_sub(1);
  }
  up.active_streams.clear();
  for (auto it = conn.session_pins.begin(); it != conn.session_pins.end();) {
    if (it->second == up.shard) {
      conn.lost_pins.insert(it->first);
      it = conn.session_pins.erase(it);
    } else {
      ++it;
    }
  }
}

// --------------------------------------------------------------------------
// Shard lifecycle
// --------------------------------------------------------------------------

size_t Router::shard_index(const Shard& s) const {
  return static_cast<size_t>(&s - shards_.data());
}

void Router::advance_shard(Shard& s, Clock::time_point now) {
  if (!s.ctl.valid()) {
    if (now < s.next_reconnect || stopping_.load()) return;
    std::string error;
    bool in_progress = false;
    s.ctl = net::tcp_connect_start(s.spec.host, s.spec.port, &error, &in_progress);
    s.in.clear();
    s.out.clear();
    s.out_off = 0;
    s.hello_done = false;
    s.probe_outstanding = false;
    if (!s.ctl.valid()) {
      ctl_failure(s, "connect failed");
      return;
    }
    s.connecting = in_progress;
    if (!s.connecting) {
      net::HelloMsg hello;
      hello.version = net::kProtocolVersion;
      hello.name = options_.name;
      std::vector<uint8_t> payload;
      hello.encode(&payload);
      queue_message(&s.out, MsgType::kHello, payload);
    }
    return;
  }
  if (s.connecting || !s.hello_done) return;
  if (s.probe_outstanding) {
    if (ms_since(s.probe_sent, now) > options_.probe_timeout_ms) {
      ctl_failure(s, "probe timeout");
    }
    return;
  }
  if (now >= s.next_probe) {
    queue_message(&s.out, MsgType::kMetricsRequest, {});
    s.probe_outstanding = true;
    s.probe_sent = now;
  }
}

void Router::shard_ctl_read(Shard& s) {
  if (!read_available(s.ctl.get(), &s.in)) {
    ctl_failure(s, "control connection closed");
    return;
  }
  bool framing_error = false;
  const bool keep = drain_messages(&s.in, &framing_error, [&](const WireMessage& m) {
    return handle_ctl_message(s, m);
  });
  if (framing_error || !keep) ctl_failure(s, "control protocol error");
}

bool Router::handle_ctl_message(Shard& s, const WireMessage& msg) {
  switch (msg.type) {
    case MsgType::kHelloAck: {
      s.hello_done = true;
      // Probe immediately: health (and the first metrics snapshot) should
      // not wait out a full probe interval.
      queue_message(&s.out, MsgType::kMetricsRequest, {});
      s.probe_outstanding = true;
      s.probe_sent = Clock::now();
      return true;
    }
    case MsgType::kMetricsReply: {
      net::MetricsReplyMsg reply;
      if (!net::MetricsReplyMsg::decode(msg.payload, &reply)) return false;
      const size_t idx = shard_index(s);
      s.probe_outstanding = false;
      s.consecutive_failures = 0;
      s.next_probe = Clock::now() + std::chrono::milliseconds(static_cast<int64_t>(
                                        options_.probe_interval_ms));
      s.backoff_ms = options_.reconnect_backoff_ms;
      metrics_.shards[idx]->probes_ok.fetch_add(1);
      {
        MutexLock lock(snapshot_mutex_);
        shard_metrics_[idx] = std::move(reply.json);
      }
      if (!s.healthy) mark_healthy(s);
      return true;
    }
    case MsgType::kError:
      // A typed error on the control channel (e.g. version rejection)
      // means this shard cannot serve us.
      return false;
    default:
      return false;
  }
}

void Router::ctl_failure(Shard& s, const std::string& why) {
  const size_t idx = shard_index(s);
  metrics_.shards[idx]->probe_failures.fetch_add(1);
  ++s.consecutive_failures;
  s.probe_outstanding = false;
  s.ctl.reset();
  s.connecting = false;
  s.hello_done = false;
  s.in.clear();
  s.out.clear();
  s.out_off = 0;
  s.next_reconnect = Clock::now() + std::chrono::milliseconds(
                                        static_cast<int64_t>(s.backoff_ms));
  s.backoff_ms = std::min(s.backoff_ms * 2.0, options_.reconnect_backoff_max_ms);
  if (s.healthy && s.consecutive_failures >= options_.eject_after_failures) {
    eject_shard(idx, why);
  } else {
    publish_state(idx);
  }
}

void Router::eject_shard(size_t shard, const std::string& why) {
  Shard& s = shards_[shard];
  if (s.healthy) {
    s.healthy = false;
    s.probe_outstanding = false;
    s.ctl.reset();
    s.connecting = false;
    s.hello_done = false;
    s.in.clear();
    s.out.clear();
    s.out_off = 0;
    s.next_reconnect = Clock::now() +
                       std::chrono::milliseconds(static_cast<int64_t>(s.backoff_ms));
    s.backoff_ms = std::min(s.backoff_ms * 2.0, options_.reconnect_backoff_max_ms);
    metrics_.shards[shard]->ejections.fetch_add(1);
    rebuild_ring();
    publish_state(shard);
  }
  // Tear down every upstream to this shard across all clients, even when
  // the shard was already out (a second data-path loss in one iteration
  // must still notify its client and drop the broken socket).
  for (auto& [id, conn] : conns_) {
    const auto it = conn.upstreams.find(shard);
    if (it == conn.upstreams.end()) continue;
    upstream_lost(conn, it->second, why);
    conn.upstreams.erase(it);
  }
}

void Router::mark_healthy(Shard& s) {
  const size_t idx = shard_index(s);
  const bool rejoin = metrics_.shards[idx]->ejections.load() > 0;
  s.healthy = true;
  s.consecutive_failures = 0;
  if (rejoin) metrics_.shards[idx]->rejoins.fetch_add(1);
  rebuild_ring();
  publish_state(idx);
}

void Router::rebuild_ring() {
  std::vector<RingNode> nodes;
  ring_shard_map_.clear();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].healthy && !shards_[i].draining) {
      nodes.push_back({shards_[i].spec.id, shards_[i].spec.weight});
      ring_shard_map_.push_back(i);
    }
  }
  ring_.rebuild(nodes);
}

void Router::publish_state(size_t shard) {
  const Shard& s = shards_[shard];
  ShardState state;
  if (s.healthy) {
    state = s.draining ? ShardState::kDraining : ShardState::kHealthy;
  } else {
    state = metrics_.shards[shard]->ejections.load() > 0 ? ShardState::kEjected
                                                         : ShardState::kConnecting;
  }
  // relaxed: observer gauge; see shard_state().
  published_state_[shard].store(static_cast<int>(state), std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// Shared plumbing
// --------------------------------------------------------------------------

void Router::queue_message(std::vector<uint8_t>* out, MsgType type,
                           const std::vector<uint8_t>& payload) {
  net::encode_message(type, payload, out);
}

bool Router::flush_out(int fd, std::vector<uint8_t>* out, size_t* out_off) {
  while (*out_off < out->size()) {
    const ssize_t n = ::send(fd, out->data() + *out_off, out->size() - *out_off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      *out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) break;
    return false;
  }
  if (*out_off == out->size()) {
    out->clear();
    *out_off = 0;
  } else if (*out_off > kCompactThreshold) {
    out->erase(out->begin(), out->begin() + static_cast<long>(*out_off));
    *out_off = 0;
  }
  return true;
}

}  // namespace psw::cluster
