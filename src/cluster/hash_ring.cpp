#include "cluster/hash_ring.hpp"

#include <algorithm>

namespace psw::cluster {

uint64_t HashRing::hash_key(std::string_view key) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  // Avalanche finalizer (Murmur3 fmix64). Raw FNV-1a values of similar
  // strings differ by position-dependent constants, so the vnode labels
  // ("shard-0#17") and canonical volume keys this ring hashes would land in
  // correlated clusters and skew ownership badly (measured: 95/5 on a
  // 2-node ring). The finalizer decorrelates them; placement stays fully
  // deterministic and platform-independent.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

void HashRing::rebuild(const std::vector<RingNode>& nodes) {
  nodes_ = nodes;
  points_.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const int weight = nodes_[i].weight < 1 ? 1 : nodes_[i].weight;
    const size_t count = static_cast<size_t>(vnodes_) * static_cast<size_t>(weight);
    for (size_t v = 0; v < count; ++v) {
      const std::string point_key = nodes_[i].id + "#" + std::to_string(v);
      points_.emplace_back(hash_key(point_key), static_cast<uint32_t>(i));
    }
  }
  std::sort(points_.begin(), points_.end());
}

size_t HashRing::owner(uint64_t h) const {
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, uint32_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

std::vector<size_t> HashRing::pick(uint64_t h, int k) const {
  std::vector<size_t> out;
  if (points_.empty() || k < 1) return out;
  const size_t want = std::min(static_cast<size_t>(k), nodes_.size());
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, uint32_t{0}));
  for (size_t step = 0; step < points_.size() && out.size() < want; ++step) {
    if (it == points_.end()) it = points_.begin();
    const size_t node = it->second;
    if (std::find(out.begin(), out.end(), node) == out.end()) out.push_back(node);
    ++it;
  }
  return out;
}

}  // namespace psw::cluster
