// Weighted consistent-hash ring for volume placement across render shards.
// Each node contributes `vnodes * weight` pseudo-random points on a 64-bit
// circle; a key is owned by the first point clockwise from its hash. The
// properties the cluster layer leans on:
//
//  - stability: a key's owner changes only when nodes join or leave, so a
//    volume's repeated requests keep landing on the shard whose VolumeCache
//    already holds it;
//  - minimal disruption: removing a node only reassigns the keys it owned
//    (its points vanish, everything else is untouched);
//  - weighting: a node with weight w receives ~w times the keyspace of a
//    weight-1 node;
//  - replication: pick(h, k) walks clockwise collecting the first k
//    *distinct* nodes, giving a deterministic candidate set for k-way
//    placement of hot volumes.
//
// The ring is a value type owned and rebuilt by the router's poll thread;
// it does no locking of its own.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psw::cluster {

struct RingNode {
  std::string id;
  int weight = 1;
};

class HashRing {
 public:
  explicit HashRing(int vnodes = 64) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

  // Replaces the node set (typically: every healthy, non-draining shard).
  void rebuild(const std::vector<RingNode>& nodes);

  bool empty() const { return points_.empty(); }
  size_t node_count() const { return nodes_.size(); }
  size_t point_count() const { return points_.size(); }
  const std::vector<RingNode>& nodes() const { return nodes_; }

  // Index (into nodes()) of the node owning hash h. Ring must be non-empty.
  size_t owner(uint64_t h) const;

  // The first min(k, node_count) distinct node indices clockwise from h, in
  // ring order — owner first, then the replication candidates.
  std::vector<size_t> pick(uint64_t h, int k) const;

  // FNV-1a 64-bit over the key bytes, passed through an avalanche finalizer
  // so similar keys decorrelate (stable across runs and platforms; a
  // volume's canonical() string hashes identically everywhere).
  static uint64_t hash_key(std::string_view key);

 private:
  int vnodes_;
  std::vector<RingNode> nodes_;
  // (point, node index), sorted by point.
  std::vector<std::pair<uint64_t, uint32_t>> points_;
};

}  // namespace psw::cluster
