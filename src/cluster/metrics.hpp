// Router-level counters and the aggregated cluster metrics document.
//
// Two layers of telemetry meet here. The router's own counters (clients,
// routed requests/streams, forwarded frames, re-routes, probe failures,
// ejections) are plain atomics written by the poll thread and readable from
// any thread. Per-shard service/net metrics arrive as the JSON documents the
// shards' own kMetricsReply returns to the health prober; the aggregator
// embeds each verbatim and rolls a few headline fields up into cluster-wide
// sums, while router-observed per-shard frame latencies (the server-side
// total_ms carried in every forwarded FrameMsg) are combined with
// LatencyHistogram::merge into one cluster latency distribution.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace psw::cluster {

// Lifecycle of one shard as the router sees it.
enum class ShardState : int {
  kConnecting = 0,  // control channel not yet established
  kHealthy,         // probed OK, taking placements
  kDraining,        // healthy but administratively out of the ring
  kEjected,         // failed out; reconnect with backoff in progress
};

const char* to_string(ShardState s);

// Counters for one shard. All relaxed: independent monotonic event counts
// and gauges — readers never infer cross-field ordering from them.
struct ShardCounters {
  std::atomic<uint64_t> routed_requests{0};
  std::atomic<uint64_t> routed_streams{0};
  std::atomic<uint64_t> forwarded_frames{0};
  std::atomic<uint64_t> forwarded_errors{0};
  std::atomic<uint64_t> probes_ok{0};
  std::atomic<uint64_t> probe_failures{0};
  std::atomic<uint64_t> ejections{0};
  std::atomic<uint64_t> rejoins{0};
  std::atomic<int64_t> inflight_requests{0};  // gauge: routed, not yet replied
  std::atomic<int64_t> active_streams{0};     // gauge: open stream proxies
  LatencyHistogram frame_latency_ms;  // server total_ms of forwarded frames
};

struct RouterMetrics {
  explicit RouterMetrics(size_t shard_count) {
    shards.reserve(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      shards.push_back(std::make_unique<ShardCounters>());
    }
  }

  std::atomic<uint64_t> clients_accepted{0};
  std::atomic<uint64_t> clients_rejected{0};  // accept cap
  std::atomic<uint64_t> hello_rejects{0};     // unsupported hello version
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> requests_routed{0};
  std::atomic<uint64_t> streams_routed{0};
  std::atomic<uint64_t> frames_forwarded{0};
  std::atomic<uint64_t> metrics_served{0};     // aggregated endpoint hits
  std::atomic<uint64_t> reroutes{0};           // session re-pinned after loss
  std::atomic<uint64_t> unavailable_rejections{0};  // no eligible shard
  std::atomic<uint64_t> orphaned_replies{0};   // reply after client went away

  std::vector<std::unique_ptr<ShardCounters>> shards;
};

// One shard's contribution to the aggregated document.
struct ShardSnapshot {
  std::string id;
  ShardState state = ShardState::kConnecting;
  int weight = 1;
  bool in_ring = false;
  std::string metrics_json;  // last kMetricsReply payload; may be empty
};

// Builds the aggregated cluster metrics document: router counters, a merged
// cluster-wide latency histogram, per-shard counters + state + the embedded
// shard metrics JSON, and cluster rollups summed from the shard documents.
std::string aggregate_metrics_json(const RouterMetrics& m,
                                   const std::vector<ShardSnapshot>& shards);

// Scans `json` for `"key": <unsigned integer>` at any nesting level and
// returns the first match; 0 when absent. Good enough for rolling up the
// service documents this repo emits (keys chosen to be unambiguous), without
// growing a JSON parser.
uint64_t scan_json_u64(const std::string& json, const std::string& key);

// As scan_json_u64, but looks only inside the first `"object": { ... }`
// block, so keys that repeat across sub-objects (cache hits vs pool hits)
// can be addressed unambiguously.
uint64_t scan_json_u64_in(const std::string& json, const std::string& object,
                          const std::string& key);

}  // namespace psw::cluster
