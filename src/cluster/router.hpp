// PSWN front-end router: the horizontal-scale layer in front of netserve.
//
// One poll thread speaks the versioned wire protocol on both faces. On the
// south face it accepts clients exactly like NetServer (hello handshake,
// typed errors, orderly bye). On the north face it proxies to N backend
// netserve shards over non-blocking upstream connections, one per
// (client, shard) pair — frames are forwarded verbatim, so each shard's
// per-connection delta-codec chains line up one-to-one with the client's
// decoders and no pixel is ever re-encoded in flight.
//
// Placement: a request names a volume; its canonical key hashes onto a
// weighted consistent-hash ring of the healthy, non-draining shards
// (cluster/hash_ring.hpp). Repeated requests for one volume therefore land
// on the same shard and its VolumeCache stays hot; `replicate` > 1 widens
// the candidate set to the first k distinct ring successors and the
// least-loaded candidate wins (k-way replication of hot volumes).
//
// Affinity: the first routed request pins its session to the chosen shard;
// every later request of that session follows the pin regardless of ring
// churn, because the shard holds the session's delta-encoder state and §4.2
// renderer profile. Only shard loss breaks a pin: in-flight requests and
// open streams get a typed kUnavailable error, and the session's next
// request re-places on the rebuilt ring (counted as a re-route).
//
// Health: a control connection per shard probes with kMetricsRequest every
// probe_interval_ms; the reply doubles as the shard's metrics snapshot for
// the aggregated cluster document. `eject_after_failures` consecutive
// probe failures (or any data-path loss) ejects the shard — ring rebuild,
// typed errors for its in-flight work — and reconnect-with-backoff later
// rejoins it. set_drain() is the administrative version: the shard leaves
// the ring (no new placements) but pinned sessions keep flowing.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/metrics.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"
#include "util/sync.hpp"

namespace psw::cluster {

struct ShardSpec {
  std::string id;                    // stable ring identity ("shard-0", ...)
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int weight = 1;
};

struct RouterOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; see Router::port()
  int backlog = 16;
  int max_connections = 64;
  int vnodes = 64;     // ring points per unit of shard weight
  int replicate = 1;   // k-way placement candidates (least-loaded wins)
  double probe_interval_ms = 250.0;
  double probe_timeout_ms = 2'000.0;   // unanswered probe counts as a failure
  int eject_after_failures = 3;
  double reconnect_backoff_ms = 50.0;  // control-channel retry, doubles...
  double reconnect_backoff_max_ms = 2'000.0;  // ...up to this cap
  size_t max_send_buffer_bytes = 32u << 20;   // per connection, either face
  double idle_timeout_ms = 30'000.0;  // client connections; 0 disables
  std::string name = "pswvr-router";
  // Distributed tracing: kRouterProxy spans of sampled proxied requests
  // land here (not owned; null disables recording — trace contexts still
  // forward verbatim). `trace_node` labels the router in trace dumps.
  obs::SpanRecorder* recorder = nullptr;
  std::string trace_node = "router";
};

class Router {
 public:
  Router(std::vector<ShardSpec> shards, RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Binds, listens and starts the poll thread; shard control channels begin
  // connecting immediately. False (with *error) when the bind fails.
  bool start(std::string* error = nullptr);

  // Closes every connection (clients, upstreams, control) and joins the
  // poll thread. Idempotent.
  void stop();

  bool running() const { return thread_.joinable(); }
  uint16_t port() const { return port_; }
  const RouterOptions& options() const { return options_; }
  const RouterMetrics& metrics() const { return metrics_; }

  // Blocks until at least `n` shards are healthy (probed OK) or timeout.
  bool wait_healthy(size_t n, double timeout_ms) const;

  ShardState shard_state(size_t shard) const {
    return static_cast<ShardState>(
        // relaxed: state is a monotonically published gauge for observers;
        // no other memory is inferred from it.
        published_state_[shard].load(std::memory_order_relaxed));
  }

  // Administrative drain: true if the shard id exists. Applied by the poll
  // thread on its next wakeup (the call itself never blocks on it).
  bool set_drain(const std::string& shard_id, bool draining);

  // The aggregated cluster metrics document (also served to any client
  // sending kMetricsRequest).
  std::string metrics_json() const;

  // Router-level Prometheus text exposition (kMetricsSelectorPrometheus).
  std::string prometheus_text() const;

  // Span-dump JSON from the configured recorder (kMetricsSelectorTrace);
  // empty but well-formed without one.
  std::string trace_dump_json() const;

 private:
  // In-flight proxy bookkeeping, one entry per forwarded request or open
  // stream. Sampled entries carry the trace context, so frame receipt can
  // close a kRouterProxy span and a shard loss can correlate its typed
  // errors and log lines with the trace.
  struct ProxyEntry {
    obs::TraceContext trace;
    int64_t start_ns = 0;  // steady ns when the request was forwarded
  };

  // One proxied upstream connection: the shard-side half of one client.
  struct Upstream {
    size_t shard = 0;
    net::UniqueFd fd;
    bool connecting = false;  // non-blocking connect still in progress
    bool broken = false;
    std::vector<uint8_t> in;
    std::vector<uint8_t> out;   // includes the leading hello
    size_t out_off = 0;
    std::map<uint64_t, ProxyEntry> inflight_requests;  // by request id
    std::map<uint64_t, ProxyEntry> active_streams;     // by stream id
  };

  struct ClientConn {
    uint64_t id = 0;
    net::UniqueFd fd;
    std::vector<uint8_t> in;
    std::vector<uint8_t> out;
    size_t out_off = 0;
    bool got_hello = false;
    bool closing = false;  // flush `out`, then close
    serve::Clock::time_point last_activity;
    std::map<size_t, Upstream> upstreams;       // by shard index
    std::map<uint64_t, size_t> session_pins;    // session -> shard index
    // Sessions whose pinned shard was lost; the next request re-places and
    // counts a re-route.
    std::set<uint64_t> lost_pins;
  };

  // Control/probe channel state per shard (poll thread only).
  struct Shard {
    ShardSpec spec;
    net::UniqueFd ctl;
    bool connecting = false;
    bool hello_done = false;
    std::vector<uint8_t> in;
    std::vector<uint8_t> out;
    size_t out_off = 0;
    bool probe_outstanding = false;
    serve::Clock::time_point probe_sent{};
    serve::Clock::time_point next_probe{};
    serve::Clock::time_point next_reconnect{};
    double backoff_ms = 0.0;
    int consecutive_failures = 0;
    bool healthy = false;
    bool draining = false;
  };

  void poll_loop();
  void accept_ready();

  // --- client face ---
  void client_read(ClientConn& conn);
  bool handle_client_message(ClientConn& conn, const net::WireMessage& msg);
  void route_render_request(ClientConn& conn, const net::WireMessage& msg);
  void route_stream_request(ClientConn& conn, const net::WireMessage& msg);
  // Ring placement + affinity. Returns false (typed error already sent)
  // when no shard is eligible.
  bool pick_shard(ClientConn& conn, uint64_t session_id,
                  const serve::VolumeKey& volume, uint64_t error_request_id,
                  const obs::TraceContext& trace, size_t* shard_out);
  void send_client_error(ClientConn& conn, uint64_t request_id,
                         serve::ServeStatus status, const std::string& message,
                         const obs::TraceContext& trace = {});
  // Closes a kRouterProxy span (forwarded -> reply) for a sampled entry.
  void record_proxy_span(const ProxyEntry& entry, uint64_t tag);
  template <typename Msg>
  void send_client_payload(ClientConn& conn, net::MsgType type, const Msg& msg);
  void close_client(uint64_t conn_id);

  // --- upstream face ---
  Upstream* upstream_for(ClientConn& conn, size_t shard);
  void upstream_read(ClientConn& conn, Upstream& up);
  bool handle_upstream_message(ClientConn& conn, Upstream& up,
                               const net::WireMessage& msg);
  // Typed kUnavailable for everything in flight on a lost upstream, then
  // unpins its sessions. Ejects the shard (data-path loss is a failure).
  void upstream_lost(ClientConn& conn, Upstream& up, const std::string& why);

  // --- shard lifecycle ---
  void advance_shard(Shard& s, serve::Clock::time_point now);
  void shard_ctl_read(Shard& s);
  bool handle_ctl_message(Shard& s, const net::WireMessage& msg);
  void ctl_failure(Shard& s, const std::string& why);
  void eject_shard(size_t shard, const std::string& why);
  void mark_healthy(Shard& s);
  void rebuild_ring();
  void publish_state(size_t shard);
  size_t shard_index(const Shard& s) const;

  // --- shared plumbing ---
  // Appends one framed message to a flat output buffer.
  static void queue_message(std::vector<uint8_t>* out, net::MsgType type,
                            const std::vector<uint8_t>& payload);
  // Drains [out_off, out) into fd. False on a hard write error.
  static bool flush_out(int fd, std::vector<uint8_t>* out, size_t* out_off);
  void wake();

  std::vector<ShardSpec> specs_;
  RouterOptions options_;
  RouterMetrics metrics_;
  HashRing ring_;

  net::UniqueFd listener_;
  net::UniqueFd wake_rd_;
  net::UniqueFd wake_wr_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  // Poll-thread-owned state. ring_shard_map_[ring node index] = shard
  // index, rebuilt alongside the ring (the ring only holds the eligible
  // subset of shards_).
  std::vector<Shard> shards_;
  std::vector<size_t> ring_shard_map_;
  std::map<uint64_t, ClientConn> conns_;
  uint64_t next_conn_id_ = 1;

  // Cross-thread surface. published_state_ mirrors each shard's lifecycle
  // for observers; drain_want_ carries set_drain() requests to the poll
  // thread; snapshot_mutex_ guards the per-shard metrics JSON copies the
  // prober refreshes and metrics_json() reads.
  std::unique_ptr<std::atomic<int>[]> published_state_;
  std::unique_ptr<std::atomic<bool>[]> drain_want_;
  mutable Mutex snapshot_mutex_;
  std::vector<std::string> shard_metrics_ PSW_GUARDED_BY(snapshot_mutex_);

  std::thread thread_;
};

}  // namespace psw::cluster
