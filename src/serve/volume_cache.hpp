// Sharded LRU cache of classified, run-length-encoded volumes. Classifying
// and encoding is by far the most expensive per-session setup (§2: the
// preprocessing the shear-warp algorithm amortizes over an animation), so
// sessions share encoded volumes through this cache instead of rebuilding
// them. Entries are handed out as shared_ptr: eviction drops the cache's
// reference, sessions already holding the volume keep rendering from it.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rle_volume.hpp"
#include "parallel/prepare.hpp"
#include "serve/request.hpp"
#include "util/sync.hpp"

namespace psw::serve {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;        // resident encoded bytes across shards
  uint64_t budget_bytes = 0;
  double hit_rate() const {
    const uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class VolumeCache {
 public:
  // Builds the encoded volume for a key on a miss. The default builder
  // generates the phantom named by key.kind, classifies it with the keyed
  // transfer-function preset and options, and encodes all three axes.
  // `timing` (may be null) receives the classify/encode stage split — the
  // tracing subsystem turns it into cache-build child spans.
  using Builder = std::function<std::shared_ptr<const EncodedVolume>(
      const VolumeKey&, PrepareTiming* timing)>;

  VolumeCache(uint64_t byte_budget, int shards = 8, Builder builder = {});

  // Returns the cached volume for `key`, building it on a miss (the build
  // runs under the shard lock, so concurrent requests for one key build
  // once). On a miss, `*build_ms` (if non-null) receives the build time
  // and `*prep` (if non-null) the builder's stage split; both are zeroed
  // on a hit.
  std::shared_ptr<const EncodedVolume> get(const VolumeKey& key,
                                           double* build_ms = nullptr,
                                           PrepareTiming* prep = nullptr);

  // Same, with the caller supplying key.canonical() (computed into a
  // reusable buffer); the hit path then performs no allocation at all.
  std::shared_ptr<const EncodedVolume> get(const VolumeKey& key,
                                           const std::string& canonical,
                                           double* build_ms,
                                           PrepareTiming* prep);

  CacheStats stats() const;
  uint64_t byte_budget() const { return budget_; }

  // `prep` selects the preparation pipeline: the default is serial; with
  // prep.threads > 1 misses classify and encode on a thread pool (output is
  // bit-identical — see parallel/prepare.hpp).
  static Builder phantom_builder(const PrepareOptions& prep = {});

  // Same, drawing the transient build storage (classified grid, chunk
  // tables, lane buffers) from `scratch_pool`, so repeated misses rebuild
  // into warm memory instead of allocating. The pool (null = no pooling)
  // must outlive the returned builder.
  static Builder phantom_builder(const PrepareOptions& prep,
                                 PrepareScratchPool* scratch_pool);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const EncodedVolume> volume;
    uint64_t bytes = 0;
  };
  // Lock protocol: each shard is independent — one mutex covers that
  // shard's LRU list, its index (whose iterators point into the list) and
  // its byte/hit accounting, and a miss's build runs under it so
  // concurrent requests for one key build once. Shard mutexes are never
  // nested: stats() visits shards one at a time, so there is no
  // cross-shard lock order to get wrong (and none to annotate).
  struct Shard {
    mutable Mutex mutex;
    std::list<Entry> lru PSW_GUARDED_BY(mutex);  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        PSW_GUARDED_BY(mutex);
    uint64_t bytes PSW_GUARDED_BY(mutex) = 0;
    uint64_t hits PSW_GUARDED_BY(mutex) = 0;
    uint64_t misses PSW_GUARDED_BY(mutex) = 0;
    uint64_t evictions PSW_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const std::string& canonical);
  void evict_locked(Shard& s, uint64_t shard_budget) PSW_REQUIRES(s.mutex);

  uint64_t budget_;
  uint64_t shard_budget_;
  Builder builder_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace psw::serve
