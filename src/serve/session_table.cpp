#include "serve/session_table.hpp"

namespace psw::serve {

SessionState& SessionTable::acquire(uint64_t id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    return *it->second;
  }
  while (static_cast<int>(lru_.size()) >= max_sessions_) {
    index_.erase(lru_.back().id);
    lru_.pop_back();
    ++evicted_;
  }
  lru_.emplace_front(id, renderer_options_);
  index_[id] = lru_.begin();
  ++created_;
  return lru_.front();
}

}  // namespace psw::serve
