// RenderService: the multi-session frame-serving subsystem. Sits above the
// existing renderers and thread pool and accepts concurrent RenderRequests
// through a bounded multi-producer queue with admission control (typed
// reject when full, typed shed when a deadline has already passed — the
// service degrades by dropping frames, never by stalling submitters). A
// scheduler thread drains the queue onto one shared ThreadedExecutor,
// batching consecutive same-session frames so each session's
// NewParallelRenderer reuses its §4.2 partition profile exactly as in the
// single-animation case, and round-robins sessions between batches for
// fairness. Classified RLE volumes are shared across sessions through a
// sharded byte-budgeted LRU VolumeCache; ServiceMetrics records admission
// outcomes, queue depth and per-stage latency histograms.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "parallel/executor.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "serve/session_table.hpp"
#include "serve/volume_cache.hpp"
#include "util/buffer_pool.hpp"
#include "util/sync.hpp"

namespace psw::serve {

struct ServiceOptions {
  int worker_threads = 4;          // render pool size (one ThreadedExecutor)
  int queue_capacity = 64;         // bounded admission queue, total requests
  int batch_max = 4;               // max same-session frames per dispatch batch
  uint64_t cache_bytes = 256u << 20;  // volume-cache byte budget
  int cache_shards = 8;
  int max_sessions = 64;           // session-state LRU capacity
  // Threads for cache-miss volume preparation (classify + encode) in the
  // default phantom builder; 0 means "match worker_threads". Ignored when a
  // custom builder is supplied.
  int prepare_threads = 0;
  // Frames the output-image pool may retain for reuse (0 disables pooling).
  // Consumers return frames via recycle_frame(); with recycling in place,
  // steady-state rendering reuses warm pixel storage instead of allocating
  // a fresh image per frame.
  int frame_pool_frames = 32;
  ParallelOptions parallel;        // forwarded to per-session renderers
  // Span sink for sampled requests (not owned; may outlive the service or
  // be shared with the network front end). Null disables recording;
  // unsampled requests never touch it either way.
  obs::SpanRecorder* recorder = nullptr;
};

class RenderService {
 public:
  explicit RenderService(ServiceOptions options = {},
                         VolumeCache::Builder builder = {});
  ~RenderService();

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  // Thread-safe. Rejection is synchronous and typed (see Ticket); an
  // accepted request's future resolves when the frame is rendered or shed.
  Ticket submit(RenderRequest request);

  // Callback form for event-driven callers (the network front end): no
  // future is allocated. Returns the typed admission outcome; when kOk the
  // callback fires exactly once — from the scheduler thread — with the
  // rendered frame or a typed shed/error result. The callback must not
  // throw and must not block (it runs on the only thread that dispatches
  // frames); hand the result off to your own queue and return.
  using Completion = std::function<void(FrameResult)>;
  ServeStatus submit_async(RenderRequest request, Completion done);

  // Blocks until the queue is empty and no batch is in flight.
  void drain();

  // Bounded drain: waits at most `timeout_ms` for the queue to empty.
  // Returns true when fully drained, false on timeout (work may still be
  // queued or in flight — the caller decides whether to stop() anyway).
  // timeout_ms <= 0 degenerates to a single non-blocking check.
  bool drain_for(int64_t timeout_ms);

  // Sheds all still-queued requests with kShutdown and joins the scheduler.
  // Idempotent; called by the destructor. Call drain() first for a
  // graceful wind-down.
  void stop();

  // Returns a delivered frame's image for reuse by later renders. Optional
  // but strongly encouraged for streaming consumers: once every consumer
  // recycles, the steady-state render path stops allocating pixel storage.
  // Thread-safe; accepts any image (one not born in the pool is retained
  // all the same).
  void recycle_frame(ImageU8&& image);

  const ServiceOptions& options() const { return options_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  PoolStats frame_pool_stats() const { return frame_pool_.stats(); }
  PoolStats prepare_pool_stats() const { return prepare_pool_.stats(); }
  std::string metrics_json() const {
    return metrics_.to_json(cache_.stats(), frame_pool_.stats(),
                            prepare_pool_.stats());
  }

 private:
  struct Pending {
    RenderRequest request;
    // Engaged only for future-based delivery; the callback path skips the
    // promise entirely so submit_async never pays its shared-state
    // allocation.
    std::optional<std::promise<FrameResult>> promise;
    Completion done;
    Clock::time_point enqueued;
  };

  // Per-session FIFO on a vector with a head cursor. Not a std::deque:
  // sizeof(Pending) exceeds the deque's 512-byte node budget (one element
  // per node), so a deque pays one node allocation per enqueued frame.
  // The vector reuses its capacity forever — moved-out slots sit behind
  // `head` until the queue drains, when one clear() (no deallocation)
  // rewinds it.
  struct PendingQueue {
    std::vector<Pending> items;
    size_t head = 0;

    bool empty() const { return head == items.size(); }
    size_t size() const { return items.size() - head; }
    Pending& front() { return items[head]; }
    void push_back(Pending&& p) { items.push_back(std::move(p)); }
    void pop_front() {
      ++head;
      if (head == items.size()) {
        items.clear();
        head = 0;
      }
    }
  };

  // Shared admission path: validates the deadline, reserves queue space and
  // enqueues. `done` empty means promise/future delivery.
  Ticket admit(RenderRequest request, Completion done);

  void scheduler_loop();
  void process(Pending& p);
  void render_one(Pending& p, Clock::time_point dispatched);
  void shed(Pending& p, ServeStatus status);
  // Routes a finished/shed result to the pending callback or promise.
  static void deliver(Pending& p, FrameResult&& result);

  ServiceOptions options_;
  ServiceMetrics metrics_;
  FramePool frame_pool_;
  // Transient build storage for cache-miss volume preparation. Declared
  // before cache_: the default builder holds a pointer to it, so it must
  // outlive the cache (members destroy in reverse order).
  PrepareScratchPool prepare_pool_;
  VolumeCache cache_;
  SessionTable sessions_;   // scheduler thread only
  ThreadedExecutor exec_;   // scheduler thread only
  // Scheduler-thread-confined per-frame scratch (like sessions_/exec_):
  // the canonical-key buffer, the render-stats out-param and the dispatch
  // batch are reused across frames so steady-state scheduling performs no
  // heap allocation.
  std::string canonical_scratch_;     // scheduler thread only
  ParallelRenderStats stats_scratch_; // scheduler thread only
  std::vector<Pending> batch_;        // scheduler thread only

  // Lock protocol: `mutex_` covers the admission queue state below it —
  // the per-session FIFOs, the round-robin rotation (every session with a
  // non-empty FIFO appears exactly once), the queue/in-flight gauges and
  // the stopping flag. `stop_mutex_` only serializes stop() callers around
  // the scheduler join; it is always taken before `mutex_` (stop() holds
  // it while flipping `stopping_`), never the other way around.
  Mutex stop_mutex_ PSW_ACQUIRED_BEFORE(mutex_);
  Mutex mutex_;
  CondVar work_cv_;   // with mutex_: work arrived or stopping_
  CondVar drain_cv_;  // with mutex_: queue empty and nothing in flight
  std::map<uint64_t, PendingQueue> queues_
      PSW_GUARDED_BY(mutex_);  // per-session FIFO
  std::deque<uint64_t> rotation_
      PSW_GUARDED_BY(mutex_);  // sessions with pending work, RR order
  int64_t total_queued_ PSW_GUARDED_BY(mutex_) = 0;
  int64_t in_flight_ PSW_GUARDED_BY(mutex_) = 0;
  bool stopping_ PSW_GUARDED_BY(mutex_) = false;

  // Written by the constructor (unchecked: no second thread exists yet),
  // joined under stop_mutex_ so concurrent stop() callers agree on who
  // joins.
  std::thread scheduler_ PSW_GUARDED_BY(stop_mutex_);
};

}  // namespace psw::serve
