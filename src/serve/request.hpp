// Request/response types of the frame-serving subsystem. A RenderRequest
// names a session, the volume it is watching (by cache key, not by pointer
// — classified state is shared through the VolumeCache) and a camera for
// one frame; the service answers with a FrameResult carrying the frame and
// its per-stage latency breakdown.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>

#include <vector>

#include "core/classify.hpp"
#include "core/factorization.hpp"
#include "obs/trace.hpp"
#include "util/image.hpp"

namespace psw::serve {

using Clock = std::chrono::steady_clock;

// Typed admission/completion outcome. Degradation under load is explicit:
// a full queue or an expired deadline rejects/sheds with one of these
// instead of stalling the submitter (§ DESIGN "Frame-serving subsystem").
enum class ServeStatus {
  kOk = 0,
  kQueueFull,       // rejected at admission: bounded queue at capacity
  kDeadlineMissed,  // rejected at admission or shed at dispatch: deadline past
  kShutdown,        // shed: service stopped before the request was scheduled
  kError,           // processing failed (e.g. the volume builder threw)
  kUnavailable,     // no backend reachable (connect exhausted retries, or a
                    // cluster router found no healthy shard for the volume)
};

const char* to_string(ServeStatus s);

// Identifies one classified+encoded volume in the cache: phantom kind and
// dimensions, transfer-function preset, and the full classification options
// (shading and alpha threshold change the encoded runs, so they are part of
// identity).
struct VolumeKey {
  std::string kind = "mri";  // "mri" | "ct" (default phantom builder)
  int nx = 64, ny = 64, nz = 64;
  int tf_preset = 0;  // 0 = mri_preset, 1 = ct_preset
  ClassifyOptions classify;
  uint64_t seed = 0;  // 0 = the phantom generator's default seed

  // Canonical string form: exact (floats rendered with full precision),
  // used as the cache map key and in telemetry. The _into form assigns into
  // a caller-owned string (capacity-reusing; the key exceeds the SSO
  // budget) so the per-frame cache consult stays allocation-free.
  std::string canonical() const;
  void canonical_into(std::string* out) const;
};

struct RenderRequest {
  uint64_t session_id = 0;
  VolumeKey volume;
  Camera camera;
  // Latest acceptable dispatch time; default (epoch) means "no deadline".
  Clock::time_point deadline{};
  // Distributed-tracing context; default-constructed (unsampled) requests
  // take the zero-overhead path through the scheduler.
  obs::TraceContext trace;
  // Correlator recorded as the span tag (the wire request/stream id).
  uint64_t trace_tag = 0;

  bool has_deadline() const { return deadline != Clock::time_point{}; }
};

// Per-frame latency breakdown recorded by the scheduler.
struct FrameTiming {
  double queue_wait_ms = 0.0;  // submit -> dispatch
  double classify_ms = 0.0;    // volume build on a cache miss (0 on a hit)
  double composite_ms = 0.0;
  double warp_ms = 0.0;
  double total_ms = 0.0;  // submit -> completion
  bool cache_hit = false;
  bool profiled = false;  // the renderer re-profiled on this frame (§4.2)
};

struct FrameResult {
  ServeStatus status = ServeStatus::kOk;
  ImageU8 image;  // empty unless status == kOk
  FrameTiming timing;
  uint64_t frame_seq = 0;  // service-wide completion sequence number
  // Echo of the request's trace context plus the stage spans the scheduler
  // recorded for it. Both stay empty on the unsampled path (no allocation);
  // timestamps are steady-clock ns (the wire layer wall-anchors them).
  obs::TraceContext trace;
  std::vector<obs::SpanRecord> spans;
};

// submit()'s answer. When `admission` is not kOk the request was rejected
// synchronously and `result` is invalid; otherwise `result` resolves to a
// FrameResult whose own status may still be kDeadlineMissed/kShutdown if
// the request was shed before dispatch.
struct Ticket {
  ServeStatus admission = ServeStatus::kOk;
  std::future<FrameResult> result;

  bool accepted() const { return admission == ServeStatus::kOk; }
};

}  // namespace psw::serve
