// Telemetry for the frame-serving subsystem: admission outcomes, queue
// depth, per-stage latency histograms (queue wait, classify, composite,
// warp, end-to-end) and cache statistics, exportable as one JSON object.
// Counters are atomics so submitters and the scheduler record without
// locks; the export is a racy-but-consistent-enough snapshot (each counter
// individually coherent), which is the standard contract for service
// metrics endpoints.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/volume_cache.hpp"
#include "util/buffer_pool.hpp"
#include "util/histogram.hpp"

namespace psw {
class JsonWriter;
}

namespace psw::serve {

struct ServiceMetrics {
  // Admission: every submit() increments `submitted` and exactly one of
  // {accepted, rejected_queue_full, rejected_deadline, rejected_shutdown}.
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected_queue_full{0};
  std::atomic<uint64_t> rejected_deadline{0};
  std::atomic<uint64_t> rejected_shutdown{0};
  // Of `submitted`, how many arrived through the callback form
  // (submit_async — the network front end's path).
  std::atomic<uint64_t> async_submitted{0};

  // Completion: every accepted request eventually increments exactly one of
  // {completed, shed_deadline, shed_shutdown, failed}.
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> shed_deadline{0};
  std::atomic<uint64_t> shed_shutdown{0};
  std::atomic<uint64_t> failed{0};

  // Scheduler behaviour.
  std::atomic<uint64_t> batches{0};          // dispatch batches drained
  std::atomic<uint64_t> batched_frames{0};   // frames that rode an existing batch
  std::atomic<uint64_t> profiled_frames{0};  // frames that re-profiled (§4.2)
  std::atomic<uint64_t> sessions_created{0};
  std::atomic<uint64_t> sessions_evicted{0};

  // Queue gauge (current depth) and high-water mark.
  std::atomic<int64_t> queue_depth{0};
  std::atomic<int64_t> queue_depth_max{0};

  // Per-stage latency. `cache_miss_build` records only cache-miss volume
  // preparations (classify + encode), i.e. the cold-start cost a session
  // pays when its volume is not yet resident.
  LatencyHistogram queue_wait;
  LatencyHistogram cache_miss_build;
  LatencyHistogram composite;
  LatencyHistogram warp;
  LatencyHistogram total;

  void note_queue_depth(int64_t depth);

  // Conservation check once the service has quiesced (empty queue, no
  // in-flight work): admissions partition submissions, and completions +
  // sheds partition acceptances.
  bool reconciles() const;

  // Writes one JSON object with counters, histograms, the given cache stats
  // and the frame-pool / prepare-pool allocation accounting at the writer's
  // current value slot.
  void write_json(JsonWriter& w, const CacheStats& cache, const PoolStats& frame_pool,
                  const PoolStats& prepare_pool) const;
  // Same, as a standalone string.
  std::string to_json(const CacheStats& cache, const PoolStats& frame_pool,
                      const PoolStats& prepare_pool) const;
};

// Shared pool-stat JSON shape ({"acquires": ..., "hit_rate": ...}); used by
// the service (frame pool) and the net server (payload pool) exports.
void write_pool_json(JsonWriter& w, const PoolStats& pool);

}  // namespace psw::serve
