#include "serve/volume_cache.hpp"

#include <algorithm>
#include <cstdio>

#include "core/transfer.hpp"
#include "phantom/phantom.hpp"
#include "util/timer.hpp"

namespace psw::serve {

void VolumeKey::canonical_into(std::string* out) const {
  char buf[256];
  const int n = std::snprintf(
      buf, sizeof(buf),
      "%s:%dx%dx%d:tf=%d:at=%d:amb=%.9g:dif=%.9g:light=%.9g,%.9g,%.9g:seed=%llu",
      kind.c_str(), nx, ny, nz, tf_preset, classify.alpha_threshold,
      static_cast<double>(classify.ambient), static_cast<double>(classify.diffuse),
      classify.light_dir.x, classify.light_dir.y, classify.light_dir.z,
      static_cast<unsigned long long>(seed));
  out->assign(buf, static_cast<size_t>(std::max(0, n)));
}

std::string VolumeKey::canonical() const {
  std::string out;
  canonical_into(&out);
  return out;
}

VolumeCache::Builder VolumeCache::phantom_builder(const PrepareOptions& prep) {
  return phantom_builder(prep, nullptr);
}

VolumeCache::Builder VolumeCache::phantom_builder(const PrepareOptions& prep,
                                                  PrepareScratchPool* scratch_pool) {
  return [prep, scratch_pool](const VolumeKey& key, PrepareTiming* timing) {
    DensityVolume density =
        key.kind == "ct"
            ? (key.seed ? make_ct_head(key.nx, key.ny, key.nz, key.seed)
                        : make_ct_head(key.nx, key.ny, key.nz))
            : (key.seed ? make_mri_brain(key.nx, key.ny, key.nz, key.seed)
                        : make_mri_brain(key.nx, key.ny, key.nz));
    const TransferFunction tf =
        key.tf_preset == 1 ? TransferFunction::ct_preset() : TransferFunction::mri_preset();
    std::unique_ptr<PrepareScratch> scratch =
        scratch_pool != nullptr ? scratch_pool->acquire() : nullptr;
    auto volume = std::make_shared<const EncodedVolume>(
        prepare_volume(density, tf, key.classify, prep, nullptr, timing, scratch.get()));
    if (scratch_pool != nullptr) scratch_pool->release(std::move(scratch));
    return volume;
  };
}

VolumeCache::VolumeCache(uint64_t byte_budget, int shards, Builder builder)
    : budget_(byte_budget),
      shard_budget_(byte_budget / std::max(1, shards)),
      builder_(builder ? std::move(builder) : phantom_builder()) {
  shards_.reserve(static_cast<size_t>(std::max(1, shards)));
  for (int i = 0; i < std::max(1, shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

VolumeCache::Shard& VolumeCache::shard_for(const std::string& canonical) {
  return *shards_[std::hash<std::string>{}(canonical) % shards_.size()];
}

void VolumeCache::evict_locked(Shard& s, uint64_t shard_budget) {
  while (s.bytes > shard_budget && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
}

std::shared_ptr<const EncodedVolume> VolumeCache::get(const VolumeKey& key,
                                                      double* build_ms,
                                                      PrepareTiming* prep) {
  return get(key, key.canonical(), build_ms, prep);
}

std::shared_ptr<const EncodedVolume> VolumeCache::get(const VolumeKey& key,
                                                      const std::string& canonical,
                                                      double* build_ms,
                                                      PrepareTiming* prep) {
  if (build_ms) *build_ms = 0.0;
  if (prep) *prep = PrepareTiming{};
  Shard& s = shard_for(canonical);
  MutexLock lock(s.mutex);
  const auto it = s.index.find(canonical);
  if (it != s.index.end()) {
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
    ++s.hits;
    return it->second->volume;
  }
  ++s.misses;
  WallTimer timer;
  std::shared_ptr<const EncodedVolume> volume = builder_(key, prep);
  if (build_ms) *build_ms = timer.millis();
  const uint64_t bytes = volume->storage_bytes();
  s.lru.push_front(Entry{canonical, volume, bytes});
  s.index[canonical] = s.lru.begin();
  s.bytes += bytes;
  // A single entry larger than the shard budget is admitted (and will be
  // the first evicted on the next insert): rejecting it would livelock
  // sessions that legitimately need one big volume.
  evict_locked(s, std::max(shard_budget_, bytes));
  return volume;
}

CacheStats VolumeCache::stats() const {
  CacheStats out;
  out.budget_bytes = budget_;
  for (const auto& s : shards_) {
    MutexLock lock(s->mutex);
    out.hits += s->hits;
    out.misses += s->misses;
    out.evictions += s->evictions;
    out.bytes += s->bytes;
  }
  return out;
}

}  // namespace psw::serve
