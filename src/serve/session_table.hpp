// Per-session rendering state: the cached encoded volume the session is
// orbiting and a NewParallelRenderer instance whose ScanlineProfile carries
// the §4.2 partition profile from frame to frame. Keeping the renderer per
// session (and batching a session's frames consecutively in the scheduler)
// is what preserves the paper's profile-reuse semantics under multi-session
// load: successive small-angle frames of one orbit repartition from the
// profile instead of re-measuring.
//
// The table is owned and accessed by the scheduler thread only; it needs no
// locking (the service serializes all rendering through that thread). In
// the repo's capability model (DESIGN.md "Static concurrency analysis")
// this is thread confinement, not mutual exclusion: there is deliberately
// no psw::Mutex here, and the confinement is enforced by RenderService
// never letting a reference escape scheduler_loop()'s call tree.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/rle_volume.hpp"
#include "parallel/new_renderer.hpp"

namespace psw::serve {

struct SessionState {
  uint64_t id = 0;
  std::string volume_key;  // canonical key currently bound (empty = none)
  std::shared_ptr<const EncodedVolume> volume;
  NewParallelRenderer renderer;
  uint64_t frames_rendered = 0;

  explicit SessionState(uint64_t sid, ParallelOptions opt)
      : id(sid), renderer(opt) {}
};

class SessionTable {
 public:
  SessionTable(int max_sessions, ParallelOptions renderer_options)
      : max_sessions_(max_sessions < 1 ? 1 : max_sessions),
        renderer_options_(renderer_options) {}

  // Finds or creates the session and marks it most recently used. Creating
  // beyond the capacity evicts the least recently used session (its profile
  // and volume reference are dropped; a later request re-creates it fresh).
  SessionState& acquire(uint64_t id);

  size_t size() const { return index_.size(); }
  uint64_t created() const { return created_; }
  uint64_t evicted() const { return evicted_; }

 private:
  int max_sessions_;
  ParallelOptions renderer_options_;
  std::list<SessionState> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<SessionState>::iterator> index_;
  uint64_t created_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace psw::serve
