#include "serve/metrics.hpp"

#include "util/json.hpp"

namespace psw::serve {

const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kQueueFull: return "queue-full";
    case ServeStatus::kDeadlineMissed: return "deadline-missed";
    case ServeStatus::kShutdown: return "shutdown";
    case ServeStatus::kError: return "error";
    case ServeStatus::kUnavailable: return "unavailable";
  }
  return "?";
}

void ServiceMetrics::note_queue_depth(int64_t depth) {
  // relaxed: monotonic high-watermark statistic — the CAS loop retries on
  // races, and no reader infers ordering of other memory from it.
  int64_t prev = queue_depth_max.load(std::memory_order_relaxed);
  while (depth > prev && !queue_depth_max.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
}

bool ServiceMetrics::reconciles() const {
  const uint64_t sub = submitted.load();
  const uint64_t acc = accepted.load();
  const uint64_t rej = rejected_queue_full.load() + rejected_deadline.load() +
                       rejected_shutdown.load();
  const uint64_t done = completed.load() + shed_deadline.load() + shed_shutdown.load() +
                        failed.load();
  return sub == acc + rej && acc == done && queue_depth.load() == 0;
}

void write_pool_json(JsonWriter& w, const PoolStats& pool) {
  w.begin_object()
      .field("acquires", pool.acquires)
      .field("hits", pool.hits)
      .field("misses", pool.misses)
      .field("releases", pool.releases)
      .field("discards", pool.discards)
      .field("outstanding", pool.outstanding)
      .field("retained", pool.retained)
      .field("retained_bytes", pool.retained_bytes)
      .field("hit_rate", pool.hit_rate())
      .end_object();
}

std::string ServiceMetrics::to_json(const CacheStats& cache, const PoolStats& frame_pool,
                                    const PoolStats& prepare_pool) const {
  JsonWriter w;
  write_json(w, cache, frame_pool, prepare_pool);
  return w.str();
}

void ServiceMetrics::write_json(JsonWriter& w, const CacheStats& cache,
                                const PoolStats& frame_pool,
                                const PoolStats& prepare_pool) const {
  w.begin_object();
  w.key("admission").begin_object()
      .field("submitted", submitted.load())
      .field("accepted", accepted.load())
      .field("rejected_queue_full", rejected_queue_full.load())
      .field("rejected_deadline", rejected_deadline.load())
      .field("rejected_shutdown", rejected_shutdown.load())
      .field("async_submitted", async_submitted.load())
      .end_object();
  w.key("completion").begin_object()
      .field("completed", completed.load())
      .field("shed_deadline", shed_deadline.load())
      .field("shed_shutdown", shed_shutdown.load())
      .field("failed", failed.load())
      .end_object();
  w.key("scheduler").begin_object()
      .field("batches", batches.load())
      .field("batched_frames", batched_frames.load())
      .field("profiled_frames", profiled_frames.load())
      .field("sessions_created", sessions_created.load())
      .field("sessions_evicted", sessions_evicted.load())
      .field("queue_depth", static_cast<int64_t>(queue_depth.load()))
      .field("queue_depth_max", static_cast<int64_t>(queue_depth_max.load()))
      .end_object();
  w.key("latency_ms").begin_object();
  w.key("queue_wait");
  queue_wait.write_json(w);
  w.key("cache_miss_build");
  cache_miss_build.write_json(w);
  w.key("composite");
  composite.write_json(w);
  w.key("warp");
  warp.write_json(w);
  w.key("total");
  total.write_json(w);
  w.end_object();
  w.key("volume_cache").begin_object()
      .field("hits", cache.hits)
      .field("misses", cache.misses)
      .field("evictions", cache.evictions)
      .field("resident_bytes", cache.bytes)
      .field("budget_bytes", cache.budget_bytes)
      .field("hit_rate", cache.hit_rate())
      .end_object();
  w.key("frame_pool");
  write_pool_json(w, frame_pool);
  w.key("prepare_pool");
  write_pool_json(w, prepare_pool);
  w.end_object();
}

}  // namespace psw::serve
