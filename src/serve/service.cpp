#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "util/timer.hpp"

namespace psw::serve {

namespace {
double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Span timestamps share Clock's (steady_clock) epoch, so scheduler time
// points convert directly to recorder nanoseconds.
int64_t to_ns(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}
}  // namespace

namespace {
// Resolves the cache builder: a caller-supplied builder wins; otherwise the
// phantom builder prepares misses with prepare_threads threads (0 = match
// the render pool size).
VolumeCache::Builder resolve_builder(const ServiceOptions& options,
                                     VolumeCache::Builder builder,
                                     PrepareScratchPool* scratch_pool) {
  if (builder) return builder;
  PrepareOptions prep;
  prep.threads = options.prepare_threads > 0 ? options.prepare_threads
                                             : std::max(1, options.worker_threads);
  return VolumeCache::phantom_builder(prep, scratch_pool);
}
}  // namespace

RenderService::RenderService(ServiceOptions options, VolumeCache::Builder builder)
    : options_(options),
      frame_pool_(FramePool::Options{
          static_cast<size_t>(std::max(0, options.frame_pool_frames)),
          FramePool::Options{}.max_retained_bytes}),
      cache_(options.cache_bytes, options.cache_shards,
             resolve_builder(options, std::move(builder), &prepare_pool_)),
      sessions_(options.max_sessions, options.parallel),
      exec_(std::max(1, options.worker_threads)) {
  options_.worker_threads = exec_.procs();
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

RenderService::~RenderService() { stop(); }

Ticket RenderService::submit(RenderRequest request) {
  return admit(std::move(request), {});
}

ServeStatus RenderService::submit_async(RenderRequest request, Completion done) {
  metrics_.async_submitted.fetch_add(1);
  return admit(std::move(request), std::move(done)).admission;
}

Ticket RenderService::admit(RenderRequest request, Completion done) {
  Ticket ticket;
  metrics_.submitted.fetch_add(1);
  const Clock::time_point now = Clock::now();
  if (request.has_deadline() && now > request.deadline) {
    metrics_.rejected_deadline.fetch_add(1);
    ticket.admission = ServeStatus::kDeadlineMissed;
    return ticket;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.done = std::move(done);
  pending.enqueued = now;
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      metrics_.rejected_shutdown.fetch_add(1);
      ticket.admission = ServeStatus::kShutdown;
      return ticket;
    }
    if (total_queued_ >= options_.queue_capacity) {
      metrics_.rejected_queue_full.fetch_add(1);
      ticket.admission = ServeStatus::kQueueFull;
      return ticket;
    }
    if (!pending.done) ticket.result = pending.promise.emplace().get_future();
    auto& q = queues_[pending.request.session_id];
    if (q.empty()) rotation_.push_back(pending.request.session_id);
    q.push_back(std::move(pending));
    ++total_queued_;
    metrics_.accepted.fetch_add(1);
    metrics_.queue_depth.fetch_add(1);
    metrics_.note_queue_depth(total_queued_);
  }
  work_cv_.notify_one();
  return ticket;
}

void RenderService::deliver(Pending& p, FrameResult&& result) {
  if (p.done) {
    p.done(std::move(result));
  } else if (p.promise) {
    p.promise->set_value(std::move(result));
  }
}

void RenderService::recycle_frame(ImageU8&& image) {
  frame_pool_.release(std::move(image));
}

void RenderService::shed(Pending& p, ServeStatus status) {
  if (status == ServeStatus::kDeadlineMissed) {
    metrics_.shed_deadline.fetch_add(1);
  } else {
    metrics_.shed_shutdown.fetch_add(1);
  }
  FrameResult result;
  result.status = status;
  result.trace = p.request.trace;  // correlate the typed shed with its trace
  result.timing.queue_wait_ms = ms_between(p.enqueued, Clock::now());
  deliver(p, std::move(result));
}

void RenderService::process(Pending& p) {
  const Clock::time_point dispatched = Clock::now();
  if (p.request.has_deadline() && dispatched > p.request.deadline) {
    shed(p, ServeStatus::kDeadlineMissed);
    return;
  }
  try {
    render_one(p, dispatched);
  } catch (...) {
    // The scheduler thread must survive a failing request (a throwing
    // builder, allocation failure): answer with the typed error.
    metrics_.failed.fetch_add(1);
    FrameResult result;
    result.status = ServeStatus::kError;
    result.trace = p.request.trace;
    result.timing.queue_wait_ms = ms_between(p.enqueued, dispatched);
    deliver(p, std::move(result));
  }
}

void RenderService::render_one(Pending& p, Clock::time_point dispatched) {
  FrameResult result;
  // Render into a recycled frame when one is available: the warp writes
  // every pixel, so reuse is invisible to output, and a warm pool makes the
  // per-frame image allocation disappear.
  result.image = frame_pool_.acquire(
      static_cast<size_t>(p.request.camera.image_width) *
      static_cast<size_t>(p.request.camera.image_height));
  result.timing.queue_wait_ms = ms_between(p.enqueued, dispatched);
  metrics_.queue_wait.record_ms(result.timing.queue_wait_ms);

  // Sampled requests get a server-side request span; every stage span below
  // parents to it. The unsampled path takes none of these branches beyond
  // one boolean test — no allocation, no recorder traffic.
  const bool traced = p.request.trace.sampled();
  const obs::TraceContext& ctx = p.request.trace;
  uint64_t request_span = 0;
  auto add_span = [&](obs::SpanKind kind, uint64_t parent, int64_t start_ns,
                      int64_t end_ns) {
    obs::SpanRecord s;
    s.trace_hi = ctx.trace_hi;
    s.trace_lo = ctx.trace_lo;
    s.span_id = obs::next_span_id();
    s.parent_id = parent;
    s.kind = kind;
    s.t_start_ns = start_ns;
    s.t_end_ns = end_ns;
    s.tag = p.request.trace_tag;
    result.spans.push_back(s);
    return s.span_id;
  };
  if (traced) {
    result.trace = ctx;
    request_span = obs::next_span_id();
    add_span(obs::SpanKind::kQueueWait, request_span, to_ns(p.enqueued),
             to_ns(dispatched));
  }

  SessionState& session = sessions_.acquire(p.request.session_id);
  metrics_.sessions_created.store(sessions_.created());
  metrics_.sessions_evicted.store(sessions_.evicted());

  // Consult the cache every frame: the LRU must see which volumes are live,
  // and the hit/miss counters then measure per-frame sharing, not just
  // first-touch binding.
  double build_ms = 0.0;
  PrepareTiming prep;
  p.request.volume.canonical_into(&canonical_scratch_);
  const Clock::time_point build_start = Clock::now();
  std::shared_ptr<const EncodedVolume> volume =
      cache_.get(p.request.volume, canonical_scratch_, &build_ms, &prep);
  const Clock::time_point build_end = Clock::now();
  result.timing.cache_hit = build_ms == 0.0;
  result.timing.classify_ms = build_ms;
  if (build_ms > 0.0) metrics_.cache_miss_build.record_ms(build_ms);
  if (traced && build_ms > 0.0) {
    // Child spans are reconstructed from the builder's stage durations:
    // classify leads the build, encoding finishes it (the gap between them
    // is phantom generation + bookkeeping).
    const uint64_t build_span =
        add_span(obs::SpanKind::kCacheBuild, request_span, to_ns(build_start),
                 to_ns(build_end));
    const int64_t classify_ns = static_cast<int64_t>(prep.classify_ms * 1e6);
    const int64_t encode_ns = static_cast<int64_t>(prep.encode_ms * 1e6);
    if (prep.classify_ms > 0.0) {
      add_span(obs::SpanKind::kClassify, build_span,
               to_ns(build_end) - encode_ns - classify_ns,
               to_ns(build_end) - encode_ns);
    }
    if (prep.encode_ms > 0.0) {
      add_span(obs::SpanKind::kEncodeVolume, build_span,
               to_ns(build_end) - encode_ns, to_ns(build_end));
    }
  }
  if (session.volume_key != canonical_scratch_) {
    // New volume for this session: the old profile describes a different
    // dataset (or transfer function), so partition prediction restarts.
    session.renderer.reset();
    session.volume_key = canonical_scratch_;
  }
  session.volume = std::move(volume);

  const Clock::time_point render_start = Clock::now();
  session.renderer.render(*session.volume, p.request.camera, exec_, &result.image,
                          &stats_scratch_);
  const ParallelRenderStats& stats = stats_scratch_;
  const Clock::time_point render_end = Clock::now();
  ++session.frames_rendered;

  result.timing.composite_ms = stats.composite_ms;
  result.timing.warp_ms = stats.warp_ms;
  result.timing.profiled = stats.profiled;
  result.timing.total_ms = ms_between(p.enqueued, Clock::now());
  metrics_.composite.record_ms(stats.composite_ms);
  metrics_.warp.record_ms(stats.warp_ms);
  metrics_.total.record_ms(result.timing.total_ms);
  if (stats.profiled) metrics_.profiled_frames.fetch_add(1);
  if (traced) {
    // The paper's phase split, live: composite leads the render interval,
    // warp ends it (with fused phases the boundary is approximate — each
    // processor's warp overlaps its neighbours' compositing).
    add_span(obs::SpanKind::kComposite, request_span, to_ns(render_start),
             to_ns(render_start) + static_cast<int64_t>(stats.composite_ms * 1e6));
    add_span(obs::SpanKind::kWarp, request_span,
             to_ns(render_end) - static_cast<int64_t>(stats.warp_ms * 1e6),
             to_ns(render_end));
    // The request span closes here (delivery to the wire is traced by the
    // network layer as frame-encode/send spans under the same parent).
    obs::SpanRecord req;
    req.trace_hi = ctx.trace_hi;
    req.trace_lo = ctx.trace_lo;
    req.span_id = request_span;
    req.parent_id = ctx.parent_span;
    req.kind = obs::SpanKind::kRequest;
    req.t_start_ns = to_ns(p.enqueued);
    req.t_end_ns = to_ns(Clock::now());
    req.tag = p.request.trace_tag;
    result.spans.push_back(req);
    if (options_.recorder != nullptr) {
      for (const obs::SpanRecord& s : result.spans) {
        options_.recorder->record(ctx, s);
      }
      options_.recorder->note_request(ctx, result.spans, result.timing.total_ms);
    }
  }
  result.status = ServeStatus::kOk;
  result.frame_seq = metrics_.completed.fetch_add(1) + 1;
  deliver(p, std::move(result));
}

void RenderService::scheduler_loop() {
  // batch_ is scheduler-confined and reused across iterations; clear()
  // keeps its capacity so steady-state dispatch never allocates.
  std::vector<Pending>& batch = batch_;
  for (;;) {
    batch.clear();
    {
      MutexLock lock(mutex_);
      while (!stopping_ && total_queued_ == 0) work_cv_.wait(mutex_);
      if (stopping_) {
        // Shed everything still queued with the typed shutdown status.
        for (auto& [sid, q] : queues_) {
          for (size_t i = q.head; i < q.items.size(); ++i) {
            shed(q.items[i], ServeStatus::kShutdown);
          }
          metrics_.queue_depth.fetch_sub(static_cast<int64_t>(q.size()));
          total_queued_ -= static_cast<int64_t>(q.size());
        }
        queues_.clear();
        rotation_.clear();
        drain_cv_.notify_all();
        return;
      }
      // Round-robin: serve the session at the head of the rotation, taking
      // up to batch_max of its consecutive frames so its renderer's profile
      // carries across them, then move it to the back.
      const uint64_t sid = rotation_.front();
      rotation_.pop_front();
      auto it = queues_.find(sid);
      auto& q = it->second;
      const int take =
          std::min<int>(std::max(1, options_.batch_max), static_cast<int>(q.size()));
      batch.reserve(static_cast<size_t>(take));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(q.front()));
        q.pop_front();
      }
      if (q.empty()) {
        // Retain the emptied FIFO (map node + deque block) for the
        // session's next frame — per-frame erase/reinsert churn is exactly
        // the allocator traffic this path must avoid. A bounded sweep
        // erases on drain only once the table has grown well past the
        // session capacity (many one-shot session ids).
        if (queues_.size() >
            static_cast<size_t>(2 * std::max(1, options_.max_sessions))) {
          queues_.erase(it);
        }
      } else {
        rotation_.push_back(sid);
      }
      total_queued_ -= take;
      in_flight_ = take;
      metrics_.queue_depth.fetch_sub(take);
    }
    metrics_.batches.fetch_add(1);
    metrics_.batched_frames.fetch_add(batch.size() - 1);
    for (Pending& p : batch) process(p);
    {
      MutexLock lock(mutex_);
      in_flight_ = 0;
      if (total_queued_ == 0) drain_cv_.notify_all();
    }
  }
}

void RenderService::drain() {
  MutexLock lock(mutex_);
  while (total_queued_ != 0 || in_flight_ != 0) drain_cv_.wait(mutex_);
}

bool RenderService::drain_for(int64_t timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
  MutexLock lock(mutex_);
  while (total_queued_ != 0 || in_flight_ != 0) {
    const auto now = Clock::now();
    if (now >= deadline) return false;
    drain_cv_.wait_for(mutex_, std::chrono::duration_cast<std::chrono::milliseconds>(
                                   deadline - now));
  }
  return true;
}

void RenderService::stop() {
  MutexLock stop_lock(stop_mutex_);
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

}  // namespace psw::serve
