// Trace-driven data-race detection over TraceSet reference streams.
//
// The correctness invariant behind both parallel shear-warp algorithms is
// that no two processors touch the same bytes conflictingly (write/write or
// read/write) within a synchronization interval — sharing is only legal
// *across* barriers or point-to-point completion edges. check_races replays
// a TraceSet against the happens-before relation reconstructed by SyncGraph
// and reports every conflicting access pair not ordered by it, classified
// by the owning data structure via a RegionRegistry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rle_volume.hpp"
#include "parallel/profile.hpp"
#include "trace/sink.hpp"
#include "util/image.hpp"

namespace psw {

class IntermediateImage;

// Named address ranges used to attribute findings to data structures
// (volume runs / voxel data / intermediate image / final image / ...).
class RegionRegistry {
 public:
  void add(std::string name, const void* base, size_t bytes);
  void add_range(std::string name, uint64_t lo, uint64_t hi);

  // Name of the region containing addr, or "unregistered".
  const std::string& classify(uint64_t addr) const;
  size_t size() const { return regions_.size(); }

 private:
  struct Region {
    uint64_t lo = 0, hi = 0;
    std::string name;
  };
  mutable std::vector<Region> regions_;
  mutable bool sorted_ = true;
};

// Registers the address regions of one renderer run: the three per-axis RLE
// encodings (runs + packed voxels), the intermediate image (pixels + skip
// links), the final image, and (for the new algorithm) the scanline
// profile. `profile` may be null.
void register_render_regions(RegionRegistry* regions, const EncodedVolume& volume,
                             const IntermediateImage& intermediate,
                             const ImageU8& final_image,
                             const ScanlineProfile* profile);

struct RaceCheckOptions {
  // Bytes per shadow cell (power of two). Coarser cells cost less memory on
  // large traces but can report false sharing: two processors touching
  // distinct bytes of one cell look conflicting. 4 bytes matches the
  // smallest traced accesses (skip links, profile counters), so the default
  // is exact for every stream the renderers emit.
  uint32_t granularity = 4;
  // Findings recorded in the report; further races are still counted.
  size_t max_findings = 16;
};

struct RaceEndpoint {
  int proc = -1;
  int interval = -1;    // -1 = before the first boundary
  size_t record = 0;    // index into the proc's stream
  bool write = false;
  uint64_t addr = 0;
  uint32_t size = 0;
};

struct RaceFinding {
  uint64_t cell_lo = 0, cell_hi = 0;  // offending shadow-cell byte range
  RaceEndpoint first, second;         // first = earlier in replay order
  std::string region;
};

struct RaceReport {
  std::vector<RaceFinding> findings;
  uint64_t races_total = 0;       // all conflicting pairs, beyond max_findings
  uint64_t records_checked = 0;
  size_t shadow_cells = 0;
  int procs = 0;

  bool clean() const { return races_total == 0; }
  // Human-readable findings, one block per finding (empty when clean).
  std::string summary(const TraceSet& traces) const;
};

RaceReport check_races(const TraceSet& traces, const RegionRegistry& regions,
                       const RaceCheckOptions& opt = {});

}  // namespace psw
