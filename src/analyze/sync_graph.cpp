#include "analyze/sync_graph.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace psw {

namespace {

void join_into(std::vector<int32_t>* dst, const std::vector<int32_t>& src) {
  for (size_t q = 0; q < dst->size(); ++q) (*dst)[q] = std::max((*dst)[q], src[q]);
}

}  // namespace

SyncGraph::SyncGraph(const TraceSet& traces) : procs_(traces.procs()) {
  // The currently open (not yet finalized) segment of each processor.
  struct Open {
    size_t start = 0;
    std::vector<int32_t> vc;
  };
  std::vector<Open> open(procs_);
  for (int p = 0; p < procs_; ++p) {
    open[p].vc.assign(procs_, -1);
    open[p].vc[p] = 0;
  }
  starts_.assign(procs_, {});
  ids_.assign(procs_, {});

  // Finalizes p's open segment at stream position `pos` (no-op when the
  // segment would be empty) and opens the next one with the same clock,
  // own component advanced.
  auto cut = [&](int p, size_t pos) {
    assert(pos >= open[p].start && "sync event positions regressed");
    if (pos == open[p].start) return;
    const int id = static_cast<int>(seg_proc_.size());
    seg_proc_.push_back(p);
    seg_ordinal_.push_back(open[p].vc[p]);
    seg_begin_.push_back(open[p].start);
    seg_end_.push_back(pos);
    vc_.push_back(open[p].vc);
    order_.push_back(id);
    starts_[p].push_back(open[p].start);
    ids_[p].push_back(id);
    open[p].start = pos;
    ++open[p].vc[p];
  };

  // Clock of everything strictly before p's current open segment: the open
  // clock with the own component stepped back to the last finalized
  // ordinal. Used for release snapshots and barrier joins.
  auto before_open = [&](int p) {
    std::vector<int32_t> vc = open[p].vc;
    --vc[p];
    return vc;
  };

  std::unordered_map<uint64_t, std::vector<std::vector<int32_t>>> released;

  for (const SyncEvent& e : traces.sync_events()) {
    switch (e.kind) {
      case SyncEvent::Kind::kBarrier: {
        for (int p = 0; p < procs_; ++p) cut(p, e.pos[p]);
        std::vector<int32_t> join(procs_, -1);
        for (int p = 0; p < procs_; ++p) join_into(&join, before_open(p));
        for (int p = 0; p < procs_; ++p) join_into(&open[p].vc, join);
        break;
      }
      case SyncEvent::Kind::kRelease: {
        cut(e.a, e.pos[0]);
        released[e.token].push_back(before_open(e.a));
        break;
      }
      case SyncEvent::Kind::kAcquire: {
        cut(e.a, e.pos[0]);
        for (const auto& snap : released[e.token]) join_into(&open[e.a].vc, snap);
        break;
      }
      case SyncEvent::Kind::kEdge: {
        cut(e.a, e.pos[0]);
        const std::vector<int32_t> snap = before_open(e.a);
        cut(e.b, e.pos[1]);
        join_into(&open[e.b].vc, snap);
        break;
      }
    }
  }

  // Close the trailing segments. They have no successors, so appending
  // them last keeps `order_` topological.
  for (int p = 0; p < procs_; ++p) cut(p, traces.stream(p).records.size());
}

int SyncGraph::segment_at(int p, size_t rec) const {
  const auto& starts = starts_[p];
  const auto it = std::upper_bound(starts.begin(), starts.end(), rec);
  assert(it != starts.begin() && "record not covered by any segment");
  return ids_[p][static_cast<size_t>(it - starts.begin()) - 1];
}

}  // namespace psw
