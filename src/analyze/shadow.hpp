// Shadow memory for the race detector: one cell per `granularity`-byte
// aligned slice of the traced address space, held in a hash map so only
// touched slices cost memory (a 512³ frame touches tens of MB of distinct
// addresses; at the default 4-byte granularity that is a few million cells,
// each 24 bytes).
//
// Cell state follows FastTrack (Flanagan & Freund, PLDI 2009): the last
// write is a single epoch — here a segment id from the SyncGraph plus the
// record index for reporting — because writes to a race-free location are
// totally ordered; reads keep a single epoch in the common same-processor
// or ordered case and inflate to a per-processor vector only when
// genuinely concurrent reads accumulate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace psw {

struct ShadowEpoch {
  int32_t seg = -1;   // SyncGraph segment id, -1 = none
  uint32_t rec = 0;   // record index within the segment's stream

  bool valid() const { return seg >= 0; }
};

struct ShadowCell {
  ShadowEpoch write;
  ShadowEpoch read;   // last read while reads are totally ordered
  int32_t read_vec = -1;  // index into ShadowMap::read_vectors, -1 = unused
};

class ShadowMap {
 public:
  explicit ShadowMap(uint32_t granularity) : granularity_(granularity) {
    shift_ = 0;
    while ((granularity >> (shift_ + 1)) != 0) ++shift_;
  }

  uint32_t granularity() const { return granularity_; }
  size_t cells() const { return cells_.size(); }

  // Cell keys spanned by [addr, addr + size).
  uint64_t first_key(uint64_t addr) const { return addr >> shift_; }
  uint64_t last_key(uint64_t addr, uint32_t size) const {
    return (addr + (size > 0 ? size - 1 : 0)) >> shift_;
  }
  // Byte range shadowed by a cell key, for reporting.
  std::pair<uint64_t, uint64_t> key_range(uint64_t key) const {
    return {key << shift_, (key + 1) << shift_};
  }

  ShadowCell& cell(uint64_t key) { return cells_[key]; }

  // Per-processor read epochs of a cell whose reads went concurrent.
  std::vector<ShadowEpoch>& inflate_reads(ShadowCell* c, int procs) {
    if (c->read_vec < 0) {
      c->read_vec = static_cast<int32_t>(read_vectors_.size());
      read_vectors_.emplace_back(procs);
    }
    return read_vectors_[c->read_vec];
  }
  std::vector<ShadowEpoch>* reads_of(const ShadowCell& c) {
    return c.read_vec < 0 ? nullptr : &read_vectors_[c.read_vec];
  }

 private:
  uint32_t granularity_;
  uint32_t shift_;
  std::unordered_map<uint64_t, ShadowCell> cells_;
  std::vector<std::vector<ShadowEpoch>> read_vectors_;
};

}  // namespace psw
