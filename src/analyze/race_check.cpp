#include "analyze/race_check.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <set>
#include <tuple>

#include "analyze/shadow.hpp"
#include "analyze/sync_graph.hpp"
#include "core/intermediate_image.hpp"

namespace psw {

void RegionRegistry::add(std::string name, const void* base, size_t bytes) {
  add_range(std::move(name), reinterpret_cast<uint64_t>(base),
            reinterpret_cast<uint64_t>(base) + bytes);
}

void RegionRegistry::add_range(std::string name, uint64_t lo, uint64_t hi) {
  if (hi <= lo) return;
  regions_.push_back({lo, hi, std::move(name)});
  sorted_ = false;
}

const std::string& RegionRegistry::classify(uint64_t addr) const {
  static const std::string kUnregistered = "unregistered";
  if (!sorted_) {
    std::sort(regions_.begin(), regions_.end(),
              [](const Region& a, const Region& b) { return a.lo < b.lo; });
    sorted_ = true;
  }
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](uint64_t a, const Region& r) { return a < r.lo; });
  if (it == regions_.begin()) return kUnregistered;
  const Region& r = *(it - 1);
  return addr < r.hi ? r.name : kUnregistered;
}

void register_render_regions(RegionRegistry* regions, const EncodedVolume& volume,
                             const IntermediateImage& intermediate,
                             const ImageU8& final_image,
                             const ScanlineProfile* profile) {
  for (int axis = 0; axis < 3; ++axis) {
    const RleVolume& rle = volume.for_axis(axis);
    if (rle.run_count() > 0) {
      regions->add("volume runs", rle.runs_at(0, 0),
                   rle.run_count() * sizeof(uint16_t));
    }
    if (rle.voxel_count() > 0) {
      regions->add("voxel data", rle.voxels_at(0, 0),
                   rle.voxel_count() * sizeof(ClassifiedVoxel));
    }
  }
  const size_t inter_pixels =
      static_cast<size_t>(intermediate.width()) * intermediate.height();
  if (inter_pixels > 0) {
    regions->add("intermediate image", &intermediate.pixel(0, 0),
                 inter_pixels * sizeof(Rgba));
    regions->add("skip links", intermediate.skip_data(),
                 inter_pixels * sizeof(int32_t));
  }
  if (final_image.pixel_count() > 0) {
    regions->add("final image", final_image.data(),
                 final_image.pixel_count() * sizeof(Pixel8));
  }
  if (profile != nullptr && !profile->cost().empty()) {
    regions->add("scanline profile", profile->cost().data(),
                 profile->cost().size() * sizeof(uint32_t));
  }
}

namespace {

RaceEndpoint make_endpoint(const TraceSet& traces, const SyncGraph& graph, int seg,
                           uint32_t rec) {
  const int proc = graph.segment_proc(seg);
  const TraceRecord& r = traces.stream(proc).records[rec];
  RaceEndpoint e;
  e.proc = proc;
  e.interval = traces.interval_of(proc, rec);
  e.record = rec;
  e.write = r.is_write();
  e.addr = r.addr();
  e.size = r.size();
  return e;
}

class Detector {
 public:
  Detector(const TraceSet& traces, const SyncGraph& graph,
           const RegionRegistry& regions, const RaceCheckOptions& opt,
           RaceReport* report)
      : traces_(traces),
        graph_(graph),
        regions_(regions),
        opt_(opt),
        shadow_(opt.granularity),
        report_(report) {}

  void run() {
    for (const int seg : graph_.replay_order()) {
      const int proc = graph_.segment_proc(seg);
      const auto [begin, end] = graph_.segment_range(seg);
      const auto& records = traces_.stream(proc).records;
      for (size_t i = begin; i < end; ++i) {
        const TraceRecord& r = records[i];
        const uint64_t k0 = shadow_.first_key(r.addr());
        const uint64_t k1 = shadow_.last_key(r.addr(), r.size());
        for (uint64_t key = k0; key <= k1; ++key) {
          if (r.is_write()) {
            on_write(key, seg, static_cast<uint32_t>(i));
          } else {
            on_read(key, seg, static_cast<uint32_t>(i));
          }
        }
        ++report_->records_checked;
      }
    }
    report_->shadow_cells = shadow_.cells();
  }

 private:
  bool ordered_epoch(const ShadowEpoch& before, int seg) const {
    return graph_.ordered(before.seg, seg);
  }
  bool same_proc(const ShadowEpoch& e, int seg) const {
    return graph_.segment_proc(e.seg) == graph_.segment_proc(seg);
  }

  void report(uint64_t key, const ShadowEpoch& prior, int seg, uint32_t rec) {
    ++report_->races_total;
    if (report_->findings.size() >= opt_.max_findings) return;
    // One finding per (cell, prior segment, current segment) triple: a
    // single overlapping scanline would otherwise flood the report with a
    // finding per pixel.
    if (!reported_.insert({key, prior.seg, seg}).second) return;
    RaceFinding f;
    const auto [lo, hi] = shadow_.key_range(key);
    f.cell_lo = lo;
    f.cell_hi = hi;
    f.first = make_endpoint(traces_, graph_, prior.seg, prior.rec);
    f.second = make_endpoint(traces_, graph_, seg, rec);
    f.region = regions_.classify(f.second.addr);
    report_->findings.push_back(std::move(f));
  }

  void on_write(uint64_t key, int seg, uint32_t rec) {
    ShadowCell& c = shadow_.cell(key);
    if (c.write.valid() && !same_proc(c.write, seg) && !ordered_epoch(c.write, seg)) {
      report(key, c.write, seg, rec);
    }
    if (auto* reads = shadow_.reads_of(c)) {
      for (const ShadowEpoch& e : *reads) {
        if (e.valid() && !same_proc(e, seg) && !ordered_epoch(e, seg)) {
          report(key, e, seg, rec);
        }
      }
    } else if (c.read.valid() && !same_proc(c.read, seg) &&
               !ordered_epoch(c.read, seg)) {
      report(key, c.read, seg, rec);
    }
    // FastTrack write rule: the write epoch replaces all read state — any
    // future access racing with a dropped read would also race with this
    // write (or the read/write race was reported just now).
    c.write = {seg, rec};
    c.read = {};
    c.read_vec = -1;
  }

  void on_read(uint64_t key, int seg, uint32_t rec) {
    ShadowCell& c = shadow_.cell(key);
    if (c.write.valid() && !same_proc(c.write, seg) && !ordered_epoch(c.write, seg)) {
      report(key, c.write, seg, rec);
    }
    if (c.read_vec >= 0) {
      auto& reads = shadow_.inflate_reads(&c, graph_.procs());
      reads[graph_.segment_proc(seg)] = {seg, rec};
      return;
    }
    if (!c.read.valid() || same_proc(c.read, seg) || ordered_epoch(c.read, seg)) {
      c.read = {seg, rec};  // reads still totally ordered: keep one epoch
      return;
    }
    // Concurrent readers: inflate to one epoch per processor (FastTrack's
    // read-share transition).
    auto& reads = shadow_.inflate_reads(&c, graph_.procs());
    reads[graph_.segment_proc(c.read.seg)] = c.read;
    reads[graph_.segment_proc(seg)] = {seg, rec};
    c.read = {};
  }

  const TraceSet& traces_;
  const SyncGraph& graph_;
  const RegionRegistry& regions_;
  const RaceCheckOptions& opt_;
  ShadowMap shadow_;
  RaceReport* report_;
  std::set<std::tuple<uint64_t, int32_t, int32_t>> reported_;
};

void append_endpoint(std::string* out, const TraceSet& traces, const RaceEndpoint& e,
                     const char* label) {
  char buf[256];
  const std::string name = e.interval >= 0 && e.interval < traces.intervals()
                               ? traces.interval_name(e.interval)
                               : std::string("<pre>");
  std::snprintf(buf, sizeof(buf),
                "  %s: proc %d, interval %d (%s), record %zu: %s %u bytes @ 0x%llx\n",
                label, e.proc, e.interval, name.c_str(), e.record,
                e.write ? "write" : "read", e.size,
                static_cast<unsigned long long>(e.addr));
  *out += buf;
}

}  // namespace

std::string RaceReport::summary(const TraceSet& traces) const {
  std::string out;
  char buf[256];
  for (const RaceFinding& f : findings) {
    std::snprintf(buf, sizeof(buf), "race: %s/%s on %s, bytes [0x%llx, 0x%llx)\n",
                  f.first.write ? "write" : "read",
                  f.second.write ? "write" : "read", f.region.c_str(),
                  static_cast<unsigned long long>(f.cell_lo),
                  static_cast<unsigned long long>(f.cell_hi));
    out += buf;
    append_endpoint(&out, traces, f.first, "first ");
    append_endpoint(&out, traces, f.second, "second");
  }
  if (races_total > findings.size()) {
    std::snprintf(buf, sizeof(buf), "... %llu conflicting pairs in total\n",
                  static_cast<unsigned long long>(races_total));
    out += buf;
  }
  return out;
}

RaceReport check_races(const TraceSet& traces, const RegionRegistry& regions,
                       const RaceCheckOptions& opt) {
  assert((opt.granularity & (opt.granularity - 1)) == 0 && opt.granularity > 0 &&
         "shadow granularity must be a power of two");
  RaceReport report;
  report.procs = traces.procs();
  const SyncGraph graph(traces);
  Detector detector(traces, graph, regions, opt, &report);
  detector.run();
  return report;
}

}  // namespace psw
