// Happens-before structure of a TraceSet.
//
// Each processor's reference stream is cut into *segments* at every
// synchronization event that touches it (global barriers, point-to-point
// release/acquire positions). Segments are the unit of ordering: records
// within a segment are ordered only by program order on their own
// processor, and two records on different processors are ordered iff their
// segments are, via the vector clocks computed here (one logical clock per
// processor, FastTrack-style: a segment's clock holds, for every processor
// q, the highest segment ordinal of q that happens-before it).
//
// Building is a single pass over the events in recorded order, which is
// valid because the tracing executor is serial: stream positions referenced
// by successive events are monotone per processor, and a release is always
// recorded before any acquire that reads it. The same pass emits a replay
// order for the detector — segments listed in a linearisation consistent
// with happens-before.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/sink.hpp"

namespace psw {

class SyncGraph {
 public:
  explicit SyncGraph(const TraceSet& traces);

  int procs() const { return procs_; }
  int segments() const { return static_cast<int>(seg_proc_.size()); }

  int segment_proc(int seg) const { return seg_proc_[seg]; }
  // Ordinal of the segment within its processor's stream.
  int segment_ordinal(int seg) const { return seg_ordinal_[seg]; }
  // Record range [begin, end) of proc segment_proc(seg) covered by seg.
  std::pair<size_t, size_t> segment_range(int seg) const {
    return {seg_begin_[seg], seg_end_[seg]};
  }

  // Segment id covering record index `rec` of proc p's stream.
  int segment_at(int p, size_t rec) const;

  // True when every record of segment a happens-before every record of
  // segment b. Same-processor segments are ordered by ordinal (program
  // order); a segment is ordered before itself for the detector's purposes
  // (same-processor accesses never race).
  bool ordered(int a, int b) const {
    if (seg_proc_[a] == seg_proc_[b]) return seg_ordinal_[a] <= seg_ordinal_[b];
    return seg_ordinal_[a] <= vc_[b][seg_proc_[a]];
  }
  bool concurrent(int a, int b) const { return !ordered(a, b) && !ordered(b, a); }

  // All segments, in a topological order of happens-before; replaying
  // records segment-by-segment in this order keeps the detector's shadow
  // state (last writer / readers) causally consistent.
  const std::vector<int>& replay_order() const { return order_; }

 private:
  int procs_ = 0;
  std::vector<int> seg_proc_;
  std::vector<int> seg_ordinal_;
  std::vector<size_t> seg_begin_, seg_end_;
  std::vector<std::vector<int32_t>> vc_;  // per segment, indexed by proc
  std::vector<int> order_;
  // Per proc: start position and global id of each of its segments,
  // in stream order (for segment_at).
  std::vector<std::vector<size_t>> starts_;
  std::vector<std::vector<int>> ids_;
};

}  // namespace psw
