// Telemetry for the network front end. All counters are atomics: the poll
// thread is the only writer for most of them, but exporters (netserve's
// metrics endpoint, netbench's report, tests) read concurrently, and the
// orphaned-completion path writes from the render scheduler thread. The
// codec's effectiveness is tracked as bytes-on-the-wire vs the raw RGBA
// bytes of every frame actually sent — the headline number the frame codec
// exists to shrink.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace psw {
class JsonWriter;
}

namespace psw::net {

struct NetMetrics {
  // Connection lifecycle.
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> connections_rejected{0};  // at max_connections
  std::atomic<uint64_t> idle_timeouts{0};
  std::atomic<uint64_t> protocol_errors{0};  // framing/decode failures

  // Request traffic.
  std::atomic<uint64_t> requests_received{0};  // one-shot render requests
  std::atomic<uint64_t> streams_opened{0};
  std::atomic<uint64_t> streams_completed{0};
  std::atomic<uint64_t> errors_sent{0};  // kError replies

  // Frame delivery and the streaming backpressure policy.
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> frames_dropped{0};  // drop-oldest-undelivered sheds
  std::atomic<uint64_t> orphaned_completions{0};  // conn gone before completion

  // Raw socket traffic.
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};

  // Codec effectiveness over sent frames only.
  std::atomic<uint64_t> frame_raw_bytes{0};   // width*height*4 per sent frame
  std::atomic<uint64_t> frame_wire_bytes{0};  // encoded blob bytes

  // Bytes of an already-encoded frame copied into another buffer on the way
  // to the socket. The zero-copy send path (pooled payloads + writev) never
  // increments this — encoded bytes go codec -> payload -> kernel — so any
  // nonzero value flags a regression to flat-buffer copying.
  std::atomic<uint64_t> frame_copy_bytes{0};

  // Wire bytes per raw byte for sent frames (1.0 when nothing was sent,
  // i.e. "no savings yet", so thresholds compare conservatively).
  double wire_ratio() const {
    // relaxed: advisory ratio over two independently exact counters; a read
    // between a frame's raw and wire increments skews one frame at most.
    const uint64_t raw = frame_raw_bytes.load(std::memory_order_relaxed);
    const uint64_t wire = frame_wire_bytes.load(std::memory_order_relaxed);
    return raw == 0 ? 1.0 : static_cast<double>(wire) / static_cast<double>(raw);
  }

  // Post-encode copy cost per delivered frame; 0.0 on the zero-copy path.
  double bytes_copied_per_frame() const {
    // relaxed: advisory ratio, same rationale as wire_ratio().
    const uint64_t sent = frames_sent.load(std::memory_order_relaxed);
    const uint64_t copied = frame_copy_bytes.load(std::memory_order_relaxed);
    return sent == 0 ? 0.0 : static_cast<double>(copied) / static_cast<double>(sent);
  }

  // Writes one JSON object at the writer's current value slot.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;
};

}  // namespace psw::net
