#include "net/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace psw::net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

void set_error(std::string* error, std::string what) {
  if (error) *error = std::move(what);
}

}  // namespace

bool NetClient::connect(const std::string& host, uint16_t port, std::string* error) {
  close();
  connect_status_ = ConnectStatus::kError;
  connect_attempts_ = 0;
  int backoff_ms = options_.connect_backoff_ms > 0 ? options_.connect_backoff_ms : 1;
  for (int attempt = 0;; ++attempt) {
    ++connect_attempts_;
    int connect_errno = 0;
    fd_ = tcp_connect_errno(host, port, error, &connect_errno,
                            options_.recv_buffer_bytes);
    if (fd_.valid()) break;
    if (!retryable_connect_errno(connect_errno)) return false;
    if (attempt >= options_.connect_retries) {
      connect_status_ = ConnectStatus::kUnavailable;
      set_error(error, "connect to " + host + ":" + std::to_string(port) +
                           ": unavailable after " +
                           std::to_string(connect_attempts_) + " attempt(s): " +
                           (error ? *error : std::string()));
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;
  }
  if (options_.recv_timeout_ms > 0) {
    set_recv_timeout_ms(fd_.get(), options_.recv_timeout_ms);
  }

  HelloMsg hello;
  hello.version = kProtocolVersion;
  hello.name = "pswvr-netclient";
  std::vector<uint8_t> payload;
  hello.encode(&payload);
  if (!send_msg(MsgType::kHello, payload, error)) return false;

  WireMessage msg;
  if (!recv_msg(&msg, error)) return false;
  HelloMsg ack;
  if (msg.type != MsgType::kHelloAck || !HelloMsg::decode(msg.payload, &ack)) {
    set_error(error, "handshake failed: unexpected reply");
    close();
    return false;
  }
  server_name_ = ack.name;
  connect_status_ = ConnectStatus::kOk;
  return true;
}

void NetClient::close() {
  fd_.reset();
  in_.clear();
  in_off_ = 0;
  server_name_.clear();
  stream_decoders_.clear();
  session_decoders_.clear();
  request_sessions_.clear();
}

bool NetClient::render(const RenderRequestMsg& request, ImageU8* image,
                       FrameMsg* meta, std::string* error) {
  std::vector<uint8_t> payload;
  request.encode(&payload);
  if (!send_msg(MsgType::kRenderRequest, payload, error)) return false;
  request_sessions_[request.request_id] = request.session_id;

  for (;;) {
    Event event;
    if (!next_event(&event, error)) return false;
    switch (event.kind) {
      case Event::Kind::kFrame:
        if (event.frame.request_id != request.request_id) continue;
        if (image) *image = std::move(event.image);
        if (meta) *meta = event.frame;
        return true;
      case Event::Kind::kError:
        if (event.error.request_id != 0 &&
            event.error.request_id != request.request_id) {
          continue;
        }
        set_error(error, "server error (" +
                             std::to_string(event.error.status) +
                             "): " + event.error.message);
        return false;
      case Event::Kind::kStreamEnd:
        continue;  // not ours; a concurrent stream finishing is fine
    }
  }
}

bool NetClient::open_stream(const StreamRequestMsg& request, std::string* error) {
  std::vector<uint8_t> payload;
  request.encode(&payload);
  if (!send_msg(MsgType::kStreamRequest, payload, error)) return false;
  stream_decoders_[request.stream_id].reset();
  return true;
}

bool NetClient::next_event(Event* out, std::string* error) {
  WireMessage msg;
  if (!recv_msg(&msg, error)) return false;
  return decode_event(msg, out, error);
}

bool NetClient::decode_event(const WireMessage& msg, Event* out, std::string* error) {
  switch (msg.type) {
    case MsgType::kFrame: {
      FrameMsg frame;
      if (!FrameMsg::decode(msg.payload, &frame)) {
        set_error(error, "malformed frame message");
        return false;
      }
      FrameDecoder& decoder =
          frame.stream_id != 0
              ? stream_decoders_[frame.stream_id]
              : session_decoders_[request_sessions_.count(frame.request_id)
                                      ? request_sessions_[frame.request_id]
                                      : 0];
      out->kind = Event::Kind::kFrame;
      const CodecStatus status =
          decoder.decode(frame.encoded.data(), frame.encoded.size(), &out->image);
      if (status != CodecStatus::kOk) {
        set_error(error, std::string("frame decode failed: ") + to_string(status));
        return false;
      }
      frame.encoded.clear();
      out->frame = std::move(frame);
      return true;
    }
    case MsgType::kStreamEnd: {
      StreamEndMsg end;
      if (!StreamEndMsg::decode(msg.payload, &end)) {
        set_error(error, "malformed stream-end message");
        return false;
      }
      stream_decoders_.erase(end.stream_id);
      out->kind = Event::Kind::kStreamEnd;
      out->end = end;
      return true;
    }
    case MsgType::kError: {
      ErrorMsg err;
      if (!ErrorMsg::decode(msg.payload, &err)) {
        set_error(error, "malformed error message");
        return false;
      }
      out->kind = Event::Kind::kError;
      out->error = std::move(err);
      return true;
    }
    default:
      set_error(error, std::string("unexpected message: ") + to_string(msg.type));
      return false;
  }
}

bool NetClient::fetch_metrics(std::string* json, std::string* error,
                              uint8_t selector) {
  std::vector<uint8_t> payload;
  // The JSON default stays an empty payload so pre-selector servers (and
  // the router's probe contract) see unchanged bytes.
  if (selector != kMetricsSelectorJson) payload.push_back(selector);
  if (!send_msg(MsgType::kMetricsRequest, payload, error)) return false;
  // Frames from concurrent streams may be interleaved ahead of the reply;
  // skip them (their decoders still see every frame, keeping deltas valid).
  for (;;) {
    WireMessage msg;
    if (!recv_msg(&msg, error)) return false;
    if (msg.type == MsgType::kMetricsReply) {
      MetricsReplyMsg reply;
      if (!MetricsReplyMsg::decode(msg.payload, &reply)) {
        set_error(error, "malformed metrics reply");
        return false;
      }
      if (json) *json = std::move(reply.json);
      return true;
    }
    Event event;
    if (!decode_event(msg, &event, error)) return false;
  }
}

bool NetClient::send_bye(std::string* error) {
  return send_msg(MsgType::kBye, {}, error);
}

bool NetClient::send_msg(MsgType type, const std::vector<uint8_t>& payload,
                         std::string* error) {
  if (!fd_.valid()) {
    set_error(error, "not connected");
    return false;
  }
  std::vector<uint8_t> wire;
  encode_message(type, payload, &wire);
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd_.get(), wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    set_error(error, std::string("send: ") + std::strerror(errno));
    close();
    return false;
  }
  bytes_sent_ += wire.size();
  return true;
}

bool NetClient::recv_msg(WireMessage* msg, std::string* error) {
  if (!fd_.valid()) {
    set_error(error, "not connected");
    return false;
  }
  for (;;) {
    size_t consumed = 0;
    const WireStatus status = decode_message(in_.data() + in_off_,
                                             in_.size() - in_off_, msg, &consumed);
    if (status == WireStatus::kOk) {
      in_off_ += consumed;
      // Compact once the parsed prefix dominates the buffer.
      if (in_off_ > 0 && in_off_ * 2 >= in_.size()) {
        in_.erase(in_.begin(), in_.begin() + in_off_);
        in_off_ = 0;
      }
      return true;
    }
    if (status != WireStatus::kNeedMore) {
      set_error(error, std::string("wire error: ") + to_string(status));
      close();
      return false;
    }
    uint8_t buf[kReadChunk];
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      bytes_received_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      set_error(error, "receive timeout");
      close();
      return false;
    }
    set_error(error, n == 0 ? "connection closed by server"
                            : std::string("recv: ") + std::strerror(errno));
    close();
    return false;
  }
}

}  // namespace psw::net
