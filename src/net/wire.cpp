#include "net/wire.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace psw::net {

bool valid_msg_type(uint16_t t) {
  return t >= static_cast<uint16_t>(MsgType::kHello) &&
         t <= static_cast<uint16_t>(MsgType::kBye);
}

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello-ack";
    case MsgType::kRenderRequest: return "render-request";
    case MsgType::kFrame: return "frame";
    case MsgType::kStreamRequest: return "stream-request";
    case MsgType::kStreamEnd: return "stream-end";
    case MsgType::kMetricsRequest: return "metrics-request";
    case MsgType::kMetricsReply: return "metrics-reply";
    case MsgType::kError: return "error";
    case MsgType::kBye: return "bye";
  }
  return "?";
}

const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kNeedMore: return "need-more";
    case WireStatus::kBadMagic: return "bad-magic";
    case WireStatus::kBadVersion: return "bad-version";
    case WireStatus::kBadType: return "bad-type";
    case WireStatus::kOversized: return "oversized";
    case WireStatus::kBadCrc: return "bad-crc";
  }
  return "?";
}

void put_u8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void put_u16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<uint8_t>* out, int32_t v) {
  put_u32(out, static_cast<uint32_t>(v));
}

void put_f32(std::vector<uint8_t>* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

void put_f64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<uint8_t>* out, const std::string& v) {
  put_u32(out, static_cast<uint32_t>(v.size()));
  out->insert(out->end(), v.begin(), v.end());
}

void put_u32_at(std::vector<uint8_t>* out, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

bool ByteReader::take(size_t n, const uint8_t** p) {
  if (!ok_ || size_ - off_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_ + off_;
  off_ += n;
  return true;
}

uint8_t ByteReader::read_u8() {
  const uint8_t* p;
  return take(1, &p) ? p[0] : 0;
}

uint16_t ByteReader::read_u16() {
  const uint8_t* p;
  if (!take(2, &p)) return 0;
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t ByteReader::read_u32() {
  const uint8_t* p;
  if (!take(4, &p)) return 0;
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t ByteReader::read_u64() {
  const uint8_t* p;
  if (!take(8, &p)) return 0;
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

int32_t ByteReader::read_i32() { return static_cast<int32_t>(read_u32()); }

float ByteReader::read_f32() {
  const uint32_t bits = read_u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0f;
}

double ByteReader::read_f64() {
  const uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string ByteReader::read_string() {
  const uint32_t n = read_u32();
  const uint8_t* p;
  if (!take(n, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

bool ByteReader::read_bytes(void* dst, size_t n) {
  const uint8_t* p;
  if (!take(n, &p)) return false;
  std::memcpy(dst, p, n);
  return true;
}

void encode_message(MsgType type, const uint8_t* payload, size_t payload_size,
                    std::vector<uint8_t>* out) {
  out->reserve(out->size() + kHeaderSize + payload_size);
  put_u32(out, kMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<uint16_t>(type));
  put_u32(out, static_cast<uint32_t>(payload_size));
  put_u32(out, crc32(payload, payload_size));
  out->insert(out->end(), payload, payload + payload_size);
}

void encode_header(MsgType type, const uint8_t* payload, size_t payload_size,
                   uint8_t out[kHeaderSize]) {
  const uint32_t crc = crc32(payload, payload_size);
  const uint32_t length = static_cast<uint32_t>(payload_size);
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(kMagic >> (8 * i));
  out[4] = static_cast<uint8_t>(kProtocolVersion);
  out[5] = static_cast<uint8_t>(kProtocolVersion >> 8);
  out[6] = static_cast<uint8_t>(static_cast<uint16_t>(type));
  out[7] = static_cast<uint8_t>(static_cast<uint16_t>(type) >> 8);
  for (int i = 0; i < 4; ++i) out[8 + i] = static_cast<uint8_t>(length >> (8 * i));
  for (int i = 0; i < 4; ++i) out[12 + i] = static_cast<uint8_t>(crc >> (8 * i));
}

void encode_message(MsgType type, const std::vector<uint8_t>& payload,
                    std::vector<uint8_t>* out) {
  encode_message(type, payload.data(), payload.size(), out);
}

WireStatus decode_message(const uint8_t* data, size_t size, WireMessage* out,
                          size_t* consumed) {
  *consumed = 0;
  if (size < kHeaderSize) return WireStatus::kNeedMore;
  ByteReader header(data, kHeaderSize);
  const uint32_t magic = header.read_u32();
  const uint16_t version = header.read_u16();
  const uint16_t type = header.read_u16();
  const uint32_t length = header.read_u32();
  const uint32_t crc = header.read_u32();
  // Validation order matters for error quality: a wrong magic means this is
  // not our protocol at all, so report that before anything field-level.
  if (magic != kMagic) return WireStatus::kBadMagic;
  if (version != kProtocolVersion) return WireStatus::kBadVersion;
  if (!valid_msg_type(type)) return WireStatus::kBadType;
  if (length > kMaxPayload) return WireStatus::kOversized;
  if (size - kHeaderSize < length) return WireStatus::kNeedMore;
  const uint8_t* payload = data + kHeaderSize;
  if (crc32(payload, length) != crc) return WireStatus::kBadCrc;
  out->type = static_cast<MsgType>(type);
  out->payload.assign(payload, payload + length);
  *consumed = kHeaderSize + length;
  return WireStatus::kOk;
}

// --- payload structs ------------------------------------------------------

namespace {

// Exact byte counts of the shared sub-records, kept adjacent to their
// put_* twins so a field added to one is a compile-visible nudge to the
// other (the EncodedSize test pins the correspondence).
size_t volume_key_size(const serve::VolumeKey& key) {
  return 4 + key.kind.size()  // length-prefixed kind
         + 4 * 4              // nx, ny, nz, tf_preset
         + 8                  // seed
         + 3 * 8 + 2 * 4 + 1; // classify: light_dir, ambient/diffuse, threshold
}

constexpr size_t kCameraSize = 16 * 8 + 2 * 4;  // view matrix + image dims

void put_volume_key(std::vector<uint8_t>* out, const serve::VolumeKey& key) {
  put_string(out, key.kind);
  put_i32(out, key.nx);
  put_i32(out, key.ny);
  put_i32(out, key.nz);
  put_i32(out, key.tf_preset);
  put_u64(out, key.seed);
  put_f64(out, key.classify.light_dir.x);
  put_f64(out, key.classify.light_dir.y);
  put_f64(out, key.classify.light_dir.z);
  put_f32(out, key.classify.ambient);
  put_f32(out, key.classify.diffuse);
  put_u8(out, key.classify.alpha_threshold);
}

bool read_volume_key(ByteReader* r, serve::VolumeKey* key) {
  key->kind = r->read_string();
  key->nx = r->read_i32();
  key->ny = r->read_i32();
  key->nz = r->read_i32();
  key->tf_preset = r->read_i32();
  key->seed = r->read_u64();
  key->classify.light_dir.x = r->read_f64();
  key->classify.light_dir.y = r->read_f64();
  key->classify.light_dir.z = r->read_f64();
  key->classify.ambient = r->read_f32();
  key->classify.diffuse = r->read_f32();
  key->classify.alpha_threshold = r->read_u8();
  // Dimension sanity: a hostile request must not be able to ask for an
  // absurd allocation through the phantom builder.
  if (!r->ok()) return false;
  constexpr int kMaxDim = 4096;
  return key->nx > 0 && key->ny > 0 && key->nz > 0 && key->nx <= kMaxDim &&
         key->ny <= kMaxDim && key->nz <= kMaxDim;
}

void put_camera(std::vector<uint8_t>* out, const Camera& camera) {
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) put_f64(out, camera.view.at(r, c));
  }
  put_i32(out, camera.image_width);
  put_i32(out, camera.image_height);
}

bool read_camera(ByteReader* r, Camera* camera) {
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) camera->view.at(row, col) = r->read_f64();
  }
  camera->image_width = r->read_i32();
  camera->image_height = r->read_i32();
  constexpr int kMaxImage = 16384;
  return r->ok() && camera->image_width >= 0 && camera->image_height >= 0 &&
         camera->image_width <= kMaxImage && camera->image_height <= kMaxImage;
}

// Shared optional-trace-block helpers. A block is appended only for
// sampled contexts, and decoders consult it only when bytes remain after
// the versioned fields — exact backward compatibility in both directions.
size_t trace_block_size(const obs::TraceContext& trace) {
  return trace.sampled() ? kTraceBlockSize : 0;
}

void put_trace_block(std::vector<uint8_t>* out, const obs::TraceContext& trace) {
  if (!trace.sampled()) return;
  put_u8(out, kTraceBlockVersion);
  put_u64(out, trace.trace_hi);
  put_u64(out, trace.trace_lo);
  put_u64(out, trace.parent_span);
  put_u8(out, trace.flags);
}

bool read_trace_block(ByteReader* r, obs::TraceContext* trace) {
  const uint8_t version = r->read_u8();
  if (!r->ok() || version != kTraceBlockVersion) return false;
  trace->trace_hi = r->read_u64();
  trace->trace_lo = r->read_u64();
  trace->parent_span = r->read_u64();
  trace->flags = r->read_u8();
  return r->ok() && trace->valid();
}

}  // namespace

size_t HelloMsg::encoded_size() const { return 2 + 4 + name.size(); }

void HelloMsg::encode(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + encoded_size());
  put_u16(out, version);
  put_string(out, name);
}

bool HelloMsg::decode(const std::vector<uint8_t>& payload, HelloMsg* out) {
  ByteReader r(payload);
  out->version = r.read_u16();
  out->name = r.read_string();
  return r.exhausted();
}

size_t RenderRequestMsg::encoded_size() const {
  return 8 + 8 + volume_key_size(volume) + kCameraSize + 8 +
         trace_block_size(trace);
}

void RenderRequestMsg::encode(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + encoded_size());
  put_u64(out, request_id);
  put_u64(out, session_id);
  put_volume_key(out, volume);
  put_camera(out, camera);
  put_f64(out, deadline_ms);
  put_trace_block(out, trace);
}

bool RenderRequestMsg::decode(const std::vector<uint8_t>& payload,
                              RenderRequestMsg* out) {
  ByteReader r(payload);
  out->request_id = r.read_u64();
  out->session_id = r.read_u64();
  if (!read_volume_key(&r, &out->volume)) return false;
  if (!read_camera(&r, &out->camera)) return false;
  out->deadline_ms = r.read_f64();
  if (!r.ok()) return false;
  out->trace = obs::TraceContext{};
  if (r.remaining() > 0 && !read_trace_block(&r, &out->trace)) return false;
  return r.exhausted();
}

size_t StreamRequestMsg::encoded_size() const {
  return 8 + 8 + volume_key_size(volume) + 3 * 8 + 4 + trace_block_size(trace);
}

void StreamRequestMsg::encode(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + encoded_size());
  put_u64(out, stream_id);
  put_u64(out, session_id);
  put_volume_key(out, volume);
  put_f64(out, start_yaw);
  put_f64(out, pitch);
  put_f64(out, step_deg);
  put_u32(out, frames);
  put_trace_block(out, trace);
}

bool StreamRequestMsg::decode(const std::vector<uint8_t>& payload,
                              StreamRequestMsg* out) {
  ByteReader r(payload);
  out->stream_id = r.read_u64();
  out->session_id = r.read_u64();
  if (!read_volume_key(&r, &out->volume)) return false;
  out->start_yaw = r.read_f64();
  out->pitch = r.read_f64();
  out->step_deg = r.read_f64();
  out->frames = r.read_u32();
  if (!r.ok()) return false;
  out->trace = obs::TraceContext{};
  if (r.remaining() > 0 && !read_trace_block(&r, &out->trace)) return false;
  // A zero-frame stream is legal (it just ends immediately); an enormous
  // one is a typed rejection rather than an unbounded server commitment.
  return r.exhausted() && out->frames <= 1u << 20;
}

size_t FrameMsg::encoded_size() const {
  return kMetaSize + 4 + encoded.size() + trace_tail_size();
}

size_t FrameMsg::trace_tail_size() const {
  if (!trace.sampled()) return 0;
  return kTraceTailHeaderSize + spans.size() * kWireSpanSize;
}

void FrameMsg::encode_meta(std::vector<uint8_t>* out) const {
  put_u64(out, request_id);
  put_u64(out, stream_id);
  put_u32(out, seq);
  put_u32(out, dropped_before);
  put_f64(out, render_ms);
  put_f64(out, total_ms);
  put_u8(out, cache_hit);
}

void FrameMsg::encode_trace_tail(std::vector<uint8_t>* out) const {
  if (!trace.sampled()) return;
  put_u8(out, kTraceBlockVersion);
  put_u64(out, trace.trace_hi);
  put_u64(out, trace.trace_lo);
  put_u8(out, trace.flags);
  put_u16(out, static_cast<uint16_t>(spans.size()));
  for (const obs::SpanRecord& s : spans) {
    put_u64(out, s.span_id);
    put_u64(out, s.parent_id);
    put_u8(out, static_cast<uint8_t>(s.kind));
    put_u64(out, static_cast<uint64_t>(s.t_start_ns));
    put_u64(out, static_cast<uint64_t>(s.t_end_ns));
    put_u64(out, s.tag);
  }
}

void FrameMsg::encode(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + encoded_size());
  encode_meta(out);
  put_u32(out, static_cast<uint32_t>(encoded.size()));
  out->insert(out->end(), encoded.begin(), encoded.end());
  encode_trace_tail(out);
}

bool FrameMsg::decode(const std::vector<uint8_t>& payload, FrameMsg* out) {
  ByteReader r(payload);
  out->request_id = r.read_u64();
  out->stream_id = r.read_u64();
  out->seq = r.read_u32();
  out->dropped_before = r.read_u32();
  out->render_ms = r.read_f64();
  out->total_ms = r.read_f64();
  out->cache_hit = r.read_u8();
  const uint32_t n = r.read_u32();
  if (!r.ok() || r.remaining() < n) return false;
  out->encoded.resize(n);
  if (n != 0 && !r.read_bytes(out->encoded.data(), n)) return false;
  out->trace = obs::TraceContext{};
  out->spans.clear();
  if (r.remaining() > 0) {
    const uint8_t version = r.read_u8();
    if (!r.ok() || version != kTraceBlockVersion) return false;
    out->trace.trace_hi = r.read_u64();
    out->trace.trace_lo = r.read_u64();
    out->trace.flags = r.read_u8();
    const uint16_t count = r.read_u16();
    if (!r.ok() || !out->trace.valid() ||
        r.remaining() != count * kWireSpanSize) {
      return false;
    }
    out->spans.resize(count);
    for (obs::SpanRecord& s : out->spans) {
      s.trace_hi = out->trace.trace_hi;
      s.trace_lo = out->trace.trace_lo;
      s.span_id = r.read_u64();
      s.parent_id = r.read_u64();
      const uint8_t kind = r.read_u8();
      if (kind >= static_cast<uint8_t>(obs::SpanKind::kCount)) return false;
      s.kind = static_cast<obs::SpanKind>(kind);
      s.t_start_ns = static_cast<int64_t>(r.read_u64());
      s.t_end_ns = static_cast<int64_t>(r.read_u64());
      s.tag = r.read_u64();
    }
  }
  return r.exhausted();
}

size_t StreamEndMsg::encoded_size() const { return 8 + 4 + 4; }

void StreamEndMsg::encode(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + encoded_size());
  put_u64(out, stream_id);
  put_u32(out, frames_sent);
  put_u32(out, frames_dropped);
}

bool StreamEndMsg::decode(const std::vector<uint8_t>& payload, StreamEndMsg* out) {
  ByteReader r(payload);
  out->stream_id = r.read_u64();
  out->frames_sent = r.read_u32();
  out->frames_dropped = r.read_u32();
  return r.exhausted();
}

size_t ErrorMsg::encoded_size() const {
  return 8 + 2 + 4 + message.size() + trace_block_size(trace);
}

void ErrorMsg::encode(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + encoded_size());
  put_u64(out, request_id);
  put_u16(out, status);
  put_string(out, message);
  put_trace_block(out, trace);
}

bool ErrorMsg::decode(const std::vector<uint8_t>& payload, ErrorMsg* out) {
  ByteReader r(payload);
  out->request_id = r.read_u64();
  out->status = r.read_u16();
  out->message = r.read_string();
  if (!r.ok()) return false;
  out->trace = obs::TraceContext{};
  if (r.remaining() > 0 && !read_trace_block(&r, &out->trace)) return false;
  return r.exhausted();
}

size_t MetricsReplyMsg::encoded_size() const { return 4 + json.size(); }

void MetricsReplyMsg::encode(std::vector<uint8_t>* out) const {
  out->reserve(out->size() + encoded_size());
  put_string(out, json);
}

bool MetricsReplyMsg::decode(const std::vector<uint8_t>& payload,
                             MetricsReplyMsg* out) {
  ByteReader r(payload);
  out->json = r.read_string();
  return r.exhausted();
}

}  // namespace psw::net
