// Versioned binary wire protocol for the network frame-delivery subsystem.
//
// Every message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic "PSWN"
//   4       2     protocol version (little-endian, currently 1)
//   6       2     message type (MsgType)
//   8       4     payload length (bytes; <= kMaxPayload)
//   12      4     CRC-32 of the payload bytes
//   16      n     payload
//
// All integers are explicit little-endian; doubles travel as the
// little-endian bytes of their IEEE-754 representation (bit-exact, which
// the served-frame bit-identity guarantee depends on). Decoding is total:
// malformed, truncated or corrupt input yields a typed WireStatus, never a
// crash, and an incomplete frame yields kNeedMore so a stream reader can
// simply retry with more bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/factorization.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"

namespace psw::net {

inline constexpr uint32_t kMagic = 0x4E575350u;  // "PSWN" as LE bytes
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 16;
// Upper bound on one payload: a 2048^2 RGBA frame plus codec overhead fits
// comfortably; anything larger is a corrupt length field, not real data.
inline constexpr uint32_t kMaxPayload = 32u << 20;

enum class MsgType : uint16_t {
  kHello = 1,           // client -> server: version + client name
  kHelloAck = 2,        // server -> client: version + server name
  kRenderRequest = 3,   // client -> server: one frame of one session
  kFrame = 4,           // server -> client: encoded frame (reply or stream)
  kStreamRequest = 5,   // client -> server: open a pushed animation stream
  kStreamEnd = 6,       // server -> client: stream finished (sent/dropped)
  kMetricsRequest = 7,  // client -> server: ask for the metrics JSON
  kMetricsReply = 8,    // server -> client: metrics JSON string
  kError = 9,           // server -> client: typed failure for one request
  kBye = 10,            // either side: orderly close
};

bool valid_msg_type(uint16_t t);
const char* to_string(MsgType t);

// kMetricsRequest payload selector. An empty payload keeps the original
// meaning (the combined metrics JSON), so pre-trace peers — including the
// router's health prober — interoperate unchanged; one selector byte asks
// for an alternative document.
inline constexpr uint8_t kMetricsSelectorJson = 0;        // default document
inline constexpr uint8_t kMetricsSelectorPrometheus = 1;  // text exposition
inline constexpr uint8_t kMetricsSelectorTrace = 2;       // span dump JSON

// Version tag leading every optional trace block on the wire.
inline constexpr uint8_t kTraceBlockVersion = 1;
// Request-side trace block: version + 128-bit id + parent span + flags.
inline constexpr size_t kTraceBlockSize = 1 + 8 + 8 + 8 + 1;
// Frame-side tail header (version + id + flags + span count) and one span.
inline constexpr size_t kTraceTailHeaderSize = 1 + 8 + 8 + 1 + 2;
inline constexpr size_t kWireSpanSize = 8 + 8 + 1 + 8 + 8 + 8;

// Decode outcome. kNeedMore is the only non-terminal status: everything
// else means the stream is unrecoverable (a framing error implies we no
// longer know where the next message starts) and the connection should be
// closed.
enum class WireStatus {
  kOk = 0,
  kNeedMore,     // incomplete header or payload: feed more bytes
  kBadMagic,     // first four bytes are not "PSWN"
  kBadVersion,   // version field != kProtocolVersion
  kBadType,      // type field names no known MsgType
  kOversized,    // length field exceeds kMaxPayload
  kBadCrc,       // payload checksum mismatch
};

const char* to_string(WireStatus s);

struct WireMessage {
  MsgType type = MsgType::kBye;
  std::vector<uint8_t> payload;
};

// Appends one framed message to `out`.
void encode_message(MsgType type, const uint8_t* payload, size_t payload_size,
                    std::vector<uint8_t>* out);
void encode_message(MsgType type, const std::vector<uint8_t>& payload,
                    std::vector<uint8_t>* out);

// Writes just the 16-byte frame header for a payload that already lives in
// its own buffer. This is the scatter-gather half of encode_message: the
// server queues (header, payload-handle) pairs and hands both to writev, so
// an encoded frame is never copied into a flat send buffer. Byte-identical
// to the first kHeaderSize bytes encode_message would have produced.
void encode_header(MsgType type, const uint8_t* payload, size_t payload_size,
                   uint8_t out[kHeaderSize]);

// Attempts to decode one message from the front of [data, data+size).
// kOk: fills *out, *consumed = header + payload bytes.
// kNeedMore: nothing consumed; call again with more bytes.
// Any error: *consumed is 0 and the caller should drop the connection.
WireStatus decode_message(const uint8_t* data, size_t size, WireMessage* out,
                          size_t* consumed);

// --- little-endian primitive helpers -------------------------------------

void put_u8(std::vector<uint8_t>* out, uint8_t v);
void put_u16(std::vector<uint8_t>* out, uint16_t v);
void put_u32(std::vector<uint8_t>* out, uint32_t v);
void put_u64(std::vector<uint8_t>* out, uint64_t v);
void put_i32(std::vector<uint8_t>* out, int32_t v);
void put_f32(std::vector<uint8_t>* out, float v);
void put_f64(std::vector<uint8_t>* out, double v);
// Length-prefixed (u32) byte string.
void put_string(std::vector<uint8_t>* out, const std::string& v);
// Overwrites 4 already-written bytes at `offset` (little-endian). Used to
// patch a length placeholder after appending data of initially unknown size
// (e.g. a codec blob encoded directly into the wire payload).
void put_u32_at(std::vector<uint8_t>* out, size_t offset, uint32_t v);

// Bounds-checked sequential reader over a payload. Any overrun sets a
// sticky failure flag and makes every subsequent read return zero, so
// decoders can read the whole struct and check ok() once at the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& payload)
      : ByteReader(payload.data(), payload.size()) {}

  uint8_t read_u8();
  uint16_t read_u16();
  uint32_t read_u32();
  uint64_t read_u64();
  int32_t read_i32();
  float read_f32();
  double read_f64();
  std::string read_string();
  // Copies `n` raw bytes into `dst`; fails (and copies nothing) on overrun.
  bool read_bytes(void* dst, size_t n);

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - off_; }
  // True when the payload was consumed exactly (decoders use this to reject
  // trailing garbage).
  bool exhausted() const { return ok_ && off_ == size_; }

 private:
  bool take(size_t n, const uint8_t** p);

  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
  bool ok_ = true;
};

// --- message payloads -----------------------------------------------------
// Each payload struct has encode() appending its wire form, encoded_size()
// returning the exact byte count encode() will append (so callers reserve
// once instead of regrowing through push_back), and a decode() that returns
// false on truncated/trailing/invalid input (typed rejection; the caller
// answers with kError or closes).

struct HelloMsg {
  uint16_t version = kProtocolVersion;
  std::string name;

  size_t encoded_size() const;
  void encode(std::vector<uint8_t>* out) const;
  static bool decode(const std::vector<uint8_t>& payload, HelloMsg* out);
};

struct RenderRequestMsg {
  uint64_t request_id = 0;  // echoed in the kFrame / kError reply
  uint64_t session_id = 0;
  serve::VolumeKey volume;
  Camera camera;
  double deadline_ms = 0.0;  // relative to server receipt; 0 = none
  // Optional distributed-tracing context. Encoded as a versioned trailing
  // block only when sampled, so untraced requests are byte-identical to
  // protocol-v1 peers and decoders without the block still parse.
  obs::TraceContext trace;

  size_t encoded_size() const;
  void encode(std::vector<uint8_t>* out) const;
  static bool decode(const std::vector<uint8_t>& payload, RenderRequestMsg* out);
};

struct StreamRequestMsg {
  uint64_t stream_id = 0;  // client-chosen, echoed on every pushed frame
  uint64_t session_id = 0;
  serve::VolumeKey volume;
  // Orbit animation parameters (frame f renders Camera::orbit at
  // start_yaw + f * step_deg).
  double start_yaw = 0.0;
  double pitch = 0.35;
  double step_deg = 2.0;
  uint32_t frames = 30;
  // Optional trailing trace block, as in RenderRequestMsg; a sampled stream
  // traces every pushed frame under one trace id.
  obs::TraceContext trace;

  size_t encoded_size() const;
  void encode(std::vector<uint8_t>* out) const;
  static bool decode(const std::vector<uint8_t>& payload, StreamRequestMsg* out);
};

struct FrameMsg {
  uint64_t request_id = 0;  // one-shot replies; 0 for stream frames
  uint64_t stream_id = 0;   // stream frames; 0 for one-shot replies
  uint32_t seq = 0;         // frame index within the stream / request
  uint32_t dropped_before = 0;  // frames shed by backpressure since the last
                                // delivered frame of this stream
  double render_ms = 0.0;       // server-side composite+warp time
  double total_ms = 0.0;        // server-side submit->completion time
  uint8_t cache_hit = 0;
  std::vector<uint8_t> encoded;  // frame-codec blob (see frame_codec.hpp)
  // Optional trace tail after the blob: context + the server-side stage
  // spans of this frame (timestamps already wall-anchored). Encoded only
  // when `trace` is sampled; untraced frames stay byte-identical. The tail
  // sits past the fixed metadata prefix, so the router's fixed-offset
  // latency peek never sees it.
  obs::TraceContext trace;
  std::vector<obs::SpanRecord> spans;

  // Fixed-size metadata prefix (everything before the blob length + bytes).
  static constexpr size_t kMetaSize = 41;

  size_t encoded_size() const;
  void encode(std::vector<uint8_t>* out) const;
  // Zero-copy path: appends only the metadata prefix (kMetaSize bytes) so
  // the caller can follow with a u32 blob length and the codec's output
  // encoded directly into the same buffer — producing bytes identical to
  // encode() without the blob ever existing separately. `this->encoded` is
  // not read.
  void encode_meta(std::vector<uint8_t>* out) const;
  // Second half of the zero-copy path: appends the optional trace tail
  // (no-op when unsampled) after the caller has encoded the blob in place.
  void encode_trace_tail(std::vector<uint8_t>* out) const;
  size_t trace_tail_size() const;
  static bool decode(const std::vector<uint8_t>& payload, FrameMsg* out);
};

struct StreamEndMsg {
  uint64_t stream_id = 0;
  uint32_t frames_sent = 0;
  uint32_t frames_dropped = 0;

  size_t encoded_size() const;
  void encode(std::vector<uint8_t>* out) const;
  static bool decode(const std::vector<uint8_t>& payload, StreamEndMsg* out);
};

struct ErrorMsg {
  uint64_t request_id = 0;  // 0 when the error is connection-level
  uint16_t status = 0;      // serve::ServeStatus for admission failures
  std::string message;
  // Correlation: the failing request's trace context (trailing optional
  // block, encoded when sampled) so a client-visible error can be matched
  // to the shard- or router-side trace that recorded it.
  obs::TraceContext trace;

  size_t encoded_size() const;
  void encode(std::vector<uint8_t>* out) const;
  static bool decode(const std::vector<uint8_t>& payload, ErrorMsg* out);
};

struct MetricsReplyMsg {
  std::string json;

  size_t encoded_size() const;
  void encode(std::vector<uint8_t>* out) const;
  static bool decode(const std::vector<uint8_t>& payload, MetricsReplyMsg* out);
};

}  // namespace psw::net
