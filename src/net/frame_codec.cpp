#include "net/frame_codec.hpp"

#include <cstring>

#include "net/wire.hpp"

namespace psw::net {

namespace {

constexpr int kMaxDim = 16384;
constexpr size_t kHeader = 6;  // u16 w, u16 h, u8 codec, u8 reserved

// Delta scanline modes.
constexpr uint8_t kSkip = 0;
constexpr uint8_t kRleLine = 1;
constexpr uint8_t kRawLine = 2;

void put_pixel(std::vector<uint8_t>* out, const Pixel8& p) {
  out->push_back(p.r);
  out->push_back(p.g);
  out->push_back(p.b);
  out->push_back(p.a);
}

// Appends one scanline's RLE form: u16 nruns, then (u16 len, pixel) runs.
void rle_scanline(const Pixel8* row, int width, std::vector<uint8_t>* out) {
  const size_t count_at = out->size();
  put_u16(out, 0);  // patched below
  uint16_t nruns = 0;
  int x = 0;
  while (x < width) {
    int end = x + 1;
    while (end < width && row[end] == row[x]) ++end;
    put_u16(out, static_cast<uint16_t>(end - x));
    put_pixel(out, row[x]);
    ++nruns;
    x = end;
  }
  (*out)[count_at] = static_cast<uint8_t>(nruns);
  (*out)[count_at + 1] = static_cast<uint8_t>(nruns >> 8);
}

void raw_scanline(const Pixel8* row, int width, std::vector<uint8_t>* out) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(row);
  out->insert(out->end(), bytes, bytes + static_cast<size_t>(width) * 4);
}

void append_header(std::vector<uint8_t>* out, int width, int height,
                   FrameCodec codec) {
  put_u16(out, static_cast<uint16_t>(width));
  put_u16(out, static_cast<uint16_t>(height));
  out->push_back(static_cast<uint8_t>(codec));
  out->push_back(0);  // reserved
}

bool read_pixel(ByteReader* r, Pixel8* p) {
  uint8_t bytes[4];
  if (!r->read_bytes(bytes, 4)) return false;
  p->r = bytes[0];
  p->g = bytes[1];
  p->b = bytes[2];
  p->a = bytes[3];
  return true;
}

CodecStatus decode_rle_scanline(ByteReader* r, Pixel8* row, int width) {
  const uint16_t nruns = r->read_u16();
  if (!r->ok()) return CodecStatus::kTruncated;
  int x = 0;
  for (uint16_t i = 0; i < nruns; ++i) {
    const uint16_t len = r->read_u16();
    Pixel8 px;
    if (!r->ok() || !read_pixel(r, &px)) return CodecStatus::kTruncated;
    if (len == 0 || x + len > width) return CodecStatus::kBadRunLength;
    for (int j = 0; j < len; ++j) row[x + j] = px;
    x += len;
  }
  return x == width ? CodecStatus::kOk : CodecStatus::kBadRunLength;
}

CodecStatus decode_raw_scanline(ByteReader* r, Pixel8* row, int width) {
  return r->read_bytes(row, static_cast<size_t>(width) * 4)
             ? CodecStatus::kOk
             : CodecStatus::kTruncated;
}

}  // namespace

const char* to_string(CodecStatus s) {
  switch (s) {
    case CodecStatus::kOk: return "ok";
    case CodecStatus::kTruncated: return "truncated";
    case CodecStatus::kBadDimensions: return "bad-dimensions";
    case CodecStatus::kBadCodec: return "bad-codec";
    case CodecStatus::kBadRunLength: return "bad-run-length";
    case CodecStatus::kBadMode: return "bad-mode";
    case CodecStatus::kMissingPrevious: return "missing-previous";
    case CodecStatus::kTrailingBytes: return "trailing-bytes";
  }
  return "?";
}

void FrameEncoder::encode(const ImageU8& frame, std::vector<uint8_t>* out) {
  out->clear();
  encode_append(frame, out);
}

void FrameEncoder::encode_append(const ImageU8& frame, std::vector<uint8_t>* out) {
  const int w = frame.width();
  const int h = frame.height();
  const size_t raw_body = static_cast<size_t>(w) * h * 4;

  // Plain RLE body (also reused as the delta codec's per-line rle form).
  // The scratch vectors are members: clear() keeps their capacity, so a
  // warm encoder builds both candidates without touching the allocator.
  rle_body_.clear();
  rle_body_.reserve(raw_body / 4);
  line_span_.assign(static_cast<size_t>(h), {});
  for (int y = 0; y < h; ++y) {
    const size_t begin = rle_body_.size();
    rle_scanline(frame.row(y), w, &rle_body_);
    line_span_[y] = {begin, rle_body_.size() - begin};
  }

  // Delta body: per scanline the cheapest of skip (1 byte), rle, raw.
  delta_body_.clear();
  const bool delta_ok = has_prev_ && prev_.width() == w && prev_.height() == h;
  if (delta_ok) {
    delta_body_.reserve(rle_body_.size() + static_cast<size_t>(h));
    for (int y = 0; y < h; ++y) {
      const size_t line_bytes = static_cast<size_t>(w) * 4;
      if (std::memcmp(frame.row(y), prev_.row(y), line_bytes) == 0) {
        delta_body_.push_back(kSkip);
      } else if (line_span_[y].second < line_bytes) {
        delta_body_.push_back(kRleLine);
        const uint8_t* src = rle_body_.data() + line_span_[y].first;
        delta_body_.insert(delta_body_.end(), src, src + line_span_[y].second);
      } else {
        delta_body_.push_back(kRawLine);
        raw_scanline(frame.row(y), w, &delta_body_);
      }
    }
  }

  FrameCodec codec = FrameCodec::kRaw;
  const std::vector<uint8_t>* body = nullptr;
  if (delta_ok && delta_body_.size() < raw_body &&
      delta_body_.size() <= rle_body_.size()) {
    codec = FrameCodec::kDelta;
    body = &delta_body_;
  } else if (rle_body_.size() < raw_body) {
    codec = FrameCodec::kRle;
    body = &rle_body_;
  }

  out->reserve(out->size() + kHeader + (body ? body->size() : raw_body));
  append_header(out, w, h, codec);
  if (body) {
    out->insert(out->end(), body->begin(), body->end());
  } else {
    for (int y = 0; y < h; ++y) raw_scanline(frame.row(y), w, out);
  }
  prev_ = frame;  // copy-assign: reuses prev_'s pixel storage once warm
  has_prev_ = true;
}

CodecStatus FrameDecoder::decode(const uint8_t* blob, size_t size, ImageU8* out) {
  out->resize(0, 0);
  ByteReader r(blob, size);
  const int w = r.read_u16();
  const int h = r.read_u16();
  const uint8_t codec = r.read_u8();
  r.read_u8();  // reserved
  if (!r.ok()) return CodecStatus::kTruncated;
  if (w <= 0 || h <= 0 || w > kMaxDim || h > kMaxDim) {
    return CodecStatus::kBadDimensions;
  }
  if (codec > static_cast<uint8_t>(FrameCodec::kDelta)) {
    return CodecStatus::kBadCodec;
  }
  const bool delta = codec == static_cast<uint8_t>(FrameCodec::kDelta);
  if (delta && (!has_prev_ || prev_.width() != w || prev_.height() != h)) {
    return CodecStatus::kMissingPrevious;
  }

  ImageU8 img(w, h);
  for (int y = 0; y < h; ++y) {
    CodecStatus status = CodecStatus::kOk;
    switch (static_cast<FrameCodec>(codec)) {
      case FrameCodec::kRaw:
        status = decode_raw_scanline(&r, img.row(y), w);
        break;
      case FrameCodec::kRle:
        status = decode_rle_scanline(&r, img.row(y), w);
        break;
      case FrameCodec::kDelta: {
        const uint8_t mode = r.read_u8();
        if (!r.ok()) return CodecStatus::kTruncated;
        if (mode == kSkip) {
          std::memcpy(img.row(y), prev_.row(y), static_cast<size_t>(w) * 4);
        } else if (mode == kRleLine) {
          status = decode_rle_scanline(&r, img.row(y), w);
        } else if (mode == kRawLine) {
          status = decode_raw_scanline(&r, img.row(y), w);
        } else {
          return CodecStatus::kBadMode;
        }
        break;
      }
    }
    if (status != CodecStatus::kOk) return status;
  }
  if (!r.exhausted()) return CodecStatus::kTrailingBytes;
  *out = img;
  prev_ = std::move(img);
  has_prev_ = true;
  return CodecStatus::kOk;
}

CodecStatus FrameDecoder::decode(const std::vector<uint8_t>& blob, ImageU8* out) {
  return decode(blob.data(), blob.size(), out);
}

void encode_frame(const ImageU8& frame, std::vector<uint8_t>* out) {
  FrameEncoder once;
  once.encode(frame, out);
}

CodecStatus decode_frame(const uint8_t* blob, size_t size, ImageU8* out) {
  FrameDecoder once;
  return once.decode(blob, size, out);
}

}  // namespace psw::net
