#include "net/metrics.hpp"

#include "util/json.hpp"

namespace psw::net {

void NetMetrics::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("connections").begin_object()
      .field("accepted", connections_accepted.load())
      .field("closed", connections_closed.load())
      .field("rejected", connections_rejected.load())
      .field("idle_timeouts", idle_timeouts.load())
      .field("protocol_errors", protocol_errors.load())
      .end_object();
  w.key("traffic").begin_object()
      .field("requests_received", requests_received.load())
      .field("streams_opened", streams_opened.load())
      .field("streams_completed", streams_completed.load())
      .field("errors_sent", errors_sent.load())
      .field("bytes_in", bytes_in.load())
      .field("bytes_out", bytes_out.load())
      .end_object();
  w.key("frames").begin_object()
      .field("sent", frames_sent.load())
      .field("dropped", frames_dropped.load())
      .field("orphaned_completions", orphaned_completions.load())
      .field("raw_bytes", frame_raw_bytes.load())
      .field("wire_bytes", frame_wire_bytes.load())
      .field("wire_ratio", wire_ratio())
      .field("copy_bytes", frame_copy_bytes.load())
      .field("bytes_copied_per_frame", bytes_copied_per_frame())
      .end_object();
  w.end_object();
}

std::string NetMetrics::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace psw::net
