// Blocking client for the psw wire protocol. One connection, one thread:
// connect() performs the hello handshake, render() is a synchronous
// request/reply, open_stream()+next_event() consume an animation stream.
// The client owns the decode side of the frame codec — a FrameDecoder per
// stream and per one-shot session, mirroring the server's encoder chains,
// so delta frames always decode against the right previous frame.
//
// Used by tools/netclient, tools/netbench and tests/test_net; the library
// never prints or exits — failures come back as false + *error, and
// server-sent kError replies surface as FrameEvent::kError with the typed
// ServeStatus preserved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/frame_codec.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "util/image.hpp"

namespace psw::net {

struct NetClientOptions {
  // Blocking-read timeout; a server that goes quiet longer than this fails
  // the read instead of hanging the caller. 0 disables the timeout.
  double recv_timeout_ms = 30'000.0;
  // Kernel SO_RCVBUF (set before connect); 0 keeps the OS default.
  int recv_buffer_bytes = 0;
};

class NetClient {
 public:
  // One decoded server-to-client message.
  struct Event {
    enum class Kind { kFrame, kStreamEnd, kError };
    Kind kind = Kind::kFrame;
    FrameMsg frame;   // kFrame: header fields (encoded blob already consumed)
    ImageU8 image;    // kFrame: the decoded image
    StreamEndMsg end;    // kStreamEnd
    ErrorMsg error;      // kError
  };

  explicit NetClient(NetClientOptions options = {}) : options_(options) {}

  // Connects and completes the hello handshake.
  bool connect(const std::string& host, uint16_t port, std::string* error);
  void close();
  bool connected() const { return fd_.valid(); }

  // Synchronous one-shot render: sends the request and reads until the
  // matching frame (or error reply) arrives. Frames for other requests
  // arriving in between are decoded and discarded.
  bool render(const RenderRequestMsg& request, ImageU8* image, FrameMsg* meta,
              std::string* error);

  bool open_stream(const StreamRequestMsg& request, std::string* error);

  // Blocks for the next frame / stream-end / error event.
  bool next_event(Event* out, std::string* error);

  // Server metrics document (service + net JSON).
  bool fetch_metrics(std::string* json, std::string* error);

  // Polite goodbye; the server flushes pending output and closes.
  bool send_bye(std::string* error);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  const std::string& server_name() const { return server_name_; }

 private:
  bool send_msg(MsgType type, const std::vector<uint8_t>& payload,
                std::string* error);
  bool recv_msg(WireMessage* msg, std::string* error);
  bool decode_event(const WireMessage& msg, Event* out, std::string* error);

  NetClientOptions options_;
  UniqueFd fd_;
  std::vector<uint8_t> in_;
  size_t in_off_ = 0;
  std::string server_name_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  std::map<uint64_t, FrameDecoder> stream_decoders_;   // by stream_id
  std::map<uint64_t, FrameDecoder> session_decoders_;  // one-shot, by request session
  std::map<uint64_t, uint64_t> request_sessions_;      // request_id -> session_id
};

}  // namespace psw::net
