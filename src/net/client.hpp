// Blocking client for the psw wire protocol. One connection, one thread:
// connect() performs the hello handshake, render() is a synchronous
// request/reply, open_stream()+next_event() consume an animation stream.
// The client owns the decode side of the frame codec — a FrameDecoder per
// stream and per one-shot session, mirroring the server's encoder chains,
// so delta frames always decode against the right previous frame.
//
// Used by tools/netclient, tools/netbench and tests/test_net; the library
// never prints or exits — failures come back as false + *error, and
// server-sent kError replies surface as FrameEvent::kError with the typed
// ServeStatus preserved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/frame_codec.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "util/image.hpp"

namespace psw::net {

struct NetClientOptions {
  // Blocking-read timeout; a server that goes quiet longer than this fails
  // the read instead of hanging the caller. 0 disables the timeout.
  double recv_timeout_ms = 30'000.0;
  // Kernel SO_RCVBUF (set before connect); 0 keeps the OS default.
  int recv_buffer_bytes = 0;
  // Bounded connect retry: a refused/unreachable connect (the server not
  // up yet — routine at shard startup) is retried up to this many extra
  // times with exponential backoff before connect() gives up with
  // ConnectStatus::kUnavailable. Non-transient failures (bad address,
  // handshake rejection) never retry. 0 restores fail-on-first-refusal.
  int connect_retries = 4;
  // First retry delay; each subsequent retry doubles it.
  int connect_backoff_ms = 25;
};

// Typed outcome of the last connect() attempt.
enum class ConnectStatus {
  kOk = 0,
  kUnavailable,  // transient refusals persisted through every retry
  kError,        // non-retryable failure (bad address, handshake, protocol)
};

class NetClient {
 public:
  // One decoded server-to-client message.
  struct Event {
    enum class Kind { kFrame, kStreamEnd, kError };
    Kind kind = Kind::kFrame;
    FrameMsg frame;   // kFrame: header fields (encoded blob already consumed)
    ImageU8 image;    // kFrame: the decoded image
    StreamEndMsg end;    // kStreamEnd
    ErrorMsg error;      // kError
  };

  explicit NetClient(NetClientOptions options = {}) : options_(options) {}

  // Connects and completes the hello handshake, retrying transient
  // refusals per NetClientOptions. On failure connect_status() tells
  // whether the target was unavailable (kUnavailable: every retry was
  // refused) or broken (kError).
  bool connect(const std::string& host, uint16_t port, std::string* error);
  ConnectStatus connect_status() const { return connect_status_; }
  // Connect attempts made by the last connect() call (1 = first try).
  int connect_attempts() const { return connect_attempts_; }
  void close();
  bool connected() const { return fd_.valid(); }

  // Synchronous one-shot render: sends the request and reads until the
  // matching frame (or error reply) arrives. Frames for other requests
  // arriving in between are decoded and discarded.
  bool render(const RenderRequestMsg& request, ImageU8* image, FrameMsg* meta,
              std::string* error);

  bool open_stream(const StreamRequestMsg& request, std::string* error);

  // Blocks for the next frame / stream-end / error event.
  bool next_event(Event* out, std::string* error);

  // Server metrics document. `selector` picks the exposition
  // (kMetricsSelectorJson / Prometheus / Trace); the JSON default sends an
  // empty payload, byte-identical to pre-selector clients.
  bool fetch_metrics(std::string* json, std::string* error,
                     uint8_t selector = kMetricsSelectorJson);

  // Polite goodbye; the server flushes pending output and closes.
  bool send_bye(std::string* error);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  const std::string& server_name() const { return server_name_; }

 private:
  bool send_msg(MsgType type, const std::vector<uint8_t>& payload,
                std::string* error);
  bool recv_msg(WireMessage* msg, std::string* error);
  bool decode_event(const WireMessage& msg, Event* out, std::string* error);

  NetClientOptions options_;
  ConnectStatus connect_status_ = ConnectStatus::kOk;
  int connect_attempts_ = 0;
  UniqueFd fd_;
  std::vector<uint8_t> in_;
  size_t in_off_ = 0;
  std::string server_name_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  std::map<uint64_t, FrameDecoder> stream_decoders_;   // by stream_id
  std::map<uint64_t, FrameDecoder> session_decoders_;  // one-shot, by request session
  std::map<uint64_t, uint64_t> request_sessions_;      // request_id -> session_id
};

}  // namespace psw::net
