// Frame codec for shipped images. Shear-warp output is exactly the kind of
// data a per-scanline run-length coder exploits: mostly-transparent volumes
// (§ PAPER 2.1) warp to final images dominated by long constant background
// runs, and successive small-angle animation frames differ only where the
// object silhouette moved, so within a streaming session unchanged
// scanlines collapse to one byte.
//
// Blob layout (all integers little-endian):
//
//   u16 width, u16 height, u8 codec, u8 reserved
//   codec 0 (raw):   width*height*4 bytes of RGBA
//   codec 1 (rle):   per scanline: u16 nruns, then nruns x { u16 len, 4B px }
//   codec 2 (delta): per scanline: u8 mode
//                      mode 0 (skip): nothing — scanline equals the previous
//                                     frame's scanline
//                      mode 1 (rle):  as codec 1's scanline
//                      mode 2 (raw):  width*4 bytes
//
// The encoder picks, per scanline, the cheapest of skip/rle/raw (skip only
// when a previous frame of identical dimensions exists) and falls back to
// one whole-frame raw blob whenever the clever encoding would expand.
// Decoding is bit-exact and total: corrupt input yields a typed
// CodecStatus, never a crash or an out-of-bounds write.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/image.hpp"

namespace psw::net {

enum class FrameCodec : uint8_t {
  kRaw = 0,
  kRle = 1,
  kDelta = 2,
};

enum class CodecStatus {
  kOk = 0,
  kTruncated,        // blob ends mid-header, mid-run or mid-scanline
  kBadDimensions,    // zero/oversized width or height
  kBadCodec,         // codec byte names no known codec
  kBadRunLength,     // scanline runs do not sum to the width
  kBadMode,          // delta scanline mode byte out of range
  kMissingPrevious,  // delta frame but the decoder has no previous frame
  kTrailingBytes,    // well-formed image followed by extra bytes
};

const char* to_string(CodecStatus s);

// Stateful encoder for one streaming session: remembers the previously
// encoded frame so the next frame may use the delta codec. Not thread-safe;
// one per connection/stream.
class FrameEncoder {
 public:
  // Appends the encoded blob for `frame` to `out` (which is cleared first).
  // Uses delta against the previous encode() argument when dimensions match
  // and the result is smaller; otherwise plain RLE; falls back to raw when
  // encoding expands. Updates the previous-frame state.
  void encode(const ImageU8& frame, std::vector<uint8_t>* out);

  // Same blob bytes, appended after whatever `out` already holds — the
  // zero-copy path encodes straight into a wire payload that already carries
  // the frame metadata. Scratch buffers are encoder members, so a warm
  // encoder performs no allocations of its own (only `out` may grow).
  void encode_append(const ImageU8& frame, std::vector<uint8_t>* out);

  // Drops the previous-frame state (e.g. the consumer resynchronized).
  void reset() { has_prev_ = false; }

 private:
  ImageU8 prev_;
  bool has_prev_ = false;
  // Persistent scratch: candidate bodies and per-scanline spans into
  // rle_body_, reused across frames.
  std::vector<uint8_t> rle_body_;
  std::vector<uint8_t> delta_body_;
  std::vector<std::pair<size_t, size_t>> line_span_;
};

// Stateful decoder mirroring FrameEncoder: remembers the previously decoded
// frame so delta frames can be reconstructed. The encoder/decoder pair stay
// in lockstep as long as every encoded frame is decoded in order — which is
// why the server applies backpressure *before* encoding (drop-oldest on the
// rendered-frame queue), never after.
class FrameDecoder {
 public:
  // Decodes one blob into *out. On any error *out is left empty and the
  // previous-frame state is unchanged (a corrupt frame must not poison the
  // delta chain).
  CodecStatus decode(const uint8_t* blob, size_t size, ImageU8* out);
  CodecStatus decode(const std::vector<uint8_t>& blob, ImageU8* out);

  void reset() { has_prev_ = false; }

 private:
  ImageU8 prev_;
  bool has_prev_ = false;
};

// One-shot helpers (no delta chain): encode with RLE-or-raw, decode a blob
// that must not use the delta codec.
void encode_frame(const ImageU8& frame, std::vector<uint8_t>* out);
CodecStatus decode_frame(const uint8_t* blob, size_t size, ImageU8* out);

}  // namespace psw::net
