#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/export.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace psw::net {

namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;
constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kMaxStreamsPerConnection = 16;
// iovec slots per sendmsg call: 32 queued messages per syscall is plenty —
// a deeper backlog just means the next loop iteration sends more.
constexpr int kMaxIov = 64;
// Codec blob header bytes (u16 w, u16 h, u8 codec, u8 reserved); the raw
// fallback bounds the blob at this plus width*height*4.
constexpr size_t kCodecHeader = 6;

double ms_since(serve::Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(serve::Clock::now() - t).count();
}

}  // namespace

// Callbacks capture this by shared_ptr: a completion firing after stop()
// (or after ~NetServer) lands in a closed queue, never in freed memory.
struct NetServer::CompletionQueue {
  // Lock protocol: one mutex covers the handoff triple — the item deque,
  // the closed flag (checked before every push, so items never land after
  // close), and the wake_fd the pushers signal. Publishing or retiring the
  // pipe's write end under the same mutex is what makes the fd handoff in
  // NetServer::start()/stop() safe against concurrent pushers.
  Mutex mutex;
  std::deque<CompletionItem> items PSW_GUARDED_BY(mutex);
  bool closed PSW_GUARDED_BY(mutex) = false;
  int wake_fd PSW_GUARDED_BY(mutex) = -1;  // write end of the self-pipe

  ~CompletionQueue() { retire_wake_fd(); }

  void push(CompletionItem&& item) {
    MutexLock lock(mutex);
    if (closed) return;
    items.push_back(std::move(item));
    wake_locked();
  }

  void wake() {
    MutexLock lock(mutex);
    wake_locked();
  }

  void wake_locked() PSW_REQUIRES(mutex) {
    if (wake_fd < 0) return;
    const uint8_t byte = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
  }

  void set_wake_fd(int fd) {
    MutexLock lock(mutex);
    wake_fd = fd;
  }

  void close_and_clear() {
    MutexLock lock(mutex);
    closed = true;
    items.clear();
  }

  // Called once the poll thread is joined: the read end is about to go
  // away, so writing to the pipe after this would raise SIGPIPE.
  void retire_wake_fd() {
    MutexLock lock(mutex);
    if (wake_fd >= 0) ::close(wake_fd);
    wake_fd = -1;
  }
};

NetServer::NetServer(serve::RenderService& service, NetServerOptions options)
    : service_(service),
      options_(options),
      pool_(BufferPool::Options{options.pool_buffers_per_class,
                                options.pool_retained_bytes,
                                options.pool_poison}),
      queue_(std::make_shared<CompletionQueue>()) {
  options_.stream_window = std::max(1, options_.stream_window);
  options_.max_pending_frames = std::max<size_t>(1, options_.max_pending_frames);
}

NetServer::~NetServer() { stop(); }

bool NetServer::start(std::string* error) {
  if (thread_.joinable()) {
    if (error) *error = "server already started";
    return false;
  }
  listener_ = tcp_listen(options_.bind_address, options_.port, options_.backlog, error);
  if (!listener_.valid()) return false;
  port_ = local_port(listener_.get());
  set_nonblocking(listener_.get(), true);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    listener_.reset();
    return false;
  }
  set_nonblocking(pipe_fds[0], true);
  set_nonblocking(pipe_fds[1], true);
  wake_rd_.reset(pipe_fds[0]);
  // A restart after stop() needs a live queue: the old one was closed for
  // good in stop() (completion callbacks from the previous run may still
  // hold references to it, and must keep landing in a *closed* queue), so
  // each start gets a fresh queue rather than reopening the retired one.
  queue_ = std::make_shared<CompletionQueue>();
  queue_->set_wake_fd(pipe_fds[1]);

  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { poll_loop(); });
  return true;
}

void NetServer::stop() {
  queue_->close_and_clear();
  stopping_.store(true, std::memory_order_release);
  queue_->wake();
  if (thread_.joinable()) thread_.join();
  queue_->retire_wake_fd();  // before the read end closes below
  conns_.clear();
  listener_.reset();
  wake_rd_.reset();
}

std::string NetServer::prometheus_text() const {
  obs::PromText p;
  const serve::ServiceMetrics& sm = service_.metrics();
  p.counter("psw_requests_submitted_total", "Render requests submitted",
            sm.submitted.load());
  p.counter("psw_requests_accepted_total", "Render requests accepted",
            sm.accepted.load());
  p.counter("psw_requests_rejected_total", "Admission rejections by reason",
            sm.rejected_queue_full.load(), "reason=\"queue_full\"");
  p.counter("psw_requests_rejected_total", "Admission rejections by reason",
            sm.rejected_deadline.load(), "reason=\"deadline\"");
  p.counter("psw_requests_rejected_total", "Admission rejections by reason",
            sm.rejected_shutdown.load(), "reason=\"shutdown\"");
  p.counter("psw_requests_completed_total", "Frames rendered to completion",
            sm.completed.load());
  p.counter("psw_requests_shed_total", "Accepted requests shed by reason",
            sm.shed_deadline.load(), "reason=\"deadline\"");
  p.counter("psw_requests_shed_total", "Accepted requests shed by reason",
            sm.shed_shutdown.load(), "reason=\"shutdown\"");
  p.counter("psw_requests_failed_total", "Render failures", sm.failed.load());
  p.gauge("psw_queue_depth", "Admission queue depth",
          static_cast<double>(sm.queue_depth.load()));
  p.summary_ms("psw_queue_wait_ms", "Admission queue residency",
               sm.queue_wait);
  p.summary_ms("psw_cache_build_ms", "Cache-miss volume preparation",
               sm.cache_miss_build);
  p.summary_ms("psw_composite_ms", "Compositing stage", sm.composite);
  p.summary_ms("psw_warp_ms", "Warp stage", sm.warp);
  p.summary_ms("psw_request_total_ms", "Submit-to-completion latency",
               sm.total);
  const serve::CacheStats cache = service_.cache_stats();
  p.counter("psw_volume_cache_hits_total", "Volume cache hits", cache.hits);
  p.counter("psw_volume_cache_misses_total", "Volume cache misses",
            cache.misses);
  p.counter("psw_volume_cache_evictions_total", "Volume cache evictions",
            cache.evictions);
  p.gauge("psw_volume_cache_bytes", "Resident encoded-volume bytes",
          static_cast<double>(cache.bytes));
  p.counter("psw_net_connections_accepted_total", "Connections accepted",
            metrics_.connections_accepted.load());
  p.counter("psw_net_connections_closed_total", "Connections closed",
            metrics_.connections_closed.load());
  p.counter("psw_net_protocol_errors_total", "Framing/decode failures",
            metrics_.protocol_errors.load());
  p.counter("psw_net_requests_received_total", "One-shot render requests",
            metrics_.requests_received.load());
  p.counter("psw_net_streams_opened_total", "Streams opened",
            metrics_.streams_opened.load());
  p.counter("psw_net_streams_completed_total", "Streams completed",
            metrics_.streams_completed.load());
  p.counter("psw_net_frames_sent_total", "Frames delivered",
            metrics_.frames_sent.load());
  p.counter("psw_net_frames_dropped_total", "Frames shed by backpressure",
            metrics_.frames_dropped.load());
  p.counter("psw_net_errors_sent_total", "kError replies",
            metrics_.errors_sent.load());
  p.counter("psw_net_bytes_in_total", "Bytes received",
            metrics_.bytes_in.load());
  p.counter("psw_net_bytes_out_total", "Bytes sent", metrics_.bytes_out.load());
  p.counter("psw_net_frame_raw_bytes_total", "Raw RGBA bytes of sent frames",
            metrics_.frame_raw_bytes.load());
  p.counter("psw_net_frame_wire_bytes_total", "Encoded blob bytes sent",
            metrics_.frame_wire_bytes.load());
  p.counter("psw_net_frame_copy_bytes_total",
            "Post-encode bytes copied (0 on the zero-copy path)",
            metrics_.frame_copy_bytes.load());
  if (options_.recorder != nullptr) {
    p.counter("psw_trace_spans_recorded_total", "Spans recorded",
              options_.recorder->recorded());
    p.counter("psw_trace_spans_overwritten_total", "Spans lost to ring wrap",
              options_.recorder->overwritten());
  }
  return p.str();
}

std::string NetServer::trace_dump_json() const {
  if (options_.recorder != nullptr) {
    return options_.recorder->dump_json(options_.trace_node);
  }
  // Recorder-less servers answer with an empty but well-formed dump so
  // tools can aggregate without special-casing.
  JsonWriter w;
  w.begin_object();
  w.field("node", options_.trace_node);
  w.field("anchor_unix_ns", static_cast<uint64_t>(clock_anchor().wall_ns));
  w.field("recorded", static_cast<uint64_t>(0));
  w.field("overwritten", static_cast<uint64_t>(0));
  w.key("spans");
  w.begin_array();
  w.end_array();
  w.key("slow");
  w.begin_array();
  w.end_array();
  w.end_object();
  return w.str();
}

std::string NetServer::metrics_json() const {
  std::string out = "{\n\"service\": ";
  out += service_.metrics_json();
  out += ",\n\"net\": ";
  out += metrics_.to_json();
  out += ",\n\"net_pool\": ";
  JsonWriter w;
  serve::write_pool_json(w, pool_.stats());
  out += w.str();
  out += "\n}";
  return out;
}

void NetServer::poll_loop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> ids;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    ids.clear();
    fds.push_back({listener_.get(), POLLIN, 0});
    fds.push_back({wake_rd_.get(), POLLIN, 0});
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn.sendq.empty()) events |= POLLOUT;
      fds.push_back({conn.fd.get(), events, 0});
      ids.push_back(id);
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (stopping_.load(std::memory_order_acquire)) break;

    if (fds[1].revents & POLLIN) {
      uint8_t sink[64];
      while (::read(wake_rd_.get(), sink, sizeof(sink)) > 0) {
      }
    }
    drain_completions();
    if (fds[0].revents & POLLIN) accept_ready();

    for (size_t i = 0; i < ids.size(); ++i) {
      const auto it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      const short revents = fds[i + 2].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        conn.closing = true;
        discard_outbound(conn);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) read_ready(conn);
    }

    // Opportunistic flush for every connection with queued bytes (replies
    // generated this iteration go out without waiting for the next poll),
    // then finish connections that have flushed their goodbye.
    std::vector<uint64_t> done;
    for (auto& [id, conn] : conns_) {
      write_ready(conn);
      if (conn.closing && conn.sendq.empty()) done.push_back(id);
    }
    for (const uint64_t id : done) close_connection(id);
    harvest_idle();
  }
  // Poll thread owns the connections; drop them on the way out so their
  // fds close on this thread.
  conns_.clear();
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to poll
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      metrics_.connections_rejected.fetch_add(1);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd, true);
    if (options_.socket_send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.socket_send_buffer_bytes,
                   sizeof(options_.socket_send_buffer_bytes));
    }
    Connection conn;
    conn.id = next_conn_id_++;
    conn.fd.reset(fd);
    conn.last_activity = serve::Clock::now();
    metrics_.connections_accepted.fetch_add(1);
    conns_.emplace(conn.id, std::move(conn));
  }
}

void NetServer::read_ready(Connection& conn) {
  uint8_t buf[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), buf, buf + n);
      metrics_.bytes_in.fetch_add(static_cast<uint64_t>(n));
      conn.last_activity = serve::Clock::now();
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: nothing more will arrive; flush what we owe and go.
    conn.closing = true;
    break;
  }

  size_t off = 0;
  while (!conn.closing) {
    WireMessage msg;
    size_t consumed = 0;
    const WireStatus status =
        decode_message(conn.in.data() + off, conn.in.size() - off, &msg, &consumed);
    if (status == WireStatus::kNeedMore) break;
    if (status != WireStatus::kOk) {
      // A framing error loses message boundaries; the only safe answer is a
      // typed goodbye and a close.
      metrics_.protocol_errors.fetch_add(1);
      send_error(conn, 0, serve::ServeStatus::kError,
                 std::string("wire error: ") + to_string(status));
      conn.closing = true;
      break;
    }
    off += consumed;
    if (!handle_message(conn, msg)) {
      conn.closing = true;
      break;
    }
  }
  if (off > 0) conn.in.erase(conn.in.begin(), conn.in.begin() + off);
}

void NetServer::write_ready(Connection& conn) {
  // Scatter-gather drain: each queued message contributes its inline header
  // and its pooled payload as separate iovecs, so encoded frames go from
  // codec output to kernel with no intermediate flat-buffer copy. sendmsg
  // (writev with flags) accepts a partial write; `sent` offsets let the next
  // call resume mid-header or mid-payload.
  while (!conn.sendq.empty()) {
    iovec iov[kMaxIov];
    int niov = 0;
    for (SendItem& s : conn.sendq) {
      if (niov + 2 > kMaxIov) break;
      std::vector<uint8_t>& body = s.payload.vec();
      if (s.sent < kHeaderSize) {
        iov[niov++] = {s.header.data() + s.sent, kHeaderSize - s.sent};
        if (!body.empty()) iov[niov++] = {body.data(), body.size()};
      } else {
        const size_t body_off = s.sent - kHeaderSize;
        iov[niov++] = {body.data() + body_off, body.size() - body_off};
      }
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<decltype(mh.msg_iovlen)>(niov);
    const ssize_t n = ::sendmsg(conn.fd.get(), &mh, MSG_NOSIGNAL);
    if (n > 0) {
      metrics_.bytes_out.fetch_add(static_cast<uint64_t>(n));
      conn.sendq_bytes -= static_cast<size_t>(n);
      size_t left = static_cast<size_t>(n);
      while (left > 0) {
        SendItem& front = conn.sendq.front();
        const size_t remaining =
            kHeaderSize + front.payload.vec().size() - front.sent;
        if (left >= remaining) {
          left -= remaining;
          if (front.trace.sampled() && options_.recorder != nullptr) {
            // Sendq residency: queued -> last byte accepted by the kernel.
            // Recorder-only — the frame this measures is already encoded.
            obs::SpanRecord span;
            span.trace_hi = front.trace.trace_hi;
            span.trace_lo = front.trace.trace_lo;
            span.span_id = obs::next_span_id();
            span.parent_id = front.send_parent;
            span.kind = obs::SpanKind::kSend;
            span.t_start_ns = front.queued_ns;
            span.t_end_ns = steady_now_ns();
            span.tag = front.payload.vec().size();
            options_.recorder->record(front.trace, span);
          }
          conn.sendq.pop_front();  // returns the payload to the pool
        } else {
          front.sent += left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer is gone; drop the backlog so the cleanup pass reaps us.
    discard_outbound(conn);
    conn.closing = true;
    return;
  }
  if (conn.sendq.empty()) {
    // Sending drained the queue: streams gated on the buffer bound can
    // encode again.
    pump_streams(conn);
  }
}

bool NetServer::handle_message(Connection& conn, const WireMessage& msg) {
  if (!conn.got_hello && msg.type != MsgType::kHello) {
    metrics_.protocol_errors.fetch_add(1);
    send_error(conn, 0, serve::ServeStatus::kError, "expected hello first");
    return false;
  }
  switch (msg.type) {
    case MsgType::kHello: {
      HelloMsg hello;
      if (!HelloMsg::decode(msg.payload, &hello)) break;
      // The header version is checked by decode_message; the hello carries
      // the version the *client* intends to speak, which may legitimately
      // differ on a mixed-version fleet — reject it with a typed error
      // rather than answering in a protocol the peer never claimed.
      if (hello.version != kProtocolVersion) {
        metrics_.protocol_errors.fetch_add(1);
        send_error(conn, 0, serve::ServeStatus::kError,
                   "unsupported protocol version " +
                       std::to_string(hello.version) + " (want " +
                       std::to_string(kProtocolVersion) + ")");
        return false;  // flush the typed error, then close
      }
      conn.got_hello = true;
      HelloMsg ack;
      ack.version = kProtocolVersion;
      ack.name = "pswvr-netserve";
      send_payload(conn, MsgType::kHelloAck, ack);
      return true;
    }
    case MsgType::kRenderRequest: {
      RenderRequestMsg req;
      if (!RenderRequestMsg::decode(msg.payload, &req)) break;
      handle_render_request(conn, req);
      return true;
    }
    case MsgType::kStreamRequest: {
      StreamRequestMsg req;
      if (!StreamRequestMsg::decode(msg.payload, &req)) break;
      handle_stream_request(conn, req);
      return true;
    }
    case MsgType::kMetricsRequest: {
      // Payload selector: empty keeps the original combined-JSON document
      // (the router's health prober depends on that), one byte picks an
      // alternative exposition; anything unrecognized degrades to JSON.
      uint8_t selector = kMetricsSelectorJson;
      if (msg.payload.size() == 1) selector = msg.payload[0];
      MetricsReplyMsg reply;
      switch (selector) {
        case kMetricsSelectorPrometheus:
          reply.json = prometheus_text();
          break;
        case kMetricsSelectorTrace:
          reply.json = trace_dump_json();
          break;
        default:
          reply.json = metrics_json();
          break;
      }
      send_payload(conn, MsgType::kMetricsReply, reply);
      return true;
    }
    case MsgType::kBye:
      return false;  // flush pending output, then close
    default:
      break;  // server-to-client types arriving here are protocol errors
  }
  metrics_.protocol_errors.fetch_add(1);
  send_error(conn, 0, serve::ServeStatus::kError,
             std::string("bad message: ") + to_string(msg.type));
  return false;
}

void NetServer::handle_render_request(Connection& conn, const RenderRequestMsg& req) {
  metrics_.requests_received.fetch_add(1);
  serve::RenderRequest render;
  render.session_id = req.session_id;
  render.volume = req.volume;
  render.camera = req.camera;
  render.trace = req.trace;
  maybe_head_sample(&render.trace);
  render.trace_tag = req.request_id;
  if (req.deadline_ms > 0) {
    render.deadline = serve::Clock::now() + std::chrono::microseconds(static_cast<int64_t>(
                                                req.deadline_ms * 1e3));
  }
  const obs::TraceContext trace = render.trace;  // survives the move below
  auto queue = queue_;
  const uint64_t conn_id = conn.id;
  const uint64_t request_id = req.request_id;
  const uint64_t session_id = req.session_id;
  const serve::ServeStatus admission = service_.submit_async(
      std::move(render), [queue, conn_id, request_id, session_id](serve::FrameResult r) {
        CompletionItem item;
        item.conn_id = conn_id;
        item.request_id = request_id;
        item.session_id = session_id;
        item.result = std::move(r);
        queue->push(std::move(item));
      });
  if (admission != serve::ServeStatus::kOk) {
    send_error(conn, request_id, admission, to_string(admission), trace);
    return;
  }
  ++conn.outstanding_requests;
}

void NetServer::handle_stream_request(Connection& conn, const StreamRequestMsg& req) {
  if (conn.streams.size() >= kMaxStreamsPerConnection ||
      conn.streams.count(req.stream_id) != 0) {
    metrics_.protocol_errors.fetch_add(1);
    send_error(conn, req.stream_id, serve::ServeStatus::kError,
               conn.streams.count(req.stream_id) ? "duplicate stream id"
                                                 : "too many streams");
    return;
  }
  metrics_.streams_opened.fetch_add(1);
  Stream stream;
  stream.request = req;
  // A head-sampled stream traces every pushed frame under one trace id,
  // exactly as a client-sampled stream would.
  maybe_head_sample(&stream.request.trace);
  auto [it, inserted] = conn.streams.emplace(req.stream_id, std::move(stream));
  pump_one_stream(conn, it->second);
  if (it->second.ended) conn.streams.erase(it);
}

void NetServer::drain_completions() {
  std::deque<CompletionItem> items;
  {
    MutexLock lock(queue_->mutex);
    items.swap(queue_->items);
  }
  for (CompletionItem& item : items) apply_completion(std::move(item));
}

void NetServer::apply_completion(CompletionItem&& item) {
  const auto cit = conns_.find(item.conn_id);
  if (cit == conns_.end()) {
    metrics_.orphaned_completions.fetch_add(1);
    if (!item.result.image.empty()) {
      service_.recycle_frame(std::move(item.result.image));
    }
    return;
  }
  Connection& conn = cit->second;

  if (item.stream_id == 0) {
    // One-shot request/reply.
    --conn.outstanding_requests;
    if (item.result.status != serve::ServeStatus::kOk) {
      send_error(conn, item.request_id, item.result.status,
                 to_string(item.result.status), item.result.trace);
      return;
    }
    FrameMsg frame;
    frame.request_id = item.request_id;
    frame.render_ms = item.result.timing.composite_ms + item.result.timing.warp_ms;
    frame.total_ms = item.result.timing.total_ms;
    frame.cache_hit = item.result.timing.cache_hit ? 1 : 0;
    send_frame(conn, frame, conn.session_encoders[item.session_id], item);
    return;
  }

  const auto sit = conn.streams.find(item.stream_id);
  if (sit == conn.streams.end()) {
    metrics_.orphaned_completions.fetch_add(1);
    if (!item.result.image.empty()) {
      service_.recycle_frame(std::move(item.result.image));
    }
    return;
  }
  Stream& stream = sit->second;
  --stream.in_flight;
  if (item.result.status == serve::ServeStatus::kOk) {
    stream.ready.push_back(std::move(item));
    // Backpressure: a slow consumer gets the newest frames; the oldest
    // rendered-but-undelivered frame is shed, before it ever reaches the
    // encoder (so the delta chain only contains delivered frames). Its
    // image goes straight back to the render service's frame pool.
    while (stream.ready.size() > options_.max_pending_frames) {
      service_.recycle_frame(std::move(stream.ready.front().result.image));
      stream.ready.pop_front();
      ++stream.dropped;
      ++stream.pending_dropped;
      metrics_.frames_dropped.fetch_add(1);
    }
  } else {
    // The service shed or failed this frame: it will never be delivered.
    ++stream.dropped;
    ++stream.pending_dropped;
    metrics_.frames_dropped.fetch_add(1);
  }
  pump_one_stream(conn, stream);
  if (stream.ended) conn.streams.erase(sit);
}

void NetServer::pump_streams(Connection& conn) {
  for (auto it = conn.streams.begin(); it != conn.streams.end();) {
    pump_one_stream(conn, it->second);
    it = it->second.ended ? conn.streams.erase(it) : std::next(it);
  }
}

void NetServer::pump_one_stream(Connection& conn, Stream& stream) {
  if (stream.ended) return;
  const StreamRequestMsg& req = stream.request;

  // Keep up to stream_window frames inside the render service. kQueueFull
  // is transient (retried on the next pump); any other admission failure
  // (shutdown) means the remaining frames will never render.
  while (stream.in_flight < static_cast<uint32_t>(options_.stream_window) &&
         stream.next_submit < req.frames) {
    serve::RenderRequest render;
    render.session_id = req.session_id;
    render.volume = req.volume;
    render.trace = req.trace;
    render.trace_tag = stream.next_submit;  // frame seq correlates the spans
    render.camera = Camera::orbit(
        {req.volume.nx, req.volume.ny, req.volume.nz},
        req.start_yaw + stream.next_submit * req.step_deg * kDeg, req.pitch);
    auto queue = queue_;
    const uint64_t conn_id = conn.id;
    const uint64_t stream_id = req.stream_id;
    const uint64_t session_id = req.session_id;
    const uint32_t seq = stream.next_submit;
    const serve::ServeStatus admission = service_.submit_async(
        std::move(render),
        [queue, conn_id, stream_id, session_id, seq](serve::FrameResult r) {
          CompletionItem item;
          item.conn_id = conn_id;
          item.stream_id = stream_id;
          item.session_id = session_id;
          item.seq = seq;
          item.result = std::move(r);
          queue->push(std::move(item));
        });
    if (admission == serve::ServeStatus::kOk) {
      ++stream.in_flight;
      ++stream.next_submit;
      continue;
    }
    if (admission == serve::ServeStatus::kQueueFull) break;
    const uint32_t remaining = req.frames - stream.next_submit;
    stream.dropped += remaining;
    stream.pending_dropped += remaining;
    metrics_.frames_dropped.fetch_add(remaining);
    stream.next_submit = req.frames;
    break;
  }

  // Encode and enqueue ready frames while the send buffer has room.
  while (!stream.ready.empty() && !send_buffer_full(conn)) {
    CompletionItem item = std::move(stream.ready.front());
    stream.ready.pop_front();
    FrameMsg frame;
    frame.stream_id = req.stream_id;
    frame.seq = item.seq;
    frame.dropped_before = stream.pending_dropped;
    stream.pending_dropped = 0;
    frame.render_ms = item.result.timing.composite_ms + item.result.timing.warp_ms;
    frame.total_ms = item.result.timing.total_ms;
    frame.cache_hit = item.result.timing.cache_hit ? 1 : 0;
    send_frame(conn, frame, stream.encoder, item);
    ++stream.sent;
  }

  if (stream.next_submit >= req.frames && stream.in_flight == 0 &&
      stream.ready.empty()) {
    StreamEndMsg end;
    end.stream_id = req.stream_id;
    end.frames_sent = stream.sent;
    end.frames_dropped = stream.dropped;
    send_payload(conn, MsgType::kStreamEnd, end);
    metrics_.streams_completed.fetch_add(1);
    stream.ended = true;
  }
}

void NetServer::send_frame(Connection& conn, FrameMsg& frame,
                           FrameEncoder& encoder, CompletionItem& item) {
  // Single-buffer frame path: metadata, a blob-length placeholder, then the
  // codec encoding appended in place and the length patched — the blob never
  // exists outside the wire payload, and the payload buffer is pooled. The
  // acquire hint covers the raw-fallback worst case so a warm pool means no
  // allocation and no mid-encode regrowth.
  const bool traced = item.result.trace.sampled();
  const size_t raw_bytes = item.result.image.pixel_count() * 4;
  size_t acquire_hint = FrameMsg::kMetaSize + 4 + kCodecHeader + raw_bytes;
  if (traced) {
    // Sampled frames carry their stage spans in the trace tail; covering
    // the tail (plus the encode span added below) in the acquire hint keeps
    // even the sampled path free of mid-append regrowth.
    frame.trace = item.result.trace;
    frame.spans = std::move(item.result.spans);
    acquire_hint +=
        kTraceTailHeaderSize + (frame.spans.size() + 1) * kWireSpanSize;
  }
  PooledBuffer payload = pool_.acquire(acquire_hint);
  frame.encode_meta(&payload.vec());
  const size_t blob_len_at = payload.vec().size();
  put_u32(&payload.vec(), 0);  // patched once the blob size is known
  const int64_t encode_start = traced ? steady_now_ns() : 0;
  encoder.encode_append(item.result.image, &payload.vec());
  const size_t blob_bytes = payload.vec().size() - blob_len_at - 4;
  put_u32_at(&payload.vec(), blob_len_at, static_cast<uint32_t>(blob_bytes));
  uint64_t request_span = 0;
  if (traced) {
    // The codec encode gets its own span under the whole-request span the
    // scheduler recorded (the wire parent when the scheduler recorded none).
    for (const obs::SpanRecord& s : frame.spans) {
      if (s.kind == obs::SpanKind::kRequest) request_span = s.span_id;
    }
    if (request_span == 0) request_span = frame.trace.parent_span;
    obs::SpanRecord enc;
    enc.trace_hi = frame.trace.trace_hi;
    enc.trace_lo = frame.trace.trace_lo;
    enc.span_id = obs::next_span_id();
    enc.parent_id = request_span;
    enc.kind = obs::SpanKind::kFrameEncode;
    enc.t_start_ns = encode_start;
    enc.t_end_ns = steady_now_ns();
    enc.tag = blob_bytes;
    if (options_.recorder != nullptr) options_.recorder->record(frame.trace, enc);
    frame.spans.push_back(enc);
    // The tail travels wall-anchored so router- and shard-side dumps share
    // one time axis with the client.
    for (obs::SpanRecord& s : frame.spans) {
      s.t_start_ns = steady_to_wall_ns(s.t_start_ns);
      s.t_end_ns = steady_to_wall_ns(s.t_end_ns);
    }
    frame.encode_trace_tail(&payload.vec());
  }
  metrics_.frames_sent.fetch_add(1);
  metrics_.frame_raw_bytes.fetch_add(raw_bytes);
  metrics_.frame_wire_bytes.fetch_add(blob_bytes);
  service_.recycle_frame(std::move(item.result.image));
  queue_send(conn, MsgType::kFrame, std::move(payload));
  if (traced) {
    SendItem& queued = conn.sendq.back();
    queued.trace = frame.trace;
    queued.send_parent = request_span;
    queued.queued_ns = steady_now_ns();
  }
}

void NetServer::queue_send(Connection& conn, MsgType type, PooledBuffer&& payload) {
  SendItem item;
  encode_header(type, payload.vec().data(), payload.vec().size(),
                item.header.data());
  conn.sendq_bytes += kHeaderSize + payload.vec().size();
  item.payload = std::move(payload);
  conn.sendq.push_back(std::move(item));
}

template <typename Msg>
void NetServer::send_payload(Connection& conn, MsgType type, const Msg& msg) {
  PooledBuffer payload = pool_.acquire(msg.encoded_size());
  msg.encode(&payload.vec());
  queue_send(conn, type, std::move(payload));
}

void NetServer::send_error(Connection& conn, uint64_t request_id,
                           serve::ServeStatus status, const std::string& message,
                           const obs::TraceContext& trace) {
  ErrorMsg err;
  err.request_id = request_id;
  err.status = static_cast<uint16_t>(status);
  err.message = message;
  err.trace = trace;  // correlates the client-visible error with the trace
  send_payload(conn, MsgType::kError, err);
  metrics_.errors_sent.fetch_add(1);
}

void NetServer::maybe_head_sample(obs::TraceContext* trace) {
  if (trace->sampled() || options_.trace_sample == 0) return;
  if (++trace_candidates_ % options_.trace_sample != 0) return;
  *trace = obs::make_sampled_trace();
}

void NetServer::discard_outbound(Connection& conn) {
  conn.sendq.clear();  // every pooled payload goes back to the pool
  conn.sendq_bytes = 0;
}

void NetServer::close_connection(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Rendered-but-unsent frames still hold pool-born images; hand them back
  // so a churn of short-lived streams doesn't bleed the frame pool.
  for (auto& [sid, stream] : it->second.streams) {
    for (CompletionItem& item : stream.ready) {
      if (!item.result.image.empty()) {
        service_.recycle_frame(std::move(item.result.image));
      }
    }
  }
  conns_.erase(it);
  metrics_.connections_closed.fetch_add(1);
}

void NetServer::harvest_idle() {
  if (options_.idle_timeout_ms <= 0) return;
  std::vector<uint64_t> idle;
  for (auto& [id, conn] : conns_) {
    const bool quiet = conn.streams.empty() && conn.outstanding_requests == 0 &&
                       conn.sendq.empty();
    if (quiet && ms_since(conn.last_activity) > options_.idle_timeout_ms) {
      idle.push_back(id);
    }
  }
  for (const uint64_t id : idle) {
    metrics_.idle_timeouts.fetch_add(1);
    close_connection(id);
  }
}

}  // namespace psw::net
