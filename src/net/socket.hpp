// Thin POSIX TCP helpers shared by the server and client: RAII fd
// ownership, listen/connect with error strings instead of errno spelunking
// at every call site, and non-blocking mode toggles for the poll loop.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace psw::net {

// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& o) noexcept : fd_(o.release()) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) reset(o.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Binds and listens on addr:port (IPv4 dotted quad; port 0 = ephemeral).
// Returns an invalid fd and fills *error on failure.
UniqueFd tcp_listen(const std::string& addr, uint16_t port, int backlog,
                    std::string* error);

// The locally bound port of a listening socket (resolves port 0).
uint16_t local_port(int fd);

// Blocking connect to host:port (IPv4 dotted quad). A nonzero
// recv_buffer_bytes requests a small SO_RCVBUF before connecting (so it
// affects the negotiated window) — tests use this to provoke backpressure
// without shipping hundreds of megabytes through loopback.
UniqueFd tcp_connect(const std::string& host, uint16_t port, std::string* error,
                     int recv_buffer_bytes = 0);

bool set_nonblocking(int fd, bool on);

// Sets SO_RCVTIMEO so a blocking read cannot hang forever (0 disables).
bool set_recv_timeout_ms(int fd, double timeout_ms);

}  // namespace psw::net
