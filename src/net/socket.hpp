// Thin POSIX TCP helpers shared by the server and client: RAII fd
// ownership, listen/connect with error strings instead of errno spelunking
// at every call site, and non-blocking mode toggles for the poll loop.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace psw::net {

// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& o) noexcept : fd_(o.release()) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) reset(o.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Binds and listens on addr:port (IPv4 dotted quad; port 0 = ephemeral).
// Returns an invalid fd and fills *error on failure.
UniqueFd tcp_listen(const std::string& addr, uint16_t port, int backlog,
                    std::string* error);

// The locally bound port of a listening socket (resolves port 0).
uint16_t local_port(int fd);

// Blocking connect to host:port (IPv4 dotted quad). A nonzero
// recv_buffer_bytes requests a small SO_RCVBUF before connecting (so it
// affects the negotiated window) — tests use this to provoke backpressure
// without shipping hundreds of megabytes through loopback.
UniqueFd tcp_connect(const std::string& host, uint16_t port, std::string* error,
                     int recv_buffer_bytes = 0);

// As tcp_connect, but additionally reports the failing errno through
// *connect_errno (0 on success) so callers can classify transient refusals
// (server not up yet) from permanent failures. `retryable_connect_errno`
// encodes that classification in one place.
UniqueFd tcp_connect_errno(const std::string& host, uint16_t port,
                           std::string* error, int* connect_errno,
                           int recv_buffer_bytes = 0);

// True for errnos worth retrying with backoff: the address is fine but the
// peer is not (yet) accepting — ECONNREFUSED, ECONNRESET, ETIMEDOUT,
// EHOSTUNREACH, ENETUNREACH, EAGAIN.
bool retryable_connect_errno(int err);

// Starts a non-blocking connect: returns the socket (already O_NONBLOCK,
// TCP_NODELAY) with *in_progress = true when the connect is pending
// (EINPROGRESS; poll for writability, then finish_nonblocking_connect) and
// false when it completed immediately. Invalid fd + *error on failure.
UniqueFd tcp_connect_start(const std::string& host, uint16_t port,
                           std::string* error, bool* in_progress);

// After writability on a pending non-blocking connect: returns the
// SO_ERROR value (0 = connected).
int finish_nonblocking_connect(int fd);

bool set_nonblocking(int fd, bool on);

// Sets SO_RCVTIMEO so a blocking read cannot hang forever (0 disables).
bool set_recv_timeout_ms(int fd, double timeout_ms);

}  // namespace psw::net
