#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace psw::net {

namespace {

void set_error(std::string* error, const char* what) {
  if (error) *error = std::string(what) + ": " + std::strerror(errno);
}

bool parse_addr(const std::string& addr, uint16_t port, sockaddr_in* out,
                std::string* error) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (inet_pton(AF_INET, addr.c_str(), &out->sin_addr) != 1) {
    if (error) *error = "invalid IPv4 address '" + addr + "'";
    return false;
  }
  return true;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

UniqueFd tcp_listen(const std::string& addr, uint16_t port, int backlog,
                    std::string* error) {
  sockaddr_in sa;
  if (!parse_addr(addr, port, &sa, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    set_error(error, "bind");
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    set_error(error, "listen");
    return UniqueFd();
  }
  return fd;
}

uint16_t local_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) return 0;
  return ntohs(sa.sin_port);
}

UniqueFd tcp_connect(const std::string& host, uint16_t port, std::string* error,
                     int recv_buffer_bytes) {
  int ignored = 0;
  return tcp_connect_errno(host, port, error, &ignored, recv_buffer_bytes);
}

UniqueFd tcp_connect_errno(const std::string& host, uint16_t port,
                           std::string* error, int* connect_errno,
                           int recv_buffer_bytes) {
  *connect_errno = 0;
  sockaddr_in sa;
  if (!parse_addr(host, port, &sa, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *connect_errno = errno;
    set_error(error, "socket");
    return UniqueFd();
  }
  if (recv_buffer_bytes > 0) {
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &recv_buffer_bytes,
                 sizeof(recv_buffer_bytes));
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    *connect_errno = errno;
    set_error(error, "connect");
    return UniqueFd();
  }
  // Frames are written whole; batching small messages behind Nagle only
  // adds latency to the request/reply path.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool retryable_connect_errno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == ETIMEDOUT ||
         err == EHOSTUNREACH || err == ENETUNREACH || err == EAGAIN;
}

UniqueFd tcp_connect_start(const std::string& host, uint16_t port,
                           std::string* error, bool* in_progress) {
  *in_progress = false;
  sockaddr_in sa;
  if (!parse_addr(host, port, &sa, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return UniqueFd();
  }
  if (!set_nonblocking(fd.get(), true)) {
    set_error(error, "fcntl");
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (errno == EINPROGRESS) {
      *in_progress = true;
      return fd;
    }
    set_error(error, "connect");
    return UniqueFd();
  }
  return fd;  // connected immediately (loopback fast path)
}

int finish_nonblocking_connect(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? flags | O_NONBLOCK : flags & ~O_NONBLOCK;
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool set_recv_timeout_ms(int fd, double timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1e3);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - static_cast<double>(tv.tv_sec) * 1e3) * 1e3);
  }
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace psw::net
