// Poll-driven TCP front end over RenderService: the layer that lets frames
// leave the process. One thread runs a poll() loop over a single acceptor
// plus all client connections (non-blocking sockets, no thread per
// connection); render work is bridged onto the service with submit_async
// completion callbacks, which hand finished frames back to the poll thread
// through a wakeup-pipe-signalled completion queue. The poll thread is the
// only code that touches connection state, so the server needs no locks
// beyond that queue.
//
// Backpressure is explicit and counted: each streaming session keeps at
// most `max_pending_frames` rendered-but-unsent frames — when a new frame
// completes against a full queue the *oldest undelivered* frame is dropped
// (the client wants the newest view, not a growing backlog of stale ones)
// and the drop is reported in the next delivered frame's `dropped_before`.
// Dropping happens before encoding, so the delta codec's
// previous-frame chain only ever contains frames that were actually sent.
// Encoded bytes per connection are bounded by `max_send_buffer_bytes`;
// connections with nothing outstanding are closed after `idle_timeout_ms`.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame_codec.hpp"
#include "net/metrics.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/service.hpp"
#include "util/buffer_pool.hpp"

namespace psw::net {

struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; see NetServer::port() for the result
  int backlog = 16;
  int max_connections = 64;
  // Stream flow control: frames of one stream concurrently inside the
  // render service, and rendered frames queued per stream awaiting encode
  // before drop-oldest kicks in.
  int stream_window = 4;
  size_t max_pending_frames = 4;
  // Encoded-bytes bound per connection; encoding pauses (and the pending
  // queue starts shedding) when a slow reader lets this fill up.
  size_t max_send_buffer_bytes = 8u << 20;
  // Kernel SO_SNDBUF per accepted connection; 0 keeps the OS default.
  // Tests shrink it so loopback can't hide a slow consumer.
  int socket_send_buffer_bytes = 0;
  double idle_timeout_ms = 30'000.0;  // 0 disables idle harvesting
  // Payload buffer pool (codec blobs + wire payloads): buffers retained per
  // size class, total retained-byte budget, and the 0xDD poison-on-release
  // debug mode (see util/buffer_pool.hpp).
  size_t pool_buffers_per_class = 8;
  size_t pool_retained_bytes = 64u << 20;
  bool pool_poison = false;
  // Distributed tracing. `recorder` (not owned; must outlive the server)
  // receives the stage spans of sampled requests — null records nothing
  // locally, but client-sampled traces still travel in the frame tail.
  // `trace_sample` head-samples every Nth request/stream that arrives
  // without a sampled context (0 disables); `trace_node` labels this
  // process in trace dumps.
  obs::SpanRecorder* recorder = nullptr;
  uint32_t trace_sample = 0;
  std::string trace_node = "netserve";
};

class NetServer {
 public:
  // The service must outlive the server. The server stops itself (and
  // waits out in-flight completion callbacks) on destruction.
  NetServer(serve::RenderService& service, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens and starts the poll thread. False (with *error) when the
  // address is unavailable.
  bool start(std::string* error = nullptr);

  // Closes the acceptor and every connection and joins the poll thread.
  // Completion callbacks still in flight inside the render service remain
  // safe after stop(): they land in the (now closed) queue and are counted
  // as orphaned. Idempotent.
  void stop();

  bool running() const { return thread_.joinable(); }
  uint16_t port() const { return port_; }
  const NetServerOptions& options() const { return options_; }
  const NetMetrics& metrics() const { return metrics_; }
  PoolStats pool_stats() const { return pool_.stats(); }

  // One JSON object combining the render service's metrics with the
  // network layer's (the document netserve flushes on shutdown).
  std::string metrics_json() const;

  // Prometheus text exposition of the same counters/histograms (the
  // kMetricsSelectorPrometheus document).
  std::string prometheus_text() const;

  // Span-dump JSON from the configured recorder (kMetricsSelectorTrace);
  // an empty-but-well-formed document when no recorder is attached.
  std::string trace_dump_json() const;

 private:
  struct CompletionItem {
    uint64_t conn_id = 0;
    uint64_t stream_id = 0;   // 0 for one-shot requests
    uint64_t request_id = 0;  // 0 for stream frames
    uint64_t session_id = 0;
    uint32_t seq = 0;
    serve::FrameResult result;
  };

  // Callbacks capture this queue by shared_ptr, so a callback firing after
  // stop() (or even after the server is destroyed) writes into a closed
  // queue instead of freed memory. stop() closes a queue permanently;
  // start() installs a fresh one, which is what lets a stopped server be
  // started again. Its mutex/guarded members carry thread-safety
  // annotations (util/sync.hpp) — the definition lives in server.cpp.
  struct CompletionQueue;

  struct Stream {
    StreamRequestMsg request;
    uint32_t next_submit = 0;
    uint32_t in_flight = 0;
    uint32_t sent = 0;
    uint32_t dropped = 0;
    uint32_t pending_dropped = 0;  // reported in the next frame's header
    bool ended = false;
    std::deque<CompletionItem> ready;  // rendered, awaiting encode+send
    FrameEncoder encoder;
  };

  // One queued outbound message: the 16-byte wire header inline plus the
  // payload still in its pooled buffer. writev hands both to the kernel in
  // one call, so an encoded frame is never copied into a flat send buffer;
  // popping a fully-sent item returns the payload storage to the pool.
  struct SendItem {
    std::array<uint8_t, kHeaderSize> header;
    PooledBuffer payload;
    size_t sent = 0;  // bytes of header+payload already accepted by the kernel
    // Sampled frames record a kSend span (queued -> fully handed to the
    // kernel) when the item drains; unsampled items leave these untouched.
    obs::TraceContext trace;
    uint64_t send_parent = 0;  // parent span id for the kSend span
    int64_t queued_ns = 0;     // steady ns at sendq entry
  };

  struct Connection {
    uint64_t id = 0;
    UniqueFd fd;
    std::vector<uint8_t> in;
    std::deque<SendItem> sendq;
    size_t sendq_bytes = 0;  // unsent bytes across sendq
    bool got_hello = false;
    bool closing = false;  // flush `sendq`, then close
    int outstanding_requests = 0;
    serve::Clock::time_point last_activity;
    std::map<uint64_t, Stream> streams;
    // One-shot requests from one connection share a per-session delta chain
    // (replies for a session are sent in submit order, so the chain is
    // well-defined on the client too).
    std::map<uint64_t, FrameEncoder> session_encoders;
  };

  void poll_loop();
  void accept_ready();
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  bool handle_message(Connection& conn, const WireMessage& msg);
  void handle_render_request(Connection& conn, const RenderRequestMsg& req);
  void handle_stream_request(Connection& conn, const StreamRequestMsg& req);
  void drain_completions();
  void apply_completion(CompletionItem&& item);
  // Submits due stream frames and encodes ready frames into pooled payloads.
  void pump_streams(Connection& conn);
  void pump_one_stream(Connection& conn, Stream& stream);
  // Encodes one rendered frame straight into a pooled wire payload (meta,
  // blob-length placeholder, codec output, patched length) and queues it.
  // Recycles the frame's image back to the render service.
  void send_frame(Connection& conn, FrameMsg& frame, FrameEncoder& encoder,
                  CompletionItem& item);
  // Stamps the wire header and appends to the connection's send queue.
  void queue_send(Connection& conn, MsgType type, PooledBuffer&& payload);
  // Encodes a control payload (hello ack, error, metrics, stream end) into
  // a pooled buffer sized by encoded_size() and queues it.
  template <typename Msg>
  void send_payload(Connection& conn, MsgType type, const Msg& msg);
  void send_error(Connection& conn, uint64_t request_id, serve::ServeStatus status,
                  const std::string& message,
                  const obs::TraceContext& trace = {});
  // Head sampling: promotes every trace_sample-th unsampled context to a
  // fresh sampled trace rooted at this server. Poll thread only.
  void maybe_head_sample(obs::TraceContext* trace);
  void discard_outbound(Connection& conn);
  void close_connection(uint64_t conn_id);
  void harvest_idle();
  bool send_buffer_full(const Connection& conn) const {
    return conn.sendq_bytes >= options_.max_send_buffer_bytes;
  }

  serve::RenderService& service_;
  NetServerOptions options_;
  NetMetrics metrics_;
  BufferPool pool_;

  UniqueFd listener_;
  UniqueFd wake_rd_;  // read end of the self-pipe; write end lives in queue_
  uint16_t port_ = 0;
  std::shared_ptr<CompletionQueue> queue_;
  std::atomic<bool> stopping_{false};
  std::map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 1;
  uint64_t trace_candidates_ = 0;  // head-sampling counter; poll thread only
  std::thread thread_;
};

}  // namespace psw::net
