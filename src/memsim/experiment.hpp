// Experiment harness: builds datasets, traces steady-state frames of either
// parallel algorithm at a simulated processor count, and runs them through
// a machine model. Every bench binary in bench/ is a thin driver over these
// helpers; DESIGN.md maps paper figures to them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analyze/race_check.hpp"
#include "core/classify.hpp"
#include "core/rle_volume.hpp"
#include "memsim/mpsim.hpp"
#include "parallel/options.hpp"
#include "parallel/prepare.hpp"
#include "phantom/phantom.hpp"

namespace psw {

// True when the PSW_VERIFY_TRACES environment variable is set (non-empty,
// not "0"): every trace_frame() call then race-checks the captured streams
// before handing them to a simulator.
bool default_verify_traces();

enum class Algo { kOld, kNew };
const char* algo_name(Algo a);

// A classified + encoded phantom volume ready to render.
struct Dataset {
  std::string name;
  std::array<int, 3> dims{};
  EncodedVolume volume;
  size_t dense_bytes = 0;
  double transparent_fraction = 0.0;
};

// Builds the MRI-brain (kind="mri") or CT-head (kind="ct") phantom at the
// given dimensions, classifies with the matching preset, and encodes.
// `prep` selects the preparation pipeline (serial by default; with
// prep.threads > 1 classification and encoding run on a thread pool with
// bit-identical output).
Dataset make_dataset(const std::string& kind, const std::string& name, int nx, int ny,
                     int nz, const PrepareOptions& prep = {});

// Divides a paper dataset size by `divisor` (benches default to scaled
// volumes so simulator sweeps finish quickly; --scale=full uses divisor 1).
DatasetSpec scale_spec(const DatasetSpec& spec, int divisor);

struct WorkloadOptions {
  double yaw = 0.55;     // steady-state viewpoint (radians)
  double pitch = 0.35;
  double degrees_per_frame = 2.0;  // animation step during warm-up
  int warmup_frames = 2;           // frames before the traced frame
  ParallelOptions parallel;
  // Race-check the traced frames before returning them (throws on a race).
  // Defaults on when PSW_VERIFY_TRACES is set in the environment.
  bool verify_race_free = default_verify_traces();
  uint32_t race_granularity = 4;  // shadow-cell bytes for the verification pass
};

// Traces one steady-state frame at `procs` simulated processors. For the
// new algorithm, warm-up frames (untraced) populate the scanline profile so
// the traced frame uses the predictively balanced contiguous partition.
TraceSet trace_frame(Algo algo, const Dataset& data, int procs,
                     const WorkloadOptions& opt = {});

// Renders the same frame sequence and reports the renderer-level stats of
// the traced frame (lock ops, steals, bounds) without capturing a trace.
ParallelRenderStats frame_stats(Algo algo, const Dataset& data, int procs,
                                const WorkloadOptions& opt = {});

// Traces the same frame sequence as trace_frame() and race-checks it,
// returning the report instead of throwing. The renderer's data structures
// (volume, intermediate/final images, profile) are registered as named
// regions so findings carry their owning structure.
RaceReport check_frame_races(Algo algo, const Dataset& data, int procs,
                             const WorkloadOptions& opt = {},
                             const RaceCheckOptions& ropt = {});

// Runs the machine model over a trace.
SimResult simulate(const MachineConfig& machine, const TraceSet& traces,
                   bool profiled_frame = false);

struct SpeedupPoint {
  int procs = 0;
  double speedup = 0.0;
  double cycles = 0.0;
};

// Simulated self-relative speedup curve T(1)/T(P) on the given machine.
std::vector<SpeedupPoint> speedup_curve(Algo algo, const Dataset& data,
                                        const MachineConfig& machine,
                                        const std::vector<int>& proc_counts,
                                        const WorkloadOptions& opt = {});

}  // namespace psw
