#include "memsim/mpsim.hpp"

#include <algorithm>
#include <cassert>

namespace psw {

const char* miss_class_name(MissClass c) {
  switch (c) {
    case MissClass::kCold: return "cold";
    case MissClass::kCapacity: return "capacity";
    case MissClass::kConflict: return "conflict";
    case MissClass::kTrueShare: return "true-sharing";
    case MissClass::kFalseShare: return "false-sharing";
  }
  return "?";
}

uint64_t SimResult::total_accesses() const {
  uint64_t t = 0;
  for (const auto& p : proc) t += p.accesses;
  return t;
}
uint64_t SimResult::total_hits() const {
  uint64_t t = 0;
  for (const auto& p : proc) t += p.hits;
  return t;
}
uint64_t SimResult::misses_of(MissClass c) const {
  uint64_t t = 0;
  for (const auto& p : proc) t += p.misses[static_cast<int>(c)];
  return t;
}
uint64_t SimResult::total_misses() const {
  uint64_t t = 0;
  for (const auto& p : proc) t += p.total_misses();
  return t;
}
uint64_t SimResult::total_upgrades() const {
  uint64_t t = 0;
  for (const auto& p : proc) t += p.upgrades;
  return t;
}
double SimResult::miss_rate(bool include_cold) const {
  const uint64_t acc = total_accesses();
  if (acc == 0) return 0.0;
  uint64_t m = total_misses();
  if (!include_cold) m -= misses_of(MissClass::kCold);
  return static_cast<double>(m) / acc;
}
double SimResult::miss_rate_of(MissClass c) const {
  const uint64_t acc = total_accesses();
  return acc == 0 ? 0.0 : static_cast<double>(misses_of(c)) / acc;
}
double SimResult::remote_fraction() const {
  uint64_t local = 0, remote = 0;
  for (const auto& p : proc) {
    local += p.local;
    remote += p.remote2 + p.remote3;
  }
  return (local + remote) == 0 ? 0.0
                               : static_cast<double>(remote) / (local + remote);
}
double SimResult::busy_sum() const {
  double t = 0;
  for (const auto& p : proc) t += p.busy_cycles;
  return t;
}
double SimResult::mem_sum() const {
  double t = 0;
  for (const auto& p : proc) t += p.mem_cycles;
  return t;
}
double SimResult::sync_sum() const {
  double t = 0;
  for (const auto& p : proc) t += p.sync_cycles;
  return t;
}

MultiProcSim::MultiProcSim(const MachineConfig& config, int procs)
    : cfg_(config),
      procs_(procs),
      nodes_(config.nodes(procs)),
      words_per_line_(config.line_bytes / 4) {
  assert(procs <= 64);
  caches_.reserve(procs);
  shadows_.reserve(procs);
  for (int p = 0; p < procs; ++p) {
    caches_.emplace_back(cfg_.cache_bytes, cfg_.line_bytes, cfg_.assoc);
    shadows_.emplace_back(cfg_.cache_bytes, cfg_.line_bytes);
  }
}

MultiProcSim::LineMeta& MultiProcSim::meta(uint64_t line_addr, int procs) {
  LineMeta& m = lines_[line_addr];
  if (m.fetch_version.empty()) {
    m.word_version.assign(words_per_line_, 0);
    m.word_writer.assign(words_per_line_, 255);
    m.fetch_version.assign(procs, 0);
  }
  return m;
}

int MultiProcSim::miss_cost_and_site(int p, const LineMeta& m, uint64_t line_addr,
                                     int* home_out) {
  const uint64_t addr = line_addr * cfg_.line_bytes;
  const int home = static_cast<int>((addr / cfg_.page_bytes) % nodes_);
  *home_out = home;
  if (!cfg_.distributed) return cfg_.local_miss;

  const int my_node = p / cfg_.procs_per_node;
  if (m.dirty && m.owner >= 0 && m.owner != p) {
    const int owner_node = m.owner / cfg_.procs_per_node;
    if (owner_node == my_node) return cfg_.local_miss;  // in-node snoop
    if (home == my_node || owner_node == home) return cfg_.remote_2hop;
    return cfg_.remote_3hop;
  }
  return home == my_node ? cfg_.local_miss : cfg_.remote_2hop;
}

void MultiProcSim::touch_line(int p, uint64_t line_addr, uint64_t addr, uint32_t size,
                              bool write, ProcCounters& pc,
                              std::vector<double>& node_occupancy,
                              std::vector<std::vector<double>>& lat_by_home) {
  ++pc.accesses;
  (write ? pc.writes : pc.reads)++;

  const SetAssocCache::Result res = caches_[p].access(line_addr);
  const bool shadow_hit = shadows_[p].access(line_addr);

  // Word span of this access within the line.
  const uint64_t line_base = line_addr * cfg_.line_bytes;
  const uint64_t lo = std::max(addr, line_base);
  const uint64_t hi = std::min(addr + size, line_base + cfg_.line_bytes);
  const int w0 = static_cast<int>((lo - line_base) / 4);
  const int w1 = std::min(words_per_line_ - 1, static_cast<int>((hi - 1 - line_base) / 4));

  LineMeta& m = meta(line_addr, procs_);
  const uint64_t bit = 1ull << p;

  if (res.evicted) {
    // Keep the directory consistent with the replacement: the victim line
    // leaves p's cache through capacity/conflict, not coherence.
    LineMeta& victim = meta(res.evicted_line, procs_);
    victim.sharers &= ~bit;
    victim.invalidated &= ~bit;
    if (victim.owner == p) {
      victim.owner = -1;
      victim.dirty = false;  // implicit writeback to home
    }
  }

  if (res.hit) {
    ++pc.hits;
    if (write) {
      const uint64_t others = m.sharers & ~bit;
      if (others) {
        // Upgrade: invalidate every other copy via the directory.
        ++pc.upgrades;
        pc.mem_cycles += cfg_.upgrade;
        for (int q = 0; q < procs_; ++q) {
          if (others & (1ull << q)) {
            caches_[q].invalidate(line_addr);
            m.invalidated |= (1ull << q);
          }
        }
        m.sharers = bit;
      }
      m.dirty = true;
      m.owner = static_cast<int8_t>(p);
      ++m.version;
      for (int w = w0; w <= w1; ++w) {
        m.word_version[w] = m.version;
        m.word_writer[w] = static_cast<uint8_t>(p);
      }
    }
    return;
  }

  // ---- Miss: classify. ----
  MissClass cls;
  if (!(m.ever_accessed & bit)) {
    cls = MissClass::kCold;
  } else if (m.invalidated & bit) {
    // Coherence miss: true sharing iff a word this access touches was
    // written (by another processor) since p last fetched the line.
    bool true_share = false;
    for (int w = w0; w <= w1; ++w) {
      if (m.word_version[w] > m.fetch_version[p] && m.word_writer[w] != p) {
        true_share = true;
        break;
      }
    }
    cls = true_share ? MissClass::kTrueShare : MissClass::kFalseShare;
  } else {
    cls = shadow_hit ? MissClass::kConflict : MissClass::kCapacity;
  }
  ++pc.misses[static_cast<int>(cls)];

  int home = 0;
  const int cost = miss_cost_and_site(p, m, line_addr, &home);
  pc.mem_cycles += cost;
  lat_by_home[p][home] += cost;
  node_occupancy[home] += cfg_.home_occupancy;
  if (!cfg_.distributed || cost == cfg_.local_miss) {
    ++pc.local;
  } else if (cost == cfg_.remote_2hop) {
    ++pc.remote2;
  } else {
    ++pc.remote3;
  }

  // ---- Protocol state update. ----
  if (m.dirty && m.owner != p) {
    // Owner writes back; line becomes clean-shared (read) or moves (write).
    m.dirty = false;
    m.owner = -1;
  }
  if (write) {
    const uint64_t others = m.sharers & ~bit;
    for (int q = 0; q < procs_; ++q) {
      if (others & (1ull << q)) {
        caches_[q].invalidate(line_addr);
        m.invalidated |= (1ull << q);
      }
    }
    m.sharers = bit;
    m.dirty = true;
    m.owner = static_cast<int8_t>(p);
    ++m.version;
    for (int w = w0; w <= w1; ++w) {
      m.word_version[w] = m.version;
      m.word_writer[w] = static_cast<uint8_t>(p);
    }
  } else {
    m.sharers |= bit;
  }
  m.ever_accessed |= bit;
  m.invalidated &= ~bit;  // p has a fresh copy now
  m.fetch_version[p] = m.version;
}

SimResult MultiProcSim::run(const TraceSet& traces, const SimOptions& opt) {
  assert(traces.procs() == procs_);
  SimResult result;
  result.machine = cfg_;
  result.procs = procs_;
  result.proc.assign(procs_, ProcCounters{});

  for (int interval = 0; interval < traces.intervals(); ++interval) {
    const bool warmup = interval < opt.warmup_intervals;
    IntervalBreakdown ib;
    ib.name = traces.interval_name(interval);
    const bool profiled_interval =
        opt.profiled_frame && ib.name.rfind("composite", 0) == 0;

    std::vector<double> busy(procs_, 0), mem0(procs_, 0);
    std::vector<double> node_occupancy(nodes_, 0);
    std::vector<std::vector<double>> lat_by_home(
        procs_, std::vector<double>(nodes_, 0));
    // Warm-up intervals update the caches and directory but their
    // statistics are discarded.
    std::vector<ProcCounters> scratch(warmup ? procs_ : 0);

    // Chunked round-robin interleave of the processors' streams.
    std::vector<size_t> cursor(procs_), end(procs_);
    for (int p = 0; p < procs_; ++p) {
      const auto [b, e] = traces.interval_range(p, interval);
      cursor[p] = b;
      end[p] = e;
    }
    bool any = true;
    while (any) {
      any = false;
      for (int p = 0; p < procs_; ++p) {
        const size_t stop =
            std::min(end[p], cursor[p] + static_cast<size_t>(opt.interleave_chunk));
        if (cursor[p] < stop) any = true;
        ProcCounters& pc = warmup ? scratch[p] : result.proc[p];
        const double mem_before = pc.mem_cycles;
        const TraceStream& s = traces.stream(p);
        for (size_t i = cursor[p]; i < stop; ++i) {
          const TraceRecord& r = s.records[i];
          const uint64_t first_line = r.addr() >> __builtin_ctz(cfg_.line_bytes);
          const uint64_t last_line =
              (r.addr() + std::max<uint32_t>(1, r.size()) - 1) >>
              __builtin_ctz(cfg_.line_bytes);
          for (uint64_t line = first_line; line <= last_line; ++line) {
            touch_line(p, line, r.addr(), r.size(), r.is_write(), pc, node_occupancy,
                       lat_by_home);
          }
          double b = cfg_.busy_per_access;
          if (profiled_interval) b *= 1.0 + cfg_.profile_overhead;
          busy[p] += b;
          pc.busy_cycles += b;
        }
        mem0[p] += pc.mem_cycles - mem_before;
        cursor[p] = stop;
      }
    }

    if (warmup) continue;

    // Raw span, then one contention-inflation pass (open-queue style).
    double span_raw = 0;
    for (int p = 0; p < procs_; ++p) span_raw = std::max(span_raw, busy[p] + mem0[p]);
    std::vector<double> factor(nodes_, 1.0);
    double max_util = 0;
    if (span_raw > 0) {
      for (int n = 0; n < nodes_; ++n) {
        const double util = std::min(cfg_.max_utilization, node_occupancy[n] / span_raw);
        max_util = std::max(max_util, util);
        factor[n] = 1.0 / (1.0 - util);
      }
    }
    std::vector<double> mem(procs_, 0);
    double span = 0;
    for (int p = 0; p < procs_; ++p) {
      mem[p] = mem0[p];
      for (int n = 0; n < nodes_; ++n) mem[p] += lat_by_home[p][n] * (factor[n] - 1.0);
      result.proc[p].mem_cycles += mem[p] - mem0[p];
      span = std::max(span, busy[p] + mem[p]);
    }
    for (int p = 0; p < procs_; ++p) {
      const double wait = span - (busy[p] + mem[p]);
      result.proc[p].sync_cycles += wait;
      ib.busy += busy[p];
      ib.mem += mem[p];
      ib.sync += wait;
    }
    ib.span_cycles = span;
    ib.max_utilization = max_util;
    result.intervals.push_back(ib);
    result.total_cycles += span;
  }
  return result;
}

}  // namespace psw
