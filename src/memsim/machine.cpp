#include "memsim/machine.hpp"

namespace psw {

MachineConfig MachineConfig::dash() {
  MachineConfig m;
  m.name = "DASH";
  m.distributed = true;
  m.procs_per_node = 4;
  m.cache_bytes = 256u << 10;  // 256KB second-level cache
  m.line_bytes = 16;           // the small line the paper blames (§3.4.3)
  m.assoc = 1;                 // direct-mapped L2
  m.local_miss = 30;           // 33MHz R3000-era cycle counts
  m.remote_2hop = 100;
  m.remote_3hop = 130;
  m.upgrade = 40;
  m.busy_per_access = 3.0;
  m.home_occupancy = 18.0;
  return m;
}

MachineConfig MachineConfig::challenge() {
  MachineConfig m;
  m.name = "Challenge";
  m.distributed = false;  // centralized shared memory
  m.procs_per_node = 16;
  m.cache_bytes = 1u << 20;  // 1MB second-level cache
  m.line_bytes = 128;
  m.assoc = 1;
  m.local_miss = 60;  // bus + memory at 150MHz
  m.remote_2hop = 60;
  m.remote_3hop = 60;
  m.upgrade = 30;
  m.busy_per_access = 3.0;
  m.home_occupancy = 30.0;  // the shared bus is the contention point
  return m;
}

MachineConfig MachineConfig::simulator() {
  MachineConfig m;
  m.name = "Simulator";
  m.distributed = true;
  m.procs_per_node = 1;
  m.cache_bytes = 1u << 20;
  m.line_bytes = 64;
  m.assoc = 4;
  m.local_miss = 70;  // exactly the §3.2 settings
  m.remote_2hop = 210;
  m.remote_3hop = 280;
  m.upgrade = 100;
  m.busy_per_access = 3.0;
  m.home_occupancy = 24.0;
  return m;
}

MachineConfig MachineConfig::origin2000() {
  MachineConfig m;
  m.name = "Origin2000";
  m.distributed = true;
  m.procs_per_node = 2;
  m.cache_bytes = 4u << 20;  // 4MB second-level cache
  m.line_bytes = 128;
  m.assoc = 2;
  m.local_miss = 80;  // 195MHz R10000-era costs
  m.remote_2hop = 160;
  m.remote_3hop = 220;
  m.upgrade = 70;
  m.busy_per_access = 3.0;
  m.home_occupancy = 20.0;
  return m;
}

}  // namespace psw
