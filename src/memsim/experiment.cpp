#include "memsim/experiment.hpp"

#include <cstdlib>
#include <stdexcept>

#include "parallel/new_renderer.hpp"
#include "parallel/old_renderer.hpp"

namespace psw {

namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

Camera warmup_camera(const WorkloadOptions& opt, const std::array<int, 3>& dims,
                     int frame, int total_warmup) {
  // Warm-up frames approach the measured viewpoint from below so the traced
  // frame's profile matches an ongoing rotation, as in the paper's
  // animation workload.
  const double yaw = opt.yaw - (total_warmup - frame) * opt.degrees_per_frame * kDeg;
  return Camera::orbit(dims, yaw, opt.pitch);
}

// Traced frames plus the renderer's address regions, captured while the
// renderer (and its intermediate image / profile) is still alive.
struct TracedRun {
  TraceSet traces;
  RegionRegistry regions;
};

TracedRun run_traced(Algo algo, const Dataset& data, int procs,
                     const WorkloadOptions& opt) {
  const Camera cam = Camera::orbit(data.dims, opt.yaw, opt.pitch);
  ImageU8 out;
  // Two identical frames are traced; the simulator treats the first as
  // cache/directory warm-up so the second measures steady state, where the
  // cross-phase and cross-frame sharing behaviour the paper studies is
  // visible as coherence misses.
  if (algo == Algo::kOld) {
    OldParallelRenderer renderer(opt.parallel);
    SerialExecutor warm(procs);
    renderer.render(data.volume, cam, warm, &out);
    TracingExecutor traced(procs);
    renderer.render(data.volume, cam, traced, &out);
    renderer.render(data.volume, cam, traced, &out);
    TracedRun run{std::move(traced.traces()), {}};
    register_render_regions(&run.regions, data.volume, renderer.intermediate(), out,
                            nullptr);
    return run;
  }
  NewParallelRenderer renderer(opt.parallel);
  SerialExecutor warm(procs);
  for (int frame = 0; frame < std::max(1, opt.warmup_frames); ++frame) {
    renderer.render(data.volume, warmup_camera(opt, data.dims, frame, opt.warmup_frames),
                    warm, &out);
  }
  TracingExecutor traced(procs);
  renderer.render(data.volume, cam, traced, &out);
  renderer.render(data.volume, cam, traced, &out);
  TracedRun run{std::move(traced.traces()), {}};
  register_render_regions(&run.regions, data.volume, renderer.intermediate(), out,
                          &renderer.profile());
  return run;
}

}  // namespace

const char* algo_name(Algo a) { return a == Algo::kOld ? "old" : "new"; }

bool default_verify_traces() {
  // Read once at first use. getenv is not thread-safe against concurrent
  // setenv, but nothing in this codebase mutates the environment.
  static const bool enabled = [] {
    const char* v = std::getenv("PSW_VERIFY_TRACES");  // NOLINT(concurrency-mt-unsafe)
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

Dataset make_dataset(const std::string& kind, const std::string& name, int nx, int ny,
                     int nz, const PrepareOptions& prep) {
  Dataset d;
  d.name = name;
  d.dims = {nx, ny, nz};
  const DensityVolume density =
      kind == "ct" ? make_ct_head(nx, ny, nz) : make_mri_brain(nx, ny, nz);
  const TransferFunction tf =
      kind == "ct" ? TransferFunction::ct_preset() : TransferFunction::mri_preset();
  const ClassifyOptions copt;
  ClassifiedVolume classified;
  d.volume = prepare_volume(density, tf, copt, prep, &classified);
  d.transparent_fraction =
      classified_transparent_fraction(classified, copt.alpha_threshold);
  d.dense_bytes = classified.size() * sizeof(ClassifiedVoxel);
  return d;
}

DatasetSpec scale_spec(const DatasetSpec& spec, int divisor) {
  DatasetSpec s = spec;
  s.nx = std::max(16, spec.nx / divisor);
  s.ny = std::max(16, spec.ny / divisor);
  s.nz = std::max(16, spec.nz / divisor);
  return s;
}

TraceSet trace_frame(Algo algo, const Dataset& data, int procs,
                     const WorkloadOptions& opt) {
  TracedRun run = run_traced(algo, data, procs, opt);
  if (opt.verify_race_free) {
    RaceCheckOptions ropt;
    ropt.granularity = opt.race_granularity;
    const RaceReport report = check_races(run.traces, run.regions, ropt);
    if (!report.clean()) {
      throw std::runtime_error(std::string("data race in ") + algo_name(algo) +
                               " renderer trace (" + data.name + "):\n" +
                               report.summary(run.traces));
    }
  }
  return std::move(run.traces);
}

RaceReport check_frame_races(Algo algo, const Dataset& data, int procs,
                             const WorkloadOptions& opt,
                             const RaceCheckOptions& ropt) {
  const TracedRun run = run_traced(algo, data, procs, opt);
  return check_races(run.traces, run.regions, ropt);
}

ParallelRenderStats frame_stats(Algo algo, const Dataset& data, int procs,
                                const WorkloadOptions& opt) {
  const Camera cam = Camera::orbit(data.dims, opt.yaw, opt.pitch);
  ImageU8 out;
  SerialExecutor exec(procs);
  if (algo == Algo::kOld) {
    OldParallelRenderer renderer(opt.parallel);
    renderer.render(data.volume, cam, exec, &out);
    return renderer.render(data.volume, cam, exec, &out);
  }
  NewParallelRenderer renderer(opt.parallel);
  for (int frame = 0; frame < std::max(1, opt.warmup_frames); ++frame) {
    renderer.render(data.volume, warmup_camera(opt, data.dims, frame, opt.warmup_frames),
                    exec, &out);
  }
  return renderer.render(data.volume, cam, exec, &out);
}

SimResult simulate(const MachineConfig& machine, const TraceSet& traces,
                   bool profiled_frame) {
  MultiProcSim sim(machine, traces.procs());
  SimOptions opt;
  opt.profiled_frame = profiled_frame;
  // trace_frame() records two identical frames; the first is warm-up.
  opt.warmup_intervals = traces.intervals() / 2;
  return sim.run(traces, opt);
}

std::vector<SpeedupPoint> speedup_curve(Algo algo, const Dataset& data,
                                        const MachineConfig& machine,
                                        const std::vector<int>& proc_counts,
                                        const WorkloadOptions& opt) {
  const TraceSet base_trace = trace_frame(algo, data, 1, opt);
  const double t1 = simulate(machine, base_trace).total_cycles;

  std::vector<SpeedupPoint> curve;
  for (int procs : proc_counts) {
    SpeedupPoint point;
    point.procs = procs;
    if (procs == 1) {
      point.cycles = t1;
    } else {
      const TraceSet traces = trace_frame(algo, data, procs, opt);
      point.cycles = simulate(machine, traces).total_cycles;
    }
    point.speedup = point.cycles > 0 ? t1 / point.cycles : 0.0;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace psw
