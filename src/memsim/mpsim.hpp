// Trace-driven multiprocessor cache + directory simulator with Woo-style
// miss classification [13] and a busy/memory/synchronization cycle model.
// This is the reproduction of the paper's simulation methodology (§3.2):
// per-processor reference streams drive per-processor caches kept coherent
// by an invalidation directory; misses are classified cold / capacity /
// conflict / true-sharing / false-sharing and costed local / 2-hop / 3-hop
// with round-robin page homes and a per-home contention model.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "memsim/cache.hpp"
#include "memsim/machine.hpp"
#include "trace/sink.hpp"

namespace psw {

enum class MissClass : int {
  kCold = 0,
  kCapacity = 1,
  kConflict = 2,
  kTrueShare = 3,
  kFalseShare = 4,
};
inline constexpr int kNumMissClasses = 5;
const char* miss_class_name(MissClass c);

struct ProcCounters {
  uint64_t accesses = 0;  // line touches (records spanning two lines count twice)
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t hits = 0;
  std::array<uint64_t, kNumMissClasses> misses{};
  uint64_t upgrades = 0;
  uint64_t local = 0, remote2 = 0, remote3 = 0;  // miss service location
  double busy_cycles = 0;
  double mem_cycles = 0;
  double sync_cycles = 0;

  uint64_t total_misses() const {
    uint64_t t = 0;
    for (uint64_t m : misses) t += m;
    return t;
  }
};

struct IntervalBreakdown {
  std::string name;
  double span_cycles = 0;  // max over processors (busy + memory)
  double busy = 0, mem = 0, sync = 0;  // summed over processors
  double max_utilization = 0;          // busiest home node
};

struct SimResult {
  MachineConfig machine;
  int procs = 0;
  std::vector<ProcCounters> proc;
  std::vector<IntervalBreakdown> intervals;
  double total_cycles = 0;  // sum of interval spans

  uint64_t total_accesses() const;
  uint64_t total_hits() const;
  uint64_t misses_of(MissClass c) const;
  uint64_t total_misses() const;
  uint64_t total_upgrades() const;
  // Percentage of references missing, optionally excluding cold misses
  // (the paper's Figure 7 omits cold misses).
  double miss_rate(bool include_cold = true) const;
  double miss_rate_of(MissClass c) const;
  double remote_fraction() const;  // remote misses / all misses
  double busy_sum() const;
  double mem_sum() const;
  double sync_sum() const;
};

struct SimOptions {
  // Inflate busy cycles of "composite" intervals by the machine's
  // profile_overhead (a frame that runs the §4.2 profiling code).
  bool profiled_frame = false;
  // Records interleaved round-robin in blocks of this many per processor.
  int interleave_chunk = 64;
  // Process (and warm caches/directory with) this many leading intervals
  // without counting them in the results. Steady-state measurement: traces
  // carry two identical frames and the first one is warm-up, so that
  // cross-phase and cross-frame sharing shows up as coherence misses
  // rather than cold misses.
  int warmup_intervals = 0;
};

class MultiProcSim {
 public:
  MultiProcSim(const MachineConfig& config, int procs);

  // Runs all intervals of the trace set (procs() must match). Callable
  // once per instance (caches and directory are not reset).
  SimResult run(const TraceSet& traces, const SimOptions& opt = {});

 private:
  struct LineMeta {
    uint64_t sharers = 0;         // bitmask of caching processors
    uint64_t ever_accessed = 0;   // bitmask
    uint64_t invalidated = 0;     // bitmask: copy lost to an invalidation
    int8_t owner = -1;            // processor with the dirty copy
    bool dirty = false;
    uint32_t version = 0;         // bumped per write access
    std::vector<uint32_t> word_version;      // per 4-byte word
    std::vector<uint8_t> word_writer;        // per 4-byte word
    std::vector<uint32_t> fetch_version;     // per proc: version at last fetch
  };

  LineMeta& meta(uint64_t line_addr, int procs);
  void touch_line(int p, uint64_t line_addr, uint64_t addr, uint32_t size, bool write,
                  ProcCounters& pc, std::vector<double>& node_occupancy,
                  std::vector<std::vector<double>>& lat_by_home);
  int miss_cost_and_site(int p, const LineMeta& m, uint64_t line_addr, int* home_out);

  MachineConfig cfg_;
  int procs_;
  int nodes_;
  int words_per_line_;
  std::vector<SetAssocCache> caches_;
  std::vector<FullyAssocCache> shadows_;
  std::unordered_map<uint64_t, LineMeta> lines_;
};

}  // namespace psw
