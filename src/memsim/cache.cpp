#include "memsim/cache.hpp"

#include <algorithm>

namespace psw {

SetAssocCache::SetAssocCache(uint64_t capacity_bytes, int line_bytes, int assoc)
    : assoc_(assoc) {
  const uint64_t lines = std::max<uint64_t>(assoc, capacity_bytes / line_bytes);
  num_sets_ = static_cast<int>(std::max<uint64_t>(1, lines / assoc));
  ways_.assign(static_cast<size_t>(num_sets_) * assoc_, Way{});
}

SetAssocCache::Result SetAssocCache::access(uint64_t line_addr) {
  Result result;
  Way* set = ways_.data() + set_index(line_addr) * assoc_;
  ++tick_;
  Way* lru_way = set;
  for (int w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) {
      set[w].lru = tick_;
      result.hit = true;
      return result;
    }
    if (!set[w].valid) {
      lru_way = &set[w];
    } else if (lru_way->valid && set[w].lru < lru_way->lru) {
      lru_way = &set[w];
    }
  }
  // Prefer an invalid way if any exists.
  for (int w = 0; w < assoc_; ++w) {
    if (!set[w].valid) {
      lru_way = &set[w];
      break;
    }
  }
  if (lru_way->valid) {
    result.evicted = true;
    result.evicted_line = lru_way->tag;
  }
  lru_way->tag = line_addr;
  lru_way->valid = true;
  lru_way->lru = tick_;
  return result;
}

bool SetAssocCache::contains(uint64_t line_addr) const {
  const Way* set = ways_.data() + set_index(line_addr) * assoc_;
  for (int w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) return true;
  }
  return false;
}

void SetAssocCache::invalidate(uint64_t line_addr) {
  Way* set = ways_.data() + set_index(line_addr) * assoc_;
  for (int w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) {
      set[w].valid = false;
      return;
    }
  }
}

FullyAssocCache::FullyAssocCache(uint64_t capacity_bytes, int line_bytes)
    : capacity_lines_(std::max<uint64_t>(1, capacity_bytes / line_bytes)) {}

bool FullyAssocCache::access(uint64_t line_addr) {
  const auto it = map_.find(line_addr);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  if (map_.size() >= capacity_lines_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(line_addr);
  map_[line_addr] = lru_.begin();
  return false;
}

void FullyAssocCache::invalidate(uint64_t line_addr) {
  const auto it = map_.find(line_addr);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

}  // namespace psw
