// Machine models for the trace-driven simulator: the four cache-coherent
// platforms of the paper (§3.2, §5.5.1). Latencies are uncontended costs in
// processor cycles; the contention model inflates them per phase.
#pragma once

#include <cstdint>
#include <string>

namespace psw {

struct MachineConfig {
  std::string name;

  // Topology. `distributed` selects NUMA cost accounting; on a centralized
  // machine every miss costs `local_miss`.
  bool distributed = true;
  int procs_per_node = 1;

  // Per-processor cache (models the level closest to memory).
  uint64_t cache_bytes = 1u << 20;
  int line_bytes = 64;
  int assoc = 4;

  // Uncontended miss costs in cycles (§3.2: 70 local, 210 two-hop, 280
  // three-hop on the simulated machine).
  int local_miss = 70;
  int remote_2hop = 210;
  int remote_3hop = 280;
  // Upgrade (write hit on a shared line): directory round trip.
  int upgrade = 60;

  // Busy model: cycles of computation attributed to each traced data
  // reference (covers the arithmetic between references).
  double busy_per_access = 3.0;
  // Busy inflation on frames that run the §4.2 profiling code (10-15%).
  double profile_overhead = 0.12;

  // Contention model: cycles a miss occupies its home memory/directory;
  // per-phase utilization inflates remote latencies (open-queue
  // approximation, capped).
  double home_occupancy = 24.0;
  double max_utilization = 0.85;

  // Pages are placed round-robin across node memories (§3.4.2).
  int page_bytes = 4096;

  int nodes(int procs) const {
    return (procs + procs_per_node - 1) / procs_per_node;
  }

  // The four platforms of the paper.
  static MachineConfig dash();        // 16B lines, 256KB, distributed, 4/node
  static MachineConfig challenge();   // 128B lines, 1MB, centralized bus
  static MachineConfig simulator();   // 64B lines, 1MB 4-way, 70/210/280
  static MachineConfig origin2000();  // 128B lines, 4MB 2-way, 2/node
};

}  // namespace psw
