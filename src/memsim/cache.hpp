// Set-associative LRU cache model (tag store only), plus a same-capacity
// fully-associative shadow used to split replacement misses into capacity
// vs conflict (a miss that hits in the shadow is a conflict miss).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace psw {

class SetAssocCache {
 public:
  SetAssocCache(uint64_t capacity_bytes, int line_bytes, int assoc);

  struct Result {
    bool hit = false;
    bool evicted = false;
    uint64_t evicted_line = 0;  // line address (byte address / line size)
  };

  // Touches the line (allocate on miss, LRU update on hit).
  Result access(uint64_t line_addr);

  bool contains(uint64_t line_addr) const;
  // Removes the line if present (coherence invalidation).
  void invalidate(uint64_t line_addr);

  int num_sets() const { return num_sets_; }
  int assoc() const { return assoc_; }

 private:
  struct Way {
    uint64_t tag = 0;
    bool valid = false;
    uint64_t lru = 0;  // larger = more recent
  };

  size_t set_index(uint64_t line_addr) const {
    // Mix the upper bits so contiguous-but-strided structures don't all
    // alias to a few sets more than real hardware would.
    return static_cast<size_t>(line_addr % num_sets_);
  }

  int num_sets_;
  int assoc_;
  std::vector<Way> ways_;  // num_sets * assoc
  uint64_t tick_ = 0;
};

// Fully-associative LRU with the same number of lines.
class FullyAssocCache {
 public:
  FullyAssocCache(uint64_t capacity_bytes, int line_bytes);

  // Returns true on hit; allocates (and evicts LRU) on miss.
  bool access(uint64_t line_addr);
  void invalidate(uint64_t line_addr);

 private:
  size_t capacity_lines_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

}  // namespace psw
