#include "trace/sink.hpp"

#include <algorithm>

namespace psw {

TraceSet::TraceSet(int procs) : streams_(procs), hooks_(procs) {
  for (int p = 0; p < procs; ++p) hooks_[p].bind(this, p);
}

void TraceSet::begin_interval(const std::string& name, bool barrier) {
  interval_names_.push_back(name);
  for (auto& s : streams_) s.interval_start.push_back(s.records.size());
  if (barrier) sync_barrier();
}

void TraceSet::sync_barrier() {
  SyncEvent e;
  e.kind = SyncEvent::Kind::kBarrier;
  e.pos.reserve(streams_.size());
  for (const auto& s : streams_) e.pos.push_back(s.records.size());
  sync_events_.push_back(std::move(e));
}

void TraceSet::sync_release(int proc, uint64_t token) {
  SyncEvent e;
  e.kind = SyncEvent::Kind::kRelease;
  e.a = proc;
  e.token = token;
  e.pos.push_back(streams_[proc].records.size());
  sync_events_.push_back(std::move(e));
}

void TraceSet::sync_acquire(int proc, uint64_t token) {
  SyncEvent e;
  e.kind = SyncEvent::Kind::kAcquire;
  e.a = proc;
  e.token = token;
  e.pos.push_back(streams_[proc].records.size());
  sync_events_.push_back(std::move(e));
}

void TraceSet::sync_edge(int from_proc, int to_proc) {
  SyncEvent e;
  e.kind = SyncEvent::Kind::kEdge;
  e.a = from_proc;
  e.b = to_proc;
  e.pos.push_back(streams_[from_proc].records.size());
  e.pos.push_back(streams_[to_proc].records.size());
  sync_events_.push_back(std::move(e));
}

size_t TraceSet::total_records() const {
  size_t total = 0;
  for (const auto& s : streams_) total += s.records.size();
  return total;
}

std::pair<size_t, size_t> TraceSet::interval_range(int p, int i) const {
  const TraceStream& s = streams_[p];
  const size_t begin = s.interval_start[i];
  const size_t end = (i + 1 < static_cast<int>(s.interval_start.size()))
                         ? s.interval_start[i + 1]
                         : s.records.size();
  return {begin, end};
}

int TraceSet::interval_of(int p, size_t rec) const {
  const auto& starts = streams_[p].interval_start;
  const auto it = std::upper_bound(starts.begin(), starts.end(), rec);
  return static_cast<int>(it - starts.begin()) - 1;
}

}  // namespace psw
