#include "trace/sink.hpp"

namespace psw {

TraceSet::TraceSet(int procs) : streams_(procs), hooks_(procs) {
  for (int p = 0; p < procs; ++p) hooks_[p].bind(this, p);
}

void TraceSet::begin_interval(const std::string& name) {
  interval_names_.push_back(name);
  for (auto& s : streams_) s.interval_start.push_back(s.records.size());
}

size_t TraceSet::total_records() const {
  size_t total = 0;
  for (const auto& s : streams_) total += s.records.size();
  return total;
}

std::pair<size_t, size_t> TraceSet::interval_range(int p, int i) const {
  const TraceStream& s = streams_[p];
  const size_t begin = s.interval_start[i];
  const size_t end = (i + 1 < static_cast<int>(s.interval_start.size()))
                         ? s.interval_start[i + 1]
                         : s.records.size();
  return {begin, end};
}

}  // namespace psw
