// Per-processor data-reference traces. The renderers report every logical
// data access (volume runs, voxel data, intermediate/final image pixels,
// skip links, profile counters) through MemoryHook; a TraceSet captures one
// stream per simulated processor, with synchronization-interval markers at
// phase boundaries. This substitutes for the paper's Tango-Lite reference
// generator (§3.2): data references only, no instruction fetches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hook.hpp"
#include "parallel/executor.hpp"

namespace psw {

// One packed record: addr << 6 | size << 1 | is_write. Sizes are <= 32
// bytes in practice (Rgba pixels are 16).
class TraceRecord {
 public:
  TraceRecord() = default;
  TraceRecord(uint64_t addr, uint32_t size, bool write)
      : bits_((addr << 6) | (static_cast<uint64_t>(size & 31u) << 1) |
              (write ? 1u : 0u)) {}

  uint64_t addr() const { return bits_ >> 6; }
  uint32_t size() const { return static_cast<uint32_t>((bits_ >> 1) & 31u); }
  bool is_write() const { return bits_ & 1u; }

 private:
  uint64_t bits_ = 0;
};

// The reference stream of one simulated processor, segmented into
// synchronization intervals.
struct TraceStream {
  std::vector<TraceRecord> records;
  // interval_start[i] is the index of the first record of interval i;
  // an implicit final boundary is records.size().
  std::vector<size_t> interval_start;
};

class TraceSet {
 public:
  explicit TraceSet(int procs);

  int procs() const { return static_cast<int>(streams_.size()); }
  const TraceStream& stream(int p) const { return streams_[p]; }
  int intervals() const { return static_cast<int>(interval_names_.size()); }
  const std::string& interval_name(int i) const { return interval_names_[i]; }

  // Records boundaries in every stream simultaneously (phases are global
  // barriers in the traced renderers).
  void begin_interval(const std::string& name);

  MemoryHook* hook(int p) { return &hooks_[p]; }

  size_t total_records() const;
  // Records of proc p in interval i as [begin, end) indices.
  std::pair<size_t, size_t> interval_range(int p, int i) const;

 private:
  class ProcHook : public MemoryHook {
   public:
    void bind(TraceSet* set, int p) {
      set_ = set;
      proc_ = p;
    }
    void access(const void* addr, uint32_t bytes, bool write) override {
      set_->streams_[proc_].records.emplace_back(
          reinterpret_cast<uint64_t>(addr), bytes, write);
    }

   private:
    TraceSet* set_ = nullptr;
    int proc_ = 0;
  };

  std::vector<TraceStream> streams_;
  std::vector<ProcHook> hooks_;
  std::vector<std::string> interval_names_;
};

// Serial executor that wires each simulated processor's hook to a TraceSet
// and forwards phase annotations as interval boundaries.
class TracingExecutor : public Executor {
 public:
  explicit TracingExecutor(int procs) : procs_(procs), traces_(procs) {}

  int procs() const override { return procs_; }
  bool concurrent() const override { return false; }
  void run(const std::function<void(int)>& body) override {
    for (int p = 0; p < procs_; ++p) body(p);
  }
  MemoryHook* hook(int p) override { return traces_.hook(p); }
  void begin_phase(const char* name) override { traces_.begin_interval(name); }

  TraceSet& traces() { return traces_; }
  const TraceSet& traces() const { return traces_; }

 private:
  int procs_;
  TraceSet traces_;
};

}  // namespace psw
