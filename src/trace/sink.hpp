// Per-processor data-reference traces. The renderers report every logical
// data access (volume runs, voxel data, intermediate/final image pixels,
// skip links, profile counters) through MemoryHook; a TraceSet captures one
// stream per simulated processor, with synchronization-interval markers at
// phase boundaries. This substitutes for the paper's Tango-Lite reference
// generator (§3.2): data references only, no instruction fetches.
//
// Beyond the interval markers the set also records synchronization
// *structure*: global barriers (interval boundaries, executor run()
// returns) and point-to-point release/acquire pairs (the new renderer's
// neighbour completion waits, §5.5.2). The race detector in src/analyze
// rebuilds the happens-before relation from these events; the machine
// simulators ignore them.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "core/hook.hpp"
#include "parallel/executor.hpp"

namespace psw {

// One packed record: addr << 11 | size << 1 | is_write. The size field is
// 10 bits (up to 1023 bytes per access; the kernels' largest access is a
// 16-byte Rgba pixel), leaving 53 address bits — enough for user-space
// virtual addresses on x86-64 and AArch64.
class TraceRecord {
 public:
  static constexpr uint32_t kSizeBits = 10;
  static constexpr uint32_t kMaxSize = (1u << kSizeBits) - 1;

  TraceRecord() = default;
  TraceRecord(uint64_t addr, uint32_t size, bool write)
      : bits_((addr << (kSizeBits + 1)) |
              (static_cast<uint64_t>(size & kMaxSize) << 1) | (write ? 1u : 0u)) {
    assert(size <= kMaxSize && "access wider than the TraceRecord size field");
    assert(addr < (uint64_t{1} << (63 - kSizeBits)) && "address overflows the record");
  }

  uint64_t addr() const { return bits_ >> (kSizeBits + 1); }
  uint32_t size() const { return static_cast<uint32_t>((bits_ >> 1) & kMaxSize); }
  bool is_write() const { return bits_ & 1u; }

 private:
  uint64_t bits_ = 0;
};

// The reference stream of one simulated processor, segmented into
// synchronization intervals.
struct TraceStream {
  std::vector<TraceRecord> records;
  // interval_start[i] is the index of the first record of interval i;
  // an implicit final boundary is records.size().
  std::vector<size_t> interval_start;
};

// One synchronization event, recorded in program order. Positions are
// stream record counts at the time of the event, so an event splits each
// referenced stream into a before and an after part.
struct SyncEvent {
  enum class Kind : uint8_t {
    kBarrier,  // global: pos holds one position per processor
    kRelease,  // proc a releases under `token` at pos[0]
    kAcquire,  // proc a acquires every prior release under `token` at pos[0]
    kEdge,     // direct edge: records of a before pos[0] precede records of
               // b from pos[1] on
  };
  Kind kind = Kind::kBarrier;
  int a = -1;
  int b = -1;
  uint64_t token = 0;
  std::vector<size_t> pos;
};

class TraceSet {
 public:
  explicit TraceSet(int procs);

  int procs() const { return static_cast<int>(streams_.size()); }
  const TraceStream& stream(int p) const { return streams_[p]; }
  int intervals() const { return static_cast<int>(interval_names_.size()); }
  const std::string& interval_name(int i) const { return interval_names_[i]; }

  // Records boundaries in every stream simultaneously (phases are global in
  // the traced renderers). A `barrier` boundary carries ordering: all
  // records before it, on every processor, happen-before all records after
  // it. A non-barrier boundary only labels the interval (the new
  // renderer's fused composite→warp transition, whose ordering comes from
  // point-to-point edges instead).
  void begin_interval(const std::string& name, bool barrier = true);

  // Synchronization annotations (see SyncEvent).
  void sync_barrier();
  void sync_release(int proc, uint64_t token);
  void sync_acquire(int proc, uint64_t token);
  void sync_edge(int from_proc, int to_proc);
  const std::vector<SyncEvent>& sync_events() const { return sync_events_; }

  MemoryHook* hook(int p) { return &hooks_[p]; }

  size_t total_records() const;
  // Records of proc p in interval i as [begin, end) indices.
  std::pair<size_t, size_t> interval_range(int p, int i) const;
  // Interval containing record index `rec` of proc p (-1 before the first
  // boundary).
  int interval_of(int p, size_t rec) const;

 private:
  class ProcHook : public MemoryHook {
   public:
    void bind(TraceSet* set, int p) {
      set_ = set;
      proc_ = p;
    }
    void access(const void* addr, uint32_t bytes, bool write) override {
      set_->streams_[proc_].records.emplace_back(
          reinterpret_cast<uint64_t>(addr), bytes, write);
    }

   private:
    TraceSet* set_ = nullptr;
    int proc_ = 0;
  };

  std::vector<TraceStream> streams_;
  std::vector<ProcHook> hooks_;
  std::vector<std::string> interval_names_;
  std::vector<SyncEvent> sync_events_;
};

// Serial executor that wires each simulated processor's hook to a TraceSet
// and forwards phase and synchronization annotations into the streams.
class TracingExecutor : public Executor {
 public:
  explicit TracingExecutor(int procs) : procs_(procs), traces_(procs) {}

  int procs() const override { return procs_; }
  bool concurrent() const override { return false; }
  void run(FunctionRef<void(int)> body) override {
    for (int p = 0; p < procs_; ++p) body(p);
    // run() returning is a global barrier on a threaded executor; record it
    // so the happens-before graph matches the claimed concurrent schedule.
    traces_.sync_barrier();
  }
  MemoryHook* hook(int p) override { return traces_.hook(p); }
  void begin_phase(const char* name, bool barrier = true) override {
    traces_.begin_interval(name, barrier);
  }
  void sync_release(int proc, uint64_t token) override {
    traces_.sync_release(proc, token);
  }
  void sync_acquire(int proc, uint64_t token) override {
    traces_.sync_acquire(proc, token);
  }
  void sync_edge(int from_proc, int to_proc) override {
    traces_.sync_edge(from_proc, to_proc);
  }

  TraceSet& traces() { return traces_; }
  const TraceSet& traces() const { return traces_; }

 private:
  int procs_;
  TraceSet traces_;
};

}  // namespace psw
