#include "svmsim/svm.hpp"

#include <algorithm>
#include <unordered_map>

namespace psw {

double SvmResult::compute_sum() const {
  double t = 0;
  for (const auto& p : proc) t += p.compute;
  return t;
}
double SvmResult::data_sum() const {
  double t = 0;
  for (const auto& p : proc) t += p.data_wait;
  return t;
}
double SvmResult::lock_sum() const {
  double t = 0;
  for (const auto& p : proc) t += p.lock_wait;
  return t;
}
double SvmResult::barrier_sum() const {
  double t = 0;
  for (const auto& p : proc) t += p.barrier_wait;
  return t;
}

namespace {

struct PageState {
  uint32_t version = 0;
  std::vector<uint32_t> fetched_version;  // per proc; copy valid iff == version
  std::vector<int32_t> last_touch;        // interval of last access, per proc
  std::vector<int32_t> last_write;        // interval of last write, per proc
  std::vector<uint8_t> ever_fetched;      // per proc

  explicit PageState(int procs)
      : fetched_version(procs, 0),
        last_touch(procs, -1),
        last_write(procs, -1),
        ever_fetched(procs, 0) {}
};

// Per-interval, per-processor cost pieces (cycles).
struct IntervalCost {
  std::vector<double> compute;
  std::vector<double> data;
  double max_io_util = 0;
  uint64_t faults = 0, twins = 0, diffs = 0, multi_writer = 0;
  std::string name;
};

}  // namespace

SvmResult svm_simulate(const SvmConfig& cfg, const TraceSet& traces,
                       const SvmRunOptions& opt) {
  const int P = traces.procs();
  const int nodes = cfg.nodes(P);
  SvmResult result;
  result.procs = P;
  result.proc.assign(P, SvmProcBreakdown{});

  std::unordered_map<uint64_t, PageState> pages;
  auto page_state = [&](uint64_t g) -> PageState& {
    auto it = pages.find(g);
    if (it == pages.end()) it = pages.emplace(g, PageState(P)).first;
    return it->second;
  };
  const int page_shift = __builtin_ctz(cfg.page_bytes);

  // ---- Pass 1: protocol simulation per interval. ----
  std::vector<IntervalCost> costs;
  for (int interval = 0; interval < traces.intervals(); ++interval) {
    IntervalCost ic;
    ic.name = traces.interval_name(interval);
    ic.compute.assign(P, 0);
    ic.data.assign(P, 0);
    std::vector<double> occupancy(nodes, 0);
    std::vector<std::vector<double>> transfer_by_home(P, std::vector<double>(nodes, 0));
    std::unordered_map<uint64_t, uint64_t> written;  // page -> writer mask

    for (int p = 0; p < P; ++p) {
      const auto [begin, end] = traces.interval_range(p, interval);
      const TraceStream& s = traces.stream(p);
      for (size_t i = begin; i < end; ++i) {
        const TraceRecord& r = s.records[i];
        ic.compute[p] += cfg.busy_per_access;
        const uint64_t g = r.addr() >> page_shift;
        PageState& ps = page_state(g);

        if (ps.last_touch[p] != interval) {
          ps.last_touch[p] = interval;
          if (!ps.ever_fetched[p] || ps.fetched_version[p] != ps.version) {
            // Remote page fault: fetch the page from its home.
            ++ic.faults;
            const int home = static_cast<int>(g % nodes);
            ic.data[p] += cfg.fault_overhead + cfg.page_transfer;
            transfer_by_home[p][home] += cfg.page_transfer;
            occupancy[home] += cfg.page_transfer;
            ps.ever_fetched[p] = 1;
            ps.fetched_version[p] = ps.version;
          }
        }
        if (r.is_write()) {
          if (ps.last_write[p] != interval) {
            ps.last_write[p] = interval;
            ++ic.twins;
            ic.compute[p] += cfg.twin_cost;  // write fault + twin copy
            written[g] |= 1ull << p;
          }
        }
      }
    }

    // Interval end: writers create diffs; write notices bump versions. A
    // sole writer's copy stays valid; with multiple writers each copy is
    // missing the others' diffs and is invalidated too — page-granularity
    // false sharing, the §5.5.2 pathology of the old algorithm.
    for (const auto& [g, mask] : written) {
      PageState& ps = page_state(g);
      ++ps.version;
      const bool sole_writer = (mask & (mask - 1)) == 0;
      for (int p = 0; p < P; ++p) {
        if (mask & (1ull << p)) {
          ++ic.diffs;
          ic.compute[p] += cfg.diff_cost;
          if (sole_writer) ps.fetched_version[p] = ps.version;
        }
      }
      if (!sole_writer) ++ic.multi_writer;
    }

    // Contention: faults serialize on the home node's I/O bus.
    double span_raw = 0;
    for (int p = 0; p < P; ++p) span_raw = std::max(span_raw, ic.compute[p] + ic.data[p]);
    if (span_raw > 0) {
      for (int n = 0; n < nodes; ++n) {
        const double util = std::min(cfg.max_utilization, occupancy[n] / span_raw);
        ic.max_io_util = std::max(ic.max_io_util, util);
        const double extra = 1.0 / (1.0 - util) - 1.0;
        if (extra > 0) {
          for (int p = 0; p < P; ++p) ic.data[p] += transfer_by_home[p][n] * extra;
        }
      }
    }
    costs.push_back(std::move(ic));
  }

  // ---- Pass 2: schedule intervals with barriers (or p2p sync). ----
  // Lock time (task stealing) is charged to counted composite intervals.
  int counted_composites = 0;
  for (int i = opt.warmup_intervals; i < static_cast<int>(costs.size()); ++i) {
    if (costs[i].name.rfind("composite", 0) == 0) ++counted_composites;
  }
  const double lock_per_proc_per_composite =
      counted_composites > 0
          ? static_cast<double>(opt.lock_ops) * cfg.lock_cost / (P * counted_composites)
          : 0.0;

  int i = 0;
  while (i < static_cast<int>(costs.size())) {
    const bool counted = i >= opt.warmup_intervals;
    const bool fuse = opt.p2p_interphase_sync &&
                      costs[i].name.rfind("composite", 0) == 0 &&
                      i + 1 < static_cast<int>(costs.size()) &&
                      costs[i + 1].name.rfind("warp", 0) == 0;
    std::vector<double> own(P, 0);
    std::vector<SvmProcBreakdown> delta(P);
    double barrier_util = 0;

    auto add_interval = [&](const IntervalCost& ic, bool composite) {
      for (int p = 0; p < P; ++p) {
        delta[p].compute += ic.compute[p];
        delta[p].data_wait += ic.data[p];
        if (composite) delta[p].lock_wait += lock_per_proc_per_composite;
      }
      barrier_util = std::max(barrier_util, ic.max_io_util);
      if (counted) {
        result.page_faults += ic.faults;
        result.twins += ic.twins;
        result.diffs += ic.diffs;
        result.multi_writer_pages += ic.multi_writer;
      }
    };

    double span = 0;
    if (fuse) {
      // Warp of p starts when p-1, p, p+1 finish compositing (§5.5.2).
      const IntervalCost& comp = costs[i];
      const IntervalCost& warp = costs[i + 1];
      add_interval(comp, true);
      add_interval(warp, false);
      std::vector<double> comp_end(P), end(P);
      for (int p = 0; p < P; ++p) {
        comp_end[p] = comp.compute[p] + comp.data[p] + lock_per_proc_per_composite;
      }
      for (int p = 0; p < P; ++p) {
        double start = comp_end[p];
        if (p > 0) start = std::max(start, comp_end[p - 1]);
        if (p + 1 < P) start = std::max(start, comp_end[p + 1]);
        end[p] = start + warp.compute[p] + warp.data[p];
        span = std::max(span, end[p]);
      }
      i += 2;
    } else {
      const IntervalCost& ic = costs[i];
      add_interval(ic, ic.name.rfind("composite", 0) == 0);
      for (int p = 0; p < P; ++p) {
        span = std::max(span,
                        delta[p].compute + delta[p].data_wait + delta[p].lock_wait);
      }
      i += 1;
    }

    // Barrier at the block end: contention on the I/O buses delays the
    // synchronization messages themselves (§5.5.2).
    const double barrier_eff =
        cfg.barrier_base * (1.0 + cfg.barrier_contention * barrier_util);
    if (counted) {
      for (int p = 0; p < P; ++p) {
        const double busy = delta[p].compute + delta[p].data_wait + delta[p].lock_wait;
        delta[p].barrier_wait = (span - busy) + barrier_eff;
        result.proc[p].compute += delta[p].compute;
        result.proc[p].data_wait += delta[p].data_wait;
        result.proc[p].lock_wait += delta[p].lock_wait;
        result.proc[p].barrier_wait += delta[p].barrier_wait;
      }
      result.total_cycles += span + barrier_eff;
    }
  }
  return result;
}

}  // namespace psw
