// Page-based shared virtual memory simulator (§5.5.2): an all-software
// home-based lazy release consistency (HLRC [10]) protocol over the same
// per-processor reference traces the cache simulator uses. Coherence and
// communication happen at page granularity between synchronization
// intervals: writers twin/diff written pages; at each barrier, write
// notices invalidate other processors' copies; the next access faults and
// fetches the page from its home over the node's I/O bus.
//
// The execution-time breakdown matches the paper's Figures 21/22:
// computation, data wait (remote page faults), lock (task stealing), and
// barrier wait (imbalance + contention-delayed synchronization messages).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace psw {

struct SvmConfig {
  std::string name = "SVM";
  // SMP nodes on a Myrinet-like interconnect: 4 processors per node, one
  // network interface on each node's I/O bus (§5.5.2).
  int procs_per_node = 4;
  int page_bytes = 4096;

  // Costs in 200MHz processor cycles.
  double busy_per_access = 3.0;
  double fault_overhead = 4000;     // software fault handling (~20us)
  double page_transfer = 8000;      // 4KB over the 100MB/s I/O bus (~40us)
  double twin_cost = 1500;          // write-protection fault + twin copy
  double diff_cost = 1200;          // diff creation per written page
  double barrier_base = 3000;       // uncontended barrier latency
  double barrier_contention = 4.0;  // barrier inflation per unit I/O load
  double lock_cost = 1500;          // per task-queue lock operation
  double max_utilization = 0.90;

  int nodes(int procs) const {
    return (procs + procs_per_node - 1) / procs_per_node;
  }
};

struct SvmProcBreakdown {
  double compute = 0;
  double data_wait = 0;     // page-fault waits
  double lock_wait = 0;     // task stealing synchronization
  double barrier_wait = 0;  // imbalance + barrier overhead
  double total() const { return compute + data_wait + lock_wait + barrier_wait; }
};

struct SvmResult {
  int procs = 0;
  std::vector<SvmProcBreakdown> proc;
  double total_cycles = 0;
  uint64_t page_faults = 0;
  uint64_t twins = 0;
  uint64_t diffs = 0;
  uint64_t multi_writer_pages = 0;  // pages diffed by >1 proc in an interval

  double compute_sum() const;
  double data_sum() const;
  double lock_sum() const;
  double barrier_sum() const;
};

struct SvmRunOptions {
  // New algorithm (§5.5.2): the identical compositing/warp partition
  // removes the inter-phase barrier; a processor's warp waits only on its
  // neighbours' compositing.
  bool p2p_interphase_sync = false;
  // Task-queue lock operations of the measured frame (renderer stats);
  // spread uniformly over processors.
  uint64_t lock_ops = 0;
  // Leading intervals processed for protocol warm-up without being counted.
  int warmup_intervals = 0;
};

SvmResult svm_simulate(const SvmConfig& config, const TraceSet& traces,
                       const SvmRunOptions& opt = {});

}  // namespace psw
