// Quickstart: generate a brain phantom, classify + encode it, render one
// frame with the serial shear-warp renderer, and write a PPM.
//
//   ./examples/quickstart [--size=128] [--yaw=0.6] [--pitch=0.3] [--out=brain.ppm]
#include <cstdio>

#include "core/classify.hpp"
#include "core/renderer.hpp"
#include "phantom/phantom.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psw;
  const CliFlags flags(argc, argv);
  flags.require_known({"size", "yaw", "pitch", "out"});
  const int n = flags.get_int("size", 128);
  const double yaw = flags.get_double("yaw", 0.6);
  const double pitch = flags.get_double("pitch", 0.3);
  const std::string out_path = flags.get("out", "brain.ppm");

  // 1. Volume data: a procedural MRI-brain phantom (or load your own
  //    8-bit density grid into a DensityVolume).
  std::printf("generating %dx%dx%d MRI brain phantom...\n", n, n, n);
  const DensityVolume density = make_mri_brain(n, n, n);

  // 2. Classification: density -> opacity + shaded color, then run-length
  //    encode for all three principal axes.
  const ClassifyOptions copt;
  const ClassifiedVolume classified = classify(density, TransferFunction::mri_preset(), copt);
  const EncodedVolume volume = EncodedVolume::build(classified, copt.alpha_threshold);
  std::printf("encoded volume: %.1f MB (dense would be %.1f MB)\n",
              volume.storage_bytes() / 1048576.0,
              classified.size() * sizeof(ClassifiedVoxel) / 1048576.0);

  // 3. Render one parallel-projection frame.
  SerialRenderer renderer;
  ImageU8 image;
  const Camera camera = Camera::orbit({n, n, n}, yaw, pitch);
  const RenderStats stats = renderer.render(volume, camera, &image);

  std::printf("rendered %dx%d in %.1f ms (composite %.1f ms, warp %.1f ms)\n",
              image.width(), image.height(), stats.total_ms, stats.composite_ms,
              stats.warp_ms);
  std::printf("  %llu voxels composited, %llu pixels visited\n",
              static_cast<unsigned long long>(stats.composite.voxels_composited),
              static_cast<unsigned long long>(stats.composite.pixels_visited));

  if (!write_ppm(out_path, image)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
