// Animation: the paper's target workload (§4.1) — render a rotating
// sequence with the NEW parallel renderer on real threads, profiling every
// ~15 degrees and reusing the profile for predictively balanced contiguous
// partitions.
//
//   ./examples/animation [--size=128] [--threads=4] [--frames=45]
//                        [--step=2.0] [--save-every=0]
#include <cstdio>

#include "core/classify.hpp"
#include "parallel/animation.hpp"
#include "parallel/new_renderer.hpp"
#include "phantom/phantom.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psw;
  const CliFlags flags(argc, argv);
  flags.require_known({"size", "threads", "frames", "step", "save-every"});
  const int n = flags.get_int("size", 128);
  const int threads = flags.get_int("threads", 4);
  const int save_every = flags.get_int("save-every", 0);

  std::printf("building %d^3 MRI phantom...\n", n);
  const DensityVolume density = make_mri_brain(n, n, n);
  const ClassifyOptions copt;
  const ClassifiedVolume classified =
      classify(density, TransferFunction::mri_preset(), copt);
  const EncodedVolume volume = EncodedVolume::build(classified, copt.alpha_threshold);

  AnimationPath path;
  path.dims = {n, n, n};
  path.frames = flags.get_int("frames", 45);
  path.degrees_per_frame = flags.get_double("step", 2.0);

  ParallelOptions popt;
  popt.profile_every = path.profile_interval();
  NewParallelRenderer renderer(popt);
  ThreadedExecutor exec(threads);
  ImageU8 image;

  std::printf("rendering %d frames at %.1f deg/frame on %d threads "
              "(re-profiling every %d frames)...\n",
              path.frames, path.degrees_per_frame, threads, popt.profile_every);

  const AnimationSummary summary =
      run_animation(path, [&](int frame, const Camera& cam) {
        const ParallelRenderStats stats = renderer.render(volume, cam, exec, &image);
        if (save_every > 0 && frame % save_every == 0) {
          char name[64];
          std::snprintf(name, sizeof(name), "frame_%03d.ppm", frame);
          write_ppm(name, image);
        }
        return stats;
      });

  std::printf("\n%d frames in %.0f ms -> %.2f frames/sec "
              "(mean %.1f ms, worst %.1f ms)\n",
              summary.frames, summary.total_ms, summary.frames_per_second,
              summary.mean_frame_ms, summary.worst_frame_ms);
  std::printf("profiled frames: %d, steals: %llu, mean work imbalance: %.3f\n",
              summary.profiled_frames,
              static_cast<unsigned long long>(summary.total_steals),
              summary.mean_imbalance);
  std::printf("(the paper targets 10-30 frames/sec interactive rates on "
              "16-32 processor machines)\n");
  return 0;
}
