// Dataset tool: generate phantom volumes, up-/down-sample them (the §3.3
// methodology used for the paper's 512/640-class sets) and save/load the
// .vol format — the on-ramp for feeding real scans to the renderer.
//
//   ./examples/make_volume --kind=mri --size=256,256,167 --out=brain.vol
//   ./examples/make_volume --in=brain.vol --resample=511,511,333 --out=big.vol
//   ./examples/make_volume --in=scan.raw --raw-dims=128,128,128 --out=scan.vol
#include <cstdio>

#include "core/volume_io.hpp"
#include "phantom/phantom.hpp"
#include "phantom/resample.hpp"
#include "util/cli.hpp"

namespace {

bool parse_dims(const std::string& s, int* x, int* y, int* z) {
  return std::sscanf(s.c_str(), "%d,%d,%d", x, y, z) == 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psw;
  const CliFlags flags(argc, argv);
  flags.require_known({"out", "in", "raw-dims", "size", "kind", "seed", "resample"});
  const std::string out_path = flags.get("out", "volume.vol");

  DensityVolume volume;
  if (flags.has("in")) {
    const std::string in = flags.get("in", "");
    if (flags.has("raw-dims")) {
      int x, y, z;
      if (!parse_dims(flags.get("raw-dims", ""), &x, &y, &z)) {
        std::fprintf(stderr, "bad --raw-dims, expected X,Y,Z\n");
        return 1;
      }
      if (!read_raw_volume(in, x, y, z, &volume)) {
        std::fprintf(stderr, "failed to read raw volume %s\n", in.c_str());
        return 1;
      }
    } else if (!read_volume(in, &volume)) {
      std::fprintf(stderr, "failed to read %s\n", in.c_str());
      return 1;
    }
    std::printf("loaded %dx%dx%d from %s\n", volume.nx(), volume.ny(), volume.nz(),
                in.c_str());
  } else {
    int x = 128, y = 128, z = 128;
    if (flags.has("size") && !parse_dims(flags.get("size", ""), &x, &y, &z)) {
      std::fprintf(stderr, "bad --size, expected X,Y,Z\n");
      return 1;
    }
    const std::string kind = flags.get("kind", "mri");
    const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    volume = kind == "ct" ? make_ct_head(x, y, z, seed) : make_mri_brain(x, y, z, seed);
    std::printf("generated %s phantom %dx%dx%d (transparent fraction %.2f at "
                "threshold 70)\n",
                kind.c_str(), x, y, z, transparent_fraction(volume, 70));
  }

  if (flags.has("resample")) {
    int x, y, z;
    if (!parse_dims(flags.get("resample", ""), &x, &y, &z)) {
      std::fprintf(stderr, "bad --resample, expected X,Y,Z\n");
      return 1;
    }
    std::printf("resampling to %dx%dx%d...\n", x, y, z);
    volume = resample(volume, x, y, z);
  }

  if (!write_volume(out_path, volume)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%.1f MB)\n", out_path.c_str(), volume.size() / 1048576.0);
  return 0;
}
