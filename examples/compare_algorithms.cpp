// Old vs new parallel shear warper, side by side: renders the same frame
// with both partitioning schemes on real threads, verifies the images are
// identical, and contrasts their renderer-level behaviour (work balance,
// stealing, locks). Then runs both through the DASH machine model for the
// memory-system view the wall clock of one host cannot show.
//
//   ./examples/compare_algorithms [--size=96] [--threads=8] [--procs=16]
#include <cstdio>

#include "memsim/experiment.hpp"
#include "parallel/new_renderer.hpp"
#include "parallel/old_renderer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psw;
  const CliFlags flags(argc, argv);
  flags.require_known({"size", "threads", "procs"});
  const int n = flags.get_int("size", 96);
  const int threads = flags.get_int("threads", 8);
  const int sim_procs = flags.get_int("procs", 16);

  std::printf("building %d^3 MRI phantom...\n", n);
  const Dataset data = make_dataset("mri", "example", n, n, n);
  const Camera cam = Camera::orbit(data.dims, 0.55, 0.35);

  // --- Real threads: identical output, different structure. ---
  ThreadedExecutor exec(threads);
  OldParallelRenderer old_renderer;
  NewParallelRenderer new_renderer;
  ImageU8 old_img, new_img;

  ParallelRenderStats old_stats, new_stats;
  for (int frame = 0; frame < 3; ++frame) {  // warm both (profile, caches)
    old_stats = old_renderer.render(data.volume, cam, exec, &old_img);
    new_stats = new_renderer.render(data.volume, cam, exec, &new_img);
  }

  bool identical = old_img.pixel_count() == new_img.pixel_count();
  for (size_t i = 0; identical && i < old_img.pixel_count(); ++i) {
    identical = old_img.data()[i] == new_img.data()[i];
  }
  std::printf("images identical: %s\n\n", identical ? "yes" : "NO (bug!)");

  TextTable table({"metric", "old (interleaved chunks)", "new (profiled contiguous)"});
  table.add_row({"frame time ms", fmt(old_stats.total_ms, 1), fmt(new_stats.total_ms, 1)});
  table.add_row({"work imbalance", fmt(old_stats.work_imbalance(), 3),
                 fmt(new_stats.work_imbalance(), 3)});
  table.add_row({"lock ops", std::to_string(old_stats.lock_ops),
                 std::to_string(new_stats.lock_ops)});
  table.add_row({"steals", std::to_string(old_stats.steals),
                 std::to_string(new_stats.steals)});
  table.add_row({"profiled frame", "-", new_stats.profiled ? "yes" : "no"});
  table.print();

  // --- Machine model: the paper's actual claim is about memory systems.
  std::printf("\nsimulating both on the DASH model with %d processors...\n", sim_procs);
  const SimResult old_sim =
      simulate(MachineConfig::dash(), trace_frame(Algo::kOld, data, sim_procs));
  const SimResult new_sim =
      simulate(MachineConfig::dash(), trace_frame(Algo::kNew, data, sim_procs));

  TextTable sim_table({"metric", "old", "new"});
  sim_table.add_row({"total Mcycles", fmt(old_sim.total_cycles / 1e6, 2),
                     fmt(new_sim.total_cycles / 1e6, 2)});
  sim_table.add_row({"true-sharing misses", std::to_string(old_sim.misses_of(MissClass::kTrueShare)),
                     std::to_string(new_sim.misses_of(MissClass::kTrueShare))});
  sim_table.add_row({"false-sharing misses", std::to_string(old_sim.misses_of(MissClass::kFalseShare)),
                     std::to_string(new_sim.misses_of(MissClass::kFalseShare))});
  sim_table.add_row({"memory stall Mcycles", fmt(old_sim.mem_sum() / 1e6, 2),
                     fmt(new_sim.mem_sum() / 1e6, 2)});
  sim_table.print();
  std::printf("\nspeed ratio (old/new cycles): %.2fx\n",
              old_sim.total_cycles / new_sim.total_cycles);
  return 0;
}
