// Frame-serving quickstart: start a RenderService, run two client sessions
// orbiting the same cached volume, and print the telemetry JSON. This is
// the multi-consumer shape the service exists for — both sessions share one
// classified RLE volume through the cache, and each keeps its own partition
// profile across its frames.
//
//   ./examples/serve [--size=64] [--threads=4] [--frames=12] [--deadline-ms=0]
#include <cstdio>

#include "serve/service.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psw;
  using namespace psw::serve;
  const CliFlags flags(argc, argv);
  flags.require_known({"size", "threads", "frames", "deadline-ms"});
  const int n = flags.get_int("size", 64);
  const int frames = flags.get_int("frames", 12);
  const double deadline_ms = flags.get_double("deadline-ms", 0.0);

  // 1. Start the service: a bounded queue in front of one render pool.
  ServiceOptions opt;
  opt.worker_threads = flags.get_int("threads", 4);
  RenderService service(opt);

  // 2. Describe what to render. A VolumeKey names classified state; the
  //    service builds it once and every session sharing the key reuses it.
  VolumeKey key;
  key.kind = "mri";
  key.nx = key.ny = key.nz = n;

  // 3. Submit frames for two sessions. submit() never blocks: it returns a
  //    typed admission outcome and (when accepted) a future for the frame.
  std::printf("serving 2 sessions x %d frames of a %d^3 MRI phantom...\n", frames, n);
  for (int f = 0; f < frames; ++f) {
    for (uint64_t session = 1; session <= 2; ++session) {
      RenderRequest req;
      req.session_id = session;
      req.volume = key;
      req.camera = Camera::orbit({n, n, n}, 0.04 * f + 0.5 * static_cast<double>(session),
                                 0.35);
      if (deadline_ms > 0) {
        req.deadline = Clock::now() + std::chrono::milliseconds(
                                          static_cast<int64_t>(deadline_ms));
      }
      Ticket ticket = service.submit(req);
      if (!ticket.accepted()) {
        std::printf("  session %llu frame %d rejected: %s\n",
                    static_cast<unsigned long long>(session), f,
                    to_string(ticket.admission));
        continue;
      }
      const FrameResult result = ticket.result.get();
      if (result.status != ServeStatus::kOk) {
        std::printf("  session %llu frame %d shed: %s\n",
                    static_cast<unsigned long long>(session), f,
                    to_string(result.status));
        continue;
      }
      if (f == 0) {
        std::printf("  session %llu frame 0: %dx%d px, queue %.2f ms, "
                    "classify %.1f ms (%s), render %.1f+%.1f ms\n",
                    static_cast<unsigned long long>(session), result.image.width(),
                    result.image.height(), result.timing.queue_wait_ms,
                    result.timing.classify_ms,
                    result.timing.cache_hit ? "cache hit" : "built",
                    result.timing.composite_ms, result.timing.warp_ms);
      }
    }
  }

  // 4. Telemetry: admission outcomes, per-stage latency, cache behaviour.
  service.drain();
  std::printf("\n%s\n", service.metrics_json().c_str());
  return 0;
}
