// Memory-system study: drive the trace-and-simulate substrate directly —
// the workflow behind every simulator figure in the paper. Traces a frame
// of either algorithm, then sweeps a machine parameter and prints the miss
// classification, exactly like §3.4.2-3.4.4.
//
//   ./examples/memory_study [--algo=new] [--size=96] [--procs=16]
//                           [--sweep=line|cache|procs]
#include <cstdio>

#include "memsim/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psw;
  const CliFlags flags(argc, argv);
  flags.require_known({"algo", "size", "procs", "sweep"});
  const Algo algo = flags.get("algo", "new") == "old" ? Algo::kOld : Algo::kNew;
  const int n = flags.get_int("size", 96);
  const int procs = flags.get_int("procs", 16);
  const std::string sweep = flags.get("sweep", "line");

  std::printf("building %d^3 CT-head phantom and tracing the %s algorithm "
              "at %d processors...\n", n, algo_name(algo), procs);
  const Dataset data = make_dataset("ct", "example", n, n, n);

  auto print_result = [](const std::string& label, const SimResult& r) {
    std::printf("%-10s  miss%%=%.3f  cold=%llu cap=%llu conf=%llu true=%llu "
                "false=%llu  remote=%.0f%%  Mcycles=%.2f\n",
                label.c_str(), 100 * r.miss_rate(true),
                static_cast<unsigned long long>(r.misses_of(MissClass::kCold)),
                static_cast<unsigned long long>(r.misses_of(MissClass::kCapacity)),
                static_cast<unsigned long long>(r.misses_of(MissClass::kConflict)),
                static_cast<unsigned long long>(r.misses_of(MissClass::kTrueShare)),
                static_cast<unsigned long long>(r.misses_of(MissClass::kFalseShare)),
                100 * r.remote_fraction(), r.total_cycles / 1e6);
  };

  if (sweep == "procs") {
    for (int p : {1, 2, 4, 8, 16, 32}) {
      const TraceSet traces = trace_frame(algo, data, p);
      print_result("P=" + std::to_string(p),
                   simulate(MachineConfig::simulator(), traces));
    }
    return 0;
  }

  const TraceSet traces = trace_frame(algo, data, procs);
  std::printf("trace: %zu references across %d intervals\n\n",
              traces.total_records(), traces.intervals());

  if (sweep == "cache") {
    for (int kb = 4; kb <= 4096; kb *= 4) {
      MachineConfig m = MachineConfig::simulator();
      m.cache_bytes = static_cast<uint64_t>(kb) << 10;
      print_result(std::to_string(kb) + "KB", simulate(m, traces));
    }
  } else {
    for (int line : {16, 32, 64, 128, 256}) {
      MachineConfig m = MachineConfig::simulator();
      m.line_bytes = line;
      print_result(std::to_string(line) + "B", simulate(m, traces));
    }
  }
  std::printf("\n(every simulator figure in bench/ is this workflow with the "
              "paper's exact parameters; see DESIGN.md)\n");
  return 0;
}
