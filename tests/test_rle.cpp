#include <gtest/gtest.h>

#include <vector>

#include "core/classify.hpp"
#include "core/rle_volume.hpp"
#include "phantom/phantom.hpp"
#include "util/rng.hpp"

namespace psw {
namespace {

// Random classified volume with tunable opacity density.
ClassifiedVolume random_volume(int nx, int ny, int nz, double opaque_prob, uint64_t seed) {
  ClassifiedVolume v(nx, ny, nz);
  SplitMix64 rng(seed);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        ClassifiedVoxel cv;
        if (rng.uniform() < opaque_prob) {
          cv.a = static_cast<uint8_t>(64 + rng.below(192));
          cv.r = static_cast<uint8_t>(rng.below(256));
          cv.g = static_cast<uint8_t>(rng.below(256));
          cv.b = static_cast<uint8_t>(rng.below(256));
        }
        v.at(x, y, z) = cv;
      }
    }
  }
  return v;
}

bool voxels_equal(const ClassifiedVoxel& a, const ClassifiedVoxel& b) {
  return a.a == b.a && a.r == b.r && a.g == b.g && a.b == b.b;
}

TEST(AxisPermutation, RoundTripsAllAxes) {
  for (int c = 0; c < 3; ++c) {
    const AxisPermutation p = AxisPermutation::for_principal_axis(c);
    EXPECT_EQ(p.axis_k, c);
    // The three permuted axes must cover {0,1,2}.
    EXPECT_EQ(p.axis_i + p.axis_j + p.axis_k, 3);
    const auto obj = p.to_object(5, 7, 9);
    EXPECT_EQ(obj[p.axis_i], 5);
    EXPECT_EQ(obj[p.axis_j], 7);
    EXPECT_EQ(obj[p.axis_k], 9);
  }
}

class RleRoundTrip : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RleRoundTrip, DecodeMatchesDense) {
  const int axis = std::get<0>(GetParam());
  const double density = std::get<1>(GetParam());
  const uint8_t threshold = 1;
  const ClassifiedVolume vol = random_volume(13, 9, 11, density, 42 + axis);
  const RleVolume rle = RleVolume::encode(vol, axis, threshold);
  const AxisPermutation perm = rle.perm();

  std::vector<ClassifiedVoxel> line(rle.ni());
  for (int k = 0; k < rle.nk(); ++k) {
    for (int j = 0; j < rle.nj(); ++j) {
      rle.decode_scanline(k, j, line.data());
      for (int i = 0; i < rle.ni(); ++i) {
        const auto obj = perm.to_object(i, j, k);
        const ClassifiedVoxel& expect = vol.at(obj[0], obj[1], obj[2]);
        if (expect.transparent(threshold)) {
          ASSERT_EQ(line[i].a, 0) << "axis=" << axis << " k=" << k << " j=" << j;
        } else {
          ASSERT_TRUE(voxels_equal(line[i], expect))
              << "axis=" << axis << " k=" << k << " j=" << j << " i=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AxesAndDensities, RleRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.0, 0.05, 0.3, 0.7, 1.0)));

TEST(RleVolume, EmptyVolumeHasNoVoxels) {
  const ClassifiedVolume vol = random_volume(8, 8, 8, 0.0, 1);
  const RleVolume rle = RleVolume::encode(vol, 2, 1);
  EXPECT_EQ(rle.voxel_count(), 0u);
  for (int k = 0; k < rle.nk(); ++k) {
    for (int j = 0; j < rle.nj(); ++j) EXPECT_TRUE(rle.scanline_empty(k, j));
  }
}

TEST(RleVolume, FullVolumeKeepsEveryVoxel) {
  const ClassifiedVolume vol = random_volume(8, 8, 8, 1.0, 2);
  const RleVolume rle = RleVolume::encode(vol, 2, 1);
  EXPECT_EQ(rle.voxel_count(), vol.size());
}

TEST(RleVolume, CompressionOnSparseVolume) {
  // A mostly transparent phantom should compress far below dense size,
  // matching the paper's observation about run-length encoded storage.
  const DensityVolume d = make_mri_brain(48, 48, 48);
  const ClassifiedVolume vol = classify(d, TransferFunction::mri_preset());
  const RleVolume rle = RleVolume::encode(vol, 2, 12);
  const size_t dense_bytes = vol.size() * sizeof(ClassifiedVoxel);
  EXPECT_LT(rle.storage_bytes(), dense_bytes);
}

TEST(RleVolume, ThresholdDropsFaintVoxels) {
  ClassifiedVolume vol(4, 1, 1);
  vol.at(0, 0, 0) = {5, 10, 10, 10};
  vol.at(1, 0, 0) = {100, 20, 20, 20};
  vol.at(2, 0, 0) = {11, 30, 30, 30};
  vol.at(3, 0, 0) = {12, 40, 40, 40};
  const RleVolume rle = RleVolume::encode(vol, 2, 12);
  EXPECT_EQ(rle.voxel_count(), 2u);  // opacity 100 and 12 survive
}

TEST(RunCursor, NullForOutOfRangeScanline) {
  const ClassifiedVolume vol = random_volume(8, 8, 8, 0.5, 3);
  const RleVolume rle = RleVolume::encode(vol, 2, 1);
  RunCursor below(rle, 0, -1);
  RunCursor above(rle, 0, rle.nj());
  EXPECT_TRUE(below.null());
  EXPECT_TRUE(above.null());
  EXPECT_EQ(below.at(3), nullptr);
  EXPECT_EQ(above.next_nontransparent(0), rle.ni());
}

TEST(RunCursor, AtMatchesDecodedScanline) {
  SplitMix64 seeds(17);
  for (int trial = 0; trial < 20; ++trial) {
    const ClassifiedVolume vol =
        random_volume(31, 5, 5, trial / 20.0, seeds.next());
    const RleVolume rle = RleVolume::encode(vol, 0, 1);
    std::vector<ClassifiedVoxel> line(rle.ni());
    for (int k = 0; k < rle.nk(); ++k) {
      for (int j = 0; j < rle.nj(); ++j) {
        rle.decode_scanline(k, j, line.data());
        RunCursor cur(rle, k, j);
        for (int i = 0; i < rle.ni(); ++i) {
          const ClassifiedVoxel* cv = cur.at(i);
          if (line[i].a == 0) {
            ASSERT_EQ(cv, nullptr) << "i=" << i;
          } else {
            ASSERT_NE(cv, nullptr) << "i=" << i;
            ASSERT_TRUE(voxels_equal(*cv, line[i]));
          }
        }
      }
    }
  }
}

TEST(RunCursor, AtHandlesRepeatedAndSkippedQueries) {
  ClassifiedVolume vol(16, 1, 1);
  for (int i : {3, 4, 5, 10, 15}) vol.at(i, 0, 0) = {200, 1, 2, 3};
  const RleVolume rle = RleVolume::encode(vol, 2, 1);
  RunCursor cur(rle, 0, 0);
  EXPECT_EQ(cur.at(0), nullptr);
  EXPECT_NE(cur.at(3), nullptr);
  EXPECT_NE(cur.at(3), nullptr);  // repeat
  EXPECT_NE(cur.at(4), nullptr);
  EXPECT_EQ(cur.at(8), nullptr);  // skip into transparent run
  EXPECT_NE(cur.at(15), nullptr);
}

TEST(RunCursor, NextNontransparentFindsRuns) {
  ClassifiedVolume vol(16, 1, 1);
  for (int i : {5, 6, 12}) vol.at(i, 0, 0) = {200, 0, 0, 0};
  const RleVolume rle = RleVolume::encode(vol, 2, 1);
  RunCursor cur(rle, 0, 0);
  EXPECT_EQ(cur.next_nontransparent(0), 5);
  EXPECT_EQ(cur.next_nontransparent(5), 5);
  EXPECT_EQ(cur.next_nontransparent(6), 6);
  EXPECT_EQ(cur.next_nontransparent(7), 12);
  EXPECT_EQ(cur.next_nontransparent(13), 16);
}

TEST(RunCursor, NextNontransparentDoesNotDisturbAt) {
  ClassifiedVolume vol(10, 1, 1);
  vol.at(2, 0, 0) = {100, 9, 9, 9};
  vol.at(7, 0, 0) = {150, 8, 8, 8};
  const RleVolume rle = RleVolume::encode(vol, 2, 1);
  RunCursor cur(rle, 0, 0);
  EXPECT_EQ(cur.next_nontransparent(0), 2);
  const ClassifiedVoxel* v2 = cur.at(2);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->r, 9);
  EXPECT_EQ(cur.next_nontransparent(3), 7);
  const ClassifiedVoxel* v7 = cur.at(7);
  ASSERT_NE(v7, nullptr);
  EXPECT_EQ(v7->r, 8);
}

TEST(EncodedVolume, BuildsAllThreeAxes) {
  const ClassifiedVolume vol = random_volume(6, 7, 8, 0.4, 5);
  const EncodedVolume enc = EncodedVolume::build(vol, 1);
  EXPECT_EQ(enc.dim(0), 6);
  EXPECT_EQ(enc.dim(1), 7);
  EXPECT_EQ(enc.dim(2), 8);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(enc.for_axis(c).principal_axis(), c);
    EXPECT_EQ(enc.for_axis(c).voxel_count(), enc.for_axis(0).voxel_count())
        << "all encodings hold the same non-transparent voxels";
  }
}

TEST(RunCursor, EmptyFlagMatchesContent) {
  ClassifiedVolume vol(8, 2, 1);
  vol.at(3, 1, 0) = {99, 0, 0, 0};
  const RleVolume rle = RleVolume::encode(vol, 2, 1);
  EXPECT_TRUE(RunCursor(rle, 0, 0).empty());
  EXPECT_FALSE(RunCursor(rle, 0, 1).empty());
}

}  // namespace
}  // namespace psw
