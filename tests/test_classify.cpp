#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/classify.hpp"
#include "core/gradient.hpp"
#include "core/transfer.hpp"
#include "core/volume_io.hpp"
#include "phantom/phantom.hpp"

namespace psw {
namespace {

TEST(Ramp, InterpolatesBetweenControlPoints) {
  const Ramp r({{0, 0.0f}, {100, 1.0f}});
  EXPECT_FLOAT_EQ(r(0), 0.0f);
  EXPECT_FLOAT_EQ(r(50), 0.5f);
  EXPECT_FLOAT_EQ(r(100), 1.0f);
  EXPECT_FLOAT_EQ(r(200), 1.0f);  // clamps past the last point
  EXPECT_FLOAT_EQ(r(-5), 0.0f);   // clamps before the first
}

TEST(Ramp, PiecewiseSegments) {
  const Ramp r({{0, 0.0f}, {50, 1.0f}, {100, 0.2f}});
  EXPECT_FLOAT_EQ(r(25), 0.5f);
  EXPECT_FLOAT_EQ(r(75), 0.6f);
}

TEST(TransferFunction, ThresholdPresetIsStep) {
  const TransferFunction tf = TransferFunction::threshold_preset(100, 0.8f);
  EXPECT_FLOAT_EQ(tf.opacity(50, 0), 0.0f);
  EXPECT_FLOAT_EQ(tf.opacity(99, 0), 0.0f);
  EXPECT_FLOAT_EQ(tf.opacity(100, 0), 0.8f);
  EXPECT_FLOAT_EQ(tf.opacity(255, 0), 0.8f);
}

TEST(TransferFunction, MriPresetMonotoneOverTissueBands) {
  const TransferFunction tf = TransferFunction::mri_preset();
  // CSF transparent, gray translucent, white nearly opaque.
  EXPECT_LT(tf.opacity(40, 0), 0.01f);
  EXPECT_GT(tf.opacity(110, 0), 0.2f);
  EXPECT_GT(tf.opacity(170, 0), tf.opacity(110, 0));
}

TEST(TransferFunction, GradientModulationSuppressesHomogeneous) {
  TransferFunction tf;
  tf.set_opacity_ramp(Ramp{{0, 0.0f}, {50, 1.0f}});
  tf.set_gradient_ramp(Ramp{{0, 0.0f}, {64, 1.0f}});
  tf.set_gradient_modulation(true);
  EXPECT_FLOAT_EQ(tf.opacity(200, 0.0f), 0.0f);   // flat region -> transparent
  EXPECT_GT(tf.opacity(200, 0.5f), 0.5f);          // boundary -> opaque
}

TEST(TransferFunction, ColorMapInterpolates) {
  TransferFunction tf;
  tf.set_color_map({Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{1, 1, 0}, Vec3{1, 1, 1}},
                   {0, 85, 170, 255});
  const Vec3 mid = tf.color(42.5f);
  EXPECT_NEAR(mid.x, 0.5, 0.01);
  EXPECT_NEAR(mid.y, 0.0, 0.01);
}

TEST(Gradient, FlatVolumeHasZeroGradient) {
  DensityVolume v(8, 8, 8, 100);
  EXPECT_EQ(gradient_at(v, 4, 4, 4).norm(), 0.0);
  EXPECT_EQ(gradient_magnitude(v, 4, 4, 4), 0.0f);
  EXPECT_EQ(surface_normal(v, 4, 4, 4).norm(), 0.0);
}

TEST(Gradient, StepEdgePointsAcrossIt) {
  DensityVolume v(8, 8, 8, 0);
  for (int z = 0; z < 8; ++z) {
    for (int y = 0; y < 8; ++y) {
      for (int x = 4; x < 8; ++x) v.at(x, y, z) = 200;
    }
  }
  const Vec3 g = gradient_at(v, 4, 4, 4);  // rising along +x
  EXPECT_GT(g.x, 0.0);
  EXPECT_EQ(g.y, 0.0);
  EXPECT_EQ(g.z, 0.0);
  // The surface normal points against the gradient (toward lower density).
  EXPECT_LT(surface_normal(v, 4, 4, 4).x, 0.0);
}

TEST(Gradient, MagnitudeNormalizedToUnit) {
  DensityVolume v(4, 4, 4, 0);
  v.at(2, 1, 1) = 255;  // sharpest possible edges all around
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const float m = gradient_magnitude(v, x, y, z);
        ASSERT_GE(m, 0.0f);
        ASSERT_LE(m, 1.0f);
      }
    }
  }
}

TEST(Classify, TransparentBelowThresholdIsZeroed) {
  DensityVolume v(4, 4, 4, 0);
  v.at(1, 1, 1) = 200;
  const ClassifiedVolume c =
      classify(v, TransferFunction::threshold_preset(100, 0.9f));
  EXPECT_EQ(c.at(0, 0, 0).a, 0);
  EXPECT_EQ(c.at(0, 0, 0).r, 0);  // fully zeroed, not just low-alpha
  EXPECT_GT(c.at(1, 1, 1).a, 200);
}

TEST(Classify, ShadingBrightensLitFaces) {
  // A density step along +x with light from +x: the lit boundary voxels
  // should be brighter than ones shaded by ambient only.
  DensityVolume v(12, 12, 12, 0);
  for (int z = 0; z < 12; ++z) {
    for (int y = 0; y < 12; ++y) {
      for (int x = 0; x < 6; ++x) v.at(x, y, z) = 220;
    }
  }
  ClassifyOptions lit;
  lit.light_dir = {1, 0, 0};  // normal at the +x face points +x
  ClassifyOptions unlit;
  unlit.light_dir = {-1, 0, 0};
  const TransferFunction tf = TransferFunction::threshold_preset(100, 0.9f);
  const ClassifiedVolume cl = classify(v, tf, lit);
  const ClassifiedVolume cu = classify(v, tf, unlit);
  EXPECT_GT(cl.at(5, 6, 6).r, cu.at(5, 6, 6).r);
}

TEST(Classify, TransparentFractionMatchesPhantomExpectation) {
  const DensityVolume v = make_mri_brain(40, 40, 40);
  const ClassifyOptions copt;
  const ClassifiedVolume c = classify(v, TransferFunction::mri_preset(), copt);
  const double frac = classified_transparent_fraction(c, copt.alpha_threshold);
  // The paper's medical volumes are 70-95% transparent (§2).
  EXPECT_GE(frac, 0.70);
  EXPECT_LE(frac, 0.97);
}

// ---- Volume I/O ----

TEST(VolumeIO, RoundTrip) {
  const DensityVolume v = make_ct_head(19, 17, 13);
  const std::string path =
      (std::filesystem::temp_directory_path() / "psw_vol_roundtrip.vol").string();
  ASSERT_TRUE(write_volume(path, v));
  DensityVolume back;
  ASSERT_TRUE(read_volume(path, &back));
  ASSERT_EQ(back.nx(), 19);
  ASSERT_EQ(back.ny(), 17);
  ASSERT_EQ(back.nz(), 13);
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v.data()[i], back.data()[i]);
  std::filesystem::remove(path);
}

TEST(VolumeIO, RejectsBadMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "psw_vol_bad.vol").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTAVOL\n4 4 4\n" << std::string(64, 'x');
  }
  DensityVolume out;
  EXPECT_FALSE(read_volume(path, &out));
  std::filesystem::remove(path);
}

TEST(VolumeIO, RejectsTruncatedPayload) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "psw_vol_trunc.vol").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "PSWVOL1\n8 8 8\n" << std::string(100, 'x');  // needs 512 bytes
  }
  DensityVolume out;
  EXPECT_FALSE(read_volume(path, &out));
  std::filesystem::remove(path);
}

TEST(VolumeIO, MissingFileFails) {
  DensityVolume out;
  EXPECT_FALSE(read_volume("/nonexistent/file.vol", &out));
  EXPECT_FALSE(read_raw_volume("/nonexistent/file.raw", 4, 4, 4, &out));
}

TEST(VolumeIO, RawReadOfKnownDims) {
  const DensityVolume v = make_mri_brain(10, 11, 12);
  const std::string path =
      (std::filesystem::temp_directory_path() / "psw_vol.raw").string();
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(v.data()), v.size());
  }
  DensityVolume back;
  ASSERT_TRUE(read_raw_volume(path, 10, 11, 12, &back));
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v.data()[i], back.data()[i]);
  // Wrong (larger) dims must fail rather than silently zero-fill.
  EXPECT_FALSE(read_raw_volume(path, 10, 11, 13, &back));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace psw
