// Cross-module integration tests: the full pipeline (phantom -> classify
// -> encode -> parallel render -> trace -> machine / SVM simulation) under
// combinations of dataset kind, viewpoint and processor count, plus the
// end-to-end properties the paper's conclusions rest on.
#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "memsim/experiment.hpp"
#include "parallel/new_renderer.hpp"
#include "parallel/old_renderer.hpp"
#include "phantom/resample.hpp"
#include "svmsim/svm.hpp"

namespace psw {
namespace {

constexpr double kPi = 3.14159265358979323846;

const Dataset& mri_scene() {
  static const Dataset d = make_dataset("mri", "it-mri", 48, 48, 34);
  return d;
}
const Dataset& ct_scene() {
  static const Dataset d = make_dataset("ct", "it-ct", 44, 44, 44);
  return d;
}

void expect_identical(const ImageU8& a, const ImageU8& b) {
  ASSERT_EQ(a.pixel_count(), b.pixel_count());
  for (size_t i = 0; i < a.pixel_count(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "pixel " << i;
  }
}

// All three renderers agree on both dataset kinds over a rotation sweep.
class PipelineAgreement
    : public ::testing::TestWithParam<std::tuple<const char*, int, double>> {};

TEST_P(PipelineAgreement, OldNewSerialIdentical) {
  const std::string kind = std::get<0>(GetParam());
  const int procs = std::get<1>(GetParam());
  const double yaw = std::get<2>(GetParam());
  const Dataset& data = kind == "ct" ? ct_scene() : mri_scene();

  const Camera cam = Camera::orbit(data.dims, yaw, 0.3);
  SerialRenderer serial;
  ImageU8 want;
  serial.render(data.volume, cam, &want);

  SerialExecutor exec(procs);
  OldParallelRenderer old_r;
  NewParallelRenderer new_r;
  ImageU8 old_img, new_img;
  old_r.render(data.volume, cam, exec, &old_img);
  new_r.render(data.volume, cam, exec, &new_img);
  expect_identical(want, old_img);
  expect_identical(want, new_img);
}

INSTANTIATE_TEST_SUITE_P(
    KindsProcsAngles, PipelineAgreement,
    ::testing::Combine(::testing::Values("mri", "ct"), ::testing::Values(2, 7, 32),
                       ::testing::Values(0.0, 0.9, 2.4, 4.2)));

// A full 360-degree animation through the new renderer stays identical to
// serial at every frame (profile reuse, rescaling, axis switches included).
TEST(Integration, AnimationSweepMatchesSerial) {
  const Dataset& data = mri_scene();
  ParallelOptions opt;
  opt.profile_every = 4;
  NewParallelRenderer renderer(opt);
  SerialExecutor exec(6);
  SerialRenderer serial;
  for (int frame = 0; frame < 12; ++frame) {
    const Camera cam = Camera::orbit(data.dims, frame * (2 * kPi / 12), 0.4);
    ImageU8 want, got;
    serial.render(data.volume, cam, &want);
    renderer.render(data.volume, cam, exec, &got);
    expect_identical(want, got);
  }
}

// Rendering an up-sampled volume (the paper's methodology for its large
// data sets) produces a strongly correlated, larger image.
TEST(Integration, UpsampledVolumeRendersConsistently) {
  const DensityVolume small = make_mri_brain(32, 32, 32);
  const DensityVolume big = resample(small, 63, 63, 63);
  const ClassifyOptions copt;
  const TransferFunction tf = TransferFunction::mri_preset();
  const EncodedVolume enc_small =
      EncodedVolume::build(classify(small, tf, copt), copt.alpha_threshold);
  const EncodedVolume enc_big =
      EncodedVolume::build(classify(big, tf, copt), copt.alpha_threshold);

  SerialRenderer renderer;
  Camera cam_small = Camera::orbit({32, 32, 32}, 0.7, 0.2);
  Camera cam_big = Camera::orbit({63, 63, 63}, 0.7, 0.2);
  ImageU8 img_small, img_big;
  renderer.render(enc_small, cam_small, &img_small);
  SerialRenderer renderer2;
  renderer2.render(enc_big, cam_big, &img_big);
  EXPECT_GT(img_big.width(), img_small.width() * 3 / 2);
  double energy_small = 0, energy_big = 0;
  for (size_t i = 0; i < img_small.pixel_count(); ++i) energy_small += img_small.data()[i].a;
  for (size_t i = 0; i < img_big.pixel_count(); ++i) energy_big += img_big.data()[i].a;
  // Projected area scales ~4x when dimensions double.
  EXPECT_GT(energy_big, energy_small * 2.0);
}

// Traces are deterministic up to heap placement: tracing the same
// workload twice yields structurally identical reference streams (same
// lengths, sizes, read/write pattern — absolute addresses differ because
// each run allocates its intermediate image afresh).
TEST(Integration, TracesAreDeterministic) {
  for (Algo algo : {Algo::kOld, Algo::kNew}) {
    const TraceSet a = trace_frame(algo, mri_scene(), 4);
    const TraceSet b = trace_frame(algo, mri_scene(), 4);
    ASSERT_EQ(a.total_records(), b.total_records()) << algo_name(algo);
    for (int p = 0; p < 4; ++p) {
      const auto& ra = a.stream(p).records;
      const auto& rb = b.stream(p).records;
      ASSERT_EQ(ra.size(), rb.size());
      for (size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(ra[i].is_write(), rb[i].is_write())
            << algo_name(algo) << " p=" << p << " i=" << i;
        ASSERT_EQ(ra[i].size(), rb[i].size());
      }
      ASSERT_EQ(a.stream(p).interval_start, b.stream(p).interval_start);
    }
  }
}

// The same trace through two identically-configured simulators gives the
// same result (the simulator itself is deterministic).
TEST(Integration, SimulationIsDeterministic) {
  const TraceSet traces = trace_frame(Algo::kNew, mri_scene(), 8);
  const SimResult a = simulate(MachineConfig::dash(), traces);
  const SimResult b = simulate(MachineConfig::dash(), traces);
  EXPECT_EQ(a.total_misses(), b.total_misses());
  EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
}

// Larger caches never increase the miss count (inclusion-style sanity for
// the working-set sweeps of Figures 9/18).
TEST(Integration, MissCountMonotoneInCacheSize) {
  const TraceSet traces = trace_frame(Algo::kOld, mri_scene(), 8);
  uint64_t prev = ~0ull;
  for (int kb : {8, 32, 128, 512}) {
    MachineConfig m = MachineConfig::simulator();
    m.cache_bytes = static_cast<uint64_t>(kb) << 10;
    const uint64_t misses = simulate(m, traces).total_misses();
    EXPECT_LE(misses, prev) << kb << "KB";
    prev = misses;
  }
}

// Longer lines reduce total misses for this spatially-coherent workload
// (Figure 8's observation), at least up to 256B.
TEST(Integration, MissCountShrinksWithLineSize) {
  const TraceSet traces = trace_frame(Algo::kOld, mri_scene(), 8);
  uint64_t prev = ~0ull;
  for (int line : {16, 64, 256}) {
    MachineConfig m = MachineConfig::simulator();
    m.line_bytes = line;
    const uint64_t misses = simulate(m, traces).total_misses();
    EXPECT_LT(misses, prev) << line << "B";
    prev = misses;
  }
}

// The headline claims, end to end. The volume must be large enough that a
// processor's contiguous partition spans several 4KB pages, or page-level
// false sharing masks the new algorithm's SVM advantage.
TEST(Integration, PaperHeadlineClaims) {
  const int P = 8;
  static const Dataset data = make_dataset("mri", "it-mri-80", 80, 80, 56);

  // 1. Hardware-coherent machine: the new algorithm cuts true sharing and
  //    total cycles (Figures 13/14/16).
  const TraceSet old_t = trace_frame(Algo::kOld, data, P);
  const TraceSet new_t = trace_frame(Algo::kNew, data, P);
  const SimResult old_hw = simulate(MachineConfig::simulator(), old_t);
  const SimResult new_hw = simulate(MachineConfig::simulator(), new_t);
  EXPECT_LT(new_hw.misses_of(MissClass::kTrueShare),
            old_hw.misses_of(MissClass::kTrueShare) / 2);
  EXPECT_LT(new_hw.total_cycles, old_hw.total_cycles);

  // 2. SVM: the improvement is even larger in relative terms (Figure 20).
  SvmRunOptions svm_old, svm_new;
  svm_old.warmup_intervals = old_t.intervals() / 2;
  svm_new.warmup_intervals = new_t.intervals() / 2;
  svm_new.p2p_interphase_sync = true;
  const SvmResult old_svm = svm_simulate(SvmConfig{}, old_t, svm_old);
  const SvmResult new_svm = svm_simulate(SvmConfig{}, new_t, svm_new);
  EXPECT_LT(new_svm.total_cycles, old_svm.total_cycles);
  const double hw_gain = old_hw.total_cycles / new_hw.total_cycles;
  const double svm_gain = old_svm.total_cycles / new_svm.total_cycles;
  EXPECT_GT(svm_gain, hw_gain)
      << "the paper: improvement grows as communication gets more expensive";
}

}  // namespace
}  // namespace psw
