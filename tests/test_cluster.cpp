// Sharded-cluster tests: consistent-hash ring properties (balance,
// weighting, minimal disruption, replication candidates), and router
// end-to-end behavior against real in-process netserve shards — frames
// proxied through the router stay bit-identical to direct renderer output,
// session affinity survives an administrative drain, streams arrive in
// order, the aggregated metrics document rolls shard counters up, a hello
// with the wrong protocol version gets a typed error then close, and
// losing a shard mid-stream yields typed kUnavailable errors, an ejection,
// a ring rebuild and a counted re-route instead of a hang. The ClusterTrace
// suite pins the tracing contract across the router hop: span parentage,
// bit-identity of traced frames, duration consistency with measured e2e
// latency, metrics-selector dumps, and trace ids on typed errors.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/metrics.hpp"
#include "cluster/router.hpp"
#include "core/classify.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "parallel/new_renderer.hpp"
#include "phantom/phantom.hpp"
#include "serve/service.hpp"
#include "util/timer.hpp"

namespace psw::cluster {
namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

uint64_t pixel_hash(const ImageU8& img) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  const auto* bytes = reinterpret_cast<const uint8_t*>(img.data());
  for (size_t i = 0; i < img.pixel_count() * sizeof(Pixel8); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ull;
  }
  return h ^ (static_cast<uint64_t>(img.width()) << 32) ^
         static_cast<uint64_t>(img.height());
}

// --- hash ring ------------------------------------------------------------

HashRing ring_of(const std::vector<RingNode>& nodes, int vnodes = 64) {
  HashRing ring(vnodes);
  ring.rebuild(nodes);
  return ring;
}

std::vector<RingNode> shard_nodes(int n) {
  std::vector<RingNode> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back({"shard-" + std::to_string(i), 1});
  return nodes;
}

TEST(HashRing, TwoAndFourNodeOwnershipIsBalanced) {
  const int kKeys = 4000;
  {
    const HashRing ring = ring_of(shard_nodes(2));
    int counts[2] = {0, 0};
    for (int i = 0; i < kKeys; ++i) {
      ++counts[ring.owner(HashRing::hash_key("key-" + std::to_string(i)))];
    }
    for (int c : counts) {
      EXPECT_GT(c, kKeys / 4);
      EXPECT_LT(c, 3 * kKeys / 4);
    }
  }
  {
    const HashRing ring = ring_of(shard_nodes(4));
    int counts[4] = {0, 0, 0, 0};
    for (int i = 0; i < kKeys; ++i) {
      ++counts[ring.owner(HashRing::hash_key("key-" + std::to_string(i)))];
    }
    for (int c : counts) {
      EXPECT_GT(c, kKeys / 10);
      EXPECT_LT(c, 2 * kKeys / 5);
    }
  }
}

TEST(HashRing, WeightScalesOwnedKeyspace) {
  const HashRing ring = ring_of({{"light", 1}, {"heavy", 2}});
  int light = 0, heavy = 0;
  for (int i = 0; i < 4000; ++i) {
    const size_t o = ring.owner(HashRing::hash_key("key-" + std::to_string(i)));
    (o == 0 ? light : heavy) += 1;
  }
  // A weight-2 node owns ~2x the keyspace of a weight-1 node.
  EXPECT_GT(heavy, light * 13 / 10);
  EXPECT_LT(heavy, light * 3);
}

TEST(HashRing, RemovingANodeOnlyMovesItsOwnKeys) {
  const HashRing before = ring_of(shard_nodes(4));
  // Dropping the *last* node keeps the surviving indices aligned, so the
  // minimal-disruption property is directly comparable.
  const HashRing after = ring_of(shard_nodes(3));
  int moved_from_survivor = 0, remapped = 0;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t h = HashRing::hash_key("key-" + std::to_string(i));
    const size_t o1 = before.owner(h);
    const size_t o2 = after.owner(h);
    if (o1 == 3) {
      ++remapped;
      EXPECT_LT(o2, 3u);
    } else if (o1 != o2) {
      ++moved_from_survivor;
    }
  }
  EXPECT_EQ(moved_from_survivor, 0);
  EXPECT_GT(remapped, 0);
}

TEST(HashRing, PickReturnsDistinctNodesOwnerFirst) {
  const HashRing ring = ring_of(shard_nodes(4));
  for (int i = 0; i < 50; ++i) {
    const uint64_t h = HashRing::hash_key("volume-" + std::to_string(i));
    const std::vector<size_t> three = ring.pick(h, 3);
    ASSERT_EQ(three.size(), 3u);
    EXPECT_EQ(three[0], ring.owner(h));
    EXPECT_NE(three[0], three[1]);
    EXPECT_NE(three[0], three[2]);
    EXPECT_NE(three[1], three[2]);
    // k beyond the node count saturates at every distinct node.
    EXPECT_EQ(ring.pick(h, 99).size(), 4u);
  }
}

// --- router end-to-end ----------------------------------------------------

// N in-process netserve shards fronted by a Router, all on ephemeral ports.
// With `traced` every process-level component gets its own SpanRecorder,
// exactly like netserve --trace-sample / clusterctl wire them up.
class MiniCluster {
 public:
  explicit MiniCluster(int n, bool traced = false) {
    std::vector<ShardSpec> specs;
    for (int i = 0; i < n; ++i) {
      serve::ServiceOptions sopt;
      sopt.worker_threads = 2;
      net::NetServerOptions nopt;
      if (traced) {
        recorders_.push_back(std::make_unique<obs::SpanRecorder>());
        sopt.recorder = recorders_.back().get();
        nopt.recorder = recorders_.back().get();
        nopt.trace_node = "shard-" + std::to_string(i);
      }
      services_.push_back(std::make_unique<serve::RenderService>(sopt));
      servers_.push_back(
          std::make_unique<net::NetServer>(*services_.back(), nopt));
      std::string error;
      ok_ = servers_.back()->start(&error);
      EXPECT_TRUE(ok_) << error;
      if (!ok_) return;
      specs.push_back({"shard-" + std::to_string(i), "127.0.0.1",
                       servers_.back()->port(), 1});
    }
    RouterOptions ropt;
    ropt.probe_interval_ms = 50.0;
    if (traced) {
      ropt.recorder = &router_recorder_;
      ropt.trace_node = "router";
    }
    router_ = std::make_unique<Router>(specs, ropt);
    std::string error;
    ok_ = router_->start(&error);
    EXPECT_TRUE(ok_) << error;
  }

  ~MiniCluster() {
    if (router_) router_->stop();
    for (auto& s : servers_) s->stop();
  }

  bool healthy(size_t n) const {
    return ok_ && router_->wait_healthy(n, 10'000.0);
  }

  Router& router() { return *router_; }
  net::NetServer& server(size_t i) { return *servers_[i]; }
  obs::SpanRecorder& shard_recorder(size_t i) { return *recorders_[i]; }
  obs::SpanRecorder& router_recorder() { return router_recorder_; }

 private:
  bool ok_ = false;
  obs::SpanRecorder router_recorder_;
  std::vector<std::unique_ptr<obs::SpanRecorder>> recorders_;
  std::vector<std::unique_ptr<serve::RenderService>> services_;
  std::vector<std::unique_ptr<net::NetServer>> servers_;
  std::unique_ptr<Router> router_;
};

// First seed >= start_seed whose mri-36 volume the n-shard ring (built
// exactly as the router builds it) places on shard `want`.
serve::VolumeKey key_owned_by(size_t want, int nshards, uint64_t start_seed = 1) {
  const HashRing ring = ring_of(shard_nodes(nshards));
  serve::VolumeKey key;
  key.kind = "mri";
  key.nx = key.ny = key.nz = 36;
  for (uint64_t seed = start_seed; seed < start_seed + 100'000; ++seed) {
    key.seed = seed;
    if (ring.owner(HashRing::hash_key(key.canonical())) == want) return key;
  }
  ADD_FAILURE() << "no seed places a volume on shard " << want;
  return key;
}

bool wait_state(const Router& router, size_t shard, ShardState want,
                double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(static_cast<int64_t>(timeout_ms));
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.shard_state(shard) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return router.shard_state(shard) == want;
}

TEST(ClusterRouter, ProxiedFramesBitIdenticalToDirectRender) {
  MiniCluster cluster(2);
  ASSERT_TRUE(cluster.healthy(2));

  serve::VolumeKey key;
  key.kind = "mri";
  key.nx = key.ny = key.nz = 40;
  const int kFrames = 4;
  const double start_yaw = 0.4, pitch = 0.3, step_deg = 3.0;

  net::NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", cluster.router().port(), &error))
      << error;

  std::vector<uint64_t> served;
  for (int f = 0; f < kFrames; ++f) {
    net::RenderRequestMsg req;
    req.request_id = static_cast<uint64_t>(f) + 1;
    req.session_id = 7;
    req.volume = key;
    req.camera = Camera::orbit({key.nx, key.ny, key.nz},
                               start_yaw + f * step_deg * kDeg, pitch);
    ImageU8 image;
    net::FrameMsg meta;
    ASSERT_TRUE(client.render(req, &image, &meta, &error)) << error;
    served.push_back(pixel_hash(image));
  }
  client.send_bye(nullptr);

  // Same frames, no network, no router.
  serve::ServiceOptions sopt;
  sopt.worker_threads = 2;
  const DensityVolume density = make_mri_brain(key.nx, key.ny, key.nz);
  const ClassifiedVolume classified =
      classify(density, TransferFunction::mri_preset(), key.classify);
  const EncodedVolume volume =
      EncodedVolume::build(classified, key.classify.alpha_threshold);
  NewParallelRenderer renderer(sopt.parallel);
  ThreadedExecutor exec(sopt.worker_threads);
  ImageU8 direct;
  for (int f = 0; f < kFrames; ++f) {
    renderer.render(volume,
                    Camera::orbit({key.nx, key.ny, key.nz},
                                  start_yaw + f * step_deg * kDeg, pitch),
                    exec, &direct);
    EXPECT_EQ(pixel_hash(direct), served[f]) << "frame " << f;
  }

  const RouterMetrics& m = cluster.router().metrics();
  EXPECT_EQ(m.requests_routed.load(), static_cast<uint64_t>(kFrames));
  EXPECT_EQ(m.frames_forwarded.load(), static_cast<uint64_t>(kFrames));
  EXPECT_EQ(m.protocol_errors.load(), 0u);
  // Affinity: one session, one shard — all four frames on the same shard.
  const uint64_t s0 = m.shards[0]->routed_requests.load();
  const uint64_t s1 = m.shards[1]->routed_requests.load();
  EXPECT_TRUE((s0 == 4 && s1 == 0) || (s0 == 0 && s1 == 4))
      << "s0=" << s0 << " s1=" << s1;
}

TEST(ClusterRouter, AffinityHoldsThroughDrainAndNewPlacementsAvoidIt) {
  MiniCluster cluster(2);
  ASSERT_TRUE(cluster.healthy(2));
  Router& router = cluster.router();

  const serve::VolumeKey key_a = key_owned_by(0, 2);
  const serve::VolumeKey key_b = key_owned_by(0, 2, key_a.seed + 1);
  ASSERT_NE(key_a.canonical(), key_b.canonical());

  net::NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error)) << error;

  const auto render = [&](uint64_t session, const serve::VolumeKey& key,
                          uint64_t id) {
    net::RenderRequestMsg req;
    req.request_id = id;
    req.session_id = session;
    req.volume = key;
    req.camera = Camera::orbit({key.nx, key.ny, key.nz}, 0.3, 0.3);
    ImageU8 image;
    net::FrameMsg meta;
    ASSERT_TRUE(client.render(req, &image, &meta, &error)) << error;
  };

  // Session 1 pins to shard-0 (key_a's ring owner).
  render(1, key_a, 1);
  EXPECT_EQ(router.metrics().shards[0]->routed_requests.load(), 1u);

  ASSERT_TRUE(router.set_drain("shard-0", true));
  ASSERT_TRUE(wait_state(router, 0, ShardState::kDraining, 5'000.0));

  // The pinned session keeps flowing to the draining shard...
  render(1, key_a, 2);
  EXPECT_EQ(router.metrics().shards[0]->routed_requests.load(), 2u);
  // ...but a new session's placement avoids it, even for a volume the ring
  // would have put there.
  render(2, key_b, 3);
  EXPECT_EQ(router.metrics().shards[1]->routed_requests.load(), 1u);

  // Undrain: the shard rejoins the ring and fresh placements return.
  ASSERT_TRUE(router.set_drain("shard-0", false));
  ASSERT_TRUE(wait_state(router, 0, ShardState::kHealthy, 5'000.0));
  render(3, key_b, 4);
  EXPECT_EQ(router.metrics().shards[0]->routed_requests.load(), 3u);

  client.send_bye(nullptr);
  EXPECT_EQ(router.metrics().reroutes.load(), 0u);  // drain never breaks pins
}

TEST(ClusterRouter, StreamArrivesInOrderAndComplete) {
  MiniCluster cluster(2);
  ASSERT_TRUE(cluster.healthy(2));

  net::NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", cluster.router().port(), &error))
      << error;

  net::StreamRequestMsg req;
  req.stream_id = 11;
  req.session_id = 4;
  req.volume = key_owned_by(1, 2);
  req.frames = 6;
  req.step_deg = 4.0;
  ASSERT_TRUE(client.open_stream(req, &error)) << error;

  uint32_t next_seq = 0;
  net::StreamEndMsg end;
  bool ended = false;
  while (!ended) {
    net::NetClient::Event event;
    ASSERT_TRUE(client.next_event(&event, &error)) << error;
    ASSERT_NE(event.kind, net::NetClient::Event::Kind::kError);
    if (event.kind == net::NetClient::Event::Kind::kStreamEnd) {
      end = event.end;
      ended = true;
      continue;
    }
    EXPECT_EQ(event.frame.stream_id, req.stream_id);
    EXPECT_EQ(event.frame.seq, next_seq++);
  }
  client.send_bye(nullptr);

  EXPECT_EQ(end.frames_sent, req.frames);
  EXPECT_EQ(end.frames_dropped, 0u);
  EXPECT_EQ(next_seq, req.frames);
  EXPECT_EQ(cluster.router().metrics().streams_routed.load(), 1u);
  EXPECT_GE(cluster.router().metrics().frames_forwarded.load(),
            static_cast<uint64_t>(req.frames));
}

TEST(ClusterRouter, AggregatedMetricsRollUpBothShards) {
  MiniCluster cluster(2);
  ASSERT_TRUE(cluster.healthy(2));
  Router& router = cluster.router();

  net::NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error)) << error;

  // One frame on each shard: distinct sessions, ring-targeted volumes.
  for (size_t shard = 0; shard < 2; ++shard) {
    net::RenderRequestMsg req;
    req.request_id = shard + 1;
    req.session_id = shard + 1;
    req.volume = key_owned_by(shard, 2);
    req.camera = Camera::orbit({req.volume.nx, req.volume.ny, req.volume.nz},
                               0.2, 0.3);
    ImageU8 image;
    net::FrameMsg meta;
    ASSERT_TRUE(client.render(req, &image, &meta, &error)) << error;
  }

  // The cluster rollup sums the shard documents the prober snapshots, so
  // give the next probe cycle a chance to pick the renders up.
  std::string json;
  uint64_t completed = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (completed < 2 && std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(client.fetch_metrics(&json, &error)) << error;
    completed = scan_json_u64_in(json, "cluster", "frames_completed");
    if (completed < 2) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  client.send_bye(nullptr);

  EXPECT_EQ(completed, 2u);
  EXPECT_EQ(scan_json_u64_in(json, "router", "requests_routed"), 2u);
  EXPECT_EQ(scan_json_u64_in(json, "cluster", "shards"), 2u);
  EXPECT_EQ(scan_json_u64_in(json, "cluster", "shards_in_ring"), 2u);
  EXPECT_NE(json.find("\"shard-0\""), std::string::npos);
  EXPECT_NE(json.find("\"shard-1\""), std::string::npos);
  // Each shard's own document is embedded verbatim.
  EXPECT_NE(json.find("\"volume_cache\""), std::string::npos);
  EXPECT_GE(router.metrics().metrics_served.load(), 1u);
}

TEST(ClusterRouter, HelloVersionMismatchGetsTypedErrorThenClose) {
  MiniCluster cluster(1);
  ASSERT_TRUE(cluster.healthy(1));

  std::string error;
  net::UniqueFd fd =
      net::tcp_connect("127.0.0.1", cluster.router().port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  net::HelloMsg hello;
  hello.version = 99;
  hello.name = "from-the-future";
  std::vector<uint8_t> payload, wire;
  hello.encode(&payload);
  net::encode_message(net::MsgType::kHello, payload, &wire);
  ASSERT_GT(::send(fd.get(), wire.data(), wire.size(), 0), 0);

  // Typed kError, then EOF — never a HelloAck in a protocol the peer
  // cannot parse.
  std::vector<uint8_t> in(4096);
  size_t have = 0;
  bool got_eof = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!got_eof && std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd.get(), in.data() + have, in.size() - have, 0);
    if (n == 0) got_eof = true;
    if (n > 0) have += static_cast<size_t>(n);
  }
  ASSERT_TRUE(got_eof);
  net::WireMessage msg;
  size_t consumed = 0;
  ASSERT_EQ(net::decode_message(in.data(), have, &msg, &consumed),
            net::WireStatus::kOk);
  EXPECT_EQ(msg.type, net::MsgType::kError);
  net::ErrorMsg err;
  ASSERT_TRUE(net::ErrorMsg::decode(msg.payload, &err));
  EXPECT_NE(err.message.find("unsupported protocol version"), std::string::npos)
      << err.message;
  EXPECT_GE(cluster.router().metrics().hello_rejects.load(), 1u);
}

// The acceptance fault-injection scenario: kill the shard a stream is
// pinned to, mid-stream. The client must get a typed kUnavailable error
// (not a hang or a crash), the router must eject the shard and rebuild the
// ring, and the session's next request must re-place on the survivor and
// count as a re-route.
TEST(ClusterRouter, ShardLossMidStreamYieldsTypedErrorAndReroutes) {
  MiniCluster cluster(2);
  ASSERT_TRUE(cluster.healthy(2));
  Router& router = cluster.router();

  const size_t owner = 0;
  const size_t survivor = 1;
  const serve::VolumeKey key = key_owned_by(owner, 2);

  net::NetClientOptions copt;
  copt.recv_timeout_ms = 15'000.0;
  net::NetClient client(copt);
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error)) << error;

  net::StreamRequestMsg req;
  req.stream_id = 21;
  req.session_id = 9;
  req.volume = key;
  req.frames = 400;  // far more than can finish before the kill
  ASSERT_TRUE(client.open_stream(req, &error)) << error;

  // Confirm the stream is flowing, then pull the shard out from under it.
  for (int i = 0; i < 2; ++i) {
    net::NetClient::Event event;
    ASSERT_TRUE(client.next_event(&event, &error)) << error;
    ASSERT_EQ(event.kind, net::NetClient::Event::Kind::kFrame);
  }
  cluster.server(owner).stop();

  // In-flight frames may still drain; the next non-frame event must be the
  // typed loss error, and it must arrive well before the recv timeout.
  bool got_error = false;
  net::ErrorMsg err;
  for (int i = 0; i < 1000 && !got_error; ++i) {
    net::NetClient::Event event;
    ASSERT_TRUE(client.next_event(&event, &error)) << error;
    if (event.kind == net::NetClient::Event::Kind::kError) {
      err = event.error;
      got_error = true;
    }
  }
  ASSERT_TRUE(got_error);
  EXPECT_EQ(err.status,
            static_cast<uint16_t>(serve::ServeStatus::kUnavailable));
  EXPECT_EQ(err.request_id, req.stream_id);
  EXPECT_NE(err.message.find("lost"), std::string::npos) << err.message;

  // Data-path loss ejects immediately; the ring rebuilds around the hole.
  ASSERT_TRUE(wait_state(router, owner, ShardState::kEjected, 5'000.0));
  EXPECT_GE(router.metrics().shards[owner]->ejections.load(), 1u);

  // Same session, same volume: the broken pin re-places on the survivor.
  net::RenderRequestMsg rreq;
  rreq.request_id = 100;
  rreq.session_id = req.session_id;
  rreq.volume = key;
  rreq.camera = Camera::orbit({key.nx, key.ny, key.nz}, 0.5, 0.3);
  ImageU8 image;
  net::FrameMsg meta;
  ASSERT_TRUE(client.render(rreq, &image, &meta, &error)) << error;
  EXPECT_GT(image.pixel_count(), 0u);
  EXPECT_GE(router.metrics().reroutes.load(), 1u);
  EXPECT_GE(router.metrics().shards[survivor]->routed_requests.load(), 1u);
  client.send_bye(nullptr);
}

TEST(ClusterRouter, NoHealthyShardGivesTypedUnavailable) {
  // Reserve a port nobody listens on: the router's only shard is dead on
  // arrival, so the ring never has a member.
  std::string error;
  net::UniqueFd placeholder = net::tcp_listen("127.0.0.1", 0, 1, &error);
  ASSERT_TRUE(placeholder.valid()) << error;
  const uint16_t dead_port = net::local_port(placeholder.get());
  placeholder.reset();

  RouterOptions ropt;
  ropt.probe_interval_ms = 50.0;
  Router router({{"shard-0", "127.0.0.1", dead_port, 1}}, ropt);
  ASSERT_TRUE(router.start(&error)) << error;

  // The south face still welcomes clients; placement is what fails, with
  // a typed kUnavailable naming the condition.
  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error)) << error;
  net::RenderRequestMsg req;
  req.request_id = 1;
  req.session_id = 1;
  req.volume = key_owned_by(0, 1);
  req.camera = Camera::orbit({req.volume.nx, req.volume.ny, req.volume.nz},
                             0.2, 0.3);
  ImageU8 image;
  net::FrameMsg meta;
  EXPECT_FALSE(client.render(req, &image, &meta, &error));
  EXPECT_NE(error.find("no healthy shard"), std::string::npos) << error;
  EXPECT_GE(router.metrics().unavailable_rejections.load(), 1u);
  router.stop();
}

// --- tracing across the router hop ----------------------------------------

TEST(ClusterTrace, SampledRequestYieldsOneTreeSpanningRouterAndShard) {
  MiniCluster cluster(2, /*traced=*/true);
  ASSERT_TRUE(cluster.healthy(2));

  serve::VolumeKey key;
  key.kind = "mri";
  key.nx = key.ny = key.nz = 36;

  net::NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", cluster.router().port(), &error))
      << error;

  const auto request_for = [&key](uint64_t id) {
    net::RenderRequestMsg req;
    req.request_id = id;
    req.session_id = 5;
    req.volume = key;
    req.camera = Camera::orbit({key.nx, key.ny, key.nz}, 0.5, 0.3);
    return req;
  };

  // Untraced first: nothing recorded anywhere on the unsampled path.
  net::RenderRequestMsg plain = request_for(1);
  ImageU8 plain_img;
  net::FrameMsg plain_meta;
  ASSERT_TRUE(client.render(plain, &plain_img, &plain_meta, &error)) << error;
  EXPECT_EQ(cluster.router_recorder().recorded(), 0u);
  EXPECT_EQ(cluster.shard_recorder(0).recorded(), 0u);
  EXPECT_EQ(cluster.shard_recorder(1).recorded(), 0u);

  // Same camera, sampled: pixels must not change, spans must appear.
  uint64_t root = 0;
  net::RenderRequestMsg traced = request_for(2);
  traced.trace = obs::make_sampled_trace(&root);
  ImageU8 traced_img;
  net::FrameMsg traced_meta;
  WallTimer rtt;
  ASSERT_TRUE(client.render(traced, &traced_img, &traced_meta, &error)) << error;
  const double rtt_ms = rtt.millis();
  EXPECT_EQ(pixel_hash(plain_img), pixel_hash(traced_img));
  ASSERT_TRUE(traced_meta.trace.sampled());

  // The shard-side kSend span lands on the shard's poll thread right after
  // the frame drains; the router's proxy span on frame receipt.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<obs::SpanRecord> all = cluster.router_recorder().snapshot();
  for (size_t i = 0; i < 2; ++i) {
    const std::vector<obs::SpanRecord> s = cluster.shard_recorder(i).snapshot();
    all.insert(all.end(), s.begin(), s.end());
  }
  const std::vector<obs::TraceTree> trees = obs::assemble_traces(std::move(all));
  ASSERT_EQ(trees.size(), 1u);
  const obs::TraceTree& t = trees[0];
  EXPECT_EQ(t.trace_hi, traced.trace.trace_hi);
  EXPECT_EQ(t.trace_lo, traced.trace.trace_lo);

  // Parentage across the hop: the router's proxy span and the shard's
  // request span are siblings under the client root (the router forwards
  // the payload verbatim, it cannot rewrite the parent id inside it).
  const obs::SpanRecord* proxy = nullptr;
  const obs::SpanRecord* request = nullptr;
  for (const obs::SpanRecord& s : t.spans) {
    if (s.kind == obs::SpanKind::kRouterProxy) proxy = &s;
    if (s.kind == obs::SpanKind::kRequest) request = &s;
  }
  ASSERT_NE(proxy, nullptr);
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(proxy->parent_id, root);
  EXPECT_EQ(request->parent_id, root);
  for (const obs::SpanRecord& s : t.spans) {
    if (s.kind == obs::SpanKind::kRouterProxy ||
        s.kind == obs::SpanKind::kRequest) {
      continue;
    }
    EXPECT_EQ(s.parent_id, request->span_id) << obs::to_string(s.kind);
  }

  // Phase coverage: the tree must contain the stages named in the issue's
  // acceptance criterion (cache build appears because request 2 re-renders
  // a cached volume — the *first* request built it, untraced).
  EXPECT_TRUE(t.has_kind(obs::SpanKind::kQueueWait));
  EXPECT_TRUE(t.has_kind(obs::SpanKind::kComposite));
  EXPECT_TRUE(t.has_kind(obs::SpanKind::kWarp));
  EXPECT_TRUE(t.has_kind(obs::SpanKind::kFrameEncode));
  EXPECT_TRUE(t.has_kind(obs::SpanKind::kSend));

  // Duration consistency: stage spans nest inside the request span, the
  // request span inside the proxy span (same steady clock, one process),
  // and everything inside the measured round-trip.
  EXPECT_LE(t.kind_ms(obs::SpanKind::kQueueWait) +
                t.kind_ms(obs::SpanKind::kComposite) +
                t.kind_ms(obs::SpanKind::kWarp),
            request->duration_ms() + 0.5);
  EXPECT_GE(proxy->duration_ms() + 0.5, request->duration_ms());
  EXPECT_LE(proxy->duration_ms(), rtt_ms + 0.5);

  // A traced cache MISS records the build stages too.
  serve::VolumeKey cold = key;
  cold.seed = 77;
  net::RenderRequestMsg miss = request_for(3);
  miss.volume = cold;
  miss.trace = obs::make_sampled_trace();
  ImageU8 miss_img;
  net::FrameMsg miss_meta;
  ASSERT_TRUE(client.render(miss, &miss_img, &miss_meta, &error)) << error;
  bool saw_build = false, saw_classify = false, saw_encode = false;
  for (const obs::SpanRecord& s : miss_meta.spans) {
    saw_build |= s.kind == obs::SpanKind::kCacheBuild;
    saw_classify |= s.kind == obs::SpanKind::kClassify;
    saw_encode |= s.kind == obs::SpanKind::kEncodeVolume;
  }
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_classify);
  EXPECT_TRUE(saw_encode);
  client.send_bye(nullptr);
}

TEST(ClusterTrace, SelectorFetchesPrometheusAndTraceDumpThroughRouter) {
  MiniCluster cluster(2, /*traced=*/true);
  ASSERT_TRUE(cluster.healthy(2));

  net::NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", cluster.router().port(), &error))
      << error;

  net::RenderRequestMsg req;
  req.request_id = 1;
  req.session_id = 2;
  req.volume.kind = "mri";
  req.volume.nx = req.volume.ny = req.volume.nz = 36;
  req.camera = Camera::orbit({36, 36, 36}, 0.2, 0.3);
  req.trace = obs::make_sampled_trace();
  ImageU8 image;
  net::FrameMsg meta;
  ASSERT_TRUE(client.render(req, &image, &meta, &error)) << error;

  // Selector 0 (empty payload) keeps the legacy JSON document.
  std::string json;
  ASSERT_TRUE(client.fetch_metrics(&json, &error)) << error;
  EXPECT_EQ(json.front(), '{');

  // Selector 1: Prometheus exposition with router counters.
  std::string prom;
  ASSERT_TRUE(
      client.fetch_metrics(&prom, &error, net::kMetricsSelectorPrometheus))
      << error;
  EXPECT_NE(prom.find("# TYPE psw_router_requests_routed_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("psw_router_requests_routed_total 1"), std::string::npos);

  // Selector 2: the router's span dump, with the proxy span of our trace.
  std::string dump;
  ASSERT_TRUE(client.fetch_metrics(&dump, &error, net::kMetricsSelectorTrace))
      << error;
  EXPECT_NE(dump.find("\"node\": \"router\""), std::string::npos);
  EXPECT_NE(dump.find(obs::trace_id_hex(req.trace)), std::string::npos);
  EXPECT_NE(dump.find("router-proxy"), std::string::npos);

  // An unknown selector degrades to the JSON document, never an error.
  std::string fallback;
  ASSERT_TRUE(client.fetch_metrics(&fallback, &error, 250)) << error;
  EXPECT_EQ(fallback.front(), '{');
  client.send_bye(nullptr);
}

TEST(ClusterTrace, UnavailableErrorCarriesTheTraceId) {
  // Router with one dead-on-arrival shard: a traced request fails with a
  // typed kUnavailable that must carry the request's trace context so the
  // client-side error can be correlated with server-side dumps.
  std::string error;
  net::UniqueFd placeholder = net::tcp_listen("127.0.0.1", 0, 1, &error);
  ASSERT_TRUE(placeholder.valid()) << error;
  const uint16_t dead_port = net::local_port(placeholder.get());
  placeholder.reset();

  RouterOptions ropt;
  ropt.probe_interval_ms = 50.0;
  Router router({{"shard-0", "127.0.0.1", dead_port, 1}}, ropt);
  ASSERT_TRUE(router.start(&error)) << error;

  // Drive a stream request so next_event() surfaces the raw ErrorMsg (with
  // its trace block) instead of render() flattening it into a string.
  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error)) << error;
  net::StreamRequestMsg req;
  req.stream_id = 4;
  req.session_id = 1;
  req.volume = key_owned_by(0, 1);
  req.frames = 8;
  req.trace = obs::make_sampled_trace();
  ASSERT_TRUE(client.open_stream(req, &error)) << error;

  net::NetClient::Event event;
  ASSERT_TRUE(client.next_event(&event, &error)) << error;
  ASSERT_EQ(event.kind, net::NetClient::Event::Kind::kError);
  EXPECT_EQ(event.error.status,
            static_cast<uint16_t>(serve::ServeStatus::kUnavailable));
  ASSERT_TRUE(event.error.trace.sampled());
  EXPECT_EQ(event.error.trace.trace_hi, req.trace.trace_hi);
  EXPECT_EQ(event.error.trace.trace_lo, req.trace.trace_lo);
  router.stop();
}

}  // namespace
}  // namespace psw::cluster
