#include <gtest/gtest.h>

#include <cmath>

#include "core/factorization.hpp"
#include "core/intermediate_image.hpp"
#include "core/warp.hpp"
#include "util/rng.hpp"

namespace psw {
namespace {

// A factorization with a controlled warp for isolated warp tests.
Factorization make_fact(int iw, int ih, const Affine2D& warp, int fw, int fh) {
  Factorization f;
  f.intermediate_width = iw;
  f.intermediate_height = ih;
  f.warp = warp;
  f.final_width = fw;
  f.final_height = fh;
  return f;
}

TEST(Warp, IdentityWarpCopiesQuantized) {
  IntermediateImage src(8, 8);
  SplitMix64 rng(3);
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      src.pixel(u, v) = Rgba{static_cast<float>(rng.uniform()),
                             static_cast<float>(rng.uniform()),
                             static_cast<float>(rng.uniform()), 1.0f};
    }
  }
  const Factorization f = make_fact(8, 8, Affine2D{}, 8, 8);
  ImageU8 out(8, 8);
  warp_frame(src, f, out);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(out.at(x, y), quantize8(src.pixel(x, y))) << x << "," << y;
    }
  }
}

TEST(Warp, TranslationShiftsContent) {
  IntermediateImage src(8, 8);
  src.pixel(2, 3) = Rgba{1, 0, 0, 1};
  Affine2D warp;  // out = in + (3, 2)
  warp.bx = 3;
  warp.by = 2;
  const Factorization f = make_fact(8, 8, warp, 12, 12);
  ImageU8 out(12, 12);
  warp_frame(src, f, out);
  EXPECT_EQ(out.at(5, 5).r, 255);
  EXPECT_EQ(out.at(2, 3).r, 0);
}

TEST(Warp, HalfPixelTranslationInterpolates) {
  IntermediateImage src(8, 1);
  src.pixel(3, 0) = Rgba{1, 1, 1, 1};
  Affine2D warp;
  warp.bx = 0.5;
  const Factorization f = make_fact(8, 1, warp, 8, 1);
  ImageU8 out(8, 1);
  warp_frame(src, f, out);
  // The unit impulse spreads evenly over pixels 3 and 4.
  EXPECT_EQ(out.at(3, 0).r, 128);
  EXPECT_EQ(out.at(4, 0).r, 128);
}

TEST(Warp, OutOfRangePixelsAreBackground) {
  IntermediateImage src(4, 4);
  for (int v = 0; v < 4; ++v) {
    for (int u = 0; u < 4; ++u) src.pixel(u, v) = Rgba{1, 1, 1, 1};
  }
  Affine2D warp;
  warp.bx = 10;  // content lands at x in [10, 14)
  const Factorization f = make_fact(4, 4, warp, 20, 4);
  ImageU8 out(20, 4);
  warp_frame(src, f, out);
  EXPECT_EQ(out.at(0, 0), Pixel8{});
  EXPECT_EQ(out.at(19, 0), Pixel8{});
  EXPECT_EQ(out.at(11, 1).r, 255);
}

TEST(Warp, RotationPreservesTotalEnergyApproximately) {
  const int n = 32;
  IntermediateImage src(n, n);
  for (int v = 10; v < 22; ++v) {
    for (int u = 10; u < 22; ++u) src.pixel(u, v) = Rgba{0.5f, 0.5f, 0.5f, 1.0f};
  }
  const double angle = 0.4;
  Affine2D warp;
  warp.a00 = std::cos(angle);
  warp.a01 = -std::sin(angle);
  warp.a10 = std::sin(angle);
  warp.a11 = std::cos(angle);
  warp.bx = 20;
  warp.by = 5;
  const Factorization f = make_fact(n, n, warp, 64, 64);
  ImageU8 out(64, 64);
  warp_frame(src, f, out);
  double in_energy = 0, out_energy = 0;
  for (int v = 0; v < n; ++v) {
    for (int u = 0; u < n; ++u) in_energy += src.pixel(u, v).a;
  }
  for (size_t i = 0; i < out.pixel_count(); ++i) out_energy += out.data()[i].a / 255.0;
  EXPECT_NEAR(out_energy, in_energy, in_energy * 0.05)
      << "a rigid rotation must conserve alpha mass";
}

TEST(Warp, TilesComposeToFullFrame) {
  const int n = 24;
  IntermediateImage src(n, n);
  SplitMix64 rng(9);
  for (int v = 0; v < n; ++v) {
    for (int u = 0; u < n; ++u) {
      src.pixel(u, v) = Rgba{static_cast<float>(rng.uniform()), 0, 0,
                             static_cast<float>(rng.uniform())};
    }
  }
  Affine2D warp;
  warp.a00 = 0.9;
  warp.a01 = 0.3;
  warp.a10 = -0.2;
  warp.a11 = 1.1;
  warp.bx = 8;
  warp.by = 6;
  const Factorization f = make_fact(n, n, warp, 48, 40);
  ImageU8 whole(48, 40), tiled(48, 40);
  warp_frame(src, f, whole);
  const Affine2D inv = f.warp.inverse();
  for (int ty = 0; ty < 40; ty += 16) {
    for (int tx = 0; tx < 48; tx += 16) {
      warp_tile(src, f, inv, tx, ty, 16, tiled);
    }
  }
  for (size_t i = 0; i < whole.pixel_count(); ++i) {
    ASSERT_EQ(whole.data()[i], tiled.data()[i]) << "pixel " << i;
  }
}

TEST(Warp, ScanlineRangeRespected) {
  IntermediateImage src(8, 8);
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) src.pixel(u, v) = Rgba{1, 1, 1, 1};
  }
  const Factorization f = make_fact(8, 8, Affine2D{}, 8, 8);
  const Affine2D inv = f.warp.inverse();
  ImageU8 out(8, 8);
  WarpStats stats;
  warp_scanline(src, f, inv, 3, 2, 6, out, nullptr, &stats);
  EXPECT_EQ(stats.pixels_written, 4u);
  EXPECT_EQ(out.at(1, 3), Pixel8{});       // outside [2, 6)
  EXPECT_EQ(out.at(2, 3).r, 255);          // inside
  EXPECT_EQ(out.at(2, 2), Pixel8{});       // other scanline untouched
}

TEST(Warp, StatsCountSamples) {
  IntermediateImage src(4, 4);
  src.pixel(1, 1) = Rgba{1, 0, 0, 1};
  const Factorization f = make_fact(4, 4, Affine2D{}, 4, 4);
  ImageU8 out(4, 4);
  const WarpStats stats = warp_frame(src, f, out);
  EXPECT_EQ(stats.pixels_written, 16u);
  EXPECT_GT(stats.samples, 0u);
}

}  // namespace
}  // namespace psw
