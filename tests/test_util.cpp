#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/histogram.hpp"
#include "util/image.hpp"
#include "util/json.hpp"
#include "util/mat4.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/vec.hpp"

namespace psw {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec3, BasicArithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b).x, 5);
  EXPECT_EQ((b - a).z, 3);
  EXPECT_EQ((a * 2.0).y, 4);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossProductOrthogonal) {
  const Vec3 a{1, 2, 3}, b{-2, 1, 4};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, NormalizedHasUnitLength) {
  const Vec3 v{3, 4, 12};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
}

TEST(Vec3, NormalizeZeroIsZero) {
  EXPECT_EQ(Vec3{}.normalized().norm(), 0.0);
}

TEST(Mat4, IdentityTransformsPointsUnchanged) {
  const Vec3 p{1.5, -2.0, 3.25};
  const Vec3 q = Mat4::identity().transform_point(p);
  EXPECT_DOUBLE_EQ(q.x, p.x);
  EXPECT_DOUBLE_EQ(q.y, p.y);
  EXPECT_DOUBLE_EQ(q.z, p.z);
}

TEST(Mat4, TranslationMovesPointsNotDirections) {
  const Mat4 t = Mat4::translation(1, 2, 3);
  const Vec3 p = t.transform_point({0, 0, 0});
  EXPECT_DOUBLE_EQ(p.x, 1);
  EXPECT_DOUBLE_EQ(p.y, 2);
  EXPECT_DOUBLE_EQ(p.z, 3);
  const Vec3 d = t.transform_dir({1, 0, 0});
  EXPECT_DOUBLE_EQ(d.x, 1);
  EXPECT_DOUBLE_EQ(d.y, 0);
}

TEST(Mat4, RotationYQuarterTurn) {
  const Mat4 r = Mat4::rotation_y(kPi / 2);
  const Vec3 p = r.transform_point({1, 0, 0});
  EXPECT_NEAR(p.x, 0, 1e-12);
  EXPECT_NEAR(p.z, -1, 1e-12);
}

TEST(Mat4, RotationsPreserveLength) {
  SplitMix64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Mat4 r = Mat4::rotation_y(rng.uniform(0, 2 * kPi)) *
                   Mat4::rotation_x(rng.uniform(0, 2 * kPi)) *
                   Mat4::rotation_z(rng.uniform(0, 2 * kPi));
    const Vec3 p{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    EXPECT_NEAR(r.transform_point(p).norm(), p.norm(), 1e-9);
  }
}

TEST(Mat4, InverseRoundTrip) {
  SplitMix64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const Mat4 m = Mat4::rotation_y(rng.uniform(0, 2 * kPi)) *
                   Mat4::rotation_x(rng.uniform(0, 2 * kPi)) *
                   Mat4::translation(rng.uniform(-3, 3), rng.uniform(-3, 3), 0.5);
    Mat4 inv;
    ASSERT_TRUE(m.inverse(&inv));
    EXPECT_TRUE((m * inv).almost_equal(Mat4::identity(), 1e-9));
    EXPECT_TRUE((inv * m).almost_equal(Mat4::identity(), 1e-9));
  }
}

TEST(Mat4, SingularMatrixInverseFails) {
  Mat4 m = Mat4::scale(1, 1, 0);
  Mat4 inv;
  EXPECT_FALSE(m.inverse(&inv));
}

TEST(Mat4, AxisPermutationMovesAxes) {
  const Mat4 p = Mat4::axis_permutation({2, 0, 1});
  const Vec3 q = p.transform_point({1, 2, 3});
  EXPECT_DOUBLE_EQ(q.x, 3);
  EXPECT_DOUBLE_EQ(q.y, 1);
  EXPECT_DOUBLE_EQ(q.z, 2);
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, UniformInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, BelowRespectsBound) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(ImageIO, PpmRoundTrip) {
  ImageRGBA img(17, 9);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      img.at(x, y) = Rgba{x / 16.0f, y / 8.0f, 0.25f, 1.0f};
    }
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "psw_test_roundtrip.ppm").string();
  ASSERT_TRUE(write_ppm(path, img));
  ImageRGBA back;
  ASSERT_TRUE(read_ppm(path, &back));
  ASSERT_EQ(back.width(), img.width());
  ASSERT_EQ(back.height(), img.height());
  EXPECT_LT(image_mad(img, back), 1.0 / 255.0 + 1e-6);
  std::filesystem::remove(path);
}

TEST(ImageIO, ReadMissingFileFails) {
  ImageRGBA img;
  EXPECT_FALSE(read_ppm("/nonexistent/path/file.ppm", &img));
}

TEST(ImageMetrics, IdenticalImagesCorrelatePerfectly) {
  ImageRGBA img(8, 8);
  SplitMix64 rng(3);
  for (size_t i = 0; i < img.pixel_count(); ++i) {
    img.data()[i] = Rgba{static_cast<float>(rng.uniform()), 0, 0, 1};
  }
  EXPECT_NEAR(image_correlation(img, img), 1.0, 1e-12);
  EXPECT_EQ(image_mad(img, img), 0.0);
}

TEST(ImageMetrics, SizeMismatchIsLargeMad) {
  ImageRGBA a(4, 4), b(5, 4);
  EXPECT_GT(image_mad(a, b), 1e20);
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--procs=8", "--verbose", "input.vol", "--scale=1.5"};
  CliFlags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("procs", 1), 8);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 0), 1.5);
  EXPECT_EQ(flags.get("missing", "def"), "def");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.vol");
}

TEST(Cli, UnknownFlagValidation) {
  const char* argv[] = {"prog", "--procs=8", "--verbsoe", "input.vol"};
  CliFlags flags(4, const_cast<char**>(argv));
  // The typo is reported along with the known set; positionals are exempt.
  const std::string err = flags.unknown_flag_error({"procs", "verbose"});
  EXPECT_NE(err.find("--verbsoe"), std::string::npos);
  EXPECT_NE(err.find("--verbose"), std::string::npos);
  EXPECT_EQ(err.find("input.vol"), std::string::npos);
  EXPECT_EQ(flags.unknown_flag_error({"procs", "verbsoe"}), "");
}

TEST(Json, WriterProducesWellFormedNesting) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "a \"quoted\"\nstring");
  w.field("count", uint64_t{42});
  w.field("ratio", 0.5);
  w.field("bad", std::nan(""));
  w.field("pos_inf", std::numeric_limits<double>::infinity());
  w.field("neg_inf", -std::numeric_limits<double>::infinity());
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();
  const std::string s = w.str();
  EXPECT_NE(s.find("\"a \\\"quoted\\\"\\nstring\""), std::string::npos);
  EXPECT_NE(s.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(s.find("\"bad\": null"), std::string::npos);
  // Non-finite doubles must never reach the output as "inf"/"nan" tokens:
  // they would make the whole report unparseable.
  EXPECT_NE(s.find("\"pos_inf\": null"), std::string::npos);
  EXPECT_NE(s.find("\"neg_inf\": null"), std::string::npos);
  EXPECT_EQ(s.find(": inf"), std::string::npos);
  EXPECT_EQ(s.find(": -inf"), std::string::npos);
  EXPECT_EQ(s.find(": nan"), std::string::npos);
  EXPECT_NE(s.find("\"empty\": {}"), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(Histogram, QuantilesBracketRecordedValues) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile_ms(0.5), 0.0);
  for (int i = 1; i <= 100; ++i) h.record_ms(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean_ms(), 50.5, 1e-9);
  EXPECT_EQ(h.max_ms(), 100.0);
  // Geometric buckets have ~19% resolution; quantiles must land near the
  // exact order statistics.
  EXPECT_NEAR(h.quantile_ms(0.50), 50.0, 50.0 * 0.25);
  EXPECT_NEAR(h.quantile_ms(0.95), 95.0, 95.0 * 0.25);
  EXPECT_LE(h.quantile_ms(0.99), h.max_ms());
  EXPECT_GE(h.quantile_ms(1.0), h.quantile_ms(0.5));
}

TEST(Histogram, ConcurrentRecordingKeepsTotals) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.record_ms(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 4000u);
  EXPECT_NEAR(h.sum_ms(), 4000.0, 1e-6);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  // Recording a stream into one histogram must equal recording its halves
  // into two histograms and merging: identical buckets, count, sum, max,
  // and therefore identical quantiles.
  LatencyHistogram combined, lo, hi;
  SplitMix64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double ms = std::exp2(rng.uniform(-12, 14));  // spans many buckets
    combined.record_ms(ms);
    (i % 2 == 0 ? lo : hi).record_ms(ms);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), combined.count());
  EXPECT_NEAR(lo.sum_ms(), combined.sum_ms(), 1e-9 * combined.sum_ms());
  EXPECT_EQ(lo.max_ms(), combined.max_ms());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(lo.quantile_ms(q), combined.quantile_ms(q)) << "q=" << q;
  }
}

TEST(Histogram, MergeIntoEmptyAndWithEmpty) {
  LatencyHistogram a, b, empty;
  a.record_ms(3.0);
  a.record_ms(7.0);
  b.merge(a);  // into empty
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.max_ms(), 7.0);
  b.merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.sum_ms(), 10.0, 1e-12);
  b.merge(b);  // self-merge is a no-op, not a doubling
  EXPECT_EQ(b.count(), 2u);
}

TEST(Crc32, KnownAnswerAndIncremental) {
  // The standard CRC-32 check value over "123456789".
  const char* check = "123456789";
  EXPECT_EQ(crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Chaining through `seed` equals one pass over the concatenation.
  const uint32_t first = crc32(check, 4);
  EXPECT_EQ(crc32(check + 4, 5, first), 0xCBF43926u);
  // Sensitivity: a single flipped bit changes the checksum.
  char flipped[9];
  std::copy(check, check + 9, flipped);
  flipped[3] ^= 0x01;
  EXPECT_NE(crc32(flipped, 9), 0xCBF43926u);
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_numeric("beta", {2.5, 3.25}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

}  // namespace
}  // namespace psw
