#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "parallel/new_renderer.hpp"
#include "parallel/old_renderer.hpp"
#include "phantom/phantom.hpp"
#include "trace/sink.hpp"

namespace psw {
namespace {

TEST(TraceRecord, PacksAndUnpacks) {
  const TraceRecord r(0x7fff12345678ULL, 16, true);
  EXPECT_EQ(r.addr(), 0x7fff12345678ULL);
  EXPECT_EQ(r.size(), 16u);
  EXPECT_TRUE(r.is_write());
  const TraceRecord r2(0x1000, 4, false);
  EXPECT_FALSE(r2.is_write());
  EXPECT_EQ(r2.size(), 4u);
}

// Regression: the size field is 10 bits; accesses of 32+ bytes used to wrap
// modulo 32 through a 5-bit field, silently corrupting traced sizes.
TEST(TraceRecord, WideAccessesDoNotTruncate) {
  const TraceRecord r32(0x2000, 32, true);
  EXPECT_EQ(r32.size(), 32u);
  const TraceRecord r512(0x3000, 512, false);
  EXPECT_EQ(r512.size(), 512u);
  const TraceRecord rmax(0x7ffffffff000ULL, TraceRecord::kMaxSize, true);
  EXPECT_EQ(rmax.size(), TraceRecord::kMaxSize);
  EXPECT_EQ(rmax.addr(), 0x7ffffffff000ULL);
  EXPECT_TRUE(rmax.is_write());
}

TEST(TraceSet, RecordsSyncEvents) {
  TraceSet set(2);
  set.begin_interval("a");  // barrier boundary
  int x = 0;
  set.hook(0)->access(&x, 4, true);
  set.begin_interval("b", /*barrier=*/false);  // label only
  set.sync_release(0, 3);
  set.sync_acquire(1, 3);
  ASSERT_EQ(set.sync_events().size(), 3u);
  EXPECT_EQ(set.sync_events()[0].kind, SyncEvent::Kind::kBarrier);
  EXPECT_EQ(set.sync_events()[1].kind, SyncEvent::Kind::kRelease);
  EXPECT_EQ(set.sync_events()[1].a, 0);
  EXPECT_EQ(set.sync_events()[1].pos[0], 1u);
  EXPECT_EQ(set.sync_events()[2].kind, SyncEvent::Kind::kAcquire);
  EXPECT_EQ(set.intervals(), 2);  // the non-barrier boundary still labels
}

TEST(TraceSet, HooksRecordPerProcessor) {
  TraceSet set(3);
  set.begin_interval("a");
  int x = 0;
  set.hook(0)->access(&x, 4, false);
  set.hook(2)->access(&x, 4, true);
  set.hook(2)->access(&x, 8, false);
  EXPECT_EQ(set.stream(0).records.size(), 1u);
  EXPECT_EQ(set.stream(1).records.size(), 0u);
  EXPECT_EQ(set.stream(2).records.size(), 2u);
  EXPECT_TRUE(set.stream(2).records[0].is_write());
  EXPECT_EQ(set.stream(0).records[0].addr(), reinterpret_cast<uint64_t>(&x));
}

TEST(TraceSet, IntervalsSegmentStreams) {
  TraceSet set(2);
  int x = 0;
  set.begin_interval("composite");
  set.hook(0)->access(&x, 4, false);
  set.hook(0)->access(&x, 4, false);
  set.hook(1)->access(&x, 4, false);
  set.begin_interval("warp");
  set.hook(0)->access(&x, 4, true);
  ASSERT_EQ(set.intervals(), 2);
  EXPECT_EQ(set.interval_name(0), "composite");
  const auto [b0, e0] = set.interval_range(0, 0);
  EXPECT_EQ(e0 - b0, 2u);
  const auto [b1, e1] = set.interval_range(0, 1);
  EXPECT_EQ(e1 - b1, 1u);
  const auto [b1p1, e1p1] = set.interval_range(1, 1);
  EXPECT_EQ(e1p1 - b1p1, 0u);
}

struct TraceScene {
  EncodedVolume encoded;
  std::array<int, 3> dims;
};

const TraceScene& trace_scene() {
  static const TraceScene scene = [] {
    TraceScene s;
    const int n = 32;
    const DensityVolume density = make_mri_brain(n, n, n);
    const ClassifiedVolume classified = classify(density, TransferFunction::mri_preset());
    s.encoded = EncodedVolume::build(classified, ClassifyOptions{}.alpha_threshold);
    s.dims = {n, n, n};
    return s;
  }();
  return scene;
}

TEST(TracingExecutor, CapturesRendererReferences) {
  TracingExecutor exec(4);
  OldParallelRenderer renderer;
  ImageU8 img;
  renderer.render(trace_scene().encoded, Camera::orbit(trace_scene().dims, 0.5, 0.2),
                  exec, &img);
  const TraceSet& traces = exec.traces();
  EXPECT_EQ(traces.intervals(), 2);  // composite, warp
  EXPECT_GT(traces.total_records(), 1000u);
  // Every processor composites and warps something for this workload.
  for (int p = 0; p < 4; ++p) {
    const auto [cb, ce] = traces.interval_range(p, 0);
    const auto [wb, we] = traces.interval_range(p, 1);
    EXPECT_GT(ce - cb, 0u) << "proc " << p << " composite empty";
    EXPECT_GT(we - wb, 0u) << "proc " << p << " warp empty";
  }
}

TEST(TracingExecutor, TracedRenderMatchesUntraced) {
  TracingExecutor traced(3);
  SerialExecutor plain(3);
  OldParallelRenderer r1, r2;
  ImageU8 img1, img2;
  const Camera cam = Camera::orbit(trace_scene().dims, 1.1, -0.2);
  r1.render(trace_scene().encoded, cam, traced, &img1);
  r2.render(trace_scene().encoded, cam, plain, &img2);
  ASSERT_EQ(img1.pixel_count(), img2.pixel_count());
  for (size_t i = 0; i < img1.pixel_count(); ++i) {
    ASSERT_EQ(img1.data()[i].r, img2.data()[i].r);
    ASSERT_EQ(img1.data()[i].a, img2.data()[i].a);
  }
}

// The compositing phase reads volume data; the warp phase must not (it
// reads only the intermediate image). This is the interface property the
// paper's analysis hinges on (§3.4.2).
TEST(TracingExecutor, WarpPhaseNeverTouchesVolumeData) {
  TracingExecutor exec(2);
  OldParallelRenderer renderer;
  ImageU8 img;
  renderer.render(trace_scene().encoded, Camera::orbit(trace_scene().dims, 0.7, 0.3),
                  exec, &img);
  const TraceSet& traces = exec.traces();

  // Volume address range: spanned by the per-axis encodings.
  const RleVolume& rle = trace_scene().encoded.for_axis(2);
  const uint64_t vox_lo = reinterpret_cast<uint64_t>(rle.voxels_at(0, 0));
  const uint64_t vox_hi = vox_lo + rle.voxel_count() * sizeof(ClassifiedVoxel);
  for (int p = 0; p < 2; ++p) {
    const auto [wb, we] = traces.interval_range(p, 1);
    for (size_t i = wb; i < we; ++i) {
      const uint64_t a = traces.stream(p).records[i].addr();
      ASSERT_FALSE(a >= vox_lo && a < vox_hi) << "warp read voxel data";
    }
  }
}

// New renderer under tracing: the intermediate-image scanlines a processor
// warps from are (mostly) the ones it composited — the paper's key
// locality property (§4.1). We verify >80% of warp-phase intermediate
// reads hit the processor's own partition.
TEST(TracingExecutor, NewRendererWarpReadsOwnPartition) {
  ParallelOptions opt;
  opt.fused_phases = false;
  NewParallelRenderer renderer(opt);
  TracingExecutor exec(4);
  ImageU8 img;
  const Camera cam = Camera::orbit(trace_scene().dims, 0.5, 0.25);
  // Two frames: second uses the profiled partition.
  renderer.render(trace_scene().encoded, cam, exec, &img);
  const ParallelRenderStats stats =
      renderer.render(trace_scene().encoded, cam, exec, &img);

  const IntermediateImage& inter = renderer.intermediate();
  const uint64_t row_bytes = static_cast<uint64_t>(inter.width()) * sizeof(Rgba);
  const uint64_t base = reinterpret_cast<uint64_t>(&inter.pixel(0, 0));
  const uint64_t img_hi =
      base + static_cast<uint64_t>(inter.height()) * row_bytes;

  const TraceSet& traces = exec.traces();
  // Frame 2's warp is the last interval.
  const int warp_interval = traces.intervals() - 1;
  uint64_t own = 0, other = 0;
  for (int p = 0; p < 4; ++p) {
    const auto [wb, we] = traces.interval_range(p, warp_interval);
    for (size_t i = wb; i < we; ++i) {
      const TraceRecord& r = traces.stream(p).records[i];
      if (r.is_write() || r.addr() < base || r.addr() >= img_hi) continue;
      const int v = static_cast<int>((r.addr() - base) / row_bytes);
      if (v >= stats.bounds[p] && v < stats.bounds[p + 1] + 1) {
        ++own;  // +1: the shared boundary scanline read is expected
      } else {
        ++other;
      }
    }
  }
  ASSERT_GT(own + other, 0u);
  EXPECT_GT(static_cast<double>(own) / (own + other), 0.8);
}

}  // namespace
}  // namespace psw
